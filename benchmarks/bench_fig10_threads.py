"""Figure 10: impact of the number of workers.

The paper shows near-linear speedup with OpenMP threads.  In Python,
only the numpy distance kernels release the GIL, so the reproduction
target is the *shape*: more workers never hurt much, and the graph
ranking is unchanged.  (See DESIGN.md §3 on this substitution.)
"""


def test_fig10_threads(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("fig10"), rounds=1, iterations=1
    )
    table = tables[0]
    # Record-only: CPython threading cannot reproduce the paper's
    # near-linear OpenMP scaling (the per-object traversal loop holds
    # the GIL; only the distance kernels release it).  EXPERIMENTS.md
    # discusses the measured shape honestly.
    for row in table.rows:
        assert row["mrpg"] > 0, row
