"""Figure 10: impact of the number of workers.

The paper shows near-linear build and detection speedup with OpenMP
threads.  This bench reproduces the figure with two legs:

* **Threads (record-only).**  Detection time vs ``n_jobs`` threads via
  the harness experiment.  CPython threads cannot reproduce the paper's
  scaling (the per-object traversal loop holds the GIL; only the numpy
  distance kernels release it), so this leg records the honest shape —
  more workers never hurt much, graph ranking unchanged — and asserts
  nothing about slope.  (See DESIGN.md §3 on this substitution.)
* **Processes (asserted, hardware-gated).**  MRPG construction time vs
  ``build_workers`` processes on the worker-count-invariant parallel
  build (:mod:`repro.graphs.parallel_build`).  Worker processes *do*
  escape the GIL, so this leg carries the paper-shaped acceptance
  claim: >= 1.8x build speedup at 4 workers.  That is a *hardware*
  claim — it only fires where 4 real cores exist at full scale; the
  committed ``BENCH_build.json`` embeds the gate decision
  (``cores_available`` / ``assertion_ran``) so numbers measured on a
  1-CPU container cannot masquerade as a tested claim.  Exactness, by
  contrast, is asserted at every scale: all builds must be
  bit-identical to the 1-worker serial reference.

Scale knob: ``REPRO_BENCH_SCALE`` shrinks the cardinality for a quick
pass.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro import Dataset
from repro.datasets import blobs_with_outliers
from repro.graphs import build_graph, graphs_equal
from repro.harness import bench_scale, hardware_gate

N_FULL = 5_000
DIM = 16
GRAPH, DEGREE = "mrpg", 16
WORKER_COUNTS = (1, 2, 4)
#: JSON baseline location (repo root, committed).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_build.json"


def test_fig10_threads(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("fig10"), rounds=1, iterations=1
    )
    table = tables[0]
    # Record-only: CPython threading cannot reproduce the paper's
    # near-linear OpenMP scaling (the per-object traversal loop holds
    # the GIL; only the distance kernels release it).  EXPERIMENTS.md
    # discusses the measured shape honestly.
    for row in table.rows:
        assert row["mrpg"] > 0, row


@pytest.fixture(scope="module")
def build_workload():
    n = max(512, int(round(N_FULL * bench_scale())))
    points = blobs_with_outliers(
        n, dim=DIM, n_clusters=10, core_std=0.6, tail_std=2.2, tail_frac=0.06,
        center_spread=14.0, planted_frac=0.01, planted_spread=70.0, rng=42,
    )
    return Dataset(points, "l2")


def test_fig10_parallel_build(build_workload):
    import numpy as np

    dataset = build_workload
    records = []
    graphs = {}
    seconds = {}
    for workers in WORKER_COUNTS:
        t0 = time.perf_counter()
        g = build_graph(
            GRAPH, dataset.view(), K=DEGREE,
            rng=np.random.default_rng(0), build_workers=workers,
        )
        seconds[workers] = time.perf_counter() - t0
        graphs[workers] = g
        stats = g.build_stats()
        records.append({
            "n": dataset.n,
            "dim": DIM,
            "metric": "l2",
            "graph": GRAPH,
            "K": DEGREE,
            "build_workers": workers,
            "seconds": round(seconds[workers], 6),
            "build_seconds": round(float(stats["build_seconds"]), 6),
            "phase_seconds": {
                k: round(float(v), 6)
                for k, v in stats["phase_seconds"].items()
            },
            "iterations": int(stats["iterations"]),
            "updates_per_round": [
                int(u) for u in stats["updates_per_round"]
            ],
            "build_pairs": int(stats["build_pairs"]),
            "start_method": stats["start_method"],
        })

    # Exactness headline at any scale: worker-count invariance means the
    # speedup is free — every build is the same graph, bit for bit.
    for workers in WORKER_COUNTS[1:]:
        assert graphs_equal(graphs[1], graphs[workers]), (
            f"build_workers={workers} diverged from the serial reference"
        )

    speedup = seconds[1] / max(seconds[4], 1e-12)
    gate = hardware_gate(
        full_scale=int(round(N_FULL * bench_scale())) >= N_FULL,
        required_cores=4,
    )
    payload = {
        "description": "MRPG construction time vs build_workers processes "
                       "(worker-count-invariant parallel build); the "
                       "threads leg of Figure 10 stays record-only in "
                       "results/fig10*",
        "cpu_count": gate["cores_available"],
        "records": records,
        "speedup_serial_vs_4_workers": round(speedup, 3),
        **gate,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nparallel build speedup at 4 workers: {speedup:.2f}x on "
          f"{gate['cores_available']} cpus (baseline written to "
          f"{OUTPUT.name}; assertion_ran={gate['assertion_ran']})")

    if gate["assertion_ran"]:
        # Acceptance headline on >= 4 real cores at full scale.
        assert speedup >= 1.8, payload
