"""Serving-path perf trajectory: single-process engine vs shard-per-worker.

Runs cold ``(r, k)`` queries over the 10k-object L2 acceptance workload
through a single-process :class:`DetectionEngine` and a
:class:`ShardedDetectionEngine` at several worker counts, asserting
bit-identical outlier sets and emitting a machine-readable
``BENCH_sharded.json`` at the repo root — the scale-out baseline future
PRs regress against.

Record fields: ``n, dim, metric, graph, K, k, r, engine, shards,
workers, seconds, cache_seconds, filter_seconds, verify_seconds,
pairs, verify_pairs, verify_descent_pairs, verify_index_pairs,
verify_sweep_pairs, outliers``; the payload also carries ``cpu_count``
and the headline ``speedup`` (single / sharded-at-4-workers).

The sharded engine runs twice at 1 worker: once with the phase-C v2
path disabled (``sharded-sweep``, the linear-sweep baseline) and once
with it on (``sharded``, the default: selective graph descent plus
per-shard VP-tree exact counting).  Two pair gates always run at full
scale (pair counts are deterministic, so they are not hardware
claims): the v2 path must cut phase-C verify pairs by >= 2x versus
the sweep-only path, and the 4-shard phase-C verify pairs must stay
within 1.5x of the single engine's *total* pairs.

The >= 1.8x acceptance headline is a *hardware* claim: shard workers
are processes, so it only applies where at least 4 cores are actually
available (and at full scale).  On smaller machines the benchmark
still runs, still asserts exactness, and records honest numbers plus
the cpu count that explains them.

Scale knob: ``REPRO_BENCH_SCALE`` shrinks the cardinality for a quick
pass.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import Dataset, DetectionEngine, build_graph
from repro.datasets import blobs_with_outliers, calibrate_r
from repro.engine.sharded import ShardedDetectionEngine
from repro.harness import bench_scale, hardware_gate

N_FULL = 10_000
DIM = 32
K_NEIGHBORS = 20
GRAPH, DEGREE = "mrpg", 16
N_SHARDS = 4
WORKER_COUNTS = (1, 4)
REPEATS = 3
#: JSON baseline location (repo root, committed).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"


@pytest.fixture(scope="module")
def workload_10k():
    n = max(512, int(round(N_FULL * bench_scale())))
    points = blobs_with_outliers(
        n, dim=DIM, n_clusters=10, core_std=0.6, tail_std=2.2, tail_frac=0.06,
        center_spread=14.0, planted_frac=0.01, planted_spread=70.0, rng=42,
    )
    dataset = Dataset(points, "l2")
    r, _ = calibrate_r(dataset, K_NEIGHBORS, 0.01)
    return dataset, float(r)


def _best_cold_query(engine, r):
    """Fastest of ``REPEATS`` cold queries (cache cleared between runs)."""
    best = None
    for _ in range(REPEATS):
        engine.reset_cache()
        res = engine.query(r, K_NEIGHBORS)
        if best is None or res.seconds < best.seconds:
            best = res
    return best


def _record(dataset, r, engine_kind, shards, workers, res):
    return {
        "n": dataset.n,
        "dim": DIM,
        "metric": "l2",
        "graph": GRAPH,
        "K": DEGREE,
        "k": K_NEIGHBORS,
        "r": r,
        "engine": engine_kind,
        "shards": shards,
        "workers": workers,
        "seconds": round(res.seconds, 6),
        "cache_seconds": round(res.phases.get("cache", 0.0), 6),
        "filter_seconds": round(res.phases.get("filter", 0.0), 6),
        "verify_seconds": round(res.phases.get("verify", 0.0), 6),
        "pairs": res.pairs,
        "verify_pairs": int(res.phase_pairs.get("verify", 0)),
        "verify_descent_pairs": int(res.phase_pairs.get("verify_descent", 0)),
        "verify_index_pairs": int(res.phase_pairs.get("verify_index", 0)),
        "verify_sweep_pairs": int(res.phase_pairs.get("verify_sweep", 0)),
        "outliers": res.n_outliers,
    }


def test_sharded_speedup_and_baseline(workload_10k):
    dataset, r = workload_10k
    records = []

    graph = build_graph(GRAPH, dataset, K=DEGREE, rng=0)
    single = DetectionEngine(dataset, graph, rng=0)
    single_res = _best_cold_query(single, r)
    records.append(_record(dataset, r, "single", 1, 1, single_res))

    # Linear-sweep phase C (descent and exact index off): the baseline
    # the graph-assisted foreign counting is gated against.
    sweep_engine = ShardedDetectionEngine(
        dataset, n_shards=N_SHARDS, workers=1,
        graph=GRAPH, K=DEGREE, rng=0, foreign_descent=False,
    )
    sweep_res = _best_cold_query(sweep_engine, r)
    sweep_engine.close()
    assert sweep_res.same_outliers(single_res), "sweep-only"
    records.append(_record(dataset, r, "sharded-sweep", N_SHARDS, 1, sweep_res))

    sharded_seconds = {}
    descent_res = None
    for workers in WORKER_COUNTS:
        engine = ShardedDetectionEngine(
            dataset, n_shards=N_SHARDS, workers=workers,
            graph=GRAPH, K=DEGREE, rng=0,
        )
        res = _best_cold_query(engine, r)
        engine.close()
        # Exactness headline: bit-identical outlier sets at any scale.
        assert res.same_outliers(single_res), workers
        sharded_seconds[workers] = res.seconds
        if descent_res is None:
            descent_res = res
        records.append(_record(dataset, r, "sharded", N_SHARDS, workers, res))
    single.close()

    # Phase C gates: deterministic pair counts, so they run at full
    # scale regardless of core count.
    verify_on = int(descent_res.phase_pairs.get("verify", 0))
    verify_off = int(sweep_res.phase_pairs.get("verify", 0))
    if int(round(N_FULL * bench_scale())) >= N_FULL:
        assert verify_on * 2 <= verify_off, (
            f"phase C v2 saves < 2x verify pairs "
            f"({verify_on} on vs {verify_off} off)"
        )
        assert verify_on <= 1.5 * single_res.pairs, (
            f"phase-C verify pairs {verify_on} exceed 1.5x single-engine "
            f"pairs {single_res.pairs}"
        )

    speedup = single_res.seconds / max(sharded_seconds[4], 1e-12)
    # The >= 1.8x headline is a hardware claim: it has only ever run
    # where 4 real cores exist at full scale.  The gate decision is
    # embedded in the committed JSON (cores_available / assertion_ran)
    # so a 1-CPU container's numbers cannot masquerade as a tested claim.
    gate = hardware_gate(
        full_scale=int(round(N_FULL * bench_scale())) >= N_FULL,
        required_cores=4,
    )
    payload = {
        "description": "single-process DetectionEngine vs shard-per-worker "
                       "ShardedDetectionEngine, cold (r, k) queries; "
                       "sharded-sweep disables the phase-C foreign descent",
        "cpu_count": gate["cores_available"],
        "records": records,
        "speedup_vs_single_at_4_workers": round(speedup, 3),
        "verify_pairs_descent_on": verify_on,
        "verify_pairs_descent_off": verify_off,
        "verify_pair_reduction": round(verify_off / max(verify_on, 1), 3),
        **gate,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nsharded speedup at {N_SHARDS} shards x 4 workers: {speedup:.2f}x "
          f"on {gate['cores_available']} cpus (baseline written to "
          f"{OUTPUT.name}; assertion_ran={gate['assertion_ran']})")

    if gate["assertion_ran"]:
        # Acceptance headline on >= 4 real cores at full scale.
        assert speedup >= 1.8, payload
