"""Table 6: index size [MB].

Paper shape: graph indexes cost more memory than the baselines'
structures but stay O(nK); MRPG is comparable to (somewhat above)
KGraph after Remove-Links pruning.
"""


def test_table6_index_size(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("table6"), rounds=1, iterations=1
    )
    table = tables[0]
    for row in table.rows:
        assert row["nested-loop"] == 0.0
        # Graphs hold more state than SNIF's cluster table...
        assert row["mrpg"] > row["snif"], row
        # ...but stay within a small factor of the K-regular KGraph.
        assert row["mrpg"] < 12 * row["kgraph"], row
