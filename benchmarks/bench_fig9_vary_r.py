"""Figure 9: impact of the distance threshold r.

Paper shape: smaller r raises the outlier ratio (more verification
work), larger r lowers it; MRPG keeps outperforming KGraph and NSW at
both ends.
"""


def test_fig9_vary_r(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("fig9"), rounds=1, iterations=1
    )
    table = tables[0]
    # The timing shape (smaller r -> more outliers -> more work) is
    # discussed in EXPERIMENTS.md from the recorded rows; here we only
    # sanity-check completeness of the sweep.
    for row in table.rows:
        assert row["mrpg"] > 0 and row["nsw"] > 0, row
    suites = {row["dataset"] for row in table.rows}
    assert all(
        len([r for r in table.rows if r["dataset"] == s]) >= 3 for s in suites
    )
