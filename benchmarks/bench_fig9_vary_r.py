"""Figure 9: impact of the distance threshold r, served from one engine.

Paper shape: smaller r raises the outlier ratio.  The serving rewrite
answers the whole r-grid from one ``DetectionEngine`` per graph — the
smallest radius pays the cold run, larger radii reuse its inlier lower
bounds.  We assert the exactness-derived invariants: the outlier set
only shrinks as r grows, and every builder agrees (checked inside the
runner).
"""


def test_fig9_vary_r(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("fig9"), rounds=1, iterations=1
    )
    table = tables[0]
    suites = sorted({row["dataset"] for row in table.rows})
    assert suites
    for suite in suites:
        rows = sorted(
            (row for row in table.rows if row["dataset"] == suite),
            key=lambda row: row["r"],
        )
        assert len(rows) >= 3, (suite, rows)
        # Outlier-set monotonicity: growing r can only remove outliers.
        counts = [row["outliers"] for row in rows]
        assert counts == sorted(counts, reverse=True), (suite, counts)
        # Every grid point was actually served.
        for row in rows:
            assert row["mrpg"] > 0 and row["nsw"] > 0, row
