"""Extension bench: incremental graph maintenance vs rebuild-per-batch.

Relaxes the paper's static-P assumption (§2): objects arrive in
batches with random churn.  Incremental NSW-style insertion amortizes
far below a full MRPG rebuild per batch; both remain exact because
Algorithm 1 verifies whatever the (degraded) filter cannot certify.
"""


def test_ext_dynamic_maintenance(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("ext_dynamic", suite="glove"), rounds=1, iterations=1
    )
    table = tables[0]
    rows = {row["strategy"]: row for row in table.rows}
    # Exactness already asserted inside the runner; the economics:
    assert rows["incremental"]["maintain_seconds"] < rows["rebuild"]["maintain_seconds"]
