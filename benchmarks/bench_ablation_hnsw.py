"""§3 claim check: HNSW's hierarchy is dead weight for DOD.

The paper excludes HNSW from its evaluation with an argument, not a
measurement: DOD traversals start at the query object itself, so the
hierarchy's fast entry-point routing never runs.  This bench makes the
measurement: HNSW's layer-0 graph gives no better filtering than flat
NSW of the same memory class, while costing more to build.
"""


def test_ablation_hnsw_hierarchy(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("ablation_hnsw", suite="glove"), rounds=1, iterations=1
    )
    table = tables[0]
    rows = {row["graph"]: row for row in table.rows}
    # The claim is about filter quality: the hierarchy must not reduce
    # false positives below NSW's by any decisive margin.
    assert rows["hnsw"]["false_positives"] >= rows["nsw"]["false_positives"] * 0.2
