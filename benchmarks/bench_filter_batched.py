"""Filtering-phase perf trajectory: scalar vs level-synchronous batched.

Runs Algorithm 1's online phases over a 10k-object L2 workload (the
acceptance workload for the batched traversal kernels) on an MRPG and a
KGraph, in scalar and batched mode, asserting bit-identical outlier
sets and emitting a machine-readable ``BENCH_filter.json`` at the repo
root — the perf baseline future PRs regress against.

Record fields: ``n, dim, metric, graph, mode, batch_size, k,
filter_seconds, verify_seconds, seconds, filter_pairs, verify_pairs,
pairs, outliers``.

Scale knob: ``REPRO_BENCH_SCALE`` shrinks the cardinality for a quick
pass (the 3x headline assertion only applies at full scale).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import Dataset, build_graph
from repro.core.dod import graph_dod
from repro.core.verify import Verifier
from repro.datasets import blobs_with_outliers, calibrate_r
from repro.harness import bench_scale

N_FULL = 10_000
DIM = 32
K_NEIGHBORS = 20
#: (builder, graph degree) pairs measured by the sweep.
GRAPH_CONFIGS = (("mrpg", 16), ("kgraph", 8))
#: JSON baseline location (repo root, committed).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_filter.json"


@pytest.fixture(scope="module")
def workload_10k():
    n = max(512, int(round(N_FULL * bench_scale())))
    points = blobs_with_outliers(
        n, dim=DIM, n_clusters=10, core_std=0.6, tail_std=2.2, tail_frac=0.06,
        center_spread=14.0, planted_frac=0.01, planted_spread=70.0, rng=42,
    )
    dataset = Dataset(points, "l2")
    r, _ = calibrate_r(dataset, K_NEIGHBORS, 0.01)
    return dataset, float(r)


def _best_run(dataset, graph, r, verifier, mode, batch_size, repeats=3):
    """Fastest of ``repeats`` runs (phase timings from that run)."""
    best = None
    for _ in range(repeats):
        res = graph_dod(
            dataset.view(), graph, r, K_NEIGHBORS,
            verifier=verifier, mode=mode, batch_size=batch_size,
        )
        if best is None or res.seconds < best.seconds:
            best = res
    return best


def test_filter_phase_speedup_and_baseline(workload_10k):
    dataset, r = workload_10k
    records = []
    speedups = {}
    for builder, degree in GRAPH_CONFIGS:
        graph = build_graph(builder, dataset, K=degree, rng=0)
        verifier = Verifier(dataset, strategy="linear")
        runs = {}
        for mode in ("scalar", "batched"):
            res = _best_run(dataset, graph, r, verifier, mode, batch_size=256)
            runs[mode] = res
            records.append({
                "n": dataset.n,
                "dim": DIM,
                "metric": "l2",
                "graph": builder,
                "K": degree,
                "mode": mode,
                "batch_size": 256 if mode == "batched" else 1,
                "k": K_NEIGHBORS,
                "r": r,
                "filter_seconds": round(res.phases["filter"], 6),
                "verify_seconds": round(res.phases["verify"], 6),
                "seconds": round(res.seconds, 6),
                "filter_pairs": res.phase_pairs["filter"],
                "verify_pairs": res.phase_pairs["verify"],
                "pairs": res.pairs,
                "outliers": res.n_outliers,
            })
        # Exactness headline: bit-identical outlier sets.
        assert runs["batched"].same_outliers(runs["scalar"]), builder
        speedups[builder] = (
            runs["scalar"].phases["filter"] / max(runs["batched"].phases["filter"], 1e-12)
        )

    payload = {
        "description": "scalar vs level-synchronous batched filtering "
                       "(graph_dod online phases)",
        "records": records,
        "filter_speedups": {b: round(s, 3) for b, s in speedups.items()},
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nfilter-phase speedups: {payload['filter_speedups']} "
          f"(baseline written to {OUTPUT.name})")

    if int(round(N_FULL * bench_scale())) >= N_FULL and not os.environ.get(
        "REPRO_BENCH_NO_ASSERT"
    ):
        # Acceptance headline at full scale: >= 3x on the 10k L2 workload.
        assert max(speedups.values()) >= 3.0, speedups
        # And batching never loses meaningfully on any measured graph.
        assert all(s >= 1.2 for s in speedups.values()), speedups
