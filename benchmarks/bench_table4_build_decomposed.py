"""Table 4: decomposed pre-processing time on the Glove-like suite.

Paper shape: NNDescent(+) dominates the build; Connect-SubGraphs and
Remove-Links are cheap; Remove-Detours is the second-largest phase.
"""


def test_table4_build_decomposition(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("table4", suite="glove"), rounds=1, iterations=1
    )
    table = tables[0]
    by_phase = {row["phase"]: row for row in table.rows}
    descent = by_phase["NNDescent(+)"]
    # The AKNN build is the dominant phase for both MRPG flavours.
    for col in ("mrpg-basic", "mrpg"):
        others = sum(
            by_phase[p][col]
            for p in ("Connect-SubGraphs", "Remove-Links")
        )
        assert descent[col] > others, (col, table.format())
