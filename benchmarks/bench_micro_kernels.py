"""Micro-benchmarks of the hot kernels (statistical, multi-round).

Unlike the table/figure benches (one-shot macro experiments), these use
pytest-benchmark's statistical engine on the operations Algorithm 1
performs millions of times: one-to-many distances, greedy counting of a
single object, one VP-tree range count, one verification.
"""

import numpy as np
import pytest

from repro.core import BlockTracker, Verifier, VisitTracker, greedy_count, greedy_count_block
from repro.harness import default_workload, get_dataset, get_graph
from repro.index import VPTree


@pytest.fixture(scope="module")
def workload():
    return default_workload("glove")


@pytest.fixture(scope="module")
def dataset(workload):
    return get_dataset(workload)


@pytest.fixture(scope="module")
def graph(workload):
    return get_graph(workload, "mrpg")


def test_distance_kernel_one_to_many(benchmark, dataset):
    idx = np.arange(dataset.n, dtype=np.int64)
    view = dataset.view()
    benchmark(lambda: view.dist_many(0, idx))


def test_greedy_count_single_object(benchmark, workload, dataset, graph):
    tracker = VisitTracker(graph.n)
    view = dataset.view()
    benchmark(
        lambda: greedy_count(view, graph, 17, workload.r, workload.k, tracker=tracker)
    )


def test_greedy_count_block_64_sources(benchmark, workload, dataset, graph):
    """The batched counterpart of the single-object walk: one block of
    64 sources through the level-synchronous kernel.  Compare per-source
    cost against ``test_greedy_count_single_object``."""
    tracker = BlockTracker(graph.n, 64)
    sources = np.arange(64, dtype=np.int64)
    view = dataset.view()
    benchmark(
        lambda: greedy_count_block(
            view, graph, sources, workload.r, workload.k, tracker=tracker
        )
    )


def test_vptree_range_count(benchmark, workload, dataset):
    tree = VPTree(dataset, capacity=16, rng=0)
    view = dataset.view()
    benchmark(
        lambda: tree.count_within(5, workload.r, stop_at=workload.k, dataset=view)
    )


def test_linear_verification(benchmark, workload, dataset):
    verifier = Verifier(dataset, strategy="linear")
    view = dataset.view()
    benchmark(lambda: verifier.count(3, workload.r, stop_at=workload.k, dataset=view))


def test_linear_verification_block_64_candidates(benchmark, workload, dataset):
    """Batched Exact-Counting: one store sweep deciding 64 candidates at
    once with early retirement.  Compare per-candidate cost against
    ``test_linear_verification``."""
    verifier = Verifier(dataset, strategy="linear")
    cands = np.arange(64, dtype=np.int64)
    view = dataset.view()
    benchmark(
        lambda: verifier.verify_block(cands, workload.r, workload.k, dataset=view)
    )


def test_edit_distance_batch(benchmark):
    w = default_workload("words")
    ds = get_dataset(w)
    idx = np.arange(ds.n, dtype=np.int64)
    view = ds.view()
    benchmark(lambda: view.dist_many(0, idx, bound=w.r))


@pytest.mark.parametrize("metric", ["l2", "l1", "angular"])
@pytest.mark.parametrize("backend", ["numpy64", "float32"])
def test_bounded_pair_dist_kernel(benchmark, dataset, metric, backend):
    """The numeric-backend seam under load: one bounded ``pair_dist``
    sweep over 50k random pairs, per metric x backend.  Compare the
    ``float32`` rows against their ``numpy64`` siblings — the screening
    backend's win on exactly this call is what the engines inherit."""
    from repro import Dataset

    ds = Dataset(dataset.store, metric, backend=backend)
    gen = np.random.default_rng(0)
    a = gen.integers(0, ds.n, 50_000)
    b = gen.integers(0, ds.n, 50_000)
    probe = ds.pair_dist(a[:2000], b[:2000])
    r = float(np.quantile(probe, 0.3))
    benchmark(lambda: ds.pair_dist(a, b, bound=r))
