"""Mutable-engine perf trajectory: cache repair vs drop-and-recompute.

The acceptance workload for the evidence-repairing engine core: a 10k
L2 collection is bulk-loaded, warmed with an ``r`` sweep, then serves
alternating churn rounds (removals + insertions, a percent per round)
and sweep queries — the read-heavy-serving-with-background-churn shape
the mutable engine targets.  Two strategies answer the same rounds:

* **repair** — mutations patch the warmed evidence cache from their own
  distance evaluations (the newcomer gets exact counts, touched
  neighbors move by one), so each round's sweep decides almost
  everything from bounds;
* **drop** — the cache is cleared at every churn round (the pre-engine
  behavior of every mutation path: any change invalidates wholesale),
  so each round's sweep recomputes from the graph.

Both produce bit-identical outlier sets every round (asserted); the
headline is the repaired sweeps beating the recomputed ones on distance
computations and wall clock.  Emits the machine-readable
``BENCH_mutable.json`` at the repo root — the perf baseline future PRs
regress against.

Scale knob: ``REPRO_BENCH_SCALE`` shrinks the cardinality for a quick
pass (the headline assertions only apply at full scale).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Dataset
from repro.datasets import blobs_with_outliers, calibrate_r
from repro.engine import MutableDetectionEngine
from repro.harness import bench_scale

N_FULL = 10_000
DIM = 32
K_NEIGHBORS = 20
CHURN_ROUNDS = 4
CHURN_FRAC = 0.005
#: JSON baseline location (repo root, committed).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_mutable.json"


@pytest.fixture(scope="module")
def workload():
    n = max(600, int(round(N_FULL * bench_scale())))
    points = blobs_with_outliers(
        n + n // 2, dim=DIM, n_clusters=10, core_std=0.6, tail_std=2.2,
        tail_frac=0.06, center_spread=14.0, planted_frac=0.01,
        planted_spread=70.0, rng=42,
    )
    base, extra = points[:n], points[n:]
    dataset = Dataset(base, "l2")
    r, _ = calibrate_r(dataset, K_NEIGHBORS, 0.01)
    return base, extra, float(r)


def _run_strategy(base, extra, r, strategy: str):
    """Warm an engine, then alternate churn rounds with sweeps."""
    grid = [r * 0.95, r, r * 1.05]
    engine = MutableDetectionEngine.fit(base, metric="l2", K=16, seed=0)
    engine.sweep(grid, k=K_NEIGHBORS)  # warm evidence (not measured)
    gen = np.random.default_rng(7)
    churn_seconds = churn_pairs = 0.0
    sweep_seconds = sweep_pairs = cache_decided = 0
    outliers = {}
    cursor = 0
    for round_no in range(CHURN_ROUNDS):
        pairs_before = engine.pairs
        t0 = time.perf_counter()
        if strategy == "drop":
            engine.reset_cache()  # pre-engine behavior: churn invalidates all
        live = engine.active_ids()
        victims = gen.choice(
            live, size=max(1, int(CHURN_FRAC * live.size)), replace=False
        )
        engine.remove(victims.tolist())
        step = max(1, int(CHURN_FRAC * len(base)))
        engine.insert(extra[cursor : cursor + step])
        cursor += step
        churn_seconds += time.perf_counter() - t0
        churn_pairs += engine.pairs - pairs_before

        pairs_before = engine.pairs
        t0 = time.perf_counter()
        sweep = engine.sweep(grid, k=K_NEIGHBORS)
        sweep_seconds += time.perf_counter() - t0
        sweep_pairs += engine.pairs - pairs_before
        cache_decided += sum(
            res.counts["cache_decided"] for res in sweep.results.values()
        )
        outliers[round_no] = {
            key: res.outliers.copy() for key, res in sweep.results.items()
        }
    engine.close()
    return {
        "strategy": strategy,
        "n": len(base),
        "dim": DIM,
        "metric": "l2",
        "k": K_NEIGHBORS,
        "r": r,
        "churn_rounds": CHURN_ROUNDS,
        "churn_frac": CHURN_FRAC,
        "churn_seconds": round(churn_seconds, 6),
        "churn_pairs": int(churn_pairs),
        "sweep_seconds": round(sweep_seconds, 6),
        "sweep_pairs": int(sweep_pairs),
        "total_seconds": round(churn_seconds + sweep_seconds, 6),
        "total_pairs": int(churn_pairs + sweep_pairs),
        "cache_decided": int(cache_decided),
    }, outliers


def test_repair_beats_drop_and_baseline(workload):
    base, extra, r = workload
    repair, repair_outliers = _run_strategy(base, extra, r, "repair")
    drop, drop_outliers = _run_strategy(base, extra, r, "drop")

    # Exactness headline: bit-identical outlier sets in every round.
    assert repair_outliers.keys() == drop_outliers.keys()
    for round_no, per_round in repair_outliers.items():
        for key in per_round:
            assert np.array_equal(
                per_round[key], drop_outliers[round_no][key]
            ), (round_no, key)

    sweep_speedup = drop["sweep_seconds"] / max(repair["sweep_seconds"], 1e-12)
    total_speedup = drop["total_seconds"] / max(repair["total_seconds"], 1e-12)
    payload = {
        "description": "evidence repair vs cache-drop-and-recompute: "
                       "alternating churn rounds and r sweeps on a 10k L2 "
                       "workload",
        "records": [repair, drop],
        "sweep_pairs_ratio": round(
            drop["sweep_pairs"] / max(repair["sweep_pairs"], 1), 3
        ),
        "sweep_speedup": round(sweep_speedup, 3),
        "total_speedup": round(total_speedup, 3),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nrepair vs drop: sweep {sweep_speedup:.2f}x, total "
          f"{total_speedup:.2f}x, sweep pairs ratio "
          f"{payload['sweep_pairs_ratio']} (baseline written to {OUTPUT.name})")

    # The repaired sweeps must always do less distance work than the
    # recomputed ones (deterministic, scale-independent).
    assert repair["sweep_pairs"] < drop["sweep_pairs"], payload
    if int(round(N_FULL * bench_scale())) >= N_FULL and not os.environ.get(
        "REPRO_BENCH_NO_ASSERT"
    ):
        # Acceptance headline at full scale: repaired serving is the
        # cheap path, per sweep and end to end (churn + queries).
        assert sweep_speedup >= 1.5, payload
        assert total_speedup >= 1.0, payload
