"""Engine extension: cross-query reuse vs per-query reruns.

One 5-point ``r`` sweep (fixed ``k``) answered two ways over the same
prebuilt MRPG: five independent ``graph_dod`` calls vs one
``DetectionEngine.sweep``.  The runner verifies the outlier sets are
identical point-by-point; here we assert the headline — the engine must
be at least 2x faster on at least one suite, and never slower than the
naive path by more than noise on any.
"""


def test_engine_sweep_speedup(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("engine_sweep"), rounds=1, iterations=1
    )
    table = tables[0]
    assert table.rows, "engine_sweep produced no rows"
    speedups = {row["dataset"]: row["speedup"] for row in table.rows}
    # Headline: cross-query reuse wins at least 2x somewhere.
    assert max(speedups.values()) >= 2.0, speedups
    # And reuse never makes a sweep slower than rerunning from scratch
    # (0.8 tolerates timer noise on near-equal runs).
    assert all(s >= 0.8 for s in speedups.values()), speedups
    # The cache must be doing the deciding, not the graph.
    for row in table.rows:
        assert 0.0 < row["cache_decided_pct"] <= 100.0, row
