"""Figure 6: pre-processing time vs sampling rate (scalability in n).

Paper shape: every builder grows near-linearly in n (Theorems 2 and 4).
The sweep runs on a three-suite subset by default; set
``REPRO_BENCH_SUITES=all`` for the paper's full grid.
"""

from repro.harness import GRAPH_NAMES


def test_fig6_build_scalability(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("fig6"), rounds=1, iterations=1
    )
    table = tables[0]
    suites = sorted({row["dataset"] for row in table.rows})
    for suite in suites:
        rows = sorted(
            (r for r in table.rows if r["dataset"] == suite),
            key=lambda r: r["rate"],
        )
        lo, hi = rows[0], rows[-1]
        scale = hi["n"] / lo["n"]
        for builder in GRAPH_NAMES:
            # Near-linear: quadratic growth would give time ratios of
            # scale^2; allow generous slack above linear.
            ratio = hi[builder] / max(lo[builder], 1e-9)
            assert ratio < scale ** 2, (suite, builder, ratio, scale)
