"""Table 7: false positives after the filtering phase.

The quantity Theorem 1 says detection cost is made of.  Paper shape:
MRPG <= MRPG-basic <= KGraph, with NSW worst (or near-worst) — the
monotonic-path and connectivity machinery is what buys the reduction.
"""


def test_table7_false_positives(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("table7"), rounds=1, iterations=1
    )
    table = tables[0]
    for row in table.rows:
        assert row["mrpg"] <= row["kgraph"], row
        assert row["mrpg-basic"] <= row["kgraph"], row
        assert row["mrpg"] <= row["nsw"], row
