"""Shared benchmark configuration.

Every bench regenerates one table/figure of the paper via
``repro.harness.run_experiment`` and writes its formatted table under
``results/`` (override with ``REPRO_RESULTS_DIR``).  Graphs, datasets
and verifiers are cached across bench files by the harness, mirroring
the paper's offline/online split.

Scale knobs: ``REPRO_BENCH_SCALE`` (default 1.0) and
``REPRO_BENCH_SUITES`` (default: all suites for tables, a three-suite
subset for figure sweeps).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--build-workers",
        type=int,
        default=None,
        help="build every benchmark graph on the process-parallel path "
             "with this many workers (worker-count-invariant; default: "
             "the legacy sequential build)",
    )


@pytest.fixture(scope="session", autouse=True)
def _build_workers_option(request):
    """Route ``--build-workers`` to the harness via the env knob.

    The harness graph cache keys on the worker count, so a session
    mixing both build paths keeps them distinct.
    """
    workers = request.config.getoption("--build-workers")
    if workers is None:
        yield
        return
    previous = os.environ.get("REPRO_BUILD_WORKERS")
    os.environ["REPRO_BUILD_WORKERS"] = str(workers)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_BUILD_WORKERS", None)
        else:
            os.environ["REPRO_BUILD_WORKERS"] = previous


@pytest.fixture(scope="session")
def results_dir() -> str:
    path = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return str(path)


#: x-axis column per figure experiment (for ASCII chart rendering).
_FIGURE_X = {"fig6": "rate", "fig7": "rate", "fig8": "k", "fig9": "r",
             "fig10": "n_jobs"}


@pytest.fixture(scope="session")
def run_and_save(results_dir):
    """Run a named experiment once, persist and pretty-print its tables.

    Figure experiments additionally get an ASCII line-chart rendering
    saved as ``results/<fig>_chart.txt``.
    """
    from repro.harness import GRAPH_NAMES, render_figure, run_experiment

    def runner(name: str, **kwargs):
        tables = run_experiment(name, save_dir=results_dir, **kwargs)
        for table in tables:
            print("\n" + table.format())
            x_col = _FIGURE_X.get(table.exp_id)
            if x_col is not None:
                chart = render_figure(table, x_col, list(GRAPH_NAMES))
                chart_path = Path(results_dir) / f"{table.exp_id}_chart.txt"
                chart_path.write_text(chart + "\n", encoding="utf-8")
        return tables

    return runner
