"""Table 3: proximity-graph pre-processing time.

Paper shape: NNDescent+ makes MRPG-basic cheaper than (or comparable
to) KGraph; the full MRPG pays a modest premium over MRPG-basic for
exact K'-NN lists.  (The paper's "NSW slowest" finding is a
million-scale artifact of sequential insertion vs 48-thread NNDescent
and does not transfer to this single-threaded scale — see
EXPERIMENTS.md.)
"""


def test_table3_preprocessing(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("table3"), rounds=1, iterations=1
    )
    table = tables[0]
    for row in table.rows:
        # MRPG's extra phases must stay a bounded overhead over the
        # shared NNDescent+ backbone (paper: ~15-45% on most datasets).
        assert row["mrpg"] <= 2.5 * row["mrpg-basic"], row
        # Every build must finish; no NA at bench scale.
        assert all(row[b] is not None for b in ("nsw", "kgraph", "mrpg-basic", "mrpg"))
