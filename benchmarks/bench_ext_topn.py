"""Extension bench: graph-seeded top-n DOD.

Applies the paper's proximity-graph idea to the top-n ranking variant
(the original ORCA problem).  Seeding each object's k-NN bound from
its MRPG links makes ORCA's cutoff prune fire earlier: identical exact
ranking, strictly more pruned objects.
"""


def test_ext_topn_graph_seeding(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("ext_topn", suite="sift"), rounds=1, iterations=1
    )
    table = tables[0]
    rows = {row["variant"]: row for row in table.rows}
    plain = rows["orca (no graph)"]
    seeded = rows["orca + mrpg seeding"]
    assert seeded["pruned_objects"] >= plain["pruned_objects"]
    assert seeded["pairs"] <= plain["pairs"] * 1.2  # seeding cost bounded
