"""Zero-copy data plane: shared-store memory/broadcast wins, out-of-core.

Three acceptance measurements for the storage layer:

* **resident memory** — the mutable sharded engine on the shared
  object store must pin ~one copy of the vector log regardless of
  shard count, where the list store pins one private copy per shard
  actor plus the parent's (``n_shards + 1`` replicas).  Accounting is
  exact, not sampled: the store reports its segment bytes, every
  worker reports the private bytes its dataset pins
  (``worker_store_nbytes`` — zero in shm mode), and the post-vacuum
  segment is compacted to exact fit.  Headline: shm resident bytes
  <= 1.2x the single-copy baseline at 4 shards.
* **broadcast bytes** — an insert broadcast in shm mode carries store
  metadata (name + offsets + generation, ~1e2 bytes) instead of the
  pickled object batch to every shard; measured by serialising
  exactly what crosses the pool, the metadata form must be >= 10x
  smaller.
* **out-of-core** — a memmapped dataset at least 2x larger than a
  hard allocation cap (``RLIMIT_DATA`` on a subprocess) must sweep to
  outlier sets bit-identical to the uncapped in-RAM run, while the
  same workload on the in-RAM path dies under the cap (proving the
  cap binds and the mapping, not the machine, is what fits).

Emits the machine-readable ``BENCH_store.json`` at the repo root with
:func:`hardware_gate` audit fields; identity assertions (shm == list,
memmap == ram) always run, scaling assertions only at full scale.
``REPRO_BENCH_SCALE`` shrinks the cardinality for a quick pass.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import tempfile
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Dataset
from repro.datasets import blobs_with_outliers, calibrate_r
from repro.engine import MutableShardedDetectionEngine
from repro.harness import bench_scale, hardware_gate
from repro.io import create_memmap_store

N_FULL = 4_000
DIM = 32
N_SHARDS = 4
K_NEIGHBORS = 8
#: out-of-core leg: allocation cap and a store >= 2x larger.
CAP_BYTES = 96 * 1024 * 1024
OOC_DIM_FULL = 12_288
OOC_N_FULL = 2_048
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_store.json"


@pytest.fixture(scope="module")
def workload():
    n = max(400, int(round(N_FULL * bench_scale())))
    points = blobs_with_outliers(
        n + n // 4, dim=DIM, n_clusters=8, core_std=0.7, tail_std=2.2,
        tail_frac=0.06, center_spread=13.0, planted_frac=0.01,
        planted_spread=60.0, rng=42,
    )
    base, extra = points[:n], points[n:]
    r, _ = calibrate_r(Dataset(base, "l2"), K_NEIGHBORS, 0.01)
    return base, extra, float(r)


def _engine(store: str) -> MutableShardedDetectionEngine:
    return MutableShardedDetectionEngine(
        metric="l2", n_shards=N_SHARDS, workers=1, K=8, seed=0, store=store,
    )


class _BroadcastMeter:
    """Serialise exactly what one pool call ships to the shard actors."""

    def __init__(self, pool):
        self._pool = pool
        self._call = pool.call
        self.bytes_by_method: "dict[str, int]" = {}

    def install(self) -> None:
        def metered(method, shard_args=None, common=None):
            size = len(pickle.dumps((shard_args, common),
                                    protocol=pickle.HIGHEST_PROTOCOL))
            self.bytes_by_method[method] = (
                self.bytes_by_method.get(method, 0) + size
            )
            return self._call(method, shard_args=shard_args, common=common)

        self._pool.call = metered

    def remove(self) -> None:
        self._pool.call = self._call


def _run_store(store: str, base, extra, r):
    """One churn pass; returns (record, observable outputs)."""
    engine = _engine(store)
    try:
        engine.bulk_load(base)
        meter = _BroadcastMeter(engine._pool)
        meter.install()
        t0 = time.perf_counter()
        ids = engine.insert(extra)
        insert_s = time.perf_counter() - t0
        meter.remove()
        victims = engine.active_ids()[:: max(2, len(base) // 64)]
        engine.remove(victims.tolist())
        outliers_pre = engine.detect(r, K_NEIGHBORS).outliers
        stats_pre = engine.store_stats()
        worker_pre = engine.worker_store_nbytes()
        remap = engine.vacuum()
        outliers_post = engine.detect(r, K_NEIGHBORS).outliers
        stats_post = engine.store_stats()
        worker_post = engine.worker_store_nbytes()
        single_copy = int(
            np.asarray(engine.live_objects(), dtype=np.float64).nbytes
        )
        record = {
            "store": store,
            "insert_seconds": round(insert_s, 6),
            "insert_broadcast_bytes": meter.bytes_by_method.get("ingest", 0),
            "resident_nbytes_pre_vacuum": int(
                stats_pre["resident_nbytes"] + sum(worker_pre)
            ),
            "resident_nbytes_post_vacuum": int(
                stats_post["resident_nbytes"] + sum(worker_post)
            ),
            "single_copy_nbytes": single_copy,
            "replicas": stats_post["replicas"],
        }
        outputs = {
            "ids": ids.tolist(),
            "outliers_pre": outliers_pre.tolist(),
            "remap": remap.tolist(),
            "outliers_post": outliers_post.tolist(),
        }
        return record, outputs
    finally:
        engine.close()


_CHILD_SWEEP = textwrap.dedent("""\
    import json, resource, sys
    sys.path.insert(0, {src!r})
    import numpy as np
    from repro.engine import create_engine
    from repro.io import open_memmap_dataset

    resource.setrlimit(resource.RLIMIT_DATA, ({cap}, {cap}))
    dataset = open_memmap_dataset({path!r}, "l2")
    with create_engine(dataset, seed=3, K=8, batch_size=64) as engine:
        sweep = engine.sweep({r_grid!r}, k={k})
        out = {{f"{{r:.17g}}": sweep.result(r, {k}).outliers.tolist()
               for r in {r_grid!r}}}
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    print(json.dumps({{"outliers": out, "peak_rss": peak}}))
""")

_CHILD_RAM = textwrap.dedent("""\
    import resource, sys
    sys.path.insert(0, {src!r})
    import numpy as np
    resource.setrlimit(resource.RLIMIT_DATA, ({cap}, {cap}))
    try:
        arr = np.load({path!r})          # full in-RAM materialisation
        arr = arr + 0.0                  # force private pages
    except MemoryError:
        print("capped")
        sys.exit(0)
    print("fit", arr.nbytes)
""")


def _out_of_core_leg(tmpdir: str):
    """Sweep a memmapped store >= 2x an allocation cap; diff vs in-RAM."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    n = max(256, int(round(OOC_N_FULL * bench_scale())))
    points = blobs_with_outliers(
        n, dim=OOC_DIM_FULL, n_clusters=6, core_std=0.7, tail_std=2.0,
        tail_frac=0.05, center_spread=12.0, planted_frac=0.01,
        planted_spread=50.0, rng=7,
    )
    path = os.path.join(tmpdir, "ooc.npy")
    create_memmap_store(path, points, "l2")
    file_bytes = os.path.getsize(path)

    dataset = Dataset(points, "l2")
    # calibrate_r's kNN pass is wall-clock prohibitive at this width; a
    # pairwise-distance quantile picks an equally serviceable radius.
    gen = np.random.default_rng(0)
    qa = gen.integers(0, n, size=1500)
    qb = gen.integers(0, n, size=1500)
    keep = qa != qb
    r = float(np.quantile(dataset.pair_dist(qa[keep], qb[keep]), 0.10))
    r_grid = [0.95 * r, r, 1.05 * r]
    from repro.engine import create_engine

    with create_engine(dataset, seed=3, K=8, batch_size=64) as engine:
        sweep = engine.sweep(r_grid, k=K_NEIGHBORS)
        ram_out = {f"{rr:.17g}": sweep.result(rr, K_NEIGHBORS).outliers.tolist()
                   for rr in r_grid}

    env = dict(os.environ, PYTHONPATH=src)
    capped = subprocess.run(
        [sys.executable, "-c",
         _CHILD_SWEEP.format(src=src, cap=CAP_BYTES, path=path,
                             r_grid=r_grid, k=K_NEIGHBORS)],
        capture_output=True, text=True, env=env, timeout=1800,
    )
    control = subprocess.run(
        [sys.executable, "-c",
         _CHILD_RAM.format(src=src, cap=CAP_BYTES, path=path)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert capped.returncode == 0, capped.stderr[-2000:]
    child = json.loads(capped.stdout)
    record = {
        "store_file_bytes": int(file_bytes),
        "cap_bytes": CAP_BYTES,
        "file_over_cap": round(file_bytes / CAP_BYTES, 3),
        "n": n,
        "dim": OOC_DIM_FULL,
        "child_peak_rss": int(child["peak_rss"]),
        "identical_to_ram": child["outliers"] == ram_out,
        "ram_path_under_cap": control.stdout.strip(),
    }
    return record, child["outliers"], ram_out


def test_store_baseline(workload):
    base, extra, r = workload
    records = {}
    outputs = {}
    for store in ("shm", "list"):
        records[store], outputs[store] = _run_store(store, base, extra, r)
    # Identity first: the stores must be indistinguishable in answers.
    assert outputs["shm"] == outputs["list"]

    with tempfile.TemporaryDirectory() as tmpdir:
        ooc, ooc_child, ooc_ram = _out_of_core_leg(tmpdir)
    assert ooc["identical_to_ram"], (ooc_child, ooc_ram)

    shm, lst = records["shm"], records["list"]
    memory_ratio = shm["resident_nbytes_post_vacuum"] / max(
        shm["single_copy_nbytes"], 1
    )
    list_ratio = lst["resident_nbytes_post_vacuum"] / max(
        lst["single_copy_nbytes"], 1
    )
    broadcast_ratio = lst["insert_broadcast_bytes"] / max(
        shm["insert_broadcast_bytes"], 1
    )

    full_scale = int(round(N_FULL * bench_scale())) >= N_FULL
    gate = hardware_gate(
        full_scale=full_scale and ooc["file_over_cap"] >= 2.0,
        required_cores=1,
    )
    payload = {
        "description": "object stores: shm resident-memory and "
                       "broadcast-bytes wins over list replicas at "
                       f"{N_SHARDS} shards, plus an out-of-core memmap "
                       "sweep under a hard allocation cap",
        "cpu_count": os.cpu_count() or 1,
        "n": len(base),
        "dim": DIM,
        "metric": "l2",
        "k": K_NEIGHBORS,
        "r": r,
        "shards": N_SHARDS,
        "records": [shm, lst, ooc],
        "shm_memory_ratio_post_vacuum": round(memory_ratio, 3),
        "list_memory_ratio_post_vacuum": round(list_ratio, 3),
        "insert_broadcast_reduction": round(broadcast_ratio, 1),
        "hardware_gate": gate,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nshm resident {memory_ratio:.2f}x single copy (list "
          f"{list_ratio:.2f}x), insert broadcasts {broadcast_ratio:.0f}x "
          f"smaller, out-of-core {ooc['file_over_cap']:.1f}x over the cap "
          f"(baseline written to {OUTPUT.name})")

    if gate["assertion_ran"]:
        # The tentpole's acceptance numbers, asserted at full scale.
        assert memory_ratio <= 1.2, payload
        assert list_ratio >= 0.9 * (N_SHARDS + 1), payload
        assert broadcast_ratio >= 10.0, payload
        assert ooc["file_over_cap"] >= 2.0, payload
        assert ooc["ram_path_under_cap"] == "capped", payload
