"""Figure 7: detection time vs sampling rate.

Paper shape: detection cost grows with n for every graph, and MRPG
keeps outperforming the others at every rate.  Note that (as in the
paper) fixing r while shrinking n raises the outlier *ratio*, so small
rates are relatively harder per object.
"""

from repro.harness import GRAPH_NAMES, bench_scale


def test_fig7_detection_scalability(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("fig7"), rounds=1, iterations=1
    )
    table = tables[0]
    for row in table.rows:
        for builder in GRAPH_NAMES:
            assert row[builder] > 0, row
    if bench_scale() == 1.0:
        for suite in sorted({row["dataset"] for row in table.rows}):
            rows = [r for r in table.rows if r["dataset"] == suite]
            full = next(r for r in rows if r["rate"] == 1.0)
            # At the full (calibrated) rate MRPG is at least competitive
            # with every other graph (paper: clear winner).
            others = min(full[b] for b in GRAPH_NAMES if b != "mrpg")
            assert full["mrpg"] <= others * 2.0, (suite, full)
