"""Tables 1-2: dataset statistics and default parameters.

Regenerates the paper's Table 1 (cardinality / dimensionality / metric
per dataset) and Table 2 (default r, k and the exact measured outlier
ratio) for the scaled synthetic suites.
"""

from repro.harness import bench_scale


def test_table1_and_table2(benchmark, run_and_save):
    def run():
        t1 = run_and_save("table1")
        t2 = run_and_save("table2")
        return t1 + t2

    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    table2 = next(t for t in tables if t.exp_id == "table2")
    for row in table2.rows:
        assert row["outlier_ratio_pct"] > 0.0, row
        if bench_scale() == 1.0:
            # Table 2 invariant at calibration scale: small outlier
            # fractions, as in the paper (0.34% - 4.16%).  Sub-sampling
            # with a fixed r legitimately raises the ratio.
            assert row["outlier_ratio_pct"] < 10.0, row
