"""Table 5: DOD running time — the paper's headline comparison.

Eight exact algorithms on every suite.  Paper shape: the proximity
graph-based approach beats the state-of-the-art everywhere, and MRPG
is the overall winner thanks to the K'-NN verification shortcut.
A companion table reports distance computations (machine-independent).
"""

from repro.harness import bench_scale


def test_table5_running_time(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("table5"), rounds=1, iterations=1
    )
    time_table = next(t for t in tables if t.exp_id == "table5")
    pairs_table = next(t for t in tables if t.exp_id == "table5_pairs")

    for row in pairs_table.rows:
        # Graph filtering must compute far fewer distances than the
        # quadratic nested loop — this is scale-independent.
        assert row["mrpg"] < row["nested-loop"] / 2, row

    if bench_scale() == 1.0:
        # Wall-clock comparisons only mean something in the calibrated
        # sub-percent-outlier regime (fixed r at smaller n inflates the
        # outlier ratio and fixed overheads dominate).  NA entries
        # (REPRO_BENCH_BUDGET timeouts) are skipped: an NA baseline
        # lost by definition.
        for row in time_table.rows:
            if row["mrpg"] is None:
                continue
            if row["nested-loop"] is not None:
                assert row["mrpg"] < row["nested-loop"], row
            if row["vptree"] is not None:
                assert row["mrpg"] < row["vptree"], row
