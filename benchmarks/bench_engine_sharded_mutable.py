"""Mutable sharded engine perf trajectory: batched repair, repair vs refit.

The acceptance workload for the composed engine: an L2 collection is
bulk-loaded across shards, warmed with an ``r`` sweep, then serves
alternating churn rounds (removals + insertions) and sweep queries —
the read-heavy-serving-with-background-churn shape of the ROADMAP
north star, now over shard workers.  Two comparisons:

* **batched vs per-object repair** — the same churn applied as one
  ``insert``/``remove`` block per round (one ``pair_dist`` sweep per
  batch per shard, one repair broadcast) versus one engine call per
  object (the PR-4 mutation grain).  Same final state, same pairs;
  the block form wins on kernel count and broadcast round-trips.
* **repair vs refit** — the mutable engine repairing its shard caches
  through churn versus rebuilding a static sharded engine from
  scratch every round (the only pre-composition way to combine churn
  with multi-process serving).  Bit-identical sweeps (asserted); the
  headline is repair winning on wall clock and distance computations.

Emits the machine-readable ``BENCH_sharded_mutable.json`` at the repo
root.  Wall-clock assertions are hardware claims: they only apply at
full scale (and the multi-worker one only with >= 4 real cores), as in
``bench_engine_sharded.py``.  ``REPRO_BENCH_SCALE`` shrinks the
cardinality for a quick pass.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Dataset
from repro.datasets import blobs_with_outliers, calibrate_r
from repro.engine import MutableShardedDetectionEngine, ShardedDetectionEngine
from repro.harness import bench_scale

N_FULL = 6_000
DIM = 32
K_NEIGHBORS = 20
N_SHARDS = 4
CHURN_ROUNDS = 3
CHURN_FRAC = 0.005
GRAPH, DEGREE = "mrpg", 16
#: JSON baseline location (repo root, committed).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sharded_mutable.json"


@pytest.fixture(scope="module")
def workload():
    n = max(600, int(round(N_FULL * bench_scale())))
    points = blobs_with_outliers(
        n + n // 2, dim=DIM, n_clusters=10, core_std=0.6, tail_std=2.2,
        tail_frac=0.06, center_spread=14.0, planted_frac=0.01,
        planted_spread=70.0, rng=42,
    )
    base, extra = points[:n], points[n:]
    dataset = Dataset(base, "l2")
    r, _ = calibrate_r(dataset, K_NEIGHBORS, 0.01)
    return base, extra, float(r)


def _fresh_engine(base, workers: int = 1) -> MutableShardedDetectionEngine:
    return MutableShardedDetectionEngine.fit(
        base, metric="l2", n_shards=N_SHARDS, workers=workers,
        graph=GRAPH, K=DEGREE, seed=0,
    )


def _churn_plan(base, extra):
    """Deterministic churn rounds: (victims, insert block) per round."""
    gen = np.random.default_rng(7)
    n = len(base)
    step = max(1, int(CHURN_FRAC * n))
    plan = []
    cursor = 0
    live = list(range(n))
    for _ in range(CHURN_ROUNDS):
        victims = gen.choice(live, size=step, replace=False).tolist()
        live = [v for v in live if v not in set(victims)]
        block = extra[cursor : cursor + step]
        plan.append((victims, block))
        cursor += step
    return plan


def _run_mutation_grain(base, extra, r, grain: str):
    """Warm engine, churn in the given grain, measure mutation cost."""
    grid = [r * 0.95, r, r * 1.05]
    engine = _fresh_engine(base)
    engine.sweep(grid, k=K_NEIGHBORS)  # warm evidence (not measured)
    churn_seconds = 0.0
    pairs_before = engine.pairs
    for victims, block in _churn_plan(base, extra):
        t0 = time.perf_counter()
        if grain == "batched":
            engine.remove(victims)
            engine.insert(block)
        else:
            for v in victims:
                engine.remove([v])
            for row in block:
                engine.insert(row[None, :])
        churn_seconds += time.perf_counter() - t0
    churn_pairs = engine.pairs - pairs_before
    final = engine.sweep(grid, k=K_NEIGHBORS)
    outliers = {key: res.outliers.copy() for key, res in final.results.items()}
    engine.close()
    return {
        "grain": grain,
        "churn_seconds": round(churn_seconds, 6),
        "churn_pairs": int(churn_pairs),
    }, outliers


def _run_repair(base, extra, r, workers: int):
    """Churn + sweep serving on one repairing mutable sharded engine."""
    grid = [r * 0.95, r, r * 1.05]
    engine = _fresh_engine(base, workers=workers)
    engine.sweep(grid, k=K_NEIGHBORS)  # warm (not measured)
    seconds = 0.0
    pairs_before = engine.pairs
    outliers = {}
    for round_no, (victims, block) in enumerate(_churn_plan(base, extra)):
        t0 = time.perf_counter()
        engine.remove(victims)
        engine.insert(block)
        sweep = engine.sweep(grid, k=K_NEIGHBORS)
        seconds += time.perf_counter() - t0
        outliers[round_no] = {
            key: res.outliers.copy() for key, res in sweep.results.items()
        }
    pairs = engine.pairs - pairs_before
    engine.close()
    return {
        "strategy": "repair",
        "workers": workers,
        "seconds": round(seconds, 6),
        "pairs": int(pairs),
    }, outliers


def _run_refit(base, extra, r, workers: int):
    """The pre-composition alternative: refit a static sharded engine
    from scratch after every churn round, then sweep."""
    grid = [r * 0.95, r, r * 1.05]
    mirror = _fresh_engine(base)  # tracks the live set only (not timed)
    seconds = 0.0
    pairs = 0
    outliers = {}
    for round_no, (victims, block) in enumerate(_churn_plan(base, extra)):
        mirror.remove(victims)
        mirror.insert(block)
        live = mirror.live_objects()
        keep = mirror.active_ids()
        t0 = time.perf_counter()
        dataset = Dataset(np.asarray(live), "l2")
        engine = ShardedDetectionEngine(
            dataset, n_shards=N_SHARDS, workers=workers,
            graph=GRAPH, K=DEGREE, rng=0,
        )
        sweep = engine.sweep(grid, k=K_NEIGHBORS)
        seconds += time.perf_counter() - t0
        pairs += dataset.counter.pairs + sweep.pairs
        outliers[round_no] = {
            key: keep[res.outliers] for key, res in sweep.results.items()
        }
        engine.close()
    mirror.close()
    return {
        "strategy": "refit",
        "workers": workers,
        "seconds": round(seconds, 6),
        "pairs": int(pairs),
    }, outliers


def test_sharded_mutable_baseline(workload):
    base, extra, r = workload
    records = []

    batched, batched_out = _run_mutation_grain(base, extra, r, "batched")
    per_object, per_object_out = _run_mutation_grain(base, extra, r, "per-object")
    records += [batched, per_object]
    # Same final state regardless of mutation grain.
    assert batched_out.keys() == per_object_out.keys()
    for key in batched_out:
        assert np.array_equal(batched_out[key], per_object_out[key]), key

    repair, repair_out = _run_repair(base, extra, r, workers=1)
    refit, refit_out = _run_refit(base, extra, r, workers=1)
    records += [repair, refit]
    # Exactness headline: bit-identical sweeps every round.
    for round_no, per_round in repair_out.items():
        for key in per_round:
            assert np.array_equal(
                per_round[key], refit_out[round_no][key]
            ), (round_no, key)

    cpus = os.cpu_count() or 1
    multi = {}
    if cpus >= 4:
        multi, _ = _run_repair(base, extra, r, workers=4)
        records.append(multi)

    batch_speedup = per_object["churn_seconds"] / max(
        batched["churn_seconds"], 1e-12
    )
    refit_speedup = refit["seconds"] / max(repair["seconds"], 1e-12)
    payload = {
        "description": "mutable sharded engine: batched vs per-object "
                       "repair, and churn+sweep serving via cache repair "
                       "vs per-round static refits",
        "cpu_count": cpus,
        "n": len(base),
        "dim": DIM,
        "metric": "l2",
        "graph": GRAPH,
        "K": DEGREE,
        "k": K_NEIGHBORS,
        "r": r,
        "shards": N_SHARDS,
        "churn_rounds": CHURN_ROUNDS,
        "churn_frac": CHURN_FRAC,
        "records": records,
        "batched_vs_per_object_speedup": round(batch_speedup, 3),
        "repair_vs_refit_speedup": round(refit_speedup, 3),
        "repair_vs_refit_pairs_ratio": round(
            refit["pairs"] / max(repair["pairs"], 1), 3
        ),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nbatched repair {batch_speedup:.2f}x vs per-object; repair "
          f"{refit_speedup:.2f}x vs refit ({payload['repair_vs_refit_pairs_ratio']}x "
          f"fewer pairs) on {cpus} cpus (baseline written to {OUTPUT.name})")

    full_scale = int(round(N_FULL * bench_scale())) >= N_FULL
    if full_scale and not os.environ.get("REPRO_BENCH_NO_ASSERT"):
        # Hardware claims, asserted only at full scale on this machine.
        assert refit_speedup >= 2.0, payload
        assert batch_speedup >= 1.2, payload
        if cpus >= 4 and multi:
            # With real cores, shard workers must not slow repair down.
            assert multi["seconds"] <= 1.5 * repair["seconds"], payload
