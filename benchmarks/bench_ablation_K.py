"""Design-choice ablation: graph degree K.

The paper fixes K=25 (40 on PAMAP2) without sweeping it; DESIGN.md
calls the choice out as the central space/quality trade.  This bench
measures the trade directly: index memory is linear in K (Theorem 5),
build time grows super-linearly (Theorem 4's K^2 log K), and false
positives fall (reachability improves).
"""


def test_ablation_K_sensitivity(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("ablation_k", suite="sift"), rounds=1, iterations=1
    )
    table = tables[0]
    rows = sorted(table.rows, key=lambda r: r["K"])
    # Memory grows with K (Theorem 5: O(nK)).
    assert rows[-1]["index_mb"] > rows[0]["index_mb"]
    # Reachability never degrades with a denser graph.
    assert rows[-1]["false_positives"] <= rows[0]["false_positives"]
