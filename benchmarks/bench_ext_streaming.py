"""Extension bench: sliding-window monitoring vs recompute-per-report.

The dynamic-data substrate the paper's §2 defers to: exact-STORM-style
incremental neighbor accounting against quadratic window
recomputation.  Identical reports, amortized cost.
"""


def test_ext_streaming_window(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("ext_streaming", suite="glove"), rounds=1, iterations=1
    )
    table = tables[0]
    rows = {row["strategy"]: row for row in table.rows}
    # One incremental pass must not exceed the recompute strategy's
    # distance work (each arrival ranges the window once; recomputation
    # does it once per member per report).
    assert rows["incremental monitor"]["pairs"] <= rows["recompute per report"]["pairs"]
