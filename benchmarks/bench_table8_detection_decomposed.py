"""Table 8: filtering vs verification time on the Glove-like suite.

Paper shape: MRPG(-basic) spends a little more on filtering than
NSW/KGraph but slashes verification; MRPG's exact-K'NN shortcut makes
its verification phase nearly free (2 orders of magnitude on Glove in
the paper).
"""


def test_table8_detection_decomposition(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("table8", suite="glove"), rounds=1, iterations=1
    )
    table = tables[0]
    verify = next(r for r in table.rows if r["phase"] == "verify")
    # MRPG's verification must undercut the graphs without exact lists.
    assert verify["mrpg"] <= verify["kgraph"] + 1e-9
    assert verify["mrpg"] <= verify["nsw"] + 1e-9
