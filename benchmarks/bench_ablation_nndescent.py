"""Design-choice ablation: NNDescent+ vs plain NNDescent (§5.1).

The paper's Table 4 shows NNDescent+ beating NNDescent on Glove
(464s vs 924s) thanks to VP-tree-seeded initialisation and
update-skipping.  This bench reproduces that comparison: fewer total
updates at equal-or-better AKNN recall.
"""


def test_ablation_nndescent_plus(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("ablation_nndescent", suite="glove"),
        rounds=1, iterations=1,
    )
    table = tables[0]
    rows = {row["builder"]: row for row in table.rows}
    plain, plus = rows["nndescent"], rows["nndescent+"]
    # Seeded initialisation must save AKNN updates...
    assert plus["total_updates"] < plain["total_updates"]
    # ...without sacrificing graph quality.
    assert plus["recall"] > plain["recall"] - 0.05
