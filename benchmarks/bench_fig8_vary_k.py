"""Figure 8: impact of the count threshold k.

Paper shape: larger k means more traversal and more outliers, so every
method slows down; MRPG(-basic) stays the most robust thanks to
connectivity and monotonic paths.
"""


def test_fig8_vary_k(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("fig8"), rounds=1, iterations=1
    )
    table = tables[0]
    suites = sorted({row["dataset"] for row in table.rows})
    for suite in suites:
        rows = sorted(
            (r for r in table.rows if r["dataset"] == suite),
            key=lambda r: r["k"],
        )
        # Growing k cannot make the largest-k run faster than the
        # smallest-k run by more than noise (cost grows with k).
        assert rows[-1]["mrpg"] >= 0.3 * rows[0]["mrpg"], (suite, rows)
