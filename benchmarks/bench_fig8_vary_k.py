"""Figure 8: impact of the count threshold k, served from one engine.

Paper shape: larger k means more traversal and more outliers.  The
serving rewrite answers the whole k-grid from one ``DetectionEngine``
per graph, so per-point times are marginal costs under cross-query
reuse; the invariants worth asserting are the exactness-derived ones:
the outlier set only grows with k, and every builder agrees (checked
inside the runner).
"""


def test_fig8_vary_k(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("fig8"), rounds=1, iterations=1
    )
    table = tables[0]
    suites = sorted({row["dataset"] for row in table.rows})
    assert suites
    for suite in suites:
        rows = sorted(
            (r for r in table.rows if r["dataset"] == suite),
            key=lambda r: r["k"],
        )
        assert len(rows) >= 3, (suite, rows)
        # Outlier-set monotonicity: raising k can only add outliers.
        counts = [row["outliers"] for row in rows]
        assert counts == sorted(counts), (suite, counts)
        # Every grid point was actually served.
        for row in rows:
            assert row["mrpg"] > 0 and row["nsw"] > 0, row
