"""§6.2 ablation: Connect-SubGraphs and Remove-Detours effectiveness.

The paper builds three crippled MRPG variants on PAMAP2 and counts
filtering false positives: without both phases 11937, without
Connect-SubGraphs 4712, without Remove-Detours 9720, full MRPG 3986.
Shape: dropping either phase raises f; dropping both is worst.

At thousands of objects the default parameters are too easy for the
variants to differ, so the runner stresses reachability (K=8, k
doubled; see ``run_ablation``) — the regime §3 identifies as the hard
one (k > K).
"""


def test_ablation_mrpg_variants(benchmark, run_and_save):
    tables = benchmark.pedantic(
        lambda: run_and_save("ablation", suite="deep"), rounds=1, iterations=1
    )
    table = tables[0]
    fp = {row["variant"]: row["false_positives"] for row in table.rows}
    # The robust direction: the full MRPG never does worse than the
    # fully crippled variant, and each single-phase variant sits at or
    # below the doubly-crippled one.
    assert fp["mrpg (full)"] <= fp["w/o both"]
    assert fp["w/o Connect-SubGraphs"] <= fp["w/o both"]
    assert fp["w/o Remove-Detours"] <= fp["w/o both"]
