"""Serving-tier perf trajectory: open-loop traffic through the coalescer.

Drives the :class:`QueryCoalescer` — the core of ``repro-dod serve``,
everything except socket parsing — with open-loop ``(r, k)`` traffic at
several concurrency levels over a warmed L2 engine.  Arrivals are
pre-scheduled (clients do not wait for each other), so the offered load
at level ``C`` is ``C`` times the engine's measured serial capacity:
queueing and coalescing behavior is what gets measured, not client
think time.

Per level the benchmark records p50/p99 request latency, sustained
throughput, and the coalescing counters (batches, engine queries,
requests answered from a shared result).  Every answer is asserted
bit-identical to a direct ``engine.query`` for the same ``(r, k)`` —
the serving tier may reorder and batch, never change results.

Emits the machine-readable ``BENCH_serving.json`` at the repo root.
The throughput-scaling assertion (coalescing keeps high-concurrency
throughput above serial) is a hardware claim gated by
:func:`hardware_gate`; the committed JSON records ``cores_available``
and ``assertion_ran`` so numbers from a 1-CPU container cannot
masquerade as a tested claim.

Scale knob: ``REPRO_BENCH_SCALE`` shrinks the cardinality for a quick
pass.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import Dataset
from repro.datasets import blobs_with_outliers, calibrate_r
from repro.engine import create_engine
from repro.harness import bench_scale, hardware_gate
from repro.serving import QueryCoalescer, ServingConfig

N_FULL = 4_000
DIM = 16
K_NEIGHBORS = 12
GRAPH, DEGREE = "mrpg", 16
CONCURRENCY_LEVELS = (1, 4, 16, 64)
REQUESTS_PER_LEVEL = 96
WINDOW = 0.005
#: JSON baseline location (repo root, committed).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


@pytest.fixture(scope="module")
def served_engine():
    n = max(512, int(round(N_FULL * bench_scale())))
    points = blobs_with_outliers(
        n, dim=DIM, n_clusters=8, core_std=0.6, tail_std=2.2, tail_frac=0.06,
        center_spread=12.0, planted_frac=0.01, planted_spread=60.0, rng=42,
    )
    dataset = Dataset(points, "l2")
    r, _ = calibrate_r(dataset, K_NEIGHBORS, 0.01)
    engine = create_engine(dataset, graph=GRAPH, K=DEGREE, seed=0)
    yield engine, float(r)
    engine.close()


def _radius_grid(r: float) -> list[float]:
    """A small pool of radii clients draw from (mostly-warm traffic)."""
    return [round(r * f, 9) for f in (0.92, 1.0, 1.08)]


def _serial_latency(engine, radii: list[float]) -> float:
    """Mean warmed per-query seconds — sets the open-loop arrival rate."""
    for rv in radii:  # warm the evidence cache first
        engine.query(rv, K_NEIGHBORS)
    t0 = time.perf_counter()
    for rv in radii:
        engine.query(rv, K_NEIGHBORS)
    return max((time.perf_counter() - t0) / len(radii), 1e-5)


async def _drive_level(engine, radii, concurrency: int, interval: float):
    """Open-loop: request ``i`` is launched at ``i * interval``,
    regardless of how many are still in flight."""
    config = ServingConfig(window=WINDOW, max_batch=128,
                           max_queue=4096, default_deadline=120.0)
    latencies: list[float] = []
    answers: list[tuple[float, object]] = []
    gen = np.random.default_rng(concurrency)
    plan = [radii[int(i)] for i in gen.integers(0, len(radii),
                                                REQUESTS_PER_LEVEL)]

    async with QueryCoalescer(engine, config) as serving:

        async def client(i: int, rv: float) -> None:
            await asyncio.sleep(i * interval)
            t0 = time.perf_counter()
            res = await serving.query(rv, K_NEIGHBORS)
            latencies.append(time.perf_counter() - t0)
            answers.append((rv, res))

        t_start = time.perf_counter()
        await asyncio.gather(*[
            asyncio.create_task(client(i, rv)) for i, rv in enumerate(plan)
        ])
        makespan = time.perf_counter() - t_start
        stats = dict(serving.stats)
    return latencies, answers, makespan, stats


def test_serving_throughput_and_baseline(served_engine):
    engine, r = served_engine
    radii = _radius_grid(r)
    serial = _serial_latency(engine, radii)
    # Direct-engine oracle per (r, k) — the bit-exactness reference.
    oracle = {rv: engine.query(rv, K_NEIGHBORS).outliers for rv in radii}

    records = []
    for level in CONCURRENCY_LEVELS:
        interval = serial / level  # offered load = level x serial capacity
        latencies, answers, makespan, stats = asyncio.run(
            _drive_level(engine, radii, level, interval)
        )
        assert len(answers) == REQUESTS_PER_LEVEL
        for rv, res in answers:
            assert np.array_equal(res.outliers, oracle[rv]), rv
        lat = np.sort(np.asarray(latencies))
        records.append({
            "concurrency": level,
            "requests": REQUESTS_PER_LEVEL,
            "offered_rps": round(level / serial, 1),
            "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
            "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
            "throughput_rps": round(REQUESTS_PER_LEVEL / makespan, 1),
            "batches": stats["batches"],
            "engine_queries": stats["engine_queries"],
            "coalesced": stats["coalesced"],
            "max_batch": stats["max_batch"],
        })

    by_level = {rec["concurrency"]: rec for rec in records}
    top = max(CONCURRENCY_LEVELS)
    gate = hardware_gate(
        full_scale=int(round(N_FULL * bench_scale())) >= N_FULL,
        required_cores=2,
    )
    payload = {
        "description": "open-loop (r, k) traffic through the serving-tier "
                       "query coalescer over a warmed static engine",
        "n": engine.dataset.n,
        "dim": DIM,
        "metric": "l2",
        "graph": GRAPH,
        "K": DEGREE,
        "k": K_NEIGHBORS,
        "radii": radii,
        "window_ms": WINDOW * 1e3,
        "serial_latency_ms": round(serial * 1e3, 3),
        "cpu_count": gate["cores_available"],
        "records": records,
        "throughput_ratio_top_vs_serial": round(
            by_level[top]["throughput_rps"] / max(by_level[1]["throughput_rps"],
                                                  1e-9), 3
        ),
        **gate,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nserving: serial {serial * 1e3:.2f}ms/query; "
          + "; ".join(
              f"C={rec['concurrency']}: p50 {rec['p50_ms']}ms "
              f"p99 {rec['p99_ms']}ms {rec['throughput_rps']}rps"
              for rec in records)
          + f" (baseline written to {OUTPUT.name}; "
          f"assertion_ran={gate['assertion_ran']})")

    # Deterministic at any scale: under 64x offered load, identical
    # concurrent queries must actually collapse onto shared engine calls.
    assert by_level[top]["coalesced"] > 0, payload
    assert by_level[top]["engine_queries"] < REQUESTS_PER_LEVEL, payload
    if gate["assertion_ran"]:
        # Hardware headline: coalescing keeps saturated throughput at or
        # above serial capacity (batching amortizes, never degrades).
        assert payload["throughput_ratio_top_vs_serial"] >= 1.0, payload
