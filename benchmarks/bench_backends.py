"""Numeric-backend perf trajectory: float32 screen vs the numpy64 oracle.

Runs Algorithm 1's online phases over the 10k-object L2 acceptance
workload (same blobs/radius recipe as ``bench_filter_batched``) on an
MRPG, once per registered CPU backend, asserting bit-identical outlier
sets and emitting a machine-readable ``BENCH_backends.json`` at the
repo root — the perf baseline future PRs regress against.

Record fields: ``n, dim, metric, graph, K, backend, k, r,
filter_seconds, verify_seconds, seconds, filter_pairs, verify_pairs,
pairs, outliers, screen_calls, screened_pairs, rescreened_pairs,
screen_rate, rescreen_fraction``.  The payload adds two headlines —
``filter_verify_speedup`` (numpy64 over float32 on the graph_dod
filter+verify wall time; modest, because at k=20 the calibrated MRPG
walk retires sources after ~37 pairs each and the traversal machinery,
not the kernels, is most of the wall time) and ``kernel_speedup``
(same ratio on a bare bounded ``pair_dist`` sweep over the workload's
pair volume — the seam-level win that kernel-bound callers see) —
plus the ``hardware_gate`` audit fields so a committed JSON records
whether the speedup assertions actually ran.

Scale knob: ``REPRO_BENCH_SCALE`` shrinks the cardinality for a quick
pass (the speedup assertion only applies at full scale on enough
cores, and ``REPRO_BENCH_NO_ASSERT`` disables it outright).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Dataset, build_graph
from repro.core.dod import graph_dod
from repro.core.verify import Verifier
from repro.datasets import blobs_with_outliers, calibrate_r
from repro.harness import bench_scale
from repro.harness.workloads import hardware_gate

N_FULL = 10_000
DIM = 32
K_NEIGHBORS = 20
GRAPH_K = 16
#: CPU backends measured by the sweep (None is the numpy64 default).
BACKENDS = (None, "float32")
#: JSON baseline location (repo root, committed).
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backends.json"
#: Full-scale headlines: float32 must beat numpy64 by at least these
#: factors on the 10k L2 workload.  The end-to-end floor is modest on
#: purpose — graph_dod's filter phase is traversal-bound here (measured
#: ~1.2x) — while the bare bounded-sweep kernels carry the real win
#: (measured ~2.2x).
MIN_SPEEDUP = 1.05
MIN_KERNEL_SPEEDUP = 1.3


@pytest.fixture(scope="module")
def workload_10k():
    n = max(512, int(round(N_FULL * bench_scale())))
    points = blobs_with_outliers(
        n, dim=DIM, n_clusters=10, core_std=0.6, tail_std=2.2, tail_frac=0.06,
        center_spread=14.0, planted_frac=0.01, planted_spread=70.0, rng=42,
    )
    dataset = Dataset(points, "l2")
    r, _ = calibrate_r(dataset, K_NEIGHBORS, 0.01)
    graph = build_graph("mrpg", dataset, K=GRAPH_K, rng=0)
    return points, graph, float(r)


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _best_run(dataset, graph, r, repeats=3):
    """Fastest of ``repeats`` runs (phase timings from that run)."""
    verifier = Verifier(dataset, strategy="linear")
    best = None
    for _ in range(repeats):
        res = graph_dod(
            dataset.view(), graph, r, K_NEIGHBORS,
            verifier=verifier, mode="batched", batch_size=256,
        )
        if best is None or res.seconds < best.seconds:
            best = res
    return best


def test_backend_speedup_and_baseline(workload_10k):
    points, graph, r = workload_10k
    records = []
    runs = {}
    for backend in BACKENDS:
        dataset = Dataset(points, "l2", backend=backend)
        res = _best_run(dataset, graph, r)
        stats = dataset.backend_stats()
        name = stats["backend"]
        runs[name] = res
        bounded = stats["screened_pairs"] + stats["rescreened_pairs"]
        records.append({
            "n": dataset.n,
            "dim": DIM,
            "metric": "l2",
            "graph": "mrpg",
            "K": GRAPH_K,
            "backend": name,
            "k": K_NEIGHBORS,
            "r": r,
            "filter_seconds": round(res.phases["filter"], 6),
            "verify_seconds": round(res.phases["verify"], 6),
            "seconds": round(res.seconds, 6),
            "filter_pairs": res.phase_pairs["filter"],
            "verify_pairs": res.phase_pairs["verify"],
            "pairs": res.pairs,
            "outliers": res.n_outliers,
            "screen_calls": stats["screen_calls"],
            "screened_pairs": stats["screened_pairs"],
            "rescreened_pairs": stats["rescreened_pairs"],
            # Fraction of bounded pair evaluations the screen decided /
            # had to hand back to float64.  numpy64 rows are all zeros.
            "screen_rate": round(stats["screened_pairs"] / bounded, 6)
            if bounded else 0.0,
            "rescreen_fraction": round(stats["rescreened_pairs"] / bounded, 6)
            if bounded else 0.0,
        })

    # Exactness headline: bit-identical outlier sets across backends.
    assert runs["float32"].same_outliers(runs["numpy64"])
    # The screen must actually have engaged, and the rescreen residue
    # must be a sliver — a fat residue means the error band is too wide
    # to ever win.
    f32 = next(rec for rec in records if rec["backend"] == "float32")
    assert f32["screened_pairs"] > 0
    assert f32["rescreen_fraction"] < 0.05, f32["rescreen_fraction"]

    def fv(res):
        return res.phases["filter"] + res.phases["verify"]

    speedup = fv(runs["numpy64"]) / max(fv(runs["float32"]), 1e-12)

    # Seam-level sibling: the same pair volume through a bare bounded
    # sweep, without the traversal machinery around it.
    n_pairs = max(10_000, records[0]["filter_pairs"])
    gen = np.random.default_rng(7)
    a = gen.integers(0, records[0]["n"], size=n_pairs)
    b = gen.integers(0, records[0]["n"], size=n_pairs)
    kernel_records = []
    kernel_seconds = {}
    for backend in BACKENDS:
        dataset = Dataset(points, "l2", backend=backend)
        view = dataset.view()
        best = min(
            _timed(lambda: view.pair_dist(a, b, bound=r)) for _ in range(3)
        )
        name = dataset.backend_name
        kernel_seconds[name] = best
        kernel_records.append(
            {"backend": name, "pairs": n_pairs, "r": r,
             "seconds": round(best, 6)}
        )
    kernel_speedup = kernel_seconds["numpy64"] / max(
        kernel_seconds["float32"], 1e-12
    )

    gate = hardware_gate(
        full_scale=int(round(N_FULL * bench_scale())) >= N_FULL,
        required_cores=1,
    )
    payload = {
        "description": "numpy64 vs float32-screened numeric backend "
                       "(graph_dod online phases, bit-identical answers)",
        "records": records,
        "kernel_records": kernel_records,
        "filter_verify_speedup": round(speedup, 3),
        "kernel_speedup": round(kernel_speedup, 3),
        "hardware_gate": gate,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nfloat32 filter+verify speedup: {speedup:.2f}x, "
          f"bounded-kernel speedup: {kernel_speedup:.2f}x, "
          f"rescreen fraction {f32['rescreen_fraction']:.4%} "
          f"(baseline written to {OUTPUT.name})")

    if gate["assertion_ran"]:
        # Acceptance headlines at full scale: the screened backend beats
        # the exact one on the phases it accelerates, end to end and at
        # the kernel level.
        assert speedup >= MIN_SPEEDUP, speedup
        assert kernel_speedup >= MIN_KERNEL_SPEEDUP, kernel_speedup
