"""ML pre-processing: remove noisy training objects before learning.

The paper's introduction motivates DOD as training-set noise removal:
"the performances of models tend to be affected by outliers" (§1).
This example builds a labelled Gaussian-blob classification task,
injects label-free *feature noise* (corrupted rows), cleans the
training set with the exact DOD pipeline, and shows that a simple
1-nearest-neighbor classifier gets more accurate after cleaning.

Run:  python examples/noise_removal_pipeline.py
"""

import os

import numpy as np

from repro import DODetector

N_PER_CLASS = int(os.environ.get("REPRO_EXAMPLE_N", "900")) // 3
NOISE_FRACTION = 0.04


def make_task(rng: np.random.Generator):
    """Three labelled clusters + corrupted feature rows in the train set."""
    centers = np.asarray(
        [[0.0, 0.0, 0.0, 0.0], [7.0, 7.0, 0.0, 0.0], [0.0, 7.0, 7.0, 0.0]]
    )
    train_x, train_y = [], []
    test_x, test_y = [], []
    for label, center in enumerate(centers):
        # Test points use a heavier tail so some fall between clusters,
        # where they are vulnerable to nearby noise.
        pts = center + rng.normal(0.0, 1.0, size=(N_PER_CLASS, 4))
        split = int(0.7 * N_PER_CLASS)
        train_x.append(pts[:split])
        train_y.append(np.full(split, label))
        test_x.append(center + rng.normal(0.0, 1.7, size=(N_PER_CLASS - split, 4)))
        test_y.append(np.full(N_PER_CLASS - split, label))
    train_x = np.concatenate(train_x)
    train_y = np.concatenate(train_y)
    # Corrupt a few training rows: they land in the sparse no-man's-land
    # between the clusters (distance outliers) with random labels, close
    # enough to steal 1-NN votes from boundary test points.
    n_noise = max(3, int(NOISE_FRACTION * train_x.shape[0]))
    noisy_rows = rng.choice(train_x.shape[0], size=n_noise, replace=False)
    train_x[noisy_rows] = rng.uniform(-2.0, 9.0, size=(n_noise, 4))
    train_y[noisy_rows] = rng.integers(0, 3, size=n_noise)
    return train_x, train_y, np.concatenate(test_x), np.concatenate(test_y)


def knn_accuracy(train_x, train_y, test_x, test_y) -> float:
    """1-NN accuracy with a plain vectorised scan (no sklearn needed)."""
    correct = 0
    for x, y in zip(test_x, test_y):
        diff = train_x - x
        nearest = int(np.argmin(np.einsum("ij,ij->i", diff, diff)))
        correct += int(train_y[nearest] == y)
    return correct / len(test_y)


def main() -> None:
    rng = np.random.default_rng(7)
    train_x, train_y, test_x, test_y = make_task(rng)
    before = knn_accuracy(train_x, train_y, test_x, test_y)
    print(f"training set: {train_x.shape[0]} rows (some corrupted)")
    print(f"1-NN accuracy before cleaning: {before:.3f}")

    # Clean: an object with < k neighbors within r is noise.
    detector = DODetector(metric="l2", graph="mrpg", K=12, seed=0)
    result = detector.fit_detect(train_x, r=3.0, k=8)
    print(result.summary())

    keep = np.ones(train_x.shape[0], dtype=bool)
    keep[result.outliers] = False
    after = knn_accuracy(train_x[keep], train_y[keep], test_x, test_y)
    print(f"removed {result.n_outliers} noisy objects "
          f"({100 * result.outlier_ratio:.2f}% of the training set)")
    print(f"1-NN accuracy after cleaning:  {after:.3f}")
    if after >= before:
        print("cleaning helped (or was neutral) — as the paper's motivation predicts")
    else:
        print("cleaning hurt on this draw — try another seed")


if __name__ == "__main__":
    main()
