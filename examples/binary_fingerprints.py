"""DOD over binary fingerprints (Hamming) and tag sets (Jaccard).

The paper's pitch is metric-space generality (§1): any data type with
a metric works.  Two spaces beyond its evaluation: fixed-width binary
codes under Hamming distance (semantic hashes, chemical fingerprints)
and variable-size sets under Jaccard distance (tags, market baskets).

Run:  python examples/binary_fingerprints.py
"""

import os

import numpy as np

from repro import DODetector

N = int(os.environ.get("REPRO_EXAMPLE_N", "1000"))
BITS = 64


def make_fingerprints(rng: np.random.Generator) -> np.ndarray:
    """Fingerprint families: prototypes + few-bit mutations + noise."""
    prototypes = rng.integers(0, 2, size=(6, BITS))
    rows = []
    for _ in range(N - 8):
        base = prototypes[int(rng.integers(6))].copy()
        flips = rng.choice(BITS, size=int(rng.integers(1, 5)), replace=False)
        base[flips] ^= 1
        rows.append(base)
    rows.extend(rng.integers(0, 2, size=(8, BITS)))  # unrelated random codes
    return np.asarray(rows)


def make_baskets(rng: np.random.Generator) -> list[set]:
    """Shopping-basket-like sets drawn from themed catalogues."""
    themes = [list(range(t * 12, t * 12 + 12)) for t in range(5)]
    baskets = []
    for _ in range(N - 6):
        theme = themes[int(rng.integers(5))]
        size = int(rng.integers(3, 7))
        baskets.append(set(rng.choice(theme, size=size, replace=False).tolist()))
    for _ in range(6):  # cross-theme oddballs
        baskets.append(set(rng.choice(60, size=6, replace=False).tolist()))
    return baskets


def main() -> None:
    rng = np.random.default_rng(11)

    prints = make_fingerprints(rng)
    det = DODetector(metric="hamming", graph="mrpg", K=12, seed=0)
    res = det.fit_detect(prints, r=10, k=8)
    print("-- Hamming fingerprints --")
    print(res.summary())
    print(f"random codes sit ~{BITS // 2} bits from everything; "
          f"family members within a few bits — {res.n_outliers} codes flagged")

    baskets = make_baskets(rng)
    det = DODetector(metric="jaccard", graph="mrpg", K=12, seed=0)
    res = det.fit_detect(baskets, r=0.75, k=6)
    print("\n-- Jaccard baskets --")
    print(res.summary())
    flagged = [sorted(baskets[int(p)]) for p in res.outliers[:5]]
    for basket in flagged:
        print(f"  cross-theme basket: {basket}")


if __name__ == "__main__":
    main()
