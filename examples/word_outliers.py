"""Metric-space DOD beyond vectors: edit distance over strings.

The paper stresses that DOD works in *any* metric space (§1): this
example detects anomalous strings — long random noise among families of
related words — under Levenshtein distance, the paper's Words workload.
Applications: typo/garbage detection in token lists, finding "error or
unique sentences" (§1's NLP motivation).

Run:  python examples/word_outliers.py
"""

import os

from repro import DODetector
from repro.datasets import words_with_outliers

N = int(os.environ.get("REPRO_EXAMPLE_N", "800"))


def main() -> None:
    words = words_with_outliers(
        N, n_stems=max(8, N // 24), planted_frac=0.015, rng=3
    )
    print(f"{len(words)} words; samples: {sorted(words, key=len)[:4]} ...")

    # r=5 edits, k=8 relatives: same semantics as the paper's Words
    # defaults (r=5, k=15 at 466K words).
    detector = DODetector(metric="edit", graph="mrpg", K=12, seed=0)
    result = detector.fit_detect(words, r=5, k=8)
    print(result.summary())

    flagged = sorted((words[int(p)] for p in result.outliers), key=len)
    print("flagged strings (shortest first):")
    for w in flagged[:15]:
        print(f"  {w!r} (length {len(w)})")
    if result.n_outliers > 15:
        print(f"  ... and {result.n_outliers - 15} more")

    lengths = [len(words[int(p)]) for p in result.outliers]
    if lengths:
        print(
            f"mean flagged length {sum(lengths) / len(lengths):.1f} vs "
            f"corpus mean {sum(map(len, words)) / len(words):.1f} — the paper "
            "observes the same: Words outliers are long strings"
        )


if __name__ == "__main__":
    main()
