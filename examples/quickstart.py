"""Quickstart: exact distance-based outlier detection in three calls.

Builds an MRPG over a Gaussian-mixture point cloud with planted
outliers, runs the paper's Algorithm 1, and cross-checks the answer
against brute force.  Also demonstrates persisting the offline index.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import Dataset, DODetector, load_graph, save_graph
from repro.datasets import blobs_with_outliers
from repro.index import brute_force_outliers

N = int(os.environ.get("REPRO_EXAMPLE_N", "1200"))


def main() -> None:
    # 1. Data: clusters plus a handful of far-away points.
    points = blobs_with_outliers(
        N, dim=8, n_clusters=6, core_std=1.0, tail_std=3.0,
        planted_frac=0.01, rng=0,
    )

    # 2. Offline: build the index (any metric; L2 here).
    detector = DODetector(metric="l2", graph="mrpg", K=12, seed=0)
    detector.fit(points)
    print(f"fitted {detector}")
    print(f"index size: {detector.index_nbytes / 1024:.1f} KiB")

    # 3. Online: detect (r, k)-outliers.  r/k semantics are the paper's:
    # an outlier has fewer than k neighbors within distance r.
    r, k = 4.0, 12
    result = detector.detect(r=r, k=k)
    print(result.summary())
    print(f"first outliers: {result.outliers[:10].tolist()}")

    # The answer is exact — identical to the O(n^2) brute force.
    reference = brute_force_outliers(Dataset(points, "l2"), r, k)
    assert result.same_outliers(reference), "graph DOD must be exact"
    print(f"verified against brute force: {reference.size} outliers, exact match")

    # 4. The graph is an offline artifact: persist and reload it.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "mrpg.npz")
        save_graph(detector.graph_, path)
        reloaded = load_graph(path)
        print(f"graph round-trip: {reloaded.n} vertices, "
              f"{reloaded.n_links} links, {len(reloaded.exact_knn)} exact lists")


if __name__ == "__main__":
    main()
