"""How well does the exact (r, k) predicate recover planted anomalies?

The paper's motivation cites Campos et al.: distance-based detection
finds real anomalies in labelled data.  Here we hold ground truth (the
generator's planted outliers), sweep the radius r, and report the
precision/recall trade of the exact detector — the study a practitioner
runs to pick (r, k) for their domain.

Run:  python examples/detection_quality.py
"""

import os

import numpy as np

from repro import Dataset, DODetector
from repro.analysis import detection_quality, quality_over_r
from repro.datasets import blobs_with_outliers, sample_distance_quantiles

N = int(os.environ.get("REPRO_EXAMPLE_N", "1200"))


def main() -> None:
    points, truth = blobs_with_outliers(
        N, dim=10, n_clusters=6, core_std=1.0, tail_std=2.5,
        planted_frac=0.01, planted_spread=80.0, rng=0, return_labels=True,
    )
    dataset = Dataset(points, "l2")
    print(f"{N} objects, {int(truth.sum())} planted anomalies")

    # Candidate radii: low quantiles of the pairwise-distance sample.
    qs = sample_distance_quantiles(dataset, [0.002, 0.01, 0.05, 0.15, 0.4])
    k = 10
    print(f"\nsweep of r at k={k} (exact neighbor counts):")
    print(f"{'r':>10s} {'detected':>9s} {'precision':>10s} {'recall':>8s} {'F1':>7s}")
    best_r, best_f1 = None, -1.0
    for r, quality in quality_over_r(dataset, truth, k, qs):
        print(f"{r:10.3f} {quality.n_detected:9d} {quality.precision:10.3f} "
              f"{quality.recall:8.3f} {quality.f1:7.3f}")
        if quality.f1 > best_f1:
            best_r, best_f1 = r, quality.f1

    # Run the full (graph-accelerated, still exact) pipeline at the best r.
    det = DODetector(metric="l2", graph="mrpg", K=12, seed=0)
    result = det.fit_detect(points, r=best_r, k=k)
    quality = detection_quality(result, truth)
    print(f"\nbest radius r={best_r:.3f}: {result.summary()}")
    print(f"against ground truth: precision={quality.precision:.3f} "
          f"recall={quality.recall:.3f} F1={quality.f1:.3f}")
    print("(the predicate is exact; quality measures how well (r,k) "
          "matches the planted truth — two different questions)")


if __name__ == "__main__":
    main()
