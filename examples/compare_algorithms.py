"""All eight DOD algorithms on one workload, side by side.

Reproduces the paper's Table 5 story at example scale: the four
state-of-the-art baselines (§3) against the proximity-graph approach
with four different graphs (§4-§5).  All must return the identical
exact outlier set; they differ only in cost.

Run:  python examples/compare_algorithms.py [suite]
"""

import os
import sys
import time

from repro import Verifier, build_graph, graph_dod
from repro.baselines import dolphin_dod, nested_loop_dod, snif_dod, vptree_dod
from repro.datasets import load_suite

N = int(os.environ.get("REPRO_EXAMPLE_N", "1200"))


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "sift"
    dataset, spec = load_suite(suite, n=N, seed=0)
    r, k = spec.default_r, spec.default_k
    print(f"suite={suite} n={dataset.n} metric={spec.metric} r={r:g} k={k}")
    verifier = Verifier(dataset, strategy=spec.verify, rng=0)

    rows = []
    for name, fn in [
        ("nested-loop", nested_loop_dod),
        ("snif", snif_dod),
        ("dolphin", dolphin_dod),
        ("vptree", vptree_dod),
    ]:
        res = fn(dataset, r, k)
        rows.append((name, None, res))

    for builder in ("nsw", "kgraph", "mrpg-basic", "mrpg"):
        t0 = time.perf_counter()
        graph = build_graph(builder, dataset, K=12, rng=0)
        build_s = time.perf_counter() - t0
        res = graph_dod(dataset, graph, r, k, verifier=verifier)
        rows.append((builder, build_s, res))

    reference = rows[0][2]
    print(f"\n{'method':12s} {'build[s]':>9s} {'detect[s]':>10s} "
          f"{'dist.comps':>12s} {'outliers':>9s} {'exact':>6s}")
    for name, build_s, res in rows:
        build = f"{build_s:.3f}" if build_s is not None else "-"
        ok = "yes" if res.same_outliers(reference) else "NO!"
        print(f"{name:12s} {build:>9s} {res.seconds:>10.3f} "
              f"{res.pairs:>12,} {res.n_outliers:>9d} {ok:>6s}")

    fastest = min(rows, key=lambda row: row[2].seconds)
    slowest = max(rows, key=lambda row: row[2].seconds)
    print(f"\nfastest online: {fastest[0]} "
          f"({slowest[2].seconds / max(fastest[2].seconds, 1e-9):.1f}x faster "
          f"than {slowest[0]})")


if __name__ == "__main__":
    main()
