"""Finding unique/erroneous embeddings under angular distance.

§1 cites Larson et al.: DOD over sentence-embedding vectors finds error
or unique sentences, and "word (sentence) embedding vectors usually
exist in angular distance spaces".  This example runs the pipeline on
synthetic embedding directions (clusters of paraphrases + stray
vectors) and compares the filter quality of MRPG against KGraph — the
paper's Table 7 in miniature.

Run:  python examples/embedding_dedup.py
"""

import os

import numpy as np

from repro import Dataset, Verifier, build_graph, graph_dod
from repro.analysis import filtering_stats
from repro.datasets import sphere_blobs_with_outliers

N = int(os.environ.get("REPRO_EXAMPLE_N", "1500"))


def main() -> None:
    embeddings = sphere_blobs_with_outliers(
        N, dim=32, n_clusters=12, core_std=0.05, tail_std=0.3,
        planted_frac=0.008, rng=1,
    )
    dataset = Dataset(embeddings, "angular")
    r, k = 0.9, 12  # radians; an embedding with < 12 close paraphrases is "unique"
    verifier = Verifier(dataset, strategy="linear")

    results = {}
    for builder in ("kgraph", "mrpg"):
        graph = build_graph(builder, dataset, K=12, rng=0)
        result = graph_dod(dataset, graph, r, k, verifier=verifier)
        stats = filtering_stats(dataset, graph, r, k, verifier=verifier)
        results[builder] = result
        print(
            f"{builder:7s}: {result.n_outliers} unique embeddings in "
            f"{result.seconds:.3f}s; filter false positives = "
            f"{stats.false_positives}, direct outlier verdicts = "
            f"{stats.direct_outliers}"
        )

    assert results["kgraph"].same_outliers(results["mrpg"])
    print("both graphs return the identical exact answer; MRPG just "
          "spends less verification effort (the paper's Table 7 effect)")


if __name__ == "__main__":
    main()
