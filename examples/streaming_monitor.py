"""Monitoring a stream for outliers with a sliding window.

The paper's scope is static data (§2); real deployments often watch a
stream instead.  This example runs the exact sliding-window monitor on
a sensor-like stream in which a burst of anomalous readings appears
midway, and shows the monitor flagging them while they are in-window
and forgetting them after they expire.

Run:  python examples/streaming_monitor.py
"""

import os

import numpy as np

from repro import Dataset
from repro.streaming import SlidingWindowDOD

N = int(os.environ.get("REPRO_EXAMPLE_N", "900"))


def main() -> None:
    rng = np.random.default_rng(4)
    # Normal operation: readings around two regimes.
    normal = np.concatenate(
        [rng.normal(0.0, 1.0, size=(N // 2, 3)), rng.normal(6.0, 1.0, size=(N // 2, 3))]
    )
    rng.shuffle(normal)
    # A short fault burst midway: far-off readings.
    burst = rng.normal(40.0, 0.5, size=(6, 3))
    stream_objects = np.concatenate([normal[: N // 2], burst, normal[N // 2 :]])
    dataset = Dataset(stream_objects, "l2")

    window = max(60, N // 8)
    monitor = SlidingWindowDOD(dataset, r=3.0, k=6, window=window)
    burst_ids = set(range(N // 2, N // 2 + len(burst)))

    flagged_during, flagged_after = set(), set()
    for t in range(dataset.n):
        monitor.append(t)
        if t % (window // 4) == 0 and monitor.size == window:
            outliers = set(monitor.outliers().tolist())
            hits = outliers & burst_ids
            if hits:
                flagged_during |= hits
            elif t > N // 2 + window + len(burst):
                flagged_after |= outliers & burst_ids
            print(
                f"t={t:5d} window outliers: {len(outliers):3d} "
                f"(burst readings among them: {len(hits)})"
            )

    print(f"\nburst readings flagged while in-window: "
          f"{len(flagged_during)}/{len(burst)}")
    print("after the burst expired the monitor forgets it "
          "(no stale alerts) — window semantics, exactly")


if __name__ == "__main__":
    main()
