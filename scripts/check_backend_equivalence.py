#!/usr/bin/env python
"""Exactness gate: float32 screening backend vs the numpy64 oracle.

Builds every engine kind (static, sharded, mutable, mutable sharded)
twice — once on the exact ``numpy64`` default, once on the ``float32``
screening backend — over L2/L1/angular vector data plus the edit
metric, and fails (exit 1) whenever any outlier set differs between
the two, or from brute force over the same live objects.  Mutable
engines additionally run a deterministic churn trace (batched inserts,
random removals, interleaved detects) with the comparison repeated at
every step.  The gate also asserts the screen actually engaged
(``screened_pairs > 0`` on vector metrics — a silently disabled screen
would make this check vacuous) and that the optional GPU backends
degrade cleanly on a numpy-only install: ``cupy``/``torch`` must raise
:class:`~repro.exceptions.BackendError` at resolution, never fall back
to a silent substitute.  This is a correctness gate, not a timing gate
— deliberately small and deterministic so CI can run it on every push.

Usage: python scripts/check_backend_equivalence.py [--n N]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import Dataset
from repro.backends import resolve_backend
from repro.datasets import blobs_with_outliers, words_with_outliers
from repro.engine import create_engine
from repro.exceptions import BackendError
from repro.index import brute_force_outliers

ENGINE_CONFIGS = [
    ("static", {}),
    ("sharded", {"shards": 2, "workers": 1}),
    ("mutable", {"mutable": True}),
    ("mutable-sharded", {"mutable": True, "shards": 2, "workers": 1}),
]


def _radius(dataset: Dataset, quantile: float) -> float:
    gen = np.random.default_rng(0)
    a = gen.integers(0, dataset.n, size=1500)
    b = gen.integers(0, dataset.n, size=1500)
    keep = a != b
    return float(np.quantile(dataset.pair_dist(a[keep], b[keep]), quantile))


def _reference(engine, r: float, k: int) -> np.ndarray:
    """Brute-force outliers over the engine's live objects, stable ids."""
    if hasattr(engine, "live_dataset"):
        live = engine.live_dataset()
        return engine.active_ids()[brute_force_outliers(live, r, k)]
    return brute_force_outliers(engine.dataset.view(), r, k)


def _query(engine, r: float, k: int) -> np.ndarray:
    if hasattr(engine, "detect"):
        return engine.detect(r, k).outliers
    return engine.query(r, k).outliers


def check_static(objects, metric, r_values, k, label) -> list[str]:
    failures: list[str] = []
    for kind, config in ENGINE_CONFIGS[:2]:
        tag = f"{label}/{kind}"
        with create_engine(objects, metric=metric, seed=3, K=8,
                           **config) as e64, \
             create_engine(objects, metric=metric, seed=3, K=8,
                           backend="float32", **config) as e32:
            for r in r_values:
                a = _query(e64, r, k)
                b = _query(e32, r, k)
                if not np.array_equal(a, b):
                    failures.append(f"{tag}: float32 outliers differ at r={r}")
                ref = _reference(e32, r, k)
                if not np.array_equal(b, ref):
                    failures.append(f"{tag}: outliers differ from brute "
                                    f"force at r={r}")
            screened = e32.backend_stats()["screened_pairs"]
            if metric != "edit" and screened == 0:
                failures.append(f"{tag}: screen never engaged — gate vacuous")
            if metric == "edit" and screened != 0:
                failures.append(f"{tag}: screen engaged on a non-vector "
                                f"metric")
    return failures


def check_churn(objects, metric, r_values, k, label, dim) -> list[str]:
    failures: list[str] = []
    gen = np.random.default_rng(11)
    for kind, config in ENGINE_CONFIGS[2:]:
        tag = f"{label}/{kind}"
        with create_engine(objects, metric=metric, seed=3, K=8,
                           **config) as e64, \
             create_engine(objects, metric=metric, seed=3, K=8,
                           backend="float32", **config) as e32:
            for step in range(4):
                if metric == "edit":
                    batch = ["".join(gen.choice(list("abcd"),
                                                size=gen.integers(1, 8)))
                             for _ in range(8)]
                else:
                    batch = gen.normal(size=(8, dim)) * 3.0
                e64.insert(batch)
                e32.insert(batch)
                victims = gen.choice(
                    e64.active_ids(), size=4, replace=False
                ).tolist()
                e64.remove(victims)
                e32.remove(victims)
                for r in r_values:
                    a = _query(e64, r, k)
                    b = _query(e32, r, k)
                    if not np.array_equal(a, b):
                        failures.append(f"{tag}: churn step {step}: float32 "
                                        f"outliers differ at r={r}")
                ref = _reference(e32, r_values[0], k)
                if not np.array_equal(_query(e32, r_values[0], k), ref):
                    failures.append(f"{tag}: churn step {step}: outliers "
                                    f"differ from brute force")
            if metric != "edit" and e32.backend_stats()["screened_pairs"] == 0:
                failures.append(f"{tag}: screen never engaged — gate vacuous")
    return failures


def check_numpy_only_degradation() -> list[str]:
    """Optional backends must raise cleanly, never silently substitute."""
    failures: list[str] = []
    for name in ("cupy", "torch"):
        try:
            import importlib.util
            if importlib.util.find_spec(name) is not None:
                # Dependency present: the stub is allowed to construct.
                continue
            resolve_backend(name)
            failures.append(f"backend {name!r} resolved without its "
                            f"dependency installed")
        except BackendError:
            pass
    try:
        resolve_backend("no-such-backend")
        failures.append("unknown backend name resolved")
    except BackendError:
        pass
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=360,
                        help="vector dataset size")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    failures: list[str] = []
    checks = 0

    points = blobs_with_outliers(
        args.n, dim=6, n_clusters=4, core_std=0.8, tail_std=2.5,
        tail_frac=0.06, center_spread=12.0, planted_frac=0.015,
        planted_spread=60.0, rng=42,
    )
    for metric in ("l2", "l1", "angular"):
        dataset = Dataset(points, metric)
        r = _radius(dataset, 0.10)
        r_values = (r, 1.07 * r)
        failures += check_static(points, metric, r_values, 8, metric)
        failures += check_churn(points, metric, r_values, 8, metric, dim=6)
        checks += len(ENGINE_CONFIGS)

    words = words_with_outliers(140, n_stems=12, planted_frac=0.02, rng=7)
    failures += check_static(words, "edit", (2.0,), 4, "edit")
    failures += check_churn(list(words), "edit", (2.0,), 4, "edit", dim=0)
    checks += len(ENGINE_CONFIGS)

    failures += check_numpy_only_degradation()
    checks += 1

    elapsed = time.perf_counter() - t0
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        print(f"{len(failures)} backend-equivalence failure(s) in {checks} "
              f"configs ({elapsed:.1f}s)", file=sys.stderr)
        return 1
    print(f"float32 == numpy64 == brute force on all {checks} configs, "
          f"optional backends degrade cleanly ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
