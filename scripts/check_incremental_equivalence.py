#!/usr/bin/env python
"""Exactness gate: mutable engine vs scalar oracle after scripted churn.

Drives a :class:`MutableDetectionEngine` through a deterministic churn
trace (batched inserts, random removals, interleaved detects/sweeps,
a mid-trace rebuild) over L2/L1/edit datasets, and fails (exit 1)
whenever an answer differs from a *fresh* scalar ``graph_dod`` run on
the compacted dataset (itself cross-checked against brute force) — the
repair laws must never let an unsound bound through.  The sliding
window (which drives the same engine through pinned-radius repairs) is
checked against quadratic recomputation, and a warm mutable snapshot
must serve the same answers after a save/load round-trip.  This is a
correctness gate, not a timing gate — deliberately small and
deterministic so CI can run it on every push.

Usage: python scripts/check_incremental_equivalence.py [--n N]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import Dataset, build_graph, graph_dod
from repro.core.verify import Verifier
from repro.datasets import blobs_with_outliers, words_with_outliers
from repro.engine import MutableDetectionEngine
from repro.index import brute_force_outliers
from repro.streaming import SlidingWindowDOD, window_outliers_bruteforce


def oracle_mismatches(engine: MutableDetectionEngine, r, k, label: str) -> list[str]:
    """Engine detect vs fresh scalar graph_dod on compacted data vs brute."""
    failures: list[str] = []
    keep = engine.active_ids()
    objects = engine.live_objects()
    dataset = Dataset(
        np.asarray(objects) if engine.metric.is_vector else objects,
        engine.metric,
    )
    served = engine.detect(r, k)
    brute = keep[brute_force_outliers(dataset.view(), r, k)]
    graph = build_graph("kgraph", dataset, K=8, rng=0, clamp_K=True)
    fresh = graph_dod(
        dataset.view(), graph, r, k,
        verifier=Verifier(dataset, strategy="linear"), mode="scalar",
    )
    if not np.array_equal(keep[fresh.outliers], brute):
        failures.append(f"{label}: scalar oracle differs from brute force")
    if not np.array_equal(served.outliers, brute):
        failures.append(f"{label}: mutable engine differs at r={r:g} k={k}")
    return failures


def churn_trace(dataset_objects, metric, r, k, label: str) -> list[str]:
    """One full insert/remove/detect/sweep/rebuild trace for one dataset."""
    failures: list[str] = []
    n = len(dataset_objects)
    gen = np.random.default_rng(13)
    engine = MutableDetectionEngine(metric=metric, K=6, seed=0)
    step = max(8, n // 4)
    cursor = 0
    phase = 0
    while cursor < n:
        batch = dataset_objects[cursor : cursor + step]
        engine.insert(list(batch) if metric == "edit" else batch)
        cursor += step
        phase += 1
        if engine.n_active > 24:
            live = engine.active_ids()
            victims = gen.choice(live, size=live.size // 8, replace=False)
            engine.remove(victims.tolist())
        failures += oracle_mismatches(engine, r, k, f"{label}/phase{phase}")
        if phase == 2:
            engine.rebuild(renumber=False)
            failures += oracle_mismatches(
                engine, r, k, f"{label}/phase{phase}-rebuilt"
            )
    sweep = engine.sweep([r * 0.9, r, r * 1.1], k_grid=[max(1, k - 1), k])
    keep = engine.active_ids()
    objects = engine.live_objects()
    live_ds = Dataset(
        np.asarray(objects) if engine.metric.is_vector else objects, metric
    )
    for (rv, kv), res in sweep.results.items():
        brute = keep[brute_force_outliers(live_ds.view(), rv, kv)]
        if not np.array_equal(res.outliers, brute):
            failures.append(f"{label}: sweep differs at r={rv:g} k={kv}")

    # Snapshot round-trip: the repaired state must serve identically.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mutable.npz"
        reference = engine.detect(r, k)
        engine.save(path)
        warm = MutableDetectionEngine.load(path, engine.object_log())
        restored = warm.detect(r, k)
        if not np.array_equal(restored.outliers, reference.outliers):
            failures.append(f"{label}: snapshot round-trip changed the answer")
        if restored.pairs != 0:
            failures.append(
                f"{label}: warm restored detect cost {restored.pairs} pairs"
            )
        warm.close()
    engine.close()
    return failures


def window_trace(points, r, k, window: int, label: str) -> list[str]:
    """Engine-backed sliding window vs quadratic recomputation."""
    failures: list[str] = []
    dataset = Dataset(points, "l2")
    monitor = SlidingWindowDOD(dataset, r, k, window)
    stream = np.random.default_rng(3).integers(0, dataset.n, size=3 * window)
    for t, obj in enumerate(stream):
        monitor.append(int(obj))
        if t % 7 == 0:
            got = monitor.outliers()
            ref = window_outliers_bruteforce(
                dataset.view(), monitor.window_ids(), r, k
            )
            if not np.array_equal(np.unique(got), np.unique(ref)):
                failures.append(f"{label}: window differs at t={t}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=320, help="vector dataset size")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    failures: list[str] = []
    checks = 0

    points = blobs_with_outliers(
        args.n, dim=6, n_clusters=4, core_std=0.8, tail_std=2.5, tail_frac=0.06,
        center_spread=12.0, planted_frac=0.015, planted_spread=60.0, rng=42,
    )
    for metric in ("l2", "l1"):
        probe = Dataset(points, metric)
        gen = np.random.default_rng(0)
        a = gen.integers(0, probe.n, size=1200)
        b = gen.integers(0, probe.n, size=1200)
        keep = a != b
        r = float(np.quantile(probe.pair_dist(a[keep], b[keep]), 0.10))
        failures += churn_trace(points, metric, r, 6, metric)
        checks += 1

    words = words_with_outliers(150, n_stems=12, planted_frac=0.02, rng=7)
    failures += churn_trace(words, "edit", 3.0, 3, "edit")
    checks += 1

    probe = Dataset(points, "l2")
    gen = np.random.default_rng(0)
    a = gen.integers(0, probe.n, size=1200)
    b = gen.integers(0, probe.n, size=1200)
    keep = a != b
    r = float(np.quantile(probe.pair_dist(a[keep], b[keep]), 0.10))
    failures += window_trace(points, r, 4, window=40, label="l2/window")
    checks += 1

    elapsed = time.perf_counter() - t0
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        print(f"{len(failures)} equivalence failure(s) in {checks} traces "
              f"({elapsed:.1f}s)", file=sys.stderr)
        return 1
    print(f"mutable engine == scalar oracle == brute force on all {checks} "
          f"churn traces ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
