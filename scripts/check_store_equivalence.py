#!/usr/bin/env python
"""Exactness gate: every object store answers bit-identically.

The data plane added two storage modes: the growable shared-memory
object store (``store="shm"``, mutable sharded engines) and out-of-core
memmap datasets (:func:`repro.io.open_memmap_dataset`, static engines).
Neither is allowed to change a single answer.  This gate drives

* **shm vs list**: the mutable sharded engine twice over one
  deterministic churn trace (bulk load, batched inserts forcing a
  growth relocation, random removals, interleaved detects, a vacuum
  compaction epoch behind the pool barrier, a rebalance) — across
  {l2, angular} x workers {1, 2} x start methods {fork, spawn} — and
  fails whenever the two stores' outlier sets, ids or remaps differ,
  or either differs from brute force over the live objects;
* **memmap vs ram**: static engines (single and sharded) sweeping an
  ``r`` grid over a memmapped store vs the in-RAM dataset, across
  {l2, l1, angular} x backends {numpy64, float32} — chunk-at-a-time
  kernels and per-chunk float32 screening must stay bit-identical;
* **hygiene**: ``/dev/shm`` must hold no ``repro_*`` segment after
  every engine is closed.

This is a correctness gate, not a timing gate — deliberately small and
deterministic so CI can run it on every push.

Usage: python scripts/check_store_equivalence.py [--n N]
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import os
import sys
import tempfile
import time

import numpy as np

from repro import Dataset
from repro.datasets import blobs_with_outliers
from repro.engine import create_engine
from repro.engine.mutable_sharded import MutableShardedDetectionEngine
from repro.index import brute_force_outliers
from repro.io import create_memmap_store, open_memmap_dataset


def _repro_segments() -> "set[str]":
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("repro_")}
    except OSError:  # pragma: no cover - no tmpfs
        return set()


def _radius(dataset: Dataset, quantile: float) -> float:
    gen = np.random.default_rng(0)
    a = gen.integers(0, dataset.n, size=1500)
    b = gen.integers(0, dataset.n, size=1500)
    keep = a != b
    return float(np.quantile(dataset.pair_dist(a[keep], b[keep]), quantile))


def _churn_trace(engine, points, batches, r, k) -> list:
    """One deterministic churn trace; returns everything observable."""
    gen = np.random.default_rng(17)
    trace = []
    engine.bulk_load(points)
    for batch in batches:
        trace.append(engine.insert(batch).tolist())
        live = engine.active_ids()
        victims = gen.choice(live, size=max(1, live.size // 12),
                             replace=False)
        engine.remove(np.sort(victims).tolist())
        res = engine.detect(r, k)
        trace.append(res.outliers.tolist())
        ref = engine.active_ids()[
            brute_force_outliers(engine.live_dataset(), r, k)
        ]
        trace.append(("brute-match", bool(np.array_equal(res.outliers, ref))))
    trace.append(engine.vacuum().tolist())
    trace.append(engine.detect(r, k).outliers.tolist())
    if engine.n_shards > 1:
        engine.rebalance()
        trace.append(engine.detect(1.05 * r, k).outliers.tolist())
    return trace


def check_shm_store(points, metric, r, k) -> "tuple[list[str], int]":
    failures: list[str] = []
    checks = 0
    gen = np.random.default_rng(23)
    batches = [gen.normal(size=(20, points.shape[1])) * 3.0 + 0.1
               for _ in range(3)]
    start_methods = [m for m in ("fork", "spawn")
                     if m in mp.get_all_start_methods()]
    for workers in (1, 2):
        for start_method in start_methods:
            if workers == 1 and start_method != start_methods[0]:
                continue  # in-process actors never spawn
            tag = f"{metric}/shm/workers={workers}/{start_method}"
            checks += 1
            traces = {}
            for store in ("shm", "list"):
                engine = MutableShardedDetectionEngine(
                    metric=metric, n_shards=2, workers=workers, K=8,
                    seed=3, store=store, start_method=start_method,
                )
                try:
                    traces[store] = _churn_trace(engine, points, batches, r, k)
                    if store == "shm" and not engine.capabilities.zero_copy_store:
                        failures.append(f"{tag}: zero_copy_store flag unset")
                finally:
                    engine.close()
            if traces["shm"] != traces["list"]:
                failures.append(f"{tag}: shm and list traces differ")
            for store, trace in traces.items():
                if not all(ok for step, ok in
                           (t for t in trace if isinstance(t, tuple))):
                    failures.append(f"{tag}: {store} differs from brute force")
    return failures, checks


def check_memmap_store(points, metric, k) -> "tuple[list[str], int]":
    failures: list[str] = []
    checks = 0
    ram = Dataset(points, metric)
    r = _radius(ram, 0.10)
    r_grid = [0.93 * r, r, 1.07 * r]
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "store.npy")
        create_memmap_store(path, points, metric)
        for shards, workers in ((1, None), (2, 2)):
            for backend in (None, "float32"):
                tag = (f"{metric}/memmap/shards={shards}/"
                       f"backend={backend or 'numpy64'}")
                checks += 1
                mapped = open_memmap_dataset(path, metric, backend=backend)
                if mapped.store_kind != "memmap":
                    failures.append(f"{tag}: dataset not tagged memmap")
                with create_engine(ram, seed=3, K=8, shards=shards,
                                   workers=workers, backend=backend) as e_ram, \
                     create_engine(mapped, seed=3, K=8, shards=shards,
                                   workers=workers, backend=backend) as e_map:
                    sweep_ram = e_ram.sweep(r_grid, k=k)
                    sweep_map = e_map.sweep(r_grid, k=k)
                    for rr in r_grid:
                        a = sweep_ram.result(rr, k).outliers
                        b = sweep_map.result(rr, k).outliers
                        if not np.array_equal(a, b):
                            failures.append(
                                f"{tag}: outliers differ at r={rr:.4g}"
                            )
                    ref = brute_force_outliers(ram.view(), r_grid[0], k)
                    if not np.array_equal(
                        sweep_map.result(r_grid[0], k).outliers, ref
                    ):
                        failures.append(f"{tag}: differs from brute force")
    return failures, checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=260,
                        help="vector dataset size")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    before = _repro_segments()
    failures: list[str] = []
    checks = 0

    points = blobs_with_outliers(
        args.n, dim=6, n_clusters=4, core_std=0.8, tail_std=2.5,
        tail_frac=0.06, center_spread=12.0, planted_frac=0.015,
        planted_spread=60.0, rng=42,
    )
    # Shift off the origin so angular preparation never sees a zero row.
    points = points + 0.1

    for metric in ("l2", "angular"):
        dataset = Dataset(points, metric)
        r = _radius(dataset, 0.10)
        got, n = check_shm_store(points, metric, r, 8)
        failures += got
        checks += n
    for metric in ("l2", "l1", "angular"):
        got, n = check_memmap_store(points, metric, 8)
        failures += got
        checks += n

    leaked = _repro_segments() - before
    if leaked:
        failures.append(f"/dev/shm leak after close: {sorted(leaked)}")
    checks += 1

    elapsed = time.perf_counter() - t0
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        print(f"{len(failures)} store-equivalence failure(s) in {checks} "
              f"configs ({elapsed:.1f}s)", file=sys.stderr)
        return 1
    print(f"shm == list and memmap == ram on all {checks} configs, "
          f"/dev/shm clean ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
