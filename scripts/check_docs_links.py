#!/usr/bin/env python
"""Docs gate: every internal link, anchor and code reference must resolve.

Plain-markdown replacement for ``mkdocs build --strict``: walks
``docs/*.md`` plus the README, and fails (exit 1) when

* a relative markdown link points at a file that does not exist,
* a ``#fragment`` names a heading the target file does not contain
  (GitHub-style slugs, duplicate-suffix aware),
* a backticked repository path (``src/repro/...py``, ``benchmarks/...``,
  ``scripts/...``, ``tests/...``, ``docs/...md``) names a file that
  does not exist, or
* ``docs/paper_map.md`` stops covering a paper item the codebase
  implements (algorithms 1-5, sections 4-6, Lemma 1, Properties 1-3,
  the table/figure experiment drivers).

Usage: python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]

_LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
_CODE_PATH = re.compile(
    r"`((?:src/repro|benchmarks|scripts|tests|docs)/[\w/.-]+\.(?:py|md|json))`"
)
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp:")

#: items docs/paper_map.md must keep covering (regex -> description).
PAPER_MAP_REQUIRED = [
    (r"Algorithm 1", "Algorithm 1 (filter + verify)"),
    (r"Algorithm 2", "Algorithm 2 (Greedy-Counting)"),
    (r"Algorithm 3", "Algorithm 3 (VP-tree partitioning)"),
    (r"Algorithm 4", "Algorithm 4 (Connect-SubGraphs)"),
    (r"Algorithm 5", "Algorithm 5 (Remove-Detours)"),
    (r"§4", "section 4 (detection algorithm)"),
    (r"§5\.1", "section 5.1 (NNDescent+)"),
    (r"§5\.2", "section 5.2 (Connect-SubGraphs)"),
    (r"§5\.3", "section 5.3 (Remove-Detours)"),
    (r"§5\.4", "section 5.4 (Remove-Links)"),
    (r"§5\.5", "section 5.5 (verification shortcut)"),
    (r"§6", "section 6 (evaluation / parallelisation)"),
    (r"Lemma 1", "Lemma 1 (no false negatives)"),
    (r"Property 1", "Property 1 (connectivity)"),
    (r"Property 2", "Property 2 (monotonic paths)"),
    (r"Property 3", "Property 3 (exact K'-NN lists)"),
    (r"greedy_count_block", "batched traversal kernel mapping"),
    (r"classify_chunk_arrays", "vectorised §5.5 shortcut mapping"),
    (r"ShardedDetectionEngine", "shard-per-worker engine mapping"),
] + [
    (rf"bench_table{t}_", f"Table {t} driver") for t in (1, 3, 4, 5, 6, 7, 8)
] + [
    (rf"bench_fig{f}_", f"Figure {f} driver") for f in (6, 7, 8, 9, 10)
]


def github_slugs(text: str) -> set[str]:
    """Anchor slugs GitHub generates for every heading in ``text``."""
    seen: dict[str, int] = {}
    slugs: set[str] = set()
    for match in _HEADING.finditer(text):
        title = re.sub(r"`([^`]*)`", r"\1", match.group(2))
        slug = re.sub(r"[^\w\- ]", "", title.lower(), flags=re.UNICODE)
        slug = slug.replace(" ", "-")
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(ROOT)

    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        name, _, fragment = target.partition("#")
        dest = path if not name else (path.parent / name).resolve()
        if not dest.exists():
            problems.append(f"{rel}: broken link -> {target}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in github_slugs(dest.read_text(encoding="utf-8")):
                problems.append(f"{rel}: broken anchor -> {target}")

    for match in _CODE_PATH.finditer(text):
        if not (ROOT / match.group(1)).exists():
            problems.append(f"{rel}: code reference to missing file -> `{match.group(1)}`")
    return problems


def check_paper_map() -> list[str]:
    path = ROOT / "docs" / "paper_map.md"
    if not path.exists():
        return ["docs/paper_map.md is missing"]
    text = path.read_text(encoding="utf-8")
    return [
        f"docs/paper_map.md: no longer covers {label}"
        for pattern, label in PAPER_MAP_REQUIRED
        if not re.search(pattern, text)
    ]


def main() -> int:
    problems: list[str] = []
    for path in DOC_FILES:
        problems += check_file(path)
    problems += check_paper_map()
    if problems:
        for line in problems:
            print(f"DOCS: {line}", file=sys.stderr)
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    n_links = sum(
        len(_LINK.findall(p.read_text(encoding="utf-8"))) for p in DOC_FILES
    )
    print(
        f"docs ok: {len(DOC_FILES)} files, {n_links} links checked, "
        f"{len(PAPER_MAP_REQUIRED)} paper-map items covered"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
