"""Regenerate every experiment table in one go (CLI convenience).

Equivalent to ``repro-dod experiment all --save-dir results`` but with
per-experiment progress and timing, and continuing past failures.

Run:  python scripts/run_all_experiments.py [--scale 0.5] [--save-dir results]
"""

from __future__ import annotations

import argparse
import os
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--save-dir", default="results")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment ids")
    args = parser.parse_args()
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)

    from repro.harness import EXPERIMENTS, run_experiment

    names = args.only if args.only else sorted(EXPERIMENTS)
    failures = []
    for name in names:
        t0 = time.perf_counter()
        print(f"=== {name} ===", flush=True)
        try:
            for table in run_experiment(name, save_dir=args.save_dir):
                print(table.format())
        except Exception as exc:  # keep going; report at the end
            failures.append((name, exc))
            print(f"FAILED: {exc}")
        print(f"({time.perf_counter() - t0:.1f}s)\n", flush=True)
    if failures:
        print("failed experiments:")
        for name, exc in failures:
            print(f"  {name}: {exc}")
        return 1
    print(f"all {len(names)} experiments regenerated under {args.save_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
