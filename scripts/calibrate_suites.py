"""Calibrate the default (r, k) of each dataset suite.

Bisects on r (exact brute-force neighbor counts) so that each suite's
outlier ratio at its default cardinality lands near the paper's Table 2
ratio.  The resulting values are pinned into repro/datasets/suites.py.

Run:  python scripts/calibrate_suites.py [suite ...]
"""

from __future__ import annotations

import sys

from repro.datasets import (
    SUITES,
    calibrate_r,
    load_suite,
    outlier_ratio,
    sample_distance_quantiles,
)

# Paper Table 2 outlier ratios (targets).
TARGETS = {
    "deep": 0.0062,
    "glove": 0.0055,
    "hepmass": 0.0065,
    "mnist": 0.0034,
    "pamap2": 0.0061,
    "sift": 0.0104,
    "words": 0.0416,
}


def main() -> None:
    names = sys.argv[1:] or list(SUITES)
    for name in names:
        dataset, spec = load_suite(name, seed=0)
        q = sample_distance_quantiles(dataset, [0.001, 0.01, 0.1, 0.5, 0.9])
        print(f"\n=== {name} (n={dataset.n}, k={spec.default_k}) ===")
        print("  distance quantiles 0.1%/1%/10%/50%/90%:",
              " ".join(f"{v:.4g}" for v in q))
        current = outlier_ratio(dataset, spec.default_r, spec.default_k)
        print(f"  current r={spec.default_r:g} -> ratio {100 * current:.2f}%")
        r, ratio = calibrate_r(
            dataset,
            spec.default_k,
            TARGETS[name],
            lo=float(q[0]) * 0.5,
            hi=float(q[4]),
            iters=14,
        )
        print(f"  calibrated r={r:.6g} -> ratio {100 * ratio:.2f}% "
              f"(target {100 * TARGETS[name]:.2f}%)")


if __name__ == "__main__":
    main()
