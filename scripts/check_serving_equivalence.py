#!/usr/bin/env python
"""Exactness gate: the serving tier vs direct engine calls vs brute force.

Starts an :class:`EngineServer` (the ``repro-dod serve`` stack: HTTP
front-end, query coalescer, engine executor thread) over every engine
variant — static, sharded, mutable, mutable sharded — and drives it
with **concurrent** clients from multiple threads.  Fails (exit 1) on
any served outlier set that differs from a direct ``engine.query`` on
an identically-built twin engine (itself cross-checked against brute
force), on churn (HTTP insert/remove) results that differ from brute
force over the live objects, or on a deadline that does not surface as
a clean 504.  The serving tier may coalesce, reorder and batch;
answers must stay bit-identical.  This is a correctness gate, not a
timing gate — deliberately small and deterministic so CI can run it on
every push.

Usage: python scripts/check_serving_equivalence.py [--n N]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import Dataset
from repro.datasets import blobs_with_outliers
from repro.engine import create_engine
from repro.index import brute_force_outliers
from repro.serving import EngineServer, ServingClient, ServingClientError

ENGINE_KINDS = ("static", "sharded", "mutable", "mutable-sharded")
CLIENTS = 6
ROUNDS = 3


class ServerThread:
    """Run an EngineServer on a private event loop in a thread."""

    def __init__(self, engine, config=None):
        self.engine = engine
        self.config = config
        self.address = None
        self._stop = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve()), daemon=True
        )

    async def _serve(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        async with EngineServer(
            self.engine, port=0, config=self.config, close_engine=True
        ) as server:
            self.address = server.address
            self._ready.set()
            await self._stop.wait()

    def __enter__(self):
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server did not start")
        return self.address

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)


def make_engine(kind: str, points, *, k_degree=8, seed=0):
    dataset = Dataset(points, "l2")
    if kind == "static":
        return create_engine(dataset, K=k_degree, seed=seed)
    if kind == "sharded":
        return create_engine(dataset, K=k_degree, seed=seed,
                             shards=3, workers=1)
    if kind == "mutable":
        return create_engine(dataset, K=k_degree, seed=seed, mutable=True)
    return create_engine(dataset, K=k_degree, seed=seed, mutable=True,
                         shards=2, workers=1)


def radius_grid(points) -> list[float]:
    dataset = Dataset(points, "l2")
    gen = np.random.default_rng(0)
    a = gen.integers(0, dataset.n, size=1500)
    b = gen.integers(0, dataset.n, size=1500)
    keep = a != b
    r = float(np.quantile(dataset.pair_dist(a[keep], b[keep]), 0.10))
    return [r * 0.9, r, r * 1.1]


def check_concurrent_reads(kind, points, radii, k) -> list[str]:
    """Threaded clients hammering one server must match the twin engine."""
    failures: list[str] = []
    twin = make_engine(kind, points)
    expected = {}
    for rv in radii:
        served = twin.query(rv, k).outliers
        brute = brute_force_outliers(Dataset(points, "l2").view(), rv, k)
        if not np.array_equal(served, brute):
            failures.append(f"{kind}: twin engine differs from brute force "
                            f"at r={rv:g}")
        expected[rv] = [int(p) for p in served]
    twin.close()

    def hammer(worker: int) -> list[str]:
        bad = []
        client = ServingClient(*address)
        for round_no in range(ROUNDS):
            rv = radii[(worker + round_no) % len(radii)]
            got = client.query(rv, k)["outliers"]
            if got != expected[rv]:
                bad.append(f"{kind}: served outliers differ at r={rv:g} "
                           f"(client {worker}, round {round_no})")
        client.close()
        return bad

    with ServerThread(make_engine(kind, points)) as address:
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            for bad in pool.map(hammer, range(CLIENTS)):
                failures += bad
        # Deadline surface: an impossible deadline must be a clean 504.
        client = ServingClient(*address)
        try:
            client.query(radii[0], k, deadline=1e-6)
            failures.append(f"{kind}: 1us deadline did not expire")
        except ServingClientError as exc:
            if exc.status != 504:
                failures.append(f"{kind}: deadline surfaced as "
                                f"{exc.status}, want 504")
        client.close()
    return failures


def check_churn(kind, points, radii, k) -> list[str]:
    """HTTP insert/remove interleaved with reads must match brute force."""
    failures: list[str] = []
    n = len(points)
    extra = points[: n // 10] + 0.25
    with ServerThread(make_engine(kind, points)) as address:
        client = ServingClient(*address)
        ids = client.insert(extra.tolist())
        live = np.vstack([points, extra])
        for rv in radii:
            got = client.query(rv, k)["outliers"]
            want = brute_force_outliers(Dataset(live, "l2").view(), rv, k)
            if got != [int(p) for p in want]:
                failures.append(f"{kind}: post-insert outliers differ "
                                f"at r={rv:g}")
        client.remove(ids)
        for rv in radii:
            got = client.query(rv, k)["outliers"]
            want = brute_force_outliers(Dataset(points, "l2").view(), rv, k)
            if got != [int(p) for p in want]:
                failures.append(f"{kind}: post-remove outliers differ "
                                f"at r={rv:g}")
        stats = client.stats()
        if stats.get("n_live") != n:
            failures.append(f"{kind}: n_live={stats.get('n_live')} "
                            f"after churn, want {n}")
        client.close()
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=320,
                        help="vector dataset size")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    failures: list[str] = []
    checks = 0

    points = blobs_with_outliers(
        args.n, dim=6, n_clusters=4, core_std=0.8, tail_std=2.5,
        tail_frac=0.06, center_spread=12.0, planted_frac=0.015,
        planted_spread=60.0, rng=42,
    )
    radii = radius_grid(points)
    k = 8

    for kind in ENGINE_KINDS:
        failures += check_concurrent_reads(kind, points, radii, k)
        checks += 1
    for kind in ("mutable", "mutable-sharded"):
        failures += check_churn(kind, points, radii, k)
        checks += 1

    elapsed = time.perf_counter() - t0
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        print(f"{len(failures)} serving failure(s) in {checks} configs "
              f"({elapsed:.1f}s)", file=sys.stderr)
        return 1
    print(f"served == direct engine == brute force on all {checks} configs, "
          f"{CLIENTS} concurrent clients ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
