#!/usr/bin/env python
"""Exactness gate: mutable sharded engine vs every oracle, under churn.

Drives a :class:`MutableShardedDetectionEngine` through deterministic
churn traces (batched inserts, random removals, interleaved detects and
sweeps, mid-trace split/merge rebalancing) over L2/L1/edit datasets at
several shard counts, and fails (exit 1) whenever an answer differs
from

* the brute-force oracle over the compacted live objects,
* a *fresh* scalar ``graph_dod`` run on the same live data, or
* a single-process :class:`MutableDetectionEngine` driven through the
  **same** trace (the composition must not change a single bit).

One configuration additionally runs the multi-process worker backend
and demands bit-identical answers *and* identical distance-computation
counts to the in-process backend; a snapshot round-trip must serve the
same answers warm; the window-over-shards path is checked against
quadratic recomputation.  This is a correctness gate, not a timing
gate — deliberately small and deterministic so CI can run it on every
push.

Usage: python scripts/check_sharded_mutable_equivalence.py [--n N]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import Dataset, build_graph, graph_dod
from repro.core.verify import Verifier
from repro.datasets import blobs_with_outliers, words_with_outliers
from repro.engine import MutableDetectionEngine, MutableShardedDetectionEngine
from repro.index import brute_force_outliers
from repro.streaming import SlidingWindowDOD, window_outliers_bruteforce


def oracle_mismatches(engine, single, r, k, label: str) -> list[str]:
    """Sharded detect vs single-process engine vs scalar oracle vs brute."""
    failures: list[str] = []
    keep = engine.active_ids()
    objects = engine.live_objects()
    dataset = Dataset(
        np.asarray(objects) if engine.metric.is_vector else objects,
        engine.metric,
    )
    served = engine.detect(r, k)
    brute = keep[brute_force_outliers(dataset.view(), r, k)]
    graph = build_graph("kgraph", dataset, K=8, rng=0, clamp_K=True)
    fresh = graph_dod(
        dataset.view(), graph, r, k,
        verifier=Verifier(dataset, strategy="linear"), mode="scalar",
    )
    if not np.array_equal(keep[fresh.outliers], brute):
        failures.append(f"{label}: scalar oracle differs from brute force")
    if not np.array_equal(served.outliers, brute):
        failures.append(f"{label}: mutable sharded engine differs at r={r:g}")
    if single is not None:
        mirror = single.detect(r, k)
        if not np.array_equal(served.outliers, mirror.outliers):
            failures.append(
                f"{label}: sharded and single-process mutable engines differ"
            )
    return failures


def churn_trace(
    dataset_objects, metric, r, k, n_shards: int, label: str
) -> list[str]:
    """One insert/remove/detect/sweep/rebalance trace for one dataset."""
    failures: list[str] = []
    n = len(dataset_objects)
    gen = np.random.default_rng(13)
    engine = MutableShardedDetectionEngine(
        metric=metric, n_shards=n_shards, workers=1, K=6, seed=0
    )
    single = MutableDetectionEngine(metric=metric, K=6, seed=0)
    step = max(8, n // 4)
    cursor = 0
    phase = 0
    while cursor < n:
        batch = dataset_objects[cursor : cursor + step]
        payload = list(batch) if metric == "edit" else batch
        engine.insert(payload)
        single.insert(payload)
        cursor += step
        phase += 1
        if engine.n_active > 24:
            live = engine.active_ids()
            victims = gen.choice(live, size=live.size // 8, replace=False)
            engine.remove(victims.tolist())
            single.remove(victims.tolist())
        failures += oracle_mismatches(
            engine, single, r, k, f"{label}/phase{phase}"
        )
        if phase == 2:
            # Rebalancing epoch mid-trace: split the largest shard,
            # then fold the smallest back in.  Both must be invisible
            # in the answers.
            engine.split_shard()
            failures += oracle_mismatches(
                engine, single, r, k, f"{label}/phase{phase}-split"
            )
            engine.merge_shards()
            failures += oracle_mismatches(
                engine, single, r, k, f"{label}/phase{phase}-merged"
            )
    sweep = engine.sweep([r * 0.9, r, r * 1.1], k_grid=[max(1, k - 1), k])
    keep = engine.active_ids()
    objects = engine.live_objects()
    live_ds = Dataset(
        np.asarray(objects) if engine.metric.is_vector else objects, metric
    )
    for (rv, kv), res in sweep.results.items():
        brute = keep[brute_force_outliers(live_ds.view(), rv, kv)]
        if not np.array_equal(res.outliers, brute):
            failures.append(f"{label}: sweep differs at r={rv:g} k={kv}")

    # Snapshot round-trip: the repaired sharded state must serve
    # identically, and warm (zero distance computations).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mutable_sharded"
        reference = engine.detect(r, k)
        engine.save(path)
        warm = MutableShardedDetectionEngine.load(
            path, engine.object_log(), workers=1
        )
        restored = warm.detect(r, k)
        if not np.array_equal(restored.outliers, reference.outliers):
            failures.append(f"{label}: snapshot round-trip changed the answer")
        if restored.pairs != 0:
            failures.append(
                f"{label}: warm restored detect cost {restored.pairs} pairs"
            )
        warm.close()
    engine.close()
    single.close()
    return failures


def rebalance_transfer_trace(
    dataset_objects, metric, r, k, label: str
) -> list[str]:
    """Evidence transfer + foreign descent must be invisible under churn.

    Drives two 4-shard engines through the identical
    insert/remove/split/merge trace — one with the graph-assisted
    foreign descent and evidence-preserving rebalance on, one with
    both off — and fails if either ever differs from brute force over
    the live objects, or if a split preserves fewer than half of the
    affected shard's evidence entries (the transfer counters exist to
    prove the rebalance is repair-style, not reset-style).
    """
    failures: list[str] = []
    full = MutableShardedDetectionEngine(
        metric=metric, n_shards=4, workers=1, K=6, seed=0
    )
    plain = MutableShardedDetectionEngine(
        metric=metric, n_shards=4, workers=1, K=6, seed=0,
        foreign_descent=False, evidence_transfer=False,
    )

    def brute_check(tag: str) -> None:
        keep = full.active_ids()
        objects = full.live_objects()
        live_ds = Dataset(
            np.asarray(objects) if full.metric.is_vector else objects, metric
        )
        brute = keep[brute_force_outliers(live_ds.view(), r, k)]
        if not np.array_equal(full.detect(r, k).outliers, brute):
            failures.append(f"{tag}: descent+transfer engine differs from brute")
        if not np.array_equal(plain.detect(r, k).outliers, brute):
            failures.append(f"{tag}: plain engine differs from brute")

    n = len(dataset_objects)
    gen = np.random.default_rng(5)
    step = max(8, n // 3)
    cursor = 0
    phase = 0
    while cursor < n:
        batch = dataset_objects[cursor : cursor + step]
        payload = list(batch) if metric == "edit" else batch
        full.insert(payload)
        plain.insert(payload)
        cursor += step
        phase += 1
        if full.n_active > 24:
            live = full.active_ids()
            victims = gen.choice(live, size=live.size // 10, replace=False)
            full.remove(victims.tolist())
            plain.remove(victims.tolist())
        brute_check(f"{label}/phase{phase}")
        if phase == 1:
            full.split_shard()
            plain.split_shard()
            before, after = (
                full.last_transfer["before"], full.last_transfer["after"]
            )
            if before > 0 and after < 0.5 * before:
                failures.append(
                    f"{label}: split preserved {after}/{before} evidence "
                    f"entries (< 50%)"
                )
            if plain.last_transfer != {"before": 0, "after": 0}:
                failures.append(f"{label}: transfer-off engine moved evidence")
            brute_check(f"{label}/phase{phase}-split")
        if phase == 2:
            full.merge_shards()
            plain.merge_shards()
            brute_check(f"{label}/phase{phase}-merged")
    # A load-directed split (the rebalance(load_above=...) trigger) on
    # the hottest observed shard must be just as invisible.
    hot = int(np.argmax(full.shard_load()))
    if full.shard_sizes()[hot] >= 2:
        full.split_shard(hot)
        plain.split_shard(hot)
        brute_check(f"{label}/hot-split")
    if full.stats["phase_pairs"]["verify_descent"] == 0 < full.stats[
        "phase_pairs"
    ]["verify"]:
        failures.append(f"{label}: foreign descent never fired")
    full.close()
    plain.close()
    return failures


def process_backend_trace(points, r, k, label: str) -> list[str]:
    """The multi-process backend must match the in-process one exactly."""
    failures: list[str] = []
    serial = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=1, K=6, seed=0
    )
    procs = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=2, K=6, seed=0
    )
    for eng in (serial, procs):
        eng.insert(points[: points.shape[0] // 2])
        eng.remove(
            np.random.default_rng(3)
            .choice(points.shape[0] // 2, size=20, replace=False)
            .tolist()
        )
        eng.insert(points[points.shape[0] // 2 :])
    for factor in (0.9, 1.0, 1.1):
        a = serial.query(r * factor, k)
        b = procs.query(r * factor, k)
        if not np.array_equal(a.outliers, b.outliers):
            failures.append(f"{label}: process backend outliers differ x{factor}")
        if a.pairs != b.pairs:
            failures.append(
                f"{label}: process backend work differs x{factor} "
                f"({a.pairs} vs {b.pairs} pairs)"
            )
    procs.split_shard()
    keep = procs.active_ids()
    brute = keep[
        brute_force_outliers(Dataset(np.asarray(procs.live_objects()), "l2"), r, k)
    ]
    if not np.array_equal(procs.detect(r, k).outliers, brute):
        failures.append(f"{label}: post-split process backend differs")
    serial.close()
    procs.close()
    return failures


def window_trace(points, r, k, window: int, label: str) -> list[str]:
    """Sharded-engine-backed sliding window vs quadratic recomputation."""
    failures: list[str] = []
    dataset = Dataset(points, "l2")
    monitor = SlidingWindowDOD(dataset, r, k, window, shards=2, workers=1)
    stream = np.random.default_rng(3).integers(0, dataset.n, size=3 * window)
    for t, obj in enumerate(stream):
        monitor.append(int(obj))
        if t % 7 == 0:
            got = monitor.outliers()
            ref = window_outliers_bruteforce(
                dataset.view(), monitor.window_ids(), r, k
            )
            if not np.array_equal(np.unique(got), np.unique(ref)):
                failures.append(f"{label}: window differs at t={t}")
    monitor.close()
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=300, help="vector dataset size")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    failures: list[str] = []
    checks = 0

    points = blobs_with_outliers(
        args.n, dim=6, n_clusters=4, core_std=0.8, tail_std=2.5, tail_frac=0.06,
        center_spread=12.0, planted_frac=0.015, planted_spread=60.0, rng=42,
    )
    for metric in ("l2", "l1"):
        probe = Dataset(points, metric)
        gen = np.random.default_rng(0)
        a = gen.integers(0, probe.n, size=1200)
        b = gen.integers(0, probe.n, size=1200)
        keep = a != b
        r = float(np.quantile(probe.pair_dist(a[keep], b[keep]), 0.10))
        for n_shards in (2, 3):
            failures += churn_trace(
                points, metric, r, 6, n_shards, f"{metric}/S={n_shards}"
            )
            checks += 1
        failures += rebalance_transfer_trace(
            points, metric, r, 6, f"{metric}/transfer-S=4"
        )
        checks += 1

    words = words_with_outliers(140, n_stems=12, planted_frac=0.02, rng=7)
    failures += churn_trace(words, "edit", 3.0, 3, 2, "edit/S=2")
    checks += 1
    failures += rebalance_transfer_trace(words, "edit", 3.0, 3, "edit/transfer-S=4")
    checks += 1

    probe = Dataset(points, "l2")
    gen = np.random.default_rng(0)
    a = gen.integers(0, probe.n, size=1200)
    b = gen.integers(0, probe.n, size=1200)
    keep = a != b
    r = float(np.quantile(probe.pair_dist(a[keep], b[keep]), 0.10))
    failures += process_backend_trace(points, r, 8, "l2/process-backend")
    checks += 1
    failures += window_trace(points, r, 4, window=40, label="l2/window-sharded")
    checks += 1

    elapsed = time.perf_counter() - t0
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        print(f"{len(failures)} equivalence failure(s) in {checks} traces "
              f"({elapsed:.1f}s)", file=sys.stderr)
        return 1
    print(f"mutable sharded == single-process mutable == scalar oracle == "
          f"brute force on all {checks} churn traces ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
