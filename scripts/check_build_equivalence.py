#!/usr/bin/env python
"""Equivalence gate: parallel graph builds vs the serial reference.

Two claims are enforced, both as *bit-equality*, not tolerance:

1. **Worker-count invariance.** For every graph builder on the
   partitioned path (``mrpg``, ``mrpg-basic``, ``kgraph``) and every
   metric family (L2, L1, angular vectors; edit strings), the graph
   built with ``build_workers=W`` for W in {2, 4} — under both ``fork``
   and ``spawn`` start methods where available — is identical (CSR
   adjacency, pivot flags, exact-K'NN ids *and* float64 distance bits)
   to the ``build_workers=1`` in-process serial reference.

2. **Downstream exactness.** Outlier sets served over parallel-built
   graphs are bit-identical to brute force over the same data, for both
   the legacy sequential build (``build_workers=None``) and the
   parallel path — the graph only ever changes cost, never answers.

This is a correctness gate, not a timing gate — deliberately small and
deterministic so CI runs it on every push.

Usage: python scripts/check_build_equivalence.py [--n N]
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import sys
import time

import numpy as np

from repro import Dataset, graph_dod
from repro.datasets import blobs_with_outliers, words_with_outliers
from repro.graphs import build_graph, graphs_equal
from repro.index import brute_force_outliers

GRAPHS = ("mrpg", "mrpg-basic", "kgraph")
WORKER_COUNTS = (2, 4)


def _start_methods() -> "tuple[str, ...]":
    available = mp.get_all_start_methods()
    return tuple(m for m in ("fork", "spawn") if m in available)


def _build(graph, dataset, workers, start_method=None, seed=13, K=8):
    return build_graph(
        graph,
        dataset.view(),
        K=K,
        rng=np.random.default_rng(seed),
        build_workers=workers,
        build_start_method=start_method,
    )


def check_invariance(dataset: Dataset, label: str) -> "tuple[list[str], int]":
    failures: list[str] = []
    checks = 0
    for graph in GRAPHS:
        reference = _build(graph, dataset, workers=1)
        for workers in WORKER_COUNTS:
            for method in _start_methods():
                checks += 1
                built = _build(
                    graph, dataset, workers=workers, start_method=method
                )
                if not graphs_equal(reference, built):
                    failures.append(
                        f"{label}/{graph}: W={workers}/{method} diverged "
                        f"from the serial reference"
                    )
    return failures, checks


def check_downstream(
    dataset: Dataset, r: float, k: int, label: str
) -> "tuple[list[str], int]":
    failures: list[str] = []
    checks = 0
    ref = brute_force_outliers(dataset.view(), r, k)
    for graph in GRAPHS:
        for workers in (None, 1, 4):
            checks += 1
            g = _build(graph, dataset, workers=workers)
            res = graph_dod(dataset.view(), g, r, k)
            if not np.array_equal(np.sort(res.outliers), np.sort(ref)):
                failures.append(
                    f"{label}/{graph}: outliers at build_workers={workers} "
                    f"differ from brute force"
                )
    return failures, checks


def _radius(dataset: Dataset, quantile: float) -> float:
    gen = np.random.default_rng(0)
    a = gen.integers(0, dataset.n, size=1500)
    b = gen.integers(0, dataset.n, size=1500)
    keep = a != b
    return float(np.quantile(dataset.pair_dist(a[keep], b[keep]), quantile))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=300,
                        help="vector dataset size")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    failures: list[str] = []
    checks = 0

    points = blobs_with_outliers(
        args.n, dim=6, n_clusters=4, core_std=0.8, tail_std=2.5,
        tail_frac=0.06, center_spread=12.0, planted_frac=0.015,
        planted_spread=60.0, rng=42,
    )
    datasets = [
        ("l2", Dataset(points, "l2")),
        ("l1", Dataset(points, "l1")),
        ("angular", Dataset(points + 8.0, "angular")),
        (
            "edit",
            Dataset(
                words_with_outliers(130, n_stems=12, planted_frac=0.02, rng=7),
                "edit",
            ),
        ),
    ]
    for label, dataset in datasets:
        fails, n_checks = check_invariance(dataset, label)
        failures += fails
        checks += n_checks

    l2 = datasets[0][1]
    fails, n_checks = check_downstream(l2, _radius(l2, 0.10), 8, "l2")
    failures += fails
    checks += n_checks

    elapsed = time.perf_counter() - t0
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        print(
            f"{len(failures)} build-equivalence failure(s) in {checks} "
            f"checks ({elapsed:.1f}s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"parallel builds bit-identical to the serial reference and exact "
        f"downstream on all {checks} checks "
        f"(start methods: {', '.join(_start_methods())}; {elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
