#!/usr/bin/env python
"""Exactness gate: sharded engine vs single-process engine vs brute force.

Runs :class:`ShardedDetectionEngine` over small L2/L1/edit datasets x
graph builders x shard counts x partition strategies x execution modes
and fails (exit 1) on any outlier set that differs from the scalar
``graph_dod`` oracle (itself cross-checked against brute force), or on
warm re-queries that stop being pure cache hits.  One configuration
additionally runs the multi-process backend and demands bit-identical
answers *and* identical distance-computation counts to the in-process
backend.  This is a correctness gate, not a timing gate — deliberately
small and deterministic so CI can run it on every push.

Usage: python scripts/check_sharded_equivalence.py [--n N]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import Dataset, build_graph, graph_dod
from repro.core.verify import Verifier
from repro.datasets import blobs_with_outliers, words_with_outliers
from repro.engine.sharded import ShardedDetectionEngine
from repro.index import brute_force_outliers

GRAPHS = ("mrpg", "kgraph")
SHARD_PLANS = ((2, "contiguous"), (3, "permuted"))
MODES = ("scalar", "batched")


def check_config(dataset, graph_name, r_grid, k, label: str) -> list[str]:
    """All shard-plan/mode equivalence checks for one configuration."""
    failures: list[str] = []
    graph = build_graph(graph_name, dataset, K=8, rng=0)
    verifier = Verifier(dataset, strategy="linear")
    references = {}
    for r in r_grid:
        oracle = graph_dod(
            dataset.view(), graph, r, k, verifier=verifier, mode="scalar"
        )
        brute = brute_force_outliers(dataset.view(), r, k)
        if not np.array_equal(oracle.outliers, brute):
            failures.append(f"{label}: scalar oracle differs from brute force")
        references[r] = oracle.outliers
    for n_shards, strategy in SHARD_PLANS:
        for mode in MODES:
            tag = f"{label} S={n_shards}/{strategy}/{mode}"
            engine = ShardedDetectionEngine(
                dataset, n_shards=n_shards, workers=1, strategy=strategy,
                graph=graph_name, K=8, rng=0, mode=mode,
            )
            for r in r_grid:
                served = engine.query(r, k)
                if not np.array_equal(served.outliers, references[r]):
                    failures.append(f"{tag}: outlier set differs at r={r:g}")
                warm = engine.query(r, k)
                if warm.pairs != 0:
                    failures.append(
                        f"{tag}: warm re-query cost {warm.pairs} pairs at r={r:g}"
                    )
                if not np.array_equal(warm.outliers, references[r]):
                    failures.append(f"{tag}: warm outlier set differs at r={r:g}")
            engine.close()
    return failures


def check_foreign_descent(dataset, graph_name, r_grid, k, label: str) -> list[str]:
    """Graph-assisted phase C must be invisible in the answers.

    Runs a 4-shard engine through the v2 path (selective descent +
    per-shard exact-counting index), the linear-sweep baseline, and
    the descent-without-index mix over the same queries: all must
    return the brute-force outlier set bit-exactly, the v2 stages must
    actually fire (non-zero ``verify_descent``/``verify_index`` pairs
    with the sweep rounds never running), and warm re-queries must
    stay free.
    """
    failures: list[str] = []
    on = ShardedDetectionEngine(
        dataset, n_shards=4, workers=1, graph=graph_name, K=8, rng=0,
    )
    off = ShardedDetectionEngine(
        dataset, n_shards=4, workers=1, graph=graph_name, K=8, rng=0,
        foreign_descent=False,
    )
    mix = ShardedDetectionEngine(
        dataset, n_shards=4, workers=1, graph=graph_name, K=8, rng=0,
        foreign_index=False,
    )
    for r in r_grid:
        brute = brute_force_outliers(dataset.view(), r, k)
        a = on.query(r, k)
        b = off.query(r, k)
        c = mix.query(r, k)
        if not np.array_equal(a.outliers, brute):
            failures.append(f"{label}: v2 differs from brute at r={r:g}")
        if not np.array_equal(b.outliers, brute):
            failures.append(f"{label}: sweep-only differs from brute at r={r:g}")
        if not np.array_equal(c.outliers, brute):
            failures.append(
                f"{label}: descent-no-index differs from brute at r={r:g}"
            )
        warm = on.query(r, k)
        if warm.pairs != 0:
            failures.append(
                f"{label}: warm re-query after v2 cost {warm.pairs} pairs"
            )
    pp_off = off.stats["phase_pairs"]
    if pp_off["verify_descent"] != 0 or pp_off["verify_index"] != 0:
        failures.append(f"{label}: sweep-only engine still ran v2 stages")
    pp_on = on.stats["phase_pairs"]
    if pp_on["verify"]:
        if pp_on["verify_descent"] + pp_on["verify_index"] == 0:
            failures.append(f"{label}: v2 stages never fired")
        if pp_on["verify_sweep"] != 0:
            failures.append(f"{label}: v2 engine still fell back to sweeps")
    on.close()
    off.close()
    mix.close()
    return failures


def check_process_backend(dataset, r, k, label: str) -> list[str]:
    """The multi-process backend must match the in-process one exactly."""
    failures: list[str] = []
    serial = ShardedDetectionEngine(
        dataset, n_shards=4, workers=1, graph="mrpg", K=8, rng=0
    )
    procs = ShardedDetectionEngine(
        dataset, n_shards=4, workers=2, graph="mrpg", K=8, rng=0
    )
    for factor in (0.9, 1.0, 1.1):
        a = serial.query(r * factor, k)
        b = procs.query(r * factor, k)
        if not np.array_equal(a.outliers, b.outliers):
            failures.append(f"{label}: process backend outliers differ x{factor}")
        if a.pairs != b.pairs:
            failures.append(
                f"{label}: process backend work differs x{factor} "
                f"({a.pairs} vs {b.pairs} pairs)"
            )
    serial.close()
    procs.close()
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=380, help="vector dataset size")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    failures: list[str] = []
    checks = 0

    points = blobs_with_outliers(
        args.n, dim=6, n_clusters=4, core_std=0.8, tail_std=2.5, tail_frac=0.06,
        center_spread=12.0, planted_frac=0.015, planted_spread=60.0, rng=42,
    )
    for metric in ("l2", "l1"):
        dataset = Dataset(points, metric)
        gen = np.random.default_rng(0)
        a = gen.integers(0, dataset.n, size=1500)
        b = gen.integers(0, dataset.n, size=1500)
        keep = a != b
        r = float(np.quantile(dataset.pair_dist(a[keep], b[keep]), 0.10))
        for graph_name in GRAPHS:
            failures += check_config(
                dataset, graph_name, (r * 0.9, r), 8, f"{metric}/{graph_name}"
            )
            checks += 1
        failures += check_foreign_descent(
            dataset, "mrpg", (r * 0.9, r), 8, f"{metric}/descent-S=4"
        )
        checks += 1

    words = words_with_outliers(160, n_stems=12, planted_frac=0.02, rng=7)
    dataset = Dataset(words, "edit")
    for graph_name in GRAPHS:
        failures += check_config(dataset, graph_name, (2.0,), 4, f"edit/{graph_name}")
        checks += 1
    failures += check_foreign_descent(dataset, "kgraph", (2.0,), 4, "edit/descent-S=4")
    checks += 1

    dataset = Dataset(points, "l2")
    gen = np.random.default_rng(0)
    a = gen.integers(0, dataset.n, size=1500)
    b = gen.integers(0, dataset.n, size=1500)
    keep = a != b
    r = float(np.quantile(dataset.pair_dist(a[keep], b[keep]), 0.10))
    failures += check_process_backend(dataset, r, 8, "l2/process-backend")
    checks += 1

    elapsed = time.perf_counter() - t0
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        print(f"{len(failures)} equivalence failure(s) in {checks} configs "
              f"({elapsed:.1f}s)", file=sys.stderr)
        return 1
    print(f"sharded == single-process == brute force on all {checks} configs "
          f"({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
