#!/usr/bin/env python
"""Exactness gate: batched filtering/verification vs the scalar oracle.

Runs ``graph_dod`` in every mode over small L2/L1/edit datasets x all
graph builders x adversarial block sizes and fails (exit 1) on any
difference in outlier sets, filter verdicts, or sub-``k`` counts.  This
is a correctness gate, not a timing gate — it is deliberately small and
deterministic so CI can run it on every push.

Usage: python scripts/check_batched_equivalence.py [--n N]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import Dataset, build_graph
from repro.core.counting import classify_chunk_arrays
from repro.core.dod import graph_dod
from repro.core.verify import Verifier
from repro.datasets import blobs_with_outliers, words_with_outliers
from repro.index import brute_force_outliers

GRAPHS = ("mrpg", "mrpg-basic", "kgraph", "nsw")


def check_config(dataset, graph, r, k, label: str) -> list[str]:
    """All mode/block-size equivalence checks for one configuration."""
    failures: list[str] = []
    verifier = Verifier(dataset, strategy="linear")
    reference = brute_force_outliers(dataset.view(), r, k)
    scalar = graph_dod(dataset.view(), graph, r, k, verifier=verifier, mode="scalar")
    if not np.array_equal(scalar.outliers, reference):
        failures.append(f"{label}: scalar outliers differ from brute force")
    ids_s, cnt_s, code_s, ex_s = classify_chunk_arrays(
        dataset.view(), graph, np.arange(dataset.n), r, k, mode="scalar"
    )
    for batch_size in (1, 7, dataset.n):
        tag = f"{label} bs={batch_size}"
        batched = graph_dod(
            dataset.view(), graph, r, k,
            verifier=verifier, mode="batched", batch_size=batch_size,
        )
        if not np.array_equal(batched.outliers, scalar.outliers):
            failures.append(f"{tag}: batched outlier set differs")
        if batched.counts["candidates"] != scalar.counts["candidates"]:
            failures.append(f"{tag}: candidate set size differs")
        ids_b, cnt_b, code_b, ex_b = classify_chunk_arrays(
            dataset.view(), graph, np.arange(dataset.n), r, k,
            mode="batched", batch_size=batch_size,
        )
        if not np.array_equal(code_s, code_b):
            failures.append(f"{tag}: filter verdicts differ")
        sub_k = (cnt_s < k) | (cnt_b < k)
        if not np.array_equal(cnt_s[sub_k], cnt_b[sub_k]):
            failures.append(f"{tag}: sub-k filter counts differ")
        if not np.array_equal(ex_s, ex_b):
            failures.append(f"{tag}: exactness flags differ")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=420, help="vector dataset size")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    failures: list[str] = []
    checks = 0

    points = blobs_with_outliers(
        args.n, dim=6, n_clusters=4, core_std=0.8, tail_std=2.5, tail_frac=0.06,
        center_spread=12.0, planted_frac=0.015, planted_spread=60.0, rng=42,
    )
    for metric in ("l2", "l1"):
        dataset = Dataset(points, metric)
        gen = np.random.default_rng(0)
        a = gen.integers(0, dataset.n, size=1500)
        b = gen.integers(0, dataset.n, size=1500)
        keep = a != b
        r = float(np.quantile(dataset.pair_dist(a[keep], b[keep]), 0.10))
        for graph_name in GRAPHS:
            graph = build_graph(graph_name, dataset, K=8, rng=0)
            failures += check_config(dataset, graph, r, 8, f"{metric}/{graph_name}")
            checks += 1

    words = words_with_outliers(160, n_stems=12, planted_frac=0.02, rng=7)
    dataset = Dataset(words, "edit")
    for graph_name in GRAPHS:
        graph = build_graph(graph_name, dataset, K=6, rng=0)
        failures += check_config(dataset, graph, 2.0, 4, f"edit/{graph_name}")
        checks += 1

    elapsed = time.perf_counter() - t0
    if failures:
        for line in failures:
            print(f"MISMATCH: {line}", file=sys.stderr)
        print(f"{len(failures)} equivalence failure(s) in {checks} configs "
              f"({elapsed:.1f}s)", file=sys.stderr)
        return 1
    print(f"batched == scalar == brute force on all {checks} configs "
          f"({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
