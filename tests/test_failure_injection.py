"""Failure injection: exactness must survive arbitrarily bad graphs.

The architecture's central guarantee (docs/architecture.md, rule 3):
graph quality affects only cost, never correctness, because the filter
count is a lower bound and survivors are verified exactly.  These tests
feed deliberately hostile graphs to Algorithm 1 and require the exact
answer every time.

The one trusted structure is the exact-K'NN list (§5.5 relies on it
being truly exact); the last test pins down that trust boundary.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, graph_dod, Verifier
from repro.graphs import Graph
from repro.index import brute_force_knn, brute_force_outliers


@pytest.fixture(scope="module")
def small(l2_dataset, l2_params):
    r, k = l2_params
    ref = brute_force_outliers(l2_dataset.view(), r, k)
    return l2_dataset, r, k, ref


def test_empty_graph(small):
    ds, r, k, ref = small
    g = Graph(ds.n).finalize()  # no edges at all: filter is useless
    res = graph_dod(ds, g, r, k)
    assert res.same_outliers(ref)
    assert res.counts["candidates"] == ds.n  # everything verified


def test_random_garbage_adjacency(small, rng):
    ds, r, k, ref = small
    g = Graph(ds.n)
    for _ in range(ds.n * 4):
        u, v = rng.integers(ds.n, size=2)
        if u != v:
            g.add_link(int(u), int(v))
    g.finalize()
    res = graph_dod(ds, g, r, k)
    assert res.same_outliers(ref)


def test_star_graph(small):
    ds, r, k, ref = small
    g = Graph(ds.n)
    for v in range(1, ds.n):
        g.add_edge(0, v)
    g.finalize()
    assert graph_dod(ds, g, r, k).same_outliers(ref)


def test_wrong_pivot_flags(small, rng, mrpg_l2):
    """Random pivot flags change traversal, never the answer."""
    ds, r, k, ref = small
    g = mrpg_l2.copy()
    g.pivots = rng.random(ds.n) < 0.3
    g.finalize()
    assert graph_dod(ds, g, r, k).same_outliers(ref)


def test_disconnected_clusters_graph(small):
    ds, r, k, ref = small
    g = Graph(ds.n)
    # Two chains with no connection between halves.
    half = ds.n // 2
    for v in range(1, half):
        g.add_edge(v - 1, v)
    for v in range(half + 1, ds.n):
        g.add_edge(v - 1, v)
    g.finalize()
    assert graph_dod(ds, g, r, k).same_outliers(ref)


def test_self_referential_meta_untrusted(small, mrpg_l2):
    """Garbage in meta must be inert."""
    ds, r, k, ref = small
    g = mrpg_l2.copy()
    g.meta["K"] = -999
    g.meta["builder"] = 42
    g.finalize()
    assert graph_dod(ds, g, r, k).same_outliers(ref)


def test_true_exact_lists_with_random_kprime(small, rng):
    """Exact K'-NN lists of any size keep the O(k) verdicts correct."""
    ds, r, k, ref = small
    g = Graph(ds.n)
    for v in range(ds.n):
        ids, _ = brute_force_knn(ds, v, 3)
        g.set_links(v, ids)
    holders = rng.choice(ds.n, size=30, replace=False)
    for v in holders:
        kp = int(rng.integers(k, 3 * k))
        ids, dists = brute_force_knn(ds, int(v), kp)
        g.exact_knn[int(v)] = (ids, dists)
    g.finalize()
    assert graph_dod(ds, g, r, k).same_outliers(ref)


@given(seed=st.integers(0, 50), density=st.floats(0.0, 0.15))
@settings(max_examples=15, deadline=None)
def test_random_graphs_property(seed, density):
    gen = np.random.default_rng(seed)
    pts = np.concatenate(
        [gen.normal(size=(40, 3)), gen.normal(size=(3, 3)) + 20.0]
    )
    ds = Dataset(pts, "l2")
    g = Graph(ds.n)
    n_edges = int(density * ds.n * ds.n)
    for _ in range(n_edges):
        u, v = gen.integers(ds.n, size=2)
        if u != v:
            g.add_link(int(u), int(v))
    g.pivots = gen.random(ds.n) < 0.2
    g.finalize()
    r, k = 2.0, 4
    ref = brute_force_outliers(ds.view(), r, k)
    res = graph_dod(ds, g, r, k, verifier=Verifier(ds, strategy="linear"))
    assert res.same_outliers(ref)


# -- process-failure injection: the shared store must never leak --------------


@pytest.mark.slow
def test_killed_worker_mid_churn_still_unlinks_shared_segment():
    """SIGKILL a shard worker, then close(): /dev/shm must end clean.

    The owner's close() path has to unlink the object store even when
    the pool shutdown underneath it is degraded (one worker already
    dead, its pipe broken).
    """
    import os
    import signal

    from repro.engine.mutable_sharded import MutableShardedDetectionEngine

    def repro_segments():
        return {n for n in os.listdir("/dev/shm") if n.startswith("repro_")}

    before = repro_segments()
    rng = np.random.default_rng(11)
    engine = MutableShardedDetectionEngine(
        metric="l2", n_shards=2, workers=2, K=8, seed=0, store="shm",
    )
    engine.bulk_load(rng.standard_normal((80, 4)))
    engine.insert(rng.standard_normal((10, 4)))
    assert repro_segments() - before  # the store segment exists

    procs = list(engine._pool._procs)
    assert procs, "expected real worker processes"
    os.kill(procs[0].pid, signal.SIGKILL)
    procs[0].join(timeout=10)

    # Further engine work may fail (half the pool is gone) — what must
    # NOT happen is a leaked segment after close().
    try:
        engine.insert(rng.standard_normal((5, 4)))
    except Exception:
        pass
    engine.close()
    assert repro_segments() == before


@pytest.mark.slow
def test_engine_garbage_collection_unlinks_shared_segment():
    """Dropping the last reference (no explicit close) reclaims /dev/shm."""
    import gc
    import os

    from repro.engine.mutable_sharded import MutableShardedDetectionEngine

    def repro_segments():
        return {n for n in os.listdir("/dev/shm") if n.startswith("repro_")}

    before = repro_segments()
    engine = MutableShardedDetectionEngine(
        metric="l2", n_shards=2, workers=1, K=8, seed=0, store="shm",
    )
    engine.bulk_load(np.random.default_rng(3).standard_normal((60, 4)))
    assert repro_segments() - before
    del engine
    gc.collect()
    assert repro_segments() == before


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="needs fork so build workers inherit the injected crash",
)
def test_build_worker_killed_mid_round_raises_graph_error(
    l2_dataset, monkeypatch
):
    """A build worker dying mid-join-round must surface as GraphError.

    The parent's patch merge would otherwise hang on (or silently
    truncate) the dead worker's results; the pool wraps the broken pipe
    into a :class:`GraphError` naming the stage, and releasing the pool
    must not leak processes or shared segments (the autouse conftest
    fixture checks /dev/shm).
    """
    import os
    import signal

    from repro.exceptions import GraphError
    from repro.graphs.parallel_build import BuildWorker

    def _die(self, *args, **kwargs):
        os.kill(os.getpid(), signal.SIGKILL)

    # Patch before the pool forks: children inherit the crashing method,
    # the parent never calls it (join_round only runs worker-side).
    monkeypatch.setattr(BuildWorker, "join_round", _die)
    from repro import build_graph

    with pytest.raises(GraphError, match="join_round"):
        build_graph(
            "mrpg",
            l2_dataset.view(),
            K=6,
            rng=np.random.default_rng(0),
            build_workers=2,
            build_start_method="fork",
        )
