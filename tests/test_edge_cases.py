"""Edge cases and degenerate inputs across the whole stack."""

import numpy as np
import pytest

from repro import Dataset, DODetector, build_graph, graph_dod
from repro.baselines import dolphin_dod, nested_loop_dod, snif_dod, vptree_dod
from repro.index import brute_force_outliers


def test_two_objects():
    ds = Dataset(np.asarray([[0.0], [5.0]]), "l2")
    g = build_graph("mrpg", ds, K=1, rng=0)
    near = graph_dod(ds, g, r=10.0, k=1)
    assert near.n_outliers == 0
    far = graph_dod(ds, g, r=1.0, k=1)
    assert far.n_outliers == 2


def test_identical_objects():
    ds = Dataset(np.zeros((60, 3)), "l2")
    g = build_graph("mrpg", ds, K=5, rng=0)
    res = graph_dod(ds, g, r=0.0, k=10)
    # Everyone has 59 zero-distance neighbors: nobody is an outlier.
    assert res.n_outliers == 0
    res2 = graph_dod(ds, g, r=0.0, k=60)
    # k exceeds n-1: everyone is an outlier.
    assert res2.n_outliers == 60


def test_k_larger_than_n(l2_dataset, mrpg_l2):
    res = graph_dod(l2_dataset, mrpg_l2, r=1e9, k=l2_dataset.n + 5)
    assert res.n_outliers == l2_dataset.n


def test_r_zero_distinct_points(l2_dataset, mrpg_l2):
    res = graph_dod(l2_dataset, mrpg_l2, r=0.0, k=1)
    ref = brute_force_outliers(l2_dataset.view(), 0.0, 1)
    assert res.same_outliers(ref)


def test_duplicate_points_ties():
    # 30 copies of one point + 5 distinct singles: the copies certify
    # each other, the singles are outliers for k > their neighbor count.
    pts = np.concatenate([np.zeros((30, 2)), np.arange(10).reshape(5, 2) + 100.0])
    ds = Dataset(pts, "l2")
    g = build_graph("mrpg", ds, K=4, rng=0)
    res = graph_dod(ds, g, r=0.5, k=3)
    ref = brute_force_outliers(ds.view(), 0.5, 3)
    assert res.same_outliers(ref)


def test_baselines_on_duplicates():
    pts = np.concatenate([np.zeros((25, 2)), np.ones((3, 2)) * 99.0])
    ds = Dataset(pts, "l2")
    ref = brute_force_outliers(ds.view(), 0.5, 5)
    for fn in (nested_loop_dod, snif_dod, dolphin_dod, vptree_dod):
        assert fn(ds, 0.5, 5).same_outliers(ref), fn.__name__


def test_single_character_strings():
    words = ["a", "b", "c", "a", "b", "zzzzzzzzzz"]
    ds = Dataset(words, "edit")
    g = build_graph("kgraph", ds, K=2, rng=0)
    res = graph_dod(ds, g, r=1.0, k=3)
    ref = brute_force_outliers(ds.view(), 1.0, 3)
    assert res.same_outliers(ref)


def test_one_dimensional_vectors():
    pts = np.concatenate([np.linspace(0, 1, 50), [500.0, 501.0]]).reshape(-1, 1)
    ds = Dataset(pts, "l2")
    g = build_graph("mrpg", ds, K=4, rng=0)
    res = graph_dod(ds, g, r=0.3, k=5)
    ref = brute_force_outliers(ds.view(), 0.3, 5)
    assert res.same_outliers(ref)


def test_detector_with_tiny_K():
    pts = np.random.default_rng(0).normal(size=(80, 3))
    det = DODetector(metric="l2", graph="mrpg", K=2, seed=0)
    res = det.fit_detect(pts, r=1.0, k=4)
    ref = brute_force_outliers(Dataset(pts, "l2"), 1.0, 4)
    assert res.same_outliers(ref)


def test_detector_K_equal_n_minus_one():
    pts = np.random.default_rng(1).normal(size=(20, 3))
    det = DODetector(metric="l2", graph="kgraph", K=19, seed=0)
    res = det.fit_detect(pts, r=2.0, k=3)
    ref = brute_force_outliers(Dataset(pts, "l2"), 2.0, 3)
    assert res.same_outliers(ref)


def test_huge_k_with_exact_lists(l2_dataset, mrpg_l2):
    """k above K' must bypass the exact-list shortcut and stay exact."""
    k = mrpg_l2.meta["K_prime"] + 3
    r = 3.0
    res = graph_dod(l2_dataset, mrpg_l2, r, k)
    ref = brute_force_outliers(l2_dataset.view(), r, k)
    assert res.same_outliers(ref)


def test_angular_antipodal_points():
    pts = np.concatenate([np.ones((20, 4)), -np.ones((3, 4))])
    ds = Dataset(pts, "angular")
    g = build_graph("kgraph", ds, K=3, rng=0)
    res = graph_dod(ds, g, r=0.1, k=5)
    ref = brute_force_outliers(ds.view(), 0.1, 5)
    assert res.same_outliers(ref)


def test_very_long_strings():
    words = ["x" * 200, "x" * 199, "y" * 200, "ab"]
    ds = Dataset(words, "edit")
    assert ds.dist(0, 1) == 1.0
    assert ds.dist(0, 2) == 200.0
    ref = brute_force_outliers(ds, 2.0, 1)
    np.testing.assert_array_equal(ref, [2, 3])
