"""Unit tests for Minkowski metrics (L1, L2, L4, general Lp)."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.exceptions import MetricError, ParameterError
from repro.metrics import L1, L2, L4, Minkowski


@pytest.fixture()
def points(rng):
    return rng.normal(size=(40, 7))


@pytest.mark.parametrize(
    "metric,p", [(L1, 1), (L2, 2), (L4, 4), (Minkowski(3), 3)]
)
def test_matches_scipy(metric, p, points):
    store = metric.prepare(points)
    idx = np.arange(points.shape[0])
    got = metric.dist_many(store, 0, idx)
    expected = cdist(points[:1], points, metric="minkowski", p=p)[0]
    np.testing.assert_allclose(got, expected, rtol=1e-10)


def test_dist_scalar_matches_many(points):
    store = L2.prepare(points)
    for j in (0, 3, 17):
        single = L2.dist(store, 5, j)
        batch = L2.dist_many(store, 5, np.asarray([j]))[0]
        assert single == pytest.approx(batch)


def test_identity(points):
    store = L2.prepare(points)
    for i in range(points.shape[0]):
        assert L2.dist(store, i, i) == pytest.approx(0.0, abs=1e-12)


def test_symmetry(points):
    store = L1.prepare(points)
    for i, j in [(0, 1), (4, 20), (7, 39)]:
        assert L1.dist(store, i, j) == pytest.approx(L1.dist(store, j, i))


def test_pair_dist(points):
    store = L4.prepare(points)
    a = np.asarray([0, 2, 4])
    b = np.asarray([1, 3, 5])
    got = L4.pair_dist(store, a, b)
    for t in range(3):
        assert got[t] == pytest.approx(L4.dist(store, int(a[t]), int(b[t])))


def test_p_below_one_rejected():
    with pytest.raises(ParameterError):
        Minkowski(0.5)


def test_names():
    assert L1.name == "l1"
    assert L2.name == "l2"
    assert L4.name == "l4"
    assert Minkowski(2.5).name == "l2.5"


def test_one_dimensional_input_reshaped():
    store = L2.prepare(np.asarray([0.0, 3.0, 7.0]))
    assert store.shape == (3, 1)
    assert L2.dist(store, 0, 1) == pytest.approx(3.0)


def test_non_finite_rejected():
    with pytest.raises(MetricError):
        L2.prepare(np.asarray([[0.0, np.nan]]))


def test_empty_rejected():
    with pytest.raises(MetricError):
        L2.prepare(np.empty((0, 3)))


def test_nbytes_and_count(points):
    store = L2.prepare(points)
    assert L2.n_objects(store) == 40
    assert L2.nbytes(store) == points.astype(np.float64).nbytes


def test_prepare_is_contiguous_float64(points):
    store = L1.prepare(points[::2])  # non-contiguous view input
    assert store.flags["C_CONTIGUOUS"]
    assert store.dtype == np.float64
