"""Unit tests for VP-tree ball partitioning (Algorithm 3)."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.index import vp_partition


@pytest.fixture(scope="module")
def result(l2_dataset):
    return vp_partition(l2_dataset, K=8, rng=0)


def test_shapes(result, l2_dataset):
    n = l2_dataset.n
    assert result.init_ids.shape == (n, 8)
    assert result.init_dists.shape == (n, 8)
    assert result.covered.shape == (n,)
    assert result.pivots.shape == (n,)


def test_most_objects_covered(result, l2_dataset):
    # Two passes of ball partitioning seed the overwhelming majority.
    assert result.covered.mean() > 0.6


def test_pivots_exist_and_sublinear(result, l2_dataset):
    assert result.n_pivots > 0
    assert result.n_pivots < l2_dataset.n / 2


def test_seeded_neighbors_are_real(result, l2_dataset):
    # Every seeded (id, dist) pair must be a true distance.
    for p in np.flatnonzero(result.covered)[:40]:
        row = result.init_ids[p]
        valid = row >= 0
        if not valid.any():
            continue
        d = l2_dataset.dist_many(int(p), row[valid])
        np.testing.assert_allclose(result.init_dists[p][valid], d, rtol=1e-10)


def test_no_self_in_seeds(result):
    for p in range(result.init_ids.shape[0]):
        assert p not in result.init_ids[p][result.init_ids[p] >= 0]


def test_uncovered_have_padding(result):
    uncovered = np.flatnonzero(~result.covered)
    for p in uncovered:
        assert np.all(result.init_ids[p] == -1)
        assert np.all(np.isinf(result.init_dists[p]))


def test_repeats_increase_coverage(l2_dataset):
    one = vp_partition(l2_dataset, K=8, repeats=1, rng=3)
    three = vp_partition(l2_dataset, K=8, repeats=3, rng=3)
    assert three.covered.sum() >= one.covered.sum()


def test_deterministic(l2_dataset):
    a = vp_partition(l2_dataset, K=6, rng=11)
    b = vp_partition(l2_dataset, K=6, rng=11)
    np.testing.assert_array_equal(a.init_ids, b.init_ids)
    np.testing.assert_array_equal(a.pivots, b.pivots)


def test_edit_metric_partition(edit_dataset):
    res = vp_partition(edit_dataset, K=5, rng=0)
    assert res.covered.any()
    assert res.n_pivots > 0


def test_validation(l2_dataset):
    with pytest.raises(ParameterError):
        vp_partition(l2_dataset, K=0)
    with pytest.raises(ParameterError):
        vp_partition(l2_dataset, K=5, repeats=0)
    with pytest.raises(ParameterError):
        vp_partition(l2_dataset, K=5, capacity=1)


def test_identical_points_terminate():
    from repro import Dataset

    ds = Dataset(np.zeros((60, 2)), "l2")
    res = vp_partition(ds, K=4, rng=0)
    assert res.covered.any()
