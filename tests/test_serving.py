"""Concurrency suite for the async serving tier.

The contract under test: pushing N concurrent clients through
:class:`~repro.serving.QueryCoalescer` (or the HTTP server on top of
it) changes *nothing* about the answers — every response is
bit-identical to a serial ``engine.query`` on an identically built
engine, deadlines surface as clean errors rather than hung awaits, and
reads interleaved with mutations always observe a consistent engine
state (the post-mutation oracle).
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.engine import create_engine
from repro.engine.protocol import EngineCapabilities
from repro.exceptions import ParameterError
from repro.index import brute_force_outliers
from repro.serving import (
    AdmissionError,
    DeadlineExceeded,
    EngineServer,
    QueryCoalescer,
    ServingClient,
    ServingClientError,
    ServingConfig,
)


def run(coro):
    """Drive one async test body to completion."""
    return asyncio.run(coro)


# -- engine construction ------------------------------------------------------


def _make_engine(kind: str, points):
    if kind == "static":
        return create_engine(points, metric="l2", K=8, seed=0)
    if kind == "sharded":
        return create_engine(
            points, metric="l2", K=8, seed=0, shards=3, workers=1
        )
    if kind == "mutable":
        return create_engine(points, metric="l2", K=8, seed=0, mutable=True)
    if kind == "mutable-sharded":
        return create_engine(
            points, metric="l2", K=8, seed=0, mutable=True, shards=2, workers=1
        )
    raise AssertionError(kind)


ENGINE_KINDS = ["static", "sharded", "mutable", "mutable-sharded"]


# -- coalesced reads vs the serial oracle -------------------------------------


@pytest.mark.parametrize("kind", ENGINE_KINDS)
def test_concurrent_queries_match_serial(blob_points, l2_params, kind):
    """Identical and distinct concurrent queries == serial engine.query."""
    r, k = l2_params
    queries = [(r, k)] * 6 + [(r * 1.1, k), (r * 0.9, k + 2), (r, k + 4)] * 2

    serial = _make_engine(kind, blob_points)
    expected = {q: serial.query(*q).outliers for q in set(queries)}
    serial.close()

    engine = _make_engine(kind, blob_points)

    async def body():
        async with QueryCoalescer(engine, close_engine=True) as serving:
            return await asyncio.gather(
                *[serving.query(rv, kv) for rv, kv in queries]
            )

    results = run(body())
    assert len(results) == len(queries)
    for (rv, kv), res in zip(queries, results):
        assert res.r == rv and res.k == kv
        assert np.array_equal(res.outliers, expected[(rv, kv)]), (rv, kv)


def test_identical_queries_share_one_engine_call(blob_points, l2_params):
    """Coalescing is real: N identical concurrent requests, 1 engine query."""
    r, k = l2_params
    engine = _make_engine("static", blob_points)

    async def body():
        async with QueryCoalescer(
            engine, ServingConfig(window=0.05), close_engine=True
        ) as serving:
            results = await asyncio.gather(
                *[serving.query(r, k) for _ in range(12)]
            )
            return results, dict(serving.stats)

    results, stats = run(body())
    assert stats["engine_queries"] == 1
    assert stats["coalesced"] == 11
    assert stats["batches"] == 1
    first = results[0]
    assert all(res is first for res in results)  # one shared DODResult


def test_sweep_equivalence_through_coalescer(blob_points, l2_params):
    """A full grid pushed concurrently matches engine.sweep on a twin."""
    r, k = l2_params
    grid = [(r * f, kk) for f in (0.9, 1.0, 1.1) for kk in (k, k + 3)]

    twin = _make_engine("static", blob_points)
    sweep = twin.sweep([q[0] for q in grid[::2]], k_grid=[k, k + 3])
    twin.close()

    engine = _make_engine("static", blob_points)

    async def body():
        async with QueryCoalescer(engine, close_engine=True) as serving:
            return await asyncio.gather(*[serving.query(*q) for q in grid])

    for (rv, kv), res in zip(grid, run(body())):
        assert np.array_equal(res.outliers, sweep.result(rv, kv).outliers)


# -- deadlines and admission control ------------------------------------------


class _SlowEngine:
    """Coalescable stub whose batch blocks for a configurable time."""

    capabilities = EngineCapabilities()

    def __init__(self, delay: float):
        self.delay = delay
        self.stats: dict[str, int] = {}
        self.calls: list[list[tuple[float, int]]] = []

    def batch(self, queries):
        time.sleep(self.delay)
        self.calls.append(list(queries))
        return [("answer", rv, kv) for rv, kv in queries]

    def describe(self) -> str:
        return f"slow stub ({self.delay}s per batch)"

    def close(self) -> None:
        pass


def test_deadline_expiry_is_clean_and_isolated():
    """Expiry raises DeadlineExceeded promptly; patient peers still win."""

    async def body():
        async with QueryCoalescer(_SlowEngine(0.4)) as serving:
            hasty = asyncio.create_task(serving.query(1.0, 5, deadline=0.05))
            patient = asyncio.create_task(serving.query(1.0, 5, deadline=5.0))
            t0 = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                await hasty
            waited = time.perf_counter() - t0
            assert waited < 0.3  # did not hang behind the 0.4s batch
            assert await patient == ("answer", 1.0, 5)
            return dict(serving.stats)

    stats = run(body())
    assert stats["deadline_expired"] == 1
    assert stats["answered"] >= 1


def test_queued_expired_request_never_reaches_engine():
    """A request whose deadline fires while queued is skipped, not served."""
    engine = _SlowEngine(0.3)

    async def body():
        async with QueryCoalescer(engine) as serving:
            blocker = asyncio.create_task(serving.query(1.0, 5))
            await asyncio.sleep(0.05)  # blocker's batch is now in flight
            with pytest.raises(DeadlineExceeded):
                await serving.query(7.0, 9, deadline=0.05)
            await blocker

    run(body())
    served = {q for call in engine.calls for q in call}
    assert (7.0, 9) not in served


def test_admission_control_rejects_when_queue_full():
    async def body():
        config = ServingConfig(max_queue=2, window=0.0)
        async with QueryCoalescer(_SlowEngine(0.2), config) as serving:
            tasks = [asyncio.create_task(serving.query(1.0, 5))]
            await asyncio.sleep(0.05)  # first batch in flight
            tasks += [
                asyncio.create_task(serving.query(2.0, 5)),
                asyncio.create_task(serving.query(3.0, 5)),
            ]
            await asyncio.sleep(0.01)  # both now queued
            with pytest.raises(AdmissionError):
                await serving.query(4.0, 5)
            await asyncio.gather(*tasks)
            return dict(serving.stats)

    stats = run(body())
    assert stats["rejected"] == 1


def test_cold_queries_deferred_not_dropped():
    """Cold radii beyond the budget wait a batch but still get answered."""
    engine = _SlowEngine(0.05)

    async def body():
        config = ServingConfig(window=0.05, max_cold=1)
        async with QueryCoalescer(engine, config) as serving:
            radii = [float(1 + i) for i in range(5)]  # all cold, all distinct
            results = await asyncio.gather(
                *[serving.query(rv, 5) for rv in radii]
            )
            return results, dict(serving.stats)

    results, stats = run(body())
    assert [res[1] for res in results] == [float(1 + i) for i in range(5)]
    assert stats["cold_deferred"] >= 1
    assert stats["batches"] >= 2  # the budget actually split the burst
    assert all(len(call) <= 1 for call in engine.calls)


def test_bad_parameters_fail_fast_without_poisoning_batch(blob_points, l2_params):
    r, k = l2_params
    engine = _make_engine("static", blob_points)

    async def body():
        async with QueryCoalescer(engine, close_engine=True) as serving:
            good = asyncio.create_task(serving.query(r, k))
            with pytest.raises(ParameterError):
                await serving.query(-1.0, k)
            with pytest.raises(ParameterError):
                await serving.query(r, 0)
            with pytest.raises(ParameterError):
                await serving.query(float("nan"), k)
            return await good

    res = run(body())
    assert res.n_outliers >= 0


def test_immutable_engine_rejects_mutations(blob_points):
    engine = _make_engine("static", blob_points)

    async def body():
        async with QueryCoalescer(engine, close_engine=True) as serving:
            with pytest.raises(ParameterError):
                await serving.insert(blob_points[:2])
            with pytest.raises(ParameterError):
                await serving.remove([0])

    run(body())


# -- reads interleaved with mutations -----------------------------------------


@pytest.mark.parametrize("kind", ["mutable", "mutable-sharded"])
def test_reads_interleaved_with_churn_match_oracle(blob_points, l2_params, kind):
    """Awaited mutations are fences: later reads match the brute-force
    oracle over the live objects at that instant."""
    r, k = l2_params
    engine = _make_engine(kind, blob_points[:200])

    def oracle():
        ref = engine.active_ids()[
            brute_force_outliers(engine.live_dataset().view(), r, k)
        ]
        return ref

    async def body():
        async with QueryCoalescer(engine, close_engine=True) as serving:
            checks = []
            pre = await serving.query(r, k)
            checks.append((pre.outliers, oracle()))

            ids = await serving.insert(blob_points[200:])
            in_flight = [
                asyncio.create_task(serving.query(r, k)) for _ in range(4)
            ]
            post_insert_ref = oracle()

            await serving.remove([int(i) for i in ids[::2]])
            post_remove_ref = oracle()
            final = await serving.query(r, k)
            checks.append((final.outliers, post_remove_ref))

            # The in-flight reads were queued after the insert and
            # before the remove was *submitted*; each must match one of
            # the two consistent states, never a half-applied one.
            for task in in_flight:
                res = await task
                assert any(
                    np.array_equal(res.outliers, ref)
                    for ref in (post_insert_ref, post_remove_ref)
                )
            return checks, dict(serving.stats)

    checks, stats = run(body())
    for got, ref in checks:
        assert np.array_equal(got, ref)
    assert stats["mutations"] == 2
    if kind == "mutable-sharded":
        assert stats["barrier_epoch"] >= 2  # epoch barrier drained per fence


def test_mutation_fence_blocks_reordering():
    """A read behind a mutation never runs before it (FIFO fences)."""
    log: list[str] = []

    class LoggingEngine:
        capabilities = EngineCapabilities(mutable=True)
        stats: dict[str, int] = {}

        def batch(self, queries):
            log.append(f"batch:{sorted(q[0] for q in queries)}")
            return [None] * len(queries)

        def insert(self, objects):
            log.append("insert")
            return np.arange(len(objects))

        def remove(self, ids):
            log.append("remove")

        def describe(self) -> str:
            return "logging stub"

        def close(self) -> None:
            pass

    async def body():
        config = ServingConfig(window=0.02)
        async with QueryCoalescer(LoggingEngine(), config) as serving:
            await asyncio.gather(
                serving.query(1.0, 5),
                serving.insert([[0.0], [1.0]]),
                serving.query(2.0, 5),
                serving.remove([0]),
                serving.query(3.0, 5),
            )

    run(body())
    assert log == [
        "batch:[1.0]", "insert", "batch:[2.0]", "remove", "batch:[3.0]"
    ]


# -- the HTTP tier ------------------------------------------------------------


class _ServerThread:
    """Run an EngineServer on a private event loop in a thread."""

    def __init__(self, engine, config: "ServingConfig | None" = None):
        self.engine = engine
        self.config = config
        self.address: "tuple[str, int] | None" = None
        self._stop: "asyncio.Event | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        async with EngineServer(
            self.engine, port=0, config=self.config, close_engine=True
        ) as server:
            self.address = server.address
            self._ready.set()
            await self._stop.wait()

    def __enter__(self) -> "tuple[str, int]":
        self._thread.start()
        assert self._ready.wait(timeout=30.0), "server did not start"
        return self.address

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)
        assert not self._thread.is_alive()


def test_http_concurrent_queries_bit_identical(blob_points, l2_params):
    r, k = l2_params
    serial = _make_engine("static", blob_points)
    expected = {
        (rv, kv): [int(p) for p in serial.query(rv, kv).outliers]
        for rv, kv in [(r, k), (r * 1.05, k)]
    }
    serial.close()

    engine = _make_engine("static", blob_points)
    answers: list[tuple[tuple, list]] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def client_main(rv, kv):
        try:
            with ServingClient(*address) as client:
                got = client.query(rv, kv)
            with lock:
                answers.append(((rv, kv), got["outliers"]))
        except Exception as exc:  # pragma: no cover - failure reporting
            with lock:
                errors.append(exc)

    with _ServerThread(engine) as address:
        threads = [
            threading.Thread(target=client_main, args=q)
            for q in list(expected) * 4
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        with ServingClient(*address) as client:
            stats = client.stats()
            health = client.health()

    assert not errors
    assert len(answers) == 8
    for key, outliers in answers:
        assert outliers == expected[key], key
    assert health["status"] == "ok"
    assert stats["serving"]["answered"] >= 8
    assert stats["capabilities"]["coalescable"] is True


def test_http_deadline_returns_504_not_hung_socket():
    engine = _SlowEngine(0.5)
    with _ServerThread(engine) as address:
        with ServingClient(*address, timeout=10.0) as client:
            t0 = time.perf_counter()
            with pytest.raises(ServingClientError) as excinfo:
                client.query(1.0, 5, deadline=0.05)
            elapsed = time.perf_counter() - t0
    assert excinfo.value.status == 504
    assert excinfo.value.kind == "deadline"
    assert elapsed < 5.0  # a response arrived; the socket never hung


def test_http_error_surface(blob_points):
    engine = _make_engine("static", blob_points)
    with _ServerThread(engine) as address:
        with ServingClient(*address) as client:
            with pytest.raises(ServingClientError) as bad_param:
                client.query(-1.0, 5)
            with pytest.raises(ServingClientError) as not_mutable:
                client.insert(blob_points[:1])
            with pytest.raises(ServingClientError) as not_found:
                client._request("GET", "/nope")
            with pytest.raises(ServingClientError) as bad_method:
                client._request("GET", "/query")
    assert bad_param.value.status == 400
    assert not_mutable.value.status == 501
    assert not_found.value.status == 404
    assert bad_method.value.status == 405


def test_http_churn_equivalence(blob_points, l2_params):
    """Insert/remove/query over HTTP matches the brute-force oracle."""
    r, k = l2_params
    engine = _make_engine("mutable", blob_points[:200])
    with _ServerThread(engine) as address:
        with ServingClient(*address) as client:
            ids = client.insert(blob_points[200:])
            assert len(ids) == len(blob_points) - 200
            client.remove(ids[::3])
            got = client.query(r, k)["outliers"]
            ref = engine.active_ids()[
                brute_force_outliers(engine.live_dataset().view(), r, k)
            ]
            assert got == [int(p) for p in ref]
            stats = client.stats()
    assert stats["serving"]["mutations"] == 2
    assert stats["n_live"] == len(blob_points) - len(ids[::3])


@pytest.mark.slow
def test_http_multiprocess_sharded_serving(blob_points, l2_params):
    """Full stack: HTTP -> coalescer -> shard broadcast over real processes."""
    r, k = l2_params
    serial = _make_engine("static", blob_points)
    expected = [int(p) for p in serial.query(r, k).outliers]
    serial.close()

    engine = create_engine(
        blob_points, metric="l2", K=8, seed=0, shards=4, workers=2
    )
    answers: list[list[int]] = []
    lock = threading.Lock()

    def client_main():
        with ServingClient(*address) as client:
            got = client.query(r, k)["outliers"]
        with lock:
            answers.append(got)

    with _ServerThread(engine) as address:
        threads = [threading.Thread(target=client_main) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)

    assert len(answers) == 6
    assert all(got == expected for got in answers)


@pytest.mark.slow
def test_http_multiprocess_mutable_sharded_churn(blob_points, l2_params):
    """Churn through HTTP over a process-backed mutable sharded engine."""
    r, k = l2_params
    engine = create_engine(
        None, metric="l2", K=8, seed=0, mutable=True, shards=2, workers=2
    )
    with _ServerThread(engine) as address:
        with ServingClient(*address) as client:
            ids = client.insert(blob_points[:220])
            client.remove(ids[1::4])
            got = client.query(r, k)["outliers"]
            ref = engine.active_ids()[
                brute_force_outliers(engine.live_dataset().view(), r, k)
            ]
            assert got == [int(p) for p in ref]
            assert client.stats()["serving"]["barrier_epoch"] >= 2


# -- lifecycle ----------------------------------------------------------------


def test_close_drains_queue(blob_points, l2_params):
    """aclose answers everything already queued before stopping."""
    r, k = l2_params
    engine = _make_engine("static", blob_points)

    async def body():
        serving = QueryCoalescer(
            engine, ServingConfig(window=0.2), close_engine=True
        )
        serving.start()
        tasks = [asyncio.create_task(serving.query(r, k)) for _ in range(5)]
        await asyncio.sleep(0)  # let the requests enqueue
        await serving.aclose()  # must answer all five before stopping
        return await asyncio.gather(*tasks)

    results = run(body())
    assert len(results) == 5
    assert all(res.n_outliers == results[0].n_outliers for res in results)


def test_submit_after_close_raises(blob_points):
    engine = _make_engine("static", blob_points)

    async def body():
        serving = QueryCoalescer(engine, close_engine=True)
        serving.start()
        await serving.aclose()
        with pytest.raises(ParameterError):
            await serving.query(1.0, 5)

    run(body())


def test_double_start_raises(blob_points):
    engine = _make_engine("static", blob_points)

    async def body():
        async with QueryCoalescer(engine, close_engine=True) as serving:
            with pytest.raises(ParameterError):
                serving.start()

    run(body())


def test_http_stats_surface_phase_breakdown(blob_points, l2_params):
    """/stats exposes the sharded merge's per-phase seconds and pairs."""
    r, k = l2_params
    engine = _make_engine("sharded", blob_points)
    with _ServerThread(engine) as address:
        with ServingClient(*address) as client:
            client.query(r, k)
            stats = client.stats()
    phases = stats["phases"]
    assert set(phases["seconds"]) == {"cache", "filter", "verify"}
    assert phases["pairs"]["verify"] == (
        phases["pairs"]["verify_descent"]
        + phases["pairs"]["verify_index"]
        + phases["pairs"]["verify_sweep"]
    )
    assert phases == {
        "seconds": stats["engine"]["phase_seconds"],
        "pairs": stats["engine"]["phase_pairs"],
    }
    assert stats["engine"]["descent_decided"] >= 0
    # Single-process engines have no phase stats block.
    single = _make_engine("static", blob_points)
    with _ServerThread(single) as address:
        with ServingClient(*address) as client:
            client.query(r, k)
            bare = client.stats()
    assert "phases" not in bare or isinstance(bare["phases"], dict)
