"""Unit tests for the Hamming and Jaccard metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, build_graph, graph_dod
from repro.exceptions import MetricError
from repro.index import brute_force_outliers
from repro.metrics import HAMMING, JACCARD


# -- Hamming ---------------------------------------------------------------------


def test_hamming_known_values():
    store = HAMMING.prepare(np.asarray([[0, 0, 0, 0], [1, 0, 1, 0], [1, 1, 1, 1]]))
    assert HAMMING.dist(store, 0, 1) == 2
    assert HAMMING.dist(store, 0, 2) == 4
    assert HAMMING.dist(store, 1, 2) == 2
    assert HAMMING.dist(store, 1, 1) == 0


def test_hamming_dist_many(rng):
    codes = rng.integers(0, 2, size=(30, 16))
    store = HAMMING.prepare(codes)
    got = HAMMING.dist_many(store, 3, np.arange(30))
    for j in (0, 7, 29):
        assert got[j] == np.count_nonzero(codes[3] != codes[j])


def test_hamming_rejects_non_binary():
    with pytest.raises(MetricError):
        HAMMING.prepare(np.asarray([[0, 2], [1, 0]]))


def test_hamming_rejects_bad_shape():
    with pytest.raises(MetricError):
        HAMMING.prepare(np.asarray([0, 1, 0]))


@given(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1))
@settings(max_examples=80, deadline=None)
def test_hamming_axioms(a, b, c):
    codes = [
        [int(ch) for ch in format(x, "012b")] for x in (a, b, c)
    ]
    store = HAMMING.prepare(np.asarray(codes))
    d01 = HAMMING.dist(store, 0, 1)
    d02 = HAMMING.dist(store, 0, 2)
    d12 = HAMMING.dist(store, 1, 2)
    assert d01 == HAMMING.dist(store, 1, 0)
    assert d02 <= d01 + d12
    assert (d01 == 0) == (a == b)


def test_hamming_dod_exact(rng):
    # Clustered binary codes: flips of two prototypes + random noise rows.
    proto = rng.integers(0, 2, size=(2, 24))
    rows = []
    for _ in range(60):
        base = proto[int(rng.integers(2))].copy()
        flips = rng.choice(24, size=2, replace=False)
        base[flips] ^= 1
        rows.append(base)
    rows.extend(rng.integers(0, 2, size=(4, 24)))
    ds = Dataset(np.asarray(rows), "hamming")
    g = build_graph("mrpg", ds, K=5, rng=0)
    ref = brute_force_outliers(ds.view(), 5.0, 6)
    assert graph_dod(ds, g, 5.0, 6).same_outliers(ref)


# -- Jaccard ---------------------------------------------------------------------


def test_jaccard_known_values():
    store = JACCARD.prepare([{1, 2, 3}, {2, 3, 4}, {5}, set()])
    assert JACCARD.dist(store, 0, 1) == pytest.approx(1 - 2 / 4)
    assert JACCARD.dist(store, 0, 2) == pytest.approx(1.0)
    assert JACCARD.dist(store, 0, 0) == 0.0
    assert JACCARD.dist(store, 3, 3) == 0.0  # empty vs empty
    assert JACCARD.dist(store, 0, 3) == 1.0  # nonempty vs empty


def test_jaccard_range(rng):
    sets = [set(rng.choice(20, size=rng.integers(1, 8), replace=False).tolist())
            for _ in range(25)]
    store = JACCARD.prepare(sets)
    d = JACCARD.dist_many(store, 0, np.arange(25))
    assert np.all(d >= 0) and np.all(d <= 1)


def test_jaccard_get_and_take():
    store = JACCARD.prepare([{1, 2}, {3}, {1, 3}])
    assert JACCARD.get(store, 1) == frozenset({3})
    sub = JACCARD.take(store, np.asarray([0, 2]))
    assert JACCARD.n_objects(sub) == 2
    assert JACCARD.dist(sub, 0, 1) == JACCARD.dist(store, 0, 2)


sets_strategy = st.sets(st.integers(0, 12), max_size=8)


@given(a=sets_strategy, b=sets_strategy, c=sets_strategy)
@settings(max_examples=100, deadline=None)
def test_jaccard_axioms(a, b, c):
    store = JACCARD.prepare([a, b, c])
    d01 = JACCARD.dist(store, 0, 1)
    d02 = JACCARD.dist(store, 0, 2)
    d12 = JACCARD.dist(store, 1, 2)
    assert d01 == pytest.approx(JACCARD.dist(store, 1, 0))
    assert d02 <= d01 + d12 + 1e-12
    assert (d01 == 0) == (a == b)


def test_jaccard_dod_exact(rng):
    # Baskets drawn from two themes + a few random wide baskets.
    themes = [list(range(0, 10)), list(range(10, 20))]
    baskets = []
    for _ in range(50):
        theme = themes[int(rng.integers(2))]
        baskets.append(set(rng.choice(theme, size=5, replace=False).tolist()))
    for _ in range(3):
        baskets.append(set(rng.choice(40, size=6, replace=False).tolist()))
    ds = Dataset(baskets, "jaccard")
    g = build_graph("kgraph", ds, K=5, rng=0)
    ref = brute_force_outliers(ds.view(), 0.6, 5)
    assert graph_dod(ds, g, 0.6, 5).same_outliers(ref)


def test_dataset_integration():
    ds = Dataset([{"a", "b"}, {"b", "c"}, {"x"}], "jaccard")
    assert ds.n == 3
    assert ds.get(2) == frozenset({"x"})
    assert ds.dist(0, 1) == pytest.approx(1 - 1 / 3)
