"""Unit tests for the HNSW builder and its use in DOD."""

import numpy as np
import pytest

from repro import build_graph, graph_dod
from repro.analysis import connectivity_report
from repro.exceptions import ParameterError
from repro.graphs import build_hnsw
from repro.index import brute_force_outliers


@pytest.fixture(scope="module")
def hnsw(l2_dataset):
    return build_hnsw(l2_dataset, M=5, ef_construction=24, rng=0)


def test_layer0_undirected(hnsw):
    for u in range(hnsw.n):
        for v in hnsw.neighbors_list(u):
            assert hnsw.has_link(v, u), (u, v)


def test_degree_cap(hnsw):
    # Layer 0 allows at most 2M links per vertex.
    assert max(hnsw.degree(v) for v in range(hnsw.n)) <= 2 * 5


def test_mostly_connected(hnsw):
    # Layer 0 may fragment along well-separated clusters: neighbor-list
    # shrinking evicts the longest (inter-cluster) links.  This is the
    # disconnection problem §5.2's Connect-SubGraphs exists to fix —
    # HNSW has no such repair pass.  The dominant component must still
    # cover a cluster-scale fraction of the data.
    report = connectivity_report(hnsw)
    assert report["n_weak_components"] <= 6  # data has 4 planted clusters
    assert report["largest_weak"] > hnsw.n * 0.3


def test_hierarchy_metadata(hnsw, l2_dataset):
    levels = np.asarray(hnsw.meta["levels"])
    assert levels.shape == (l2_dataset.n,)
    assert (levels >= 0).all()
    assert hnsw.meta["n_layers"] >= 1
    # Level counts decay roughly geometrically: layer 1 holds a strict
    # minority of the objects.
    assert (levels >= 1).sum() < l2_dataset.n / 2


def test_links_are_local(hnsw, l2_dataset):
    gen = np.random.default_rng(0)
    link_d = []
    for u in range(0, hnsw.n, 10):
        for v in hnsw.neighbors_list(u)[:4]:
            link_d.append(l2_dataset.dist(u, v))
    a = gen.integers(0, l2_dataset.n, 300)
    b = gen.integers(0, l2_dataset.n, 300)
    rand_d = l2_dataset.pair_dist(a[a != b], b[a != b])
    assert np.mean(link_d) < np.mean(rand_d) * 0.8


def test_dod_exact_on_hnsw(hnsw, l2_dataset, l2_params, l2_reference):
    r, k = l2_params
    res = graph_dod(l2_dataset, hnsw, r, k)
    assert res.same_outliers(l2_reference)
    assert res.method == "hnsw"


def test_registry_dispatch(l2_dataset, l2_params, l2_reference):
    r, k = l2_params
    g = build_graph("hnsw", l2_dataset, K=10, rng=0)
    assert g.meta["M"] == 5  # K/2 for memory parity with KGraph
    res = graph_dod(l2_dataset, g, r, k)
    assert res.same_outliers(l2_reference)


def test_deterministic(l2_dataset):
    a = build_hnsw(l2_dataset, M=4, ef_construction=16, rng=9)
    b = build_hnsw(l2_dataset, M=4, ef_construction=16, rng=9)
    for v in range(a.n):
        assert a.neighbors_list(v) == b.neighbors_list(v)
    assert a.meta["levels"] == b.meta["levels"]


def test_edit_metric(edit_dataset):
    g = build_hnsw(edit_dataset, M=4, ef_construction=16, rng=0)
    ref = brute_force_outliers(edit_dataset.view(), 3.0, 4)
    res = graph_dod(edit_dataset, g, 3.0, 4)
    assert res.same_outliers(ref)


def test_validation(l2_dataset):
    with pytest.raises(ParameterError):
        build_hnsw(l2_dataset, M=0)
    with pytest.raises(ParameterError):
        build_hnsw(l2_dataset, ef_construction=0)


def test_tiny_dataset():
    from repro import Dataset

    ds = Dataset(np.random.default_rng(0).normal(size=(5, 2)), "l2")
    g = build_hnsw(ds, M=2, ef_construction=4, rng=0)
    assert g.n == 5
    assert connectivity_report(g)["n_weak_components"] == 1
