"""Metamorphic update oracle for the mutable engine core.

The acceptance contract of ``engine/mutable.py``: after *arbitrary*
interleavings of insert/remove/detect/sweep, a
:class:`MutableDetectionEngine`'s answers are bit-identical to a fresh
:class:`DetectionEngine` built on the compacted dataset (and to brute
force), across metrics and graph types.  Repairs may only ever keep
*sound* bounds — any unsound repair shows up here as a wrong outlier
set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset
from repro.engine import DetectionEngine, MutableDetectionEngine
from repro.engine.evidence import NO_BOUND, EvidenceCache
from repro.exceptions import ParameterError
from repro.graphs.base import build_graph
from repro.index import brute_force_outliers


def _oracle_check(engine: MutableDetectionEngine, r, k, graph_name="kgraph"):
    """Assert engine.detect == fresh engine on compacted data == brute."""
    keep = engine.active_ids()
    objects = engine.live_objects()
    dataset = Dataset(
        np.asarray(objects) if engine.metric.is_vector else objects,
        engine.metric,
    )
    result = engine.detect(r, k)
    brute = keep[brute_force_outliers(dataset, r, k)]
    np.testing.assert_array_equal(result.outliers, brute)
    fresh_graph = build_graph(graph_name, dataset, K=6, rng=0, clamp_K=True)
    with DetectionEngine(dataset, fresh_graph) as fresh:
        np.testing.assert_array_equal(
            result.outliers, keep[fresh.query(r, k).outliers]
        )
    return result


@pytest.fixture()
def pool(rng):
    return np.concatenate(
        [rng.normal(size=(260, 4)), rng.normal(size=(8, 4)) * 0.3 + 22.0]
    )


def test_interleaved_churn_matches_fresh_engine(pool, rng):
    eng = MutableDetectionEngine(metric="l2", K=6, seed=0)
    eng.insert(pool[:100])
    _oracle_check(eng, 1.8, 5)
    eng.remove(rng.choice(100, size=25, replace=False).tolist())
    _oracle_check(eng, 1.8, 5)
    eng.insert(pool[100:180])
    _oracle_check(eng, 1.8, 5)
    eng.remove(rng.choice(eng.active_ids(), size=30, replace=False).tolist())
    eng.insert(pool[180:220])
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_repaired_sweep_matches_brute_force(pool, rng):
    eng = MutableDetectionEngine(metric="l2", K=6, seed=0)
    eng.insert(pool[:150])
    eng.sweep([1.5, 1.8], k_grid=[4, 6])
    eng.remove(rng.choice(150, size=40, replace=False).tolist())
    eng.insert(pool[150:200])
    sweep = eng.sweep([1.5, 1.8], k_grid=[4, 6])
    keep = eng.active_ids()
    dataset = Dataset(np.asarray(eng.live_objects()), "l2")
    for (r, k), res in sweep.results.items():
        ref = keep[brute_force_outliers(dataset, r, k)]
        np.testing.assert_array_equal(res.outliers, ref)
    eng.close()


def test_repair_beats_cache_drop(pool, rng):
    """Repaired bounds decide most of the post-churn population; the
    residue is far cheaper than the cold query (the ``BENCH_mutable``
    headline, asserted here at unit scale)."""
    eng = MutableDetectionEngine(metric="l2", K=6, seed=0)
    eng.insert(pool[:120])
    cold = eng.detect(1.8, 5)
    eng.remove(rng.choice(120, size=20, replace=False).tolist())
    eng.insert(pool[120:160])
    warm = eng.detect(1.8, 5)
    assert warm.counts["cache_decided"] >= 0.7 * eng.n_active
    assert warm.pairs < cold.pairs
    # Inserted objects carry exact counts from their repair scan, so a
    # third detect after pure inserts decides them all from the cache.
    eng.insert(pool[160:200])
    again = eng.detect(1.8, 5)
    assert again.counts["cache_decided"] >= 0.7 * eng.n_active
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_rebuild_and_vacuum_preserve_answers(pool, rng):
    eng = MutableDetectionEngine(metric="l2", K=6, seed=0)
    eng.insert(pool)
    eng.remove(rng.choice(260, size=60, replace=False).tolist())
    before = _oracle_check(eng, 1.8, 5)
    eng.rebuild(renumber=False)
    after = _oracle_check(eng, 1.8, 5)
    np.testing.assert_array_equal(before.outliers, after.outliers)
    remap = eng.rebuild(renumber=True)
    assert remap is not None and np.count_nonzero(remap >= 0) == eng.n_active
    _oracle_check(eng, 1.8, 5)
    eng.insert(pool[:30])
    remap = eng.vacuum()
    assert eng.n_total == eng.n_active
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_auto_rebuild_counter(pool):
    eng = MutableDetectionEngine(metric="l2", K=6, seed=0, rebuild_every=10)
    eng.insert(pool[:80])
    eng.detect(1.8, 5)
    assert eng.stats["rebuilds"] == 1  # 80 inserts tripped the counter
    ids = eng.active_ids()
    assert ids.size == 80  # renumber=False: stable ids survive
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_pinned_radius_keeps_counts_exact(pool, rng):
    eng = MutableDetectionEngine(metric="l2", K=4, seed=0, pinned=(1.8,))
    eng.insert(pool[:60])
    first = eng.detect(1.8, 5)
    assert first.pairs == 0  # every count maintained exactly from insert scans
    eng.remove(rng.choice(60, size=15, replace=False).tolist())
    eng.insert(pool[60:90])
    again = eng.detect(1.8, 5)
    assert again.pairs == 0
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_edit_metric_churn(word_list):
    eng = MutableDetectionEngine(metric="edit", K=5, seed=0)
    eng.insert(word_list[:90])
    _oracle_check(eng, 4.0, 3)
    eng.remove([0, 5, 9, 44])
    eng.insert(word_list[90:140])
    _oracle_check(eng, 4.0, 3)
    eng.close()


def test_graph_types_for_rebuild(pool, rng):
    for graph_name in ("mrpg", "kgraph", "nsw"):
        eng = MutableDetectionEngine(
            metric="l2", K=6, seed=0, rebuild_graph=graph_name
        )
        eng.insert(pool[:120])
        eng.remove(rng.choice(120, size=20, replace=False).tolist())
        eng.rebuild(renumber=False)
        _oracle_check(eng, 1.8, 5, graph_name=graph_name)
        # post-rebuild inserts must invalidate stale exact-K'NN lists
        eng.insert(pool[120:150])
        _oracle_check(eng, 1.8, 5, graph_name=graph_name)
        eng.close()


def test_insert_patches_stale_exact_lists(pool):
    eng = MutableDetectionEngine(metric="l2", K=6, seed=0)
    eng.insert(pool[:150])
    eng.rebuild(renumber=False)  # MRPG: stores exact lists
    holders_before = len(eng._graph.exact_knn)
    assert holders_before > 0
    coverage_before = {
        h: float(d[-1]) for h, (_, d) in eng._graph.exact_knn.items()
    }
    # Insert copies of existing points: they land strictly inside many
    # stored lists.  Decremental maintenance patches every affected
    # list in place (newcomer inserted by distance, truncated to K'),
    # so no holder loses its list and every list stays exact.
    eng.detect(1.8, 5)  # pin a radius so inserts scan
    eng.insert(pool[:20] + 1e-9)
    assert len(eng._graph.exact_knn) == holders_before
    ds = Dataset(np.asarray(eng.live_objects()), "l2")
    patched = 0
    for h, (ids, dists) in eng._graph.exact_knn.items():
        others = np.delete(np.arange(ds.n, dtype=np.int64), int(h))
        ref = np.sort(ds.dist_many(int(h), others))
        np.testing.assert_allclose(dists, ref[: dists.size])
        assert np.all(dists[:-1] <= dists[1:])
        if float(dists[-1]) < coverage_before[int(h)]:
            patched += 1
    assert patched > 0
    from repro.extensions.topn import knn_distance_scores

    tn = eng.top_n(6, 4)
    scores = knn_distance_scores(Dataset(np.asarray(eng.live_objects()), "l2"), 4)
    np.testing.assert_allclose(
        np.sort(tn.scores)[::-1], np.sort(scores)[::-1][:6]
    )
    eng.close()


def test_top_n_over_live_objects(pool, rng):
    from repro.extensions.topn import knn_distance_scores

    eng = MutableDetectionEngine(metric="l2", K=6, seed=0)
    eng.insert(pool)
    eng.remove(rng.choice(260, size=50, replace=False).tolist())
    eng.sweep([1.5, 1.8, 2.1], k_grid=[4])
    result = eng.top_n(8, 4)
    dataset = Dataset(np.asarray(eng.live_objects()), "l2")
    expected = np.sort(knn_distance_scores(dataset, 4))[::-1][:8]
    np.testing.assert_allclose(np.sort(result.scores)[::-1], expected)
    assert set(result.ids.tolist()) <= set(eng.active_ids().tolist())
    eng.close()


def test_validation(pool):
    with pytest.raises(ParameterError):
        MutableDetectionEngine(K=0)
    with pytest.raises(ParameterError):
        MutableDetectionEngine(search_attempts=0)
    with pytest.raises(ParameterError):
        MutableDetectionEngine(rebuild_every=0)
    eng = MutableDetectionEngine(metric="l2", K=4, seed=0)
    with pytest.raises(ParameterError):
        eng.detect(1.0, 2)
    with pytest.raises(ParameterError):
        eng.remove([0])
    eng.insert(pool[:10])
    with pytest.raises(ParameterError):
        eng.remove([99])
    with pytest.raises(ParameterError):
        eng.remove([1, 1])
    eng.remove([3])
    with pytest.raises(ParameterError):
        eng.remove([3])
    assert eng.insert([]).size == 0
    eng.close()


# -- evidence-cache repair laws ------------------------------------------------


def test_cache_cumulative_folds_match_naive():
    rng = np.random.default_rng(3)
    cache = EvidenceCache(40)
    radii = [0.5, 1.0, 1.5, 2.0, 2.5]
    naive_lb: dict[float, np.ndarray] = {}
    naive_ub: dict[float, np.ndarray] = {}
    for _ in range(30):
        r = float(rng.choice(radii))
        ids = rng.choice(40, size=10, replace=False)
        counts = rng.integers(0, 20, size=10)
        exact = rng.random(10) < 0.4
        cache.record(r, ids, counts, exact_mask=exact)
        lb = naive_lb.setdefault(r, np.zeros(40, dtype=np.int64))
        np.maximum.at(lb, ids, counts)
        ub = naive_ub.setdefault(r, np.full(40, NO_BOUND, dtype=np.int64))
        np.minimum.at(ub, ids[exact], counts[exact])
        q = float(rng.choice(radii)) + float(rng.choice([-0.1, 0.0, 0.1]))
        expect_lb = np.zeros(40, dtype=np.int64)
        for r0, row in naive_lb.items():
            if r0 <= q:
                np.maximum(expect_lb, row, out=expect_lb)
        expect_ub = np.full(40, NO_BOUND, dtype=np.int64)
        for r0, row in naive_ub.items():
            if r0 >= q:
                np.minimum(expect_ub, row, out=expect_ub)
        np.testing.assert_array_equal(cache.lower_bounds(q), expect_lb)
        np.testing.assert_array_equal(cache.upper_bounds(q), expect_ub)


def test_cache_eviction_stays_sound():
    rng = np.random.default_rng(5)
    pts = rng.normal(size=(60, 3))
    dataset = Dataset(pts, "l2")
    capped = EvidenceCache(60, max_radii=3)
    radii = np.linspace(0.5, 3.0, 9)
    for r in radii:
        counts = np.asarray(
            [
                np.count_nonzero(dataset.dist_many(p, np.arange(60)) <= r) - 1
                for p in range(60)
            ],
            dtype=np.int64,
        )
        capped.record(r, np.arange(60), counts, exact_mask=np.ones(60, bool))
        assert len(capped._lb) <= 3 and len(capped._ub) <= 3
    # Bounds at any radius must still bracket the true counts.
    for q in (0.7, 1.4, 2.6):
        truth = np.asarray(
            [
                np.count_nonzero(dataset.dist_many(p, np.arange(60)) <= q) - 1
                for p in range(60)
            ]
        )
        assert np.all(capped.lower_bounds(q) <= truth)
        assert np.all(capped.upper_bounds(q) >= truth)


def _true_counts(dataset: Dataset, live: np.ndarray, r: float) -> np.ndarray:
    """Brute-force neighbor counts (full-id-space array, dead rows 0)."""
    out = np.zeros(dataset.n, dtype=np.int64)
    for p in live:
        d = dataset.dist_many(int(p), live)
        out[int(p)] = int(np.count_nonzero(d <= r)) - 1
    return out


def test_cache_eviction_interleaved_with_repair_churn():
    """Budgeted radius eviction x apply_insert/apply_delete repairs.

    The eviction fold (lb up, ub down) and the mutation repairs (+1/-1
    deltas) compose in arbitrary orders; after every step the capped
    cache's bounds must still bracket the true counts of the live
    population.  This is the previously-untested interaction: an
    evicted (folded) row being patched by a later mutation.
    """
    rng = np.random.default_rng(9)
    pts = rng.normal(size=(70, 3))
    dataset = Dataset(pts, "l2")
    capped = EvidenceCache(40, max_radii=2)
    alive = np.zeros(70, dtype=bool)
    alive[:40] = True
    radii = [0.8, 1.2, 1.6, 2.0, 2.4, 2.8]
    next_id = 40

    def seed_radius(r: float) -> None:
        live = np.flatnonzero(alive[: capped.n])
        truth = _true_counts(dataset, live, r)
        capped.record(
            r, live, truth[live], exact_mask=np.ones(live.size, bool)
        )

    def check() -> None:
        live = np.flatnonzero(alive[: capped.n])
        assert len(capped._lb) <= 2 and len(capped._ub) <= 2
        for q in (0.9, 1.5, 2.2):
            truth = _true_counts(dataset, live, q)
            assert np.all(capped.lower_bounds(q)[live] <= truth[live])
            assert np.all(capped.upper_bounds(q)[live] >= truth[live])

    for step in range(12):
        seed_radius(radii[step % len(radii)])  # keeps the budget saturated
        check()
        stored = capped.radii
        if step % 3 == 2 and np.count_nonzero(alive) > 25:
            # Delete two objects with a full repair scan.
            victims = rng.choice(
                np.flatnonzero(alive[: capped.n]), size=2, replace=False
            )
            for v in victims:
                alive[v] = False
                others = np.flatnonzero(alive[: capped.n])
                neighbors = {
                    r: others[dataset.dist_many(int(v), others) <= r]
                    for r in stored
                }
                capped.apply_delete(int(v), neighbors)
        elif next_id < 70:
            # Insert one new object with a full repair scan.
            v = next_id
            next_id += 1
            prior = np.flatnonzero(alive[: min(capped.n, v)])
            neighbors = {
                r: prior[dataset.dist_many(v, prior) <= r] for r in stored
            }
            alive[v] = True
            capped.apply_insert(v, neighbors)
        check()


def test_engine_cache_radii_budget_under_churn(pool, rng):
    """A capped mutable engine stays exact through eviction + churn."""
    eng = MutableDetectionEngine(metric="l2", K=6, seed=0, cache_radii=2)
    eng.insert(pool[:130])
    eng.sweep([1.4, 1.6, 1.8, 2.0, 2.2], k_grid=[5])
    assert len(eng.cache._lb) <= 2 and len(eng.cache._ub) <= 2
    eng.remove(rng.choice(130, size=30, replace=False).tolist())
    _oracle_check(eng, 1.8, 5)
    eng.insert(pool[130:180])
    eng.sweep([1.5, 1.7, 1.9, 2.1], k_grid=[4, 6])
    assert len(eng.cache._lb) <= 2 and len(eng.cache._ub) <= 2
    eng.remove(rng.choice(eng.active_ids(), size=20, replace=False).tolist())
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_apply_insert_batch_matches_sequential():
    rng = np.random.default_rng(21)
    pts = rng.normal(size=(50, 3))
    dataset = Dataset(pts, "l2")
    radii = [1.0, 1.8]
    live = np.arange(30)

    def seeded() -> EvidenceCache:
        cache = EvidenceCache(30)
        for r in radii:
            truth = _true_counts(dataset.subset(np.arange(30)), live, r)
            cache.record(r, live, truth, exact_mask=np.ones(30, bool))
        return cache

    new_ids = np.arange(30, 38)
    # Sequential: one apply_insert per object, growing prior set.
    seq = seeded()
    alive = np.zeros(50, dtype=bool)
    alive[:30] = True
    for v in new_ids:
        prior = np.flatnonzero(alive)
        neighbors = {
            r: prior[dataset.dist_many(int(v), prior) <= r] for r in radii
        }
        alive[v] = True
        seq.apply_insert(int(v), neighbors)
    # Batched: one evidence dict for the whole block.
    bat = seeded()
    bat.grow(38)
    prior = np.arange(30)
    evidence = {}
    for r in radii:
        within_prior = np.stack(
            [dataset.dist_many(int(v), prior) <= r for v in new_ids]
        )
        intra = np.stack(
            [dataset.dist_many(int(v), new_ids) <= r for v in new_ids]
        )
        np.fill_diagonal(intra, False)
        inc = within_prior.sum(axis=0)
        hit = inc > 0
        evidence[r] = (
            prior[hit], inc[hit],
            within_prior.sum(axis=1) + intra.sum(axis=1),
        )
    bat.apply_insert_batch(new_ids, evidence)
    for q in radii:
        np.testing.assert_array_equal(seq.lower_bounds(q), bat.lower_bounds(q))
        np.testing.assert_array_equal(seq.upper_bounds(q), bat.upper_bounds(q))


def test_apply_delete_batch_matches_sequential():
    rng = np.random.default_rng(22)
    pts = rng.normal(size=(40, 3))
    dataset = Dataset(pts, "l2")
    radii = [1.0, 1.8]
    live = np.arange(40)

    def seeded() -> EvidenceCache:
        cache = EvidenceCache(40)
        for r in radii:
            truth = _true_counts(dataset, live, r)
            cache.record(r, live, truth, exact_mask=np.ones(40, bool))
        return cache

    victims = np.asarray([3, 11, 25, 38])
    seq = seeded()
    alive = np.ones(40, dtype=bool)
    for v in victims:
        alive[v] = False
        others = np.flatnonzero(alive)
        neighbors = {
            r: others[dataset.dist_many(int(v), others) <= r] for r in radii
        }
        seq.apply_delete(int(v), neighbors)
    bat = seeded()
    survivors = np.setdiff1d(live, victims)
    evidence = {}
    for r in radii:
        dec = np.zeros(40, dtype=np.int64)
        for v in victims:
            within = survivors[dataset.dist_many(int(v), survivors) <= r]
            dec[within] += 1
        touched = np.flatnonzero(dec)
        evidence[r] = (touched, dec[touched])
    bat.apply_delete_batch(victims, evidence)
    for q in radii:
        np.testing.assert_array_equal(seq.lower_bounds(q), bat.lower_bounds(q))
        np.testing.assert_array_equal(seq.upper_bounds(q), bat.upper_bounds(q))
    # The conservative (no-evidence) form drops lb by the batch size.
    con = seeded()
    before = con.lower_bounds(1.0).copy()
    con.apply_delete_batch(victims, None)
    after = con.lower_bounds(1.0)
    np.testing.assert_array_equal(
        after[survivors], np.maximum(before[survivors] - victims.size, 0)
    )


def test_block_insert_matches_per_object_inserts(pool):
    """One insert([...block...]) == N insert([x]) calls: same answers,
    same repaired bounds, fewer broadcasts."""
    block = MutableDetectionEngine(metric="l2", K=6, seed=0)
    per = MutableDetectionEngine(metric="l2", K=6, seed=0)
    for eng in (block, per):
        eng.insert(pool[:100])
        eng.detect(1.8, 5)  # seed evidence at one radius
    block.insert(pool[100:140])
    for row in pool[100:140]:
        per.insert(row[None, :])
    a = block.detect(1.8, 5)
    b = per.detect(1.8, 5)
    np.testing.assert_array_equal(a.outliers, b.outliers)
    for q in (1.8,):
        np.testing.assert_array_equal(
            block.cache.lower_bounds(q), per.cache.lower_bounds(q)
        )
        np.testing.assert_array_equal(
            block.cache.upper_bounds(q), per.cache.upper_bounds(q)
        )
    block.close()
    per.close()


def test_cache_repair_rejects_bad_ids():
    cache = EvidenceCache(4)
    with pytest.raises(ParameterError):
        cache.apply_insert(6, None)  # skips row 4, 5
    with pytest.raises(ParameterError):
        cache.apply_delete(9)
    with pytest.raises(ParameterError):
        cache.grow(2)
    with pytest.raises(ParameterError):
        cache.take(np.empty(0, dtype=np.int64))
    with pytest.raises(ParameterError):
        cache.evict(0)
    with pytest.raises(ParameterError):
        EvidenceCache(4, max_radii=0)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "remove", "detect"]),
                  st.integers(0, 10_000)),
        min_size=3,
        max_size=12,
    ),
)
@settings(max_examples=15, deadline=None)
def test_random_interleavings_property(ops):
    gen = np.random.default_rng(11)
    pool = np.concatenate(
        [gen.normal(size=(160, 3)), gen.normal(size=(6, 3)) * 0.2 + 15.0]
    )
    eng = MutableDetectionEngine(metric="l2", K=5, seed=0)
    eng.insert(pool[:40])
    cursor = 40
    opgen = np.random.default_rng(17)
    for op, salt in ops:
        if op == "insert" and cursor < pool.shape[0]:
            step = 1 + salt % 20
            eng.insert(pool[cursor : cursor + step])
            cursor += step
        elif op == "remove" and eng.n_active > 12:
            live = eng.active_ids()
            take = 1 + salt % min(8, live.size - 10)
            victims = opgen.choice(live, size=take, replace=False)
            eng.remove(victims.tolist())
        elif op == "detect":
            r = 1.2 + 0.2 * (salt % 4)
            _oracle_check(eng, r, 2 + salt % 4)
    _oracle_check(eng, 1.5, 4)
    eng.close()
