"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.datasets import (
    blobs_with_outliers,
    cluster_sizes,
    image_blobs_with_outliers,
    mutate_word,
    random_word,
    sphere_blobs_with_outliers,
    words_with_outliers,
)
from repro.exceptions import ParameterError
from repro.metrics import levenshtein


def test_cluster_sizes_sum():
    sizes = cluster_sizes(1000, 7, rng=0)
    assert sizes.sum() == 1000
    assert sizes.size == 7
    assert (sizes >= 1).all()


def test_cluster_sizes_are_skewed():
    sizes = cluster_sizes(1000, 8, rng=0, alpha=1.2)
    assert sizes.max() > 2 * sizes.min()


def test_cluster_sizes_validation():
    with pytest.raises(ParameterError):
        cluster_sizes(5, 10)
    with pytest.raises(ParameterError):
        cluster_sizes(5, 0)


def test_blobs_shape_and_determinism():
    a = blobs_with_outliers(200, dim=5, rng=3)
    b = blobs_with_outliers(200, dim=5, rng=3)
    assert a.shape == (200, 5)
    np.testing.assert_array_equal(a, b)
    c = blobs_with_outliers(200, dim=5, rng=4)
    assert not np.array_equal(a, c)


def test_blobs_nonneg_flag():
    pts = blobs_with_outliers(100, dim=4, rng=0, nonneg=True)
    assert (pts >= 0).all()


def test_blobs_planted_outliers_are_far():
    pts = blobs_with_outliers(
        300, dim=4, n_clusters=3, core_std=0.5, tail_frac=0.0,
        center_spread=8.0, planted_frac=0.01, planted_spread=100.0, rng=0,
    )
    from repro import Dataset
    from repro.index import brute_force_knn

    ds = Dataset(pts, "l2")
    # The planted points' nearest neighbor is far relative to core scale.
    nn_dists = np.asarray(
        [brute_force_knn(ds, p, 1)[1][0] for p in range(ds.n)]
    )
    assert np.sort(nn_dists)[-3:].min() > 5.0


def test_sphere_blobs_normalised():
    pts = sphere_blobs_with_outliers(150, dim=10, rng=0)
    np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-12)


def test_image_blobs_pixel_range():
    pts = image_blobs_with_outliers(80, side=12, rng=0)
    assert pts.shape == (80, 144)
    assert pts.min() >= 0.0
    assert pts.max() <= 255.0


def test_random_word_length_and_alphabet(rng):
    w = random_word(rng, 12)
    assert len(w) == 12
    assert w.islower() and w.isalpha()


def test_mutate_word_bounded_edit_distance(rng):
    for _ in range(30):
        base = random_word(rng, int(rng.integers(4, 12)))
        n_edits = int(rng.integers(1, 3))
        mutated = mutate_word(rng, base, n_edits)
        assert levenshtein(base, mutated) <= n_edits


def test_words_with_outliers_structure():
    words = words_with_outliers(300, n_stems=15, planted_frac=0.02, rng=0)
    assert len(words) == 300
    lengths = [len(w) for w in words]
    assert max(lengths) >= 25  # long planted outliers present
    assert min(lengths) >= 1


def test_words_deterministic():
    a = words_with_outliers(100, rng=6, n_stems=8)
    b = words_with_outliers(100, rng=6, n_stems=8)
    assert a == b


def test_generators_validate_small_n():
    with pytest.raises(ParameterError):
        blobs_with_outliers(3, dim=2, n_clusters=8)
    with pytest.raises(ParameterError):
        words_with_outliers(4, n_stems=10)
