"""Unit tests for MRPG construction and the builder registry."""

import numpy as np
import pytest

from repro import build_graph, build_mrpg, MRPGConfig
from repro.analysis import aknn_recall, connectivity_report
from repro.exceptions import GraphError
from repro.graphs import available_graphs
from repro.index import brute_force_knn


def test_meta_phases(mrpg_l2):
    phases = mrpg_l2.meta["phase_seconds"]
    assert set(phases) == {
        "nndescent+", "connect_subgraphs", "remove_detours", "remove_links",
    }
    assert mrpg_l2.meta["builder"] == "mrpg"
    assert mrpg_l2.meta["K"] == 8
    assert mrpg_l2.meta["K_prime"] == 32


def test_basic_uses_k_prime_equals_k(mrpg_basic_l2):
    assert mrpg_basic_l2.meta["builder"] == "mrpg-basic"
    assert mrpg_basic_l2.meta["K_prime"] == 8
    for ids, _ in mrpg_basic_l2.exact_knn.values():
        assert ids.size == 8


def test_exact_lists_are_exact(mrpg_l2, l2_dataset):
    for p, (ids, dists) in list(mrpg_l2.exact_knn.items())[:4]:
        _, ref_dists = brute_force_knn(l2_dataset, p, ids.size)
        np.testing.assert_allclose(dists, ref_dists, rtol=1e-10)


def test_connected(mrpg_l2):
    assert connectivity_report(mrpg_l2)["n_weak_components"] == 1


def test_pivots_flagged(mrpg_l2):
    assert mrpg_l2.pivots.any()


def test_high_aknn_recall_before_pruning(l2_dataset):
    # Property 1 holds for the un-pruned graph; Remove-Links then trades
    # direct links for pivot-mediated reachability (§5.4), so the full
    # MRPG's raw out-link recall is legitimately lower.
    cfg = MRPGConfig(K=8, prune=False)
    unpruned = build_mrpg(l2_dataset, K=8, rng=0, config=cfg)
    assert aknn_recall(l2_dataset, unpruned, K=8, sample_size=80, rng=0) > 0.9


def test_pruning_reduces_links_not_below_floor(mrpg_l2, l2_dataset):
    cfg = MRPGConfig(K=8, prune=False)
    unpruned = build_mrpg(l2_dataset, K=8, rng=0, config=cfg)
    assert mrpg_l2.n_links < unpruned.n_links
    assert min(mrpg_l2.degree(v) for v in range(mrpg_l2.n)) >= 1


def test_deterministic(l2_dataset):
    a = build_mrpg(l2_dataset, K=6, rng=77)
    b = build_mrpg(l2_dataset, K=6, rng=77)
    for v in range(a.n):
        assert a.neighbors_list(v) == b.neighbors_list(v)
    np.testing.assert_array_equal(a.pivots, b.pivots)
    assert sorted(a.exact_knn) == sorted(b.exact_knn)


def test_ablation_flags(l2_dataset):
    cfg = MRPGConfig(K=6, connect=False, detours=False, prune=False)
    bare = build_mrpg(l2_dataset, K=6, rng=0, config=cfg)
    assert "connect_subgraphs" not in bare.meta["phase_seconds"]
    assert "remove_detours" not in bare.meta["phase_seconds"]
    assert "remove_links" not in bare.meta["phase_seconds"]
    full = build_mrpg(l2_dataset, K=6, rng=0)
    # Detour links exist in the full build only.
    assert full.meta.get("detour_links_added", 0) >= 0
    assert "connect_subgraphs" in full.meta["phase_seconds"]


def test_registry_dispatch(l2_dataset):
    for name in available_graphs():
        g = build_graph(name, l2_dataset, K=6, rng=0)
        assert g.n == l2_dataset.n
        assert g.finalized


def test_registry_name_normalisation(l2_dataset):
    g = build_graph("MRPG_BASIC", l2_dataset, K=6, rng=0)
    assert g.meta["builder"] == "mrpg-basic"


def test_unknown_graph_rejected(l2_dataset):
    with pytest.raises(GraphError):
        build_graph("no-such-graph", l2_dataset)


def test_available_graphs():
    assert set(available_graphs()) == {
        "kgraph", "nsw", "hnsw", "mrpg", "mrpg-basic",
    }


def test_edit_metric_mrpg(mrpg_edit, edit_dataset):
    assert mrpg_edit.n == edit_dataset.n
    assert connectivity_report(mrpg_edit)["n_weak_components"] == 1
    assert mrpg_edit.exact_knn
