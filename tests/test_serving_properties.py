"""Property test for the query coalescer's bookkeeping.

Seeded-random interleavings of request arrivals, deadlines and
cancellations against an instrumented stub engine.  Whatever the
interleaving, the coalescer must drain its queue with **no request
dropped** (every client coroutine resolves exactly once), **none
duplicated** (an engine batch never holds the same query twice), and
**none answered from the wrong batch** (every answer echoes its own
``(r, k)``).
"""

from __future__ import annotations

import asyncio
import random
import time

import numpy as np
import pytest

from repro.engine.protocol import EngineCapabilities
from repro.serving import (
    AdmissionError,
    DeadlineExceeded,
    QueryCoalescer,
    ServingConfig,
)


class EchoEngine:
    """Instrumented coalescable stub: answers echo the query they serve."""

    capabilities = EngineCapabilities(mutable=True)

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.batches: list[list[tuple[float, int]]] = []
        self.mutation_log: list[str] = []
        self.stats: dict[str, int] = {}
        self._next_id = 0

    def batch(self, queries):
        if self.delay:
            time.sleep(self.delay)
        self.batches.append(list(queries))
        return [("q", rv, kv, len(self.batches)) for rv, kv in queries]

    def insert(self, objects):
        self.mutation_log.append("insert")
        ids = np.arange(self._next_id, self._next_id + len(objects))
        self._next_id += len(objects)
        return ids

    def remove(self, ids):
        self.mutation_log.append("remove")

    def describe(self) -> str:
        return "echo stub"

    def close(self) -> None:
        pass


RADII = (1.0, 2.0, 3.0)
KS = (5, 9)


def _random_plan(seed: int, n: int):
    """A reproducible request schedule: kind, args, timing, fate."""
    gen = random.Random(seed)
    plan = []
    for i in range(n):
        roll = gen.random()
        if roll < 0.8:
            kind, args = "query", (gen.choice(RADII), gen.choice(KS))
        elif roll < 0.9:
            kind, args = "insert", [[float(i)]]
        else:
            kind, args = "remove", [i]
        plan.append({
            "kind": kind,
            "args": args,
            "arrival": gen.uniform(0.0, 0.05),
            # A quarter of the clients walk away mid-wait.
            "cancel_after": (
                gen.uniform(0.0, 0.02) if gen.random() < 0.25 else None
            ),
            # A few carry deadlines shorter than the engine delay.
            "deadline": gen.choice([0.004, 0.05, 2.0]),
        })
    return plan


async def _drive(plan, engine, config) -> list[str]:
    """Run one interleaving; returns one outcome string per request."""
    outcomes: list[str] = [""] * len(plan)

    async with QueryCoalescer(engine, config) as serving:

        async def client(i: int, spec: dict) -> None:
            try:
                await asyncio.sleep(spec["arrival"])
                if spec["kind"] == "query":
                    res = await serving.query(
                        *spec["args"], deadline=spec["deadline"]
                    )
                    # The wrong-batch check: the answer must echo this
                    # request's own (r, k), whatever batch served it.
                    assert res[0] == "q" and res[1:3] == spec["args"], res
                elif spec["kind"] == "insert":
                    await serving.insert(spec["args"], deadline=spec["deadline"])
                else:
                    await serving.remove(spec["args"], deadline=spec["deadline"])
                outcomes[i] = "answered"
            except DeadlineExceeded:
                outcomes[i] = "deadline"
            except AdmissionError:
                outcomes[i] = "rejected"
            except asyncio.CancelledError:
                outcomes[i] = "cancelled"

        tasks = [
            asyncio.create_task(client(i, spec))
            for i, spec in enumerate(plan)
        ]

        async def reaper(task: asyncio.Task, after: float) -> None:
            await asyncio.sleep(after)
            task.cancel()

        reapers = [
            asyncio.create_task(reaper(tasks[i], spec["cancel_after"]))
            for i, spec in enumerate(plan)
            if spec["cancel_after"] is not None
        ]
        await asyncio.gather(*tasks, return_exceptions=True)
        await asyncio.gather(*reapers, return_exceptions=True)
        assert serving.pending == 0  # the queue fully drained
        stats = dict(serving.stats)

    # aclose() must leave nothing behind either.
    assert serving.pending == 0
    return outcomes, stats


@pytest.mark.parametrize("seed", range(6))
def test_random_interleavings_drain_cleanly(seed):
    plan = _random_plan(seed, n=40)
    engine = EchoEngine(delay=0.003)
    config = ServingConfig(
        window=0.002, max_batch=8, max_queue=12, max_cold=2,
        default_deadline=5.0,
    )
    outcomes, stats = asyncio.run(_drive(plan, engine, config))

    # No request dropped or duplicated: exactly one outcome each.
    assert all(out != "" for out in outcomes), outcomes
    counts = {out: outcomes.count(out) for out in set(outcomes)}
    assert sum(counts.values()) == len(plan)
    # Something actually happened in every category the plan provokes.
    assert counts.get("answered", 0) > 0

    # Engine-side: no batch ever holds the same (r, k) twice (identical
    # concurrent queries collapse onto one engine query), and batches
    # respect the configured bound.
    for batch in engine.batches:
        assert len(set(batch)) == len(batch), batch
        assert len(batch) <= config.max_batch

    # Bookkeeping adds up: every submitted request is accounted for by
    # exactly one of the terminal counters.  Clients reaped during their
    # arrival sleep never reach _submit, so `requests` may undercount
    # the plan by at most the cancelled clients.
    assert stats["requests"] <= len(plan)
    assert stats["requests"] >= len(plan) - counts.get("cancelled", 0)
    assert stats["rejected"] == counts.get("rejected", 0)
    assert stats["deadline_expired"] == counts.get("deadline", 0)


def test_interleaving_with_zero_window_and_instant_engine():
    """Degenerate knobs (no window, no delay) still drain correctly."""
    plan = _random_plan(99, n=30)
    engine = EchoEngine(delay=0.0)
    config = ServingConfig(window=0.0, max_batch=4, max_queue=64, max_cold=1)
    outcomes, stats = asyncio.run(_drive(plan, engine, config))
    assert all(out != "" for out in outcomes)
    assert stats["answered"] >= outcomes.count("answered")


def test_burst_of_identical_queries_is_one_engine_call_per_batch():
    """Sanity bound: heavy duplication never multiplies engine work."""

    async def body():
        engine = EchoEngine(delay=0.002)
        config = ServingConfig(window=0.02, max_batch=128)
        async with QueryCoalescer(engine, config) as serving:
            await asyncio.gather(
                *[serving.query(1.0, 5) for _ in range(50)]
            )
            return engine, dict(serving.stats)

    engine, stats = asyncio.run(body())
    assert stats["engine_queries"] == len(engine.batches)  # all unique
    assert stats["engine_queries"] <= 3  # 50 requests, a handful of calls
    assert stats["coalesced"] >= 47
