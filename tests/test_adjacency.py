"""Unit tests for the Graph container."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import Graph


def test_add_link_directed():
    g = Graph(5)
    assert g.add_link(0, 1)
    assert g.has_link(0, 1)
    assert not g.has_link(1, 0)


def test_add_link_dedupes():
    g = Graph(5)
    assert g.add_link(0, 1)
    assert not g.add_link(0, 1)
    assert g.degree(0) == 1


def test_self_loop_refused():
    g = Graph(5)
    assert not g.add_link(2, 2)
    assert g.degree(2) == 0


def test_add_edge_both_directions():
    g = Graph(5)
    g.add_edge(1, 3)
    assert g.has_link(1, 3) and g.has_link(3, 1)


def test_remove_link():
    g = Graph(5)
    g.add_edge(0, 1)
    assert g.remove_link(0, 1)
    assert not g.has_link(0, 1)
    assert g.has_link(1, 0)
    assert not g.remove_link(0, 1)  # already gone


def test_remove_edge():
    g = Graph(5)
    g.add_edge(0, 1)
    g.remove_edge(0, 1)
    assert g.degree(0) == 0 and g.degree(1) == 0


def test_set_links_replaces_and_filters():
    g = Graph(6)
    g.add_link(0, 5)
    g.set_links(0, [1, 2, 2, 0, 3])  # dups and self dropped
    assert g.neighbors_list(0) == [1, 2, 3]
    assert not g.has_link(0, 5)


def test_neighbors_array_and_finalize():
    g = Graph(4)
    g.add_link(0, 2)
    g.add_link(0, 3)
    np.testing.assert_array_equal(g.neighbors(0), [2, 3])
    g.finalize()
    assert g.finalized
    np.testing.assert_array_equal(g.neighbors(0), [2, 3])
    # Mutation invalidates the frozen arrays.
    g.add_link(0, 1)
    assert not g.finalized
    np.testing.assert_array_equal(np.sort(g.neighbors(0)), [1, 2, 3])


def test_n_links_counts_directed():
    g = Graph(4)
    g.add_edge(0, 1)
    g.add_link(2, 3)
    assert g.n_links == 3


def test_empty_neighbors_shared_array():
    g = Graph(3)
    assert g.neighbors(0).size == 0
    g.finalize()
    assert g.neighbors(0).size == 0


def test_copy_is_deep():
    g = Graph(4)
    g.add_edge(0, 1)
    g.pivots[2] = True
    g.exact_knn[3] = (np.asarray([0, 1]), np.asarray([1.0, 2.0]))
    g.meta["K"] = 9
    c = g.copy()
    c.add_link(0, 2)
    c.pivots[2] = False
    c.exact_knn[3][0][0] = 99
    assert not g.has_link(0, 2)
    assert g.pivots[2]
    assert g.exact_knn[3][0][0] == 0
    assert c.meta["K"] == 9


def test_validate_detects_internal_corruption():
    g = Graph(4)
    g.add_link(0, 1)
    g.validate()
    g._adj[0].append(1)  # bypass the API: duplicate link
    with pytest.raises(GraphError):
        g.validate()


def test_validate_detects_out_of_range():
    g = Graph(3)
    g._adj[0].append(7)
    g._members[0].add(7)
    with pytest.raises(GraphError):
        g.validate()


def test_nbytes_grows_with_links():
    g1 = Graph(10)
    g2 = Graph(10)
    for v in range(1, 10):
        g2.add_link(0, v)
    assert g2.nbytes > g1.nbytes


def test_zero_vertices_rejected():
    with pytest.raises(GraphError):
        Graph(0)


def test_pivot_and_exact_flags():
    g = Graph(5)
    g.pivots[1] = True
    g.exact_knn[2] = (np.asarray([0]), np.asarray([1.0]))
    assert g.is_pivot(1) and not g.is_pivot(0)
    assert g.has_exact_knn(2) and not g.has_exact_knn(1)
