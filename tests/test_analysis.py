"""Unit tests for the analysis/instrumentation helpers."""

import numpy as np
import pytest

from repro import graph_dod
from repro.analysis import (
    aknn_recall,
    connectivity_report,
    degree_stats,
    filtering_stats,
    monotonic_path_coverage,
    to_networkx,
)
from repro.graphs import Graph


def test_filtering_stats_consistent_with_dod(
    l2_dataset, mrpg_l2, l2_params, l2_reference
):
    r, k = l2_params
    stats = filtering_stats(l2_dataset, mrpg_l2, r, k)
    res = graph_dod(l2_dataset, mrpg_l2, r, k)
    assert stats.candidates == res.counts["candidates"]
    assert stats.direct_outliers == res.counts["direct_outliers"]
    assert stats.outliers == l2_reference.size
    assert stats.false_positives == res.counts["false_positives"]
    assert 0.0 <= stats.fp_rate <= 1.0


def test_mrpg_has_fewer_false_positives_than_nsw(
    l2_dataset, mrpg_l2, nsw_l2, l2_params
):
    """Table 7's headline ordering at test scale."""
    r, k = l2_params
    f_mrpg = filtering_stats(l2_dataset, mrpg_l2, r, k).false_positives
    f_nsw = filtering_stats(l2_dataset, nsw_l2, r, k).false_positives
    assert f_mrpg <= f_nsw


def test_connectivity_report_keys(mrpg_l2):
    rep = connectivity_report(mrpg_l2)
    assert rep["n_weak_components"] >= 1
    assert rep["largest_weak"] <= mrpg_l2.n
    assert rep["n_strong_components"] >= rep["n_weak_components"]


def test_connectivity_on_disconnected_graph():
    g = Graph(6)
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    rep = connectivity_report(g)
    assert rep["n_weak_components"] == 4  # two pairs + two isolated


def test_to_networkx_roundtrip(kgraph_l2):
    nxg = to_networkx(kgraph_l2)
    assert nxg.number_of_nodes() == kgraph_l2.n
    assert nxg.number_of_edges() == kgraph_l2.n_links


def test_degree_stats(kgraph_l2):
    stats = degree_stats(kgraph_l2)
    assert stats["min"] == 8  # KGraph: exactly K out-links each
    assert stats["max"] == 8
    assert stats["total_links"] == kgraph_l2.n_links


def test_aknn_recall_bounds(l2_dataset, kgraph_l2):
    rec = aknn_recall(l2_dataset, kgraph_l2, K=8, sample_size=40, rng=0)
    assert 0.0 <= rec <= 1.0
    assert rec > 0.9  # KGraph is a direct AKNN graph


def test_monotonic_coverage_bounds(l2_dataset, mrpg_l2, l2_params):
    r, _ = l2_params
    cov = monotonic_path_coverage(l2_dataset, mrpg_l2, r, sample_size=30, rng=0)
    assert 0.0 <= cov <= 1.0
    assert cov > 0.5  # MRPG is built to make neighbors reachable


def test_mrpg_coverage_at_least_kgraph(l2_dataset, mrpg_l2, kgraph_l2, l2_params):
    r, _ = l2_params
    cov_m = monotonic_path_coverage(l2_dataset, mrpg_l2, r, sample_size=40, rng=1)
    cov_k = monotonic_path_coverage(l2_dataset, kgraph_l2, r, sample_size=40, rng=1)
    assert cov_m >= cov_k - 0.05
