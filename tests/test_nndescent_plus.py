"""Unit tests for NNDescent+ (§5.1)."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graphs import nndescent_plus
from repro.index import brute_force_knn


@pytest.fixture(scope="module")
def result(l2_dataset):
    return nndescent_plus(l2_dataset, K=8, n_exact=12, rng=0)


def test_pivots_present(result, l2_dataset):
    assert result.pivots.any()
    assert result.pivots.sum() < l2_dataset.n / 2


def test_exact_lists_count(result):
    assert len(result.exact_knn) == 12


def test_exact_lists_are_truly_exact(result, l2_dataset):
    for p, (ids, dists) in list(result.exact_knn.items())[:5]:
        ref_ids, ref_dists = brute_force_knn(l2_dataset, p, ids.size)
        np.testing.assert_allclose(dists, ref_dists, rtol=1e-10)


def test_k_prime_default_is_4k(result):
    for ids, _ in result.exact_knn.values():
        assert ids.size == 4 * 8


def test_k_prime_override(l2_dataset):
    res = nndescent_plus(l2_dataset, K=6, K_prime=6, n_exact=5, rng=0)
    for ids, _ in res.exact_knn.values():
        assert ids.size == 6


def test_exact_targets_have_largest_knn_sums(result, l2_dataset):
    # Exact lists go to the objects with the largest sum of AKNN
    # distances — the probable outliers.
    sums = result.knn.sum_dists
    chosen = np.asarray(sorted(result.exact_knn))
    threshold = np.sort(sums)[-12 * 3]  # allow approximation slack
    assert (sums[chosen] >= threshold).mean() > 0.5


def test_seeded_fraction(result):
    assert 0.0 < result.seeded_fraction <= 1.0


def test_timing_keys(result):
    assert set(result.timings) == {"partition", "descent", "exact_knn"}
    assert all(v >= 0 for v in result.timings.values())


def test_k_prime_below_k_rejected(l2_dataset):
    with pytest.raises(ParameterError):
        nndescent_plus(l2_dataset, K=8, K_prime=4)


def test_n_exact_zero(l2_dataset):
    res = nndescent_plus(l2_dataset, K=6, n_exact=0, rng=0)
    assert res.exact_knn == {}


def test_k_prime_capped_at_n_minus_one():
    from repro import Dataset

    ds = Dataset(np.random.default_rng(0).normal(size=(30, 3)), "l2")
    res = nndescent_plus(ds, K=5, K_prime=100, n_exact=3, rng=0)
    for ids, _ in res.exact_knn.values():
        assert ids.size == 29
