"""Round-trip and error-path coverage for graph/engine (de)serialisation.

Every way a persisted index can be wrong — truncated or corrupted
archives, unsupported format versions, missing arrays, payloads
inconsistent with themselves or with the dataset they are loaded
against — must surface as a :class:`GraphError` with a message naming
the offending file, never as a silent half-loaded index or a raw
``zipfile``/``KeyError`` traceback.
"""

import json

import numpy as np
import pytest

from repro import (
    Dataset,
    DetectionEngine,
    MutableDetectionEngine,
    ShardedDetectionEngine,
    load_engine,
    load_graph,
    load_mutable_engine,
    load_sharded_engine,
    save_engine,
    save_graph,
    save_mutable_engine,
    save_sharded_engine,
)
from repro.exceptions import GraphError, ParameterError


@pytest.fixture()
def engine(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    eng = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    eng.sweep([r * 0.95, r, r * 1.05], k=k)
    return eng


@pytest.fixture()
def sharded_engine(l2_dataset, l2_params):
    r, k = l2_params
    eng = ShardedDetectionEngine(
        l2_dataset, n_shards=3, workers=1, graph="mrpg", K=8, rng=0
    )
    eng.sweep([r * 0.95, r, r * 1.05], k=k)
    yield eng
    eng.close()


# -- engine snapshot round-trip --------------------------------------------------


def test_engine_snapshot_roundtrip_serves_warm(engine, l2_dataset, l2_params, tmp_path):
    r, k = l2_params
    path = tmp_path / "engine.npz"
    save_engine(engine, path)
    loaded = load_engine(path, l2_dataset)
    assert loaded.stats == engine.stats
    assert loaded.cache.radii == engine.cache.radii
    for radius in engine.cache.radii:
        np.testing.assert_array_equal(
            loaded.cache.lower_bounds(radius), engine.cache.lower_bounds(radius)
        )
        np.testing.assert_array_equal(
            loaded.cache.upper_bounds(radius), engine.cache.upper_bounds(radius)
        )
    # A radius already served must be a pure cache hit after restart.
    res = loaded.query(r, k)
    assert res.pairs == 0
    assert np.array_equal(res.outliers, engine.query(r, k).outliers)


def test_engine_snapshot_is_a_loadable_graph(engine, mrpg_l2, tmp_path):
    path = tmp_path / "engine.npz"
    save_engine(engine, path)
    graph = load_graph(path)  # snapshot is a superset of the graph format
    assert graph.n == mrpg_l2.n
    for v in range(0, graph.n, 17):
        assert graph.neighbors_list(v) == mrpg_l2.neighbors_list(v)


def test_engine_save_method_matches_module_function(engine, l2_dataset, tmp_path):
    a, b = tmp_path / "a.npz", tmp_path / "b.npz"
    engine.save(a)
    save_engine(engine, b)
    ea = DetectionEngine.load(a, l2_dataset)
    eb = load_engine(b, l2_dataset)
    assert ea.stats == eb.stats == engine.stats


# -- corrupted / truncated archives ---------------------------------------------


def test_load_graph_rejects_garbage_bytes(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this is definitely not a zip archive" * 10)
    with pytest.raises(GraphError, match="corrupted or truncated"):
        load_graph(path)


def test_load_graph_rejects_truncated_archive(kgraph_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(kgraph_l2, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(GraphError, match=str(path.name)):
        load_graph(path)


def test_load_engine_rejects_truncated_archive(engine, l2_dataset, tmp_path):
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: int(len(blob) * 0.6)])
    with pytest.raises(GraphError):
        load_engine(path, l2_dataset)


def test_load_graph_missing_file_is_graph_error(tmp_path):
    with pytest.raises(GraphError, match="no such"):
        load_graph(tmp_path / "never_written.npz")


def test_load_graph_rejects_missing_arrays(kgraph_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(kgraph_l2, path)
    with np.load(path) as data:
        payload = {k: data[k] for k in data.files if k != "indices"}
    np.savez(path, **payload)
    with pytest.raises(GraphError, match="missing array 'indices'"):
        load_graph(path)


# -- format versions -------------------------------------------------------------


def _rewrite(path, **overrides):
    with np.load(path) as data:
        payload = {k: data[k] for k in data.files}
    payload.update(overrides)
    np.savez(path, **payload)


def test_load_graph_rejects_wrong_version(kgraph_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(kgraph_l2, path)
    _rewrite(path, format_version=np.asarray(99))
    with pytest.raises(GraphError, match="version 99"):
        load_graph(path)


def test_load_engine_rejects_wrong_engine_version(engine, l2_dataset, tmp_path):
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    _rewrite(path, engine_format_version=np.asarray(42))
    with pytest.raises(GraphError, match="snapshot version 42"):
        load_engine(path, l2_dataset)


def test_load_engine_rejects_bare_graph_file(kgraph_l2, l2_dataset, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(kgraph_l2, path)
    with pytest.raises(GraphError, match="not an engine snapshot"):
        load_engine(path, l2_dataset)


# -- payload consistency ----------------------------------------------------------


def test_load_graph_rejects_out_of_range_targets(kgraph_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(kgraph_l2, path)
    with np.load(path) as data:
        indices = data["indices"].copy()
    indices[0] = kgraph_l2.n + 5
    _rewrite(path, indices=indices)
    with pytest.raises(GraphError, match="out of range"):
        load_graph(path)


def test_load_graph_rejects_inconsistent_offsets(kgraph_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(kgraph_l2, path)
    with np.load(path) as data:
        indptr = data["indptr"].copy()
    indptr[-1] += 3
    _rewrite(path, indptr=indptr)
    with pytest.raises(GraphError, match="inconsistent"):
        load_graph(path)


def test_load_graph_rejects_decreasing_exact_ptr(mrpg_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(mrpg_l2, path)
    with np.load(path) as data:
        exact_ptr = data["exact_ptr"].copy()
    assert exact_ptr.size >= 3, "MRPG fixture must carry exact-K'NN lists"
    # Swap two offsets: sizes still sum correctly but a segment inverts.
    exact_ptr[1], exact_ptr[2] = exact_ptr[2], exact_ptr[1]
    _rewrite(path, exact_ptr=exact_ptr)
    with pytest.raises(GraphError, match="inconsistent"):
        load_graph(path)


def test_load_engine_rejects_zero_width_cache_rows(engine, l2_dataset, tmp_path):
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    _rewrite(
        path,
        cache_lb=np.empty((1, 0), dtype=np.int64),
        cache_lb_radii=np.asarray([1.0]),
    )
    with pytest.raises(GraphError, match="cache"):
        load_engine(path, l2_dataset)


def test_load_graph_rejects_bad_metadata_json(kgraph_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(kgraph_l2, path)
    _rewrite(path, meta=np.asarray("{not json"))
    with pytest.raises(GraphError, match="JSON"):
        load_graph(path)


def test_load_engine_rejects_dataset_size_mismatch(engine, tmp_path, rng):
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    other = Dataset(rng.normal(size=(engine.n + 7, 6)), "l2")
    with pytest.raises(GraphError, match="wrong dataset"):
        load_engine(path, other)


def test_load_engine_rejects_different_data_of_same_size(engine, tmp_path, rng):
    # Same cardinality, different objects: the cached bounds would be
    # about the wrong points, so the fingerprint must catch it.
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    other = Dataset(rng.normal(size=(engine.n, 6)), "l2")
    with pytest.raises(GraphError, match="fingerprint"):
        load_engine(path, other)


def test_load_engine_rejects_different_metric_on_same_data(
    engine, blob_points, tmp_path
):
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    other = Dataset(blob_points, "l1")  # identical objects, different metric
    with pytest.raises(GraphError, match="metric"):
        load_engine(path, other)


def test_load_engine_rejects_mismatched_cache_arrays(engine, l2_dataset, tmp_path):
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    _rewrite(
        path,
        cache_lb=np.zeros((1, engine.n + 2), dtype=np.int64),
        cache_lb_radii=np.asarray([1.0]),
    )
    with pytest.raises(GraphError, match="cache"):
        load_engine(path, l2_dataset)


def test_load_engine_rejects_radii_row_count_mismatch(engine, l2_dataset, tmp_path):
    # A zip would silently attribute bounds to the wrong radius — this
    # must be a load-time error, never a mis-paired cache.
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    with np.load(path) as data:
        radii = data["cache_lb_radii"]
    assert radii.size >= 2, "fixture engine must have served several radii"
    _rewrite(path, cache_lb_radii=radii[1:])
    with pytest.raises(GraphError, match="radii"):
        load_engine(path, l2_dataset)


def test_load_engine_rejects_bad_engine_metadata(engine, l2_dataset, tmp_path):
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    _rewrite(path, engine_meta=np.asarray("[broken"))
    with pytest.raises(GraphError, match="JSON"):
        load_engine(path, l2_dataset)


def test_engine_meta_is_plain_json(engine, tmp_path):
    path = tmp_path / "e.npz"
    save_engine(engine, path)
    with np.load(path) as data:
        meta = json.loads(str(data["engine_meta"]))
    assert meta["n"] == engine.n
    assert meta["stats"]["queries"] == engine.stats["queries"]


# -- mutable-engine snapshots ------------------------------------------------------


@pytest.fixture()
def mutable_engine(blob_points):
    eng = MutableDetectionEngine(metric="l2", K=6, seed=0)
    eng.insert(blob_points[:180])
    eng.detect(1.8, 5)
    eng.remove(list(range(0, 30)))
    eng.insert(blob_points[180:])
    yield eng
    eng.close()


def test_mutable_snapshot_roundtrip_serves_warm(mutable_engine, tmp_path):
    path = tmp_path / "mutable.npz"
    reference = mutable_engine.detect(1.8, 5)
    save_mutable_engine(mutable_engine, path)
    loaded = load_mutable_engine(path, mutable_engine.object_log())
    assert loaded.stats == mutable_engine.stats
    assert loaded.n_total == mutable_engine.n_total
    assert loaded.n_active == mutable_engine.n_active
    res = loaded.detect(1.8, 5)
    np.testing.assert_array_equal(res.outliers, reference.outliers)
    assert res.pairs == 0  # repaired bounds survived the restart intact
    # Mutations continue seamlessly after restore.
    loaded.remove([int(loaded.active_ids()[0])])
    after = loaded.detect(1.8, 5)
    assert after.n_outliers >= 0
    loaded.close()


def test_mutable_save_method_matches_module_function(mutable_engine, tmp_path):
    a, b = tmp_path / "a.npz", tmp_path / "b.npz"
    mutable_engine.save(a)
    save_mutable_engine(mutable_engine, b)
    log = mutable_engine.object_log()
    ea = MutableDetectionEngine.load(a, log)
    eb = load_mutable_engine(b, log)
    assert ea.stats == eb.stats == mutable_engine.stats
    ea.close()
    eb.close()


def test_save_mutable_before_insert_is_an_error(tmp_path):
    eng = MutableDetectionEngine(metric="l2")
    with pytest.raises(ParameterError, match="before any insert"):
        save_mutable_engine(eng, tmp_path / "never.npz")


def test_load_mutable_rejects_truncated_archive(mutable_engine, tmp_path):
    path = tmp_path / "m.npz"
    save_mutable_engine(mutable_engine, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: int(len(blob) * 0.6)])
    with pytest.raises(GraphError):
        load_mutable_engine(path, mutable_engine.object_log())


def test_load_mutable_rejects_static_engine_snapshot(engine, l2_dataset, tmp_path):
    path = tmp_path / "static.npz"
    save_engine(engine, path)
    with pytest.raises(GraphError, match="not a mutable-engine snapshot"):
        load_mutable_engine(path, list(range(l2_dataset.n)))


def test_load_mutable_rejects_wrong_version(mutable_engine, tmp_path):
    path = tmp_path / "m.npz"
    save_mutable_engine(mutable_engine, path)
    _rewrite(path, mutable_format_version=np.asarray(77))
    with pytest.raises(GraphError, match="version 77"):
        load_mutable_engine(path, mutable_engine.object_log())


def test_load_mutable_rejects_wrong_log_length(mutable_engine, tmp_path):
    path = tmp_path / "m.npz"
    save_mutable_engine(mutable_engine, path)
    with pytest.raises(GraphError, match="wrong object log"):
        load_mutable_engine(path, mutable_engine.object_log()[:-3])


def test_load_mutable_rejects_different_objects(mutable_engine, tmp_path, rng):
    path = tmp_path / "m.npz"
    save_mutable_engine(mutable_engine, path)
    fake = list(rng.normal(size=(mutable_engine.n_total, 6)))
    with pytest.raises(GraphError, match="fingerprint"):
        load_mutable_engine(path, fake)


def test_load_mutable_rejects_bad_alive_mask(mutable_engine, tmp_path):
    path = tmp_path / "m.npz"
    save_mutable_engine(mutable_engine, path)
    _rewrite(path, alive=np.ones(3, dtype=bool))
    with pytest.raises(GraphError, match="alive mask"):
        load_mutable_engine(path, mutable_engine.object_log())


def test_load_mutable_rejects_bad_metadata_json(mutable_engine, tmp_path):
    path = tmp_path / "m.npz"
    save_mutable_engine(mutable_engine, path)
    _rewrite(path, mutable_meta=np.asarray("{nope"))
    with pytest.raises(GraphError, match="JSON"):
        load_mutable_engine(path, mutable_engine.object_log())


# -- sharded-engine manifests -----------------------------------------------------


def test_sharded_snapshot_roundtrip_serves_warm(
    sharded_engine, l2_dataset, l2_params, tmp_path
):
    r, k = l2_params
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    loaded = load_sharded_engine(path, l2_dataset, workers=1)
    assert loaded.stats == sharded_engine.stats
    assert loaded.n_shards == sharded_engine.n_shards
    for mine, theirs in zip(loaded.shard_ids, sharded_engine.shard_ids):
        np.testing.assert_array_equal(mine, theirs)
    # A radius already served must be a pure cache hit after restart —
    # in *every* shard at once.
    res = loaded.query(r, k)
    assert res.pairs == 0
    assert np.array_equal(res.outliers, sharded_engine.query(r, k).outliers)
    loaded.close()


def test_sharded_save_method_matches_module_function(
    sharded_engine, l2_dataset, tmp_path
):
    a, b = tmp_path / "a", tmp_path / "b"
    sharded_engine.save(a)
    save_sharded_engine(sharded_engine, b)
    ea = ShardedDetectionEngine.load(a, l2_dataset, workers=1)
    eb = load_sharded_engine(b, l2_dataset, workers=1)
    assert ea.stats == eb.stats == sharded_engine.stats
    ea.close()
    eb.close()


def test_load_sharded_missing_directory_is_graph_error(l2_dataset, tmp_path):
    with pytest.raises(GraphError, match="no sharded-engine snapshot"):
        load_sharded_engine(tmp_path / "never_saved", l2_dataset)


def test_load_sharded_rejects_missing_shard_file(
    sharded_engine, l2_dataset, tmp_path
):
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    (path / "shard_0001.npz").unlink()
    with pytest.raises(GraphError, match="missing"):
        load_sharded_engine(path, l2_dataset)


def test_load_sharded_rejects_truncated_shard_file(
    sharded_engine, l2_dataset, tmp_path
):
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    shard = path / "shard_0000.npz"
    blob = shard.read_bytes()
    shard.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(GraphError, match="corrupted or truncated"):
        load_sharded_engine(path, l2_dataset)


def test_load_sharded_rejects_corrupt_manifest(
    sharded_engine, l2_dataset, tmp_path
):
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    (path / "manifest.npz").write_bytes(b"not a zip archive at all" * 8)
    with pytest.raises(GraphError, match="corrupted or truncated"):
        load_sharded_engine(path, l2_dataset)


def _rewrite_manifest(path, **overrides):
    manifest = path / "manifest.npz"
    with np.load(manifest) as data:
        payload = {k: data[k] for k in data.files}
    payload.update(overrides)
    np.savez(manifest, **payload)


def test_load_sharded_rejects_wrong_version(sharded_engine, l2_dataset, tmp_path):
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    _rewrite_manifest(path, sharded_format_version=np.asarray(99))
    with pytest.raises(GraphError, match="version 99"):
        load_sharded_engine(path, l2_dataset)


def test_load_sharded_rejects_broken_partition(
    sharded_engine, l2_dataset, tmp_path
):
    # Duplicated ids would double-count neighbors in the merge — this
    # must be a load-time error, never a silently wrong engine.
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    with np.load(path / "manifest.npz") as data:
        flat = data["shard_ids"].copy()
    flat[0] = flat[1]
    _rewrite_manifest(path, shard_ids=flat)
    with pytest.raises(GraphError, match="partition"):
        load_sharded_engine(path, l2_dataset)


def test_load_sharded_rejects_inconsistent_sizes(
    sharded_engine, l2_dataset, tmp_path
):
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    with np.load(path / "manifest.npz") as data:
        sizes = data["shard_sizes"].copy()
    sizes[0] += 1
    _rewrite_manifest(path, shard_sizes=sizes)
    with pytest.raises(GraphError, match="inconsistent"):
        load_sharded_engine(path, l2_dataset)


def test_load_sharded_rejects_wrong_dataset(sharded_engine, tmp_path, rng):
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    other = Dataset(rng.normal(size=(sharded_engine.n, 6)), "l2")
    with pytest.raises(GraphError, match="fingerprint"):
        load_sharded_engine(path, other)


def test_load_sharded_rejects_dataset_size_mismatch(
    sharded_engine, tmp_path, rng
):
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    other = Dataset(rng.normal(size=(sharded_engine.n + 5, 6)), "l2")
    with pytest.raises(GraphError, match="wrong dataset"):
        load_sharded_engine(path, other)


def test_load_sharded_rejects_bad_manifest_metadata(
    sharded_engine, l2_dataset, tmp_path
):
    path = tmp_path / "sharded"
    save_sharded_engine(sharded_engine, path)
    _rewrite_manifest(path, manifest_meta=np.asarray("{broken"))
    with pytest.raises(GraphError, match="JSON"):
        load_sharded_engine(path, l2_dataset)
