"""Unit tests for the VP-tree index."""

import numpy as np
import pytest

from repro import Dataset, VPTree
from repro.exceptions import ParameterError
from repro.index import brute_force_knn, brute_force_range


@pytest.fixture(scope="module")
def tree(l2_dataset):
    return VPTree(l2_dataset, capacity=8, rng=0)


def _radii(dataset):
    gen = np.random.default_rng(9)
    a = gen.integers(0, dataset.n, size=400)
    b = gen.integers(0, dataset.n, size=400)
    d = dataset.pair_dist(a[a != b], b[a != b])
    return [float(np.quantile(d, q)) for q in (0.02, 0.15, 0.6)]


def test_range_search_matches_brute_force(tree, l2_dataset):
    for r in _radii(l2_dataset):
        for q in (0, 17, 100, 259):
            got = tree.range_search(q, r)
            expected = brute_force_range(l2_dataset, q, r)
            np.testing.assert_array_equal(got, expected)


def test_count_within_matches_brute_force(tree, l2_dataset):
    for r in _radii(l2_dataset):
        for q in (3, 77, 200):
            got = tree.count_within(q, r)
            expected = brute_force_range(l2_dataset, q, r).size
            assert got == expected


def test_count_within_early_termination(tree, l2_dataset):
    r = _radii(l2_dataset)[2]  # generous radius: everyone has neighbors
    q = 5
    full = tree.count_within(q, r)
    assert full > 4
    stopped = tree.count_within(q, r, stop_at=3)
    assert 3 <= stopped <= full


def test_count_excludes_self_by_default(tree, l2_dataset):
    r = _radii(l2_dataset)[0]
    q = 42
    with_self = tree.count_within(q, r, exclude_self=False)
    without = tree.count_within(q, r)
    assert with_self == without + 1


def test_knn_matches_brute_force(tree, l2_dataset):
    for q in (0, 99, 255):
        ids, dists = tree.knn(q, 10)
        ref_ids, ref_dists = brute_force_knn(l2_dataset, q, 10)
        # Ties can permute ids; distances must agree exactly.
        np.testing.assert_allclose(dists, ref_dists, rtol=1e-10)
        assert q not in ids


def test_knn_sorted_ascending(tree):
    _, dists = tree.knn(11, 15)
    assert np.all(np.diff(dists) >= 0)


def test_knn_larger_than_dataset(l2_dataset):
    tree = VPTree(l2_dataset, capacity=8, rng=1)
    ids, dists = tree.knn(0, l2_dataset.n + 50)
    assert ids.size == l2_dataset.n - 1  # everyone but the query


def test_subset_index(l2_dataset):
    subset = np.arange(0, l2_dataset.n, 2, dtype=np.int64)
    tree = VPTree(l2_dataset, capacity=4, rng=0, indices=subset)
    assert tree.size == subset.size
    r = _radii(l2_dataset)[1]
    got = tree.range_search(0, r)
    full = brute_force_range(l2_dataset, 0, r)
    expected = np.asarray(sorted(set(full.tolist()) & set(subset.tolist())))
    np.testing.assert_array_equal(got, expected)


def test_subset_index_foreign_queries(l2_dataset):
    """Counts for queries *outside* the indexed subset are exact.

    The sharded engine's phase C counts candidates against foreign
    shards through per-shard subset trees; the query object is then a
    dataset member that is not one of the tree's items, and must not
    be excluded from anything.
    """
    subset = np.arange(0, l2_dataset.n, 2, dtype=np.int64)
    tree = VPTree(l2_dataset, capacity=4, rng=0, indices=subset)
    member = set(subset.tolist())
    r = _radii(l2_dataset)[1]
    for q in (1, 33, 251):
        assert q not in member
        expected = np.intersect1d(
            brute_force_range(l2_dataset, q, r), subset
        ).size
        assert tree.count_within(q, r) == expected
        # stop_at truncation never overshoots the true subset count.
        assert tree.count_within(q, r, stop_at=2) <= expected


def test_edit_metric_tree(edit_dataset):
    tree = VPTree(edit_dataset, capacity=8, rng=0)
    got = tree.range_search(0, 3.0)
    expected = brute_force_range(edit_dataset, 0, 3.0)
    np.testing.assert_array_equal(got, expected)


def test_degenerate_identical_points():
    ds = Dataset(np.zeros((40, 3)), "l2")
    tree = VPTree(ds, capacity=4, rng=0)
    assert tree.count_within(0, 0.0) == 39
    ids, dists = tree.knn(0, 5)
    assert np.all(dists == 0.0)


def test_capacity_validation(l2_dataset):
    with pytest.raises(ParameterError):
        VPTree(l2_dataset, capacity=0)


def test_negative_radius_rejected(tree):
    with pytest.raises(ParameterError):
        tree.count_within(0, -1.0)
    with pytest.raises(ParameterError):
        tree.range_search(0, -0.1)


def test_knn_k_validation(tree):
    with pytest.raises(ParameterError):
        tree.knn(0, 0)


def test_nbytes_positive(tree):
    assert tree.nbytes > 0


def test_deterministic_given_seed(l2_dataset):
    t1 = VPTree(l2_dataset, capacity=8, rng=5)
    t2 = VPTree(l2_dataset, capacity=8, rng=5)
    np.testing.assert_array_equal(t1._vantage, t2._vantage)
    assert t1.node_count == t2.node_count
