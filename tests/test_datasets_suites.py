"""Unit tests for the named dataset suites (Table 1/2 analogues)."""

import numpy as np
import pytest

from repro.datasets import SUITE_NAMES, SUITES, get_spec, load_suite, make_objects
from repro.exceptions import ParameterError


def test_all_seven_suites_present():
    assert set(SUITE_NAMES) == {
        "deep", "glove", "hepmass", "mnist", "pamap2", "sift", "words",
    }


@pytest.mark.parametrize("name", SUITE_NAMES)
def test_suite_loads_small(name):
    ds, spec = load_suite(name, n=80, seed=0)
    assert ds.n == 80
    assert spec.name == name
    assert spec.default_r > 0
    assert spec.default_k >= 1
    assert spec.verify in ("vptree", "linear")


@pytest.mark.parametrize("name", SUITE_NAMES)
def test_suite_metric_matches_table1(name):
    expected = {
        "deep": "l2", "glove": "angular", "hepmass": "l1", "mnist": "l4",
        "pamap2": "l2", "sift": "l2", "words": "edit",
    }
    assert SUITES[name].metric == expected[name]


@pytest.mark.parametrize("name", SUITE_NAMES)
def test_suite_deterministic(name):
    a = make_objects(name, n=60, seed=5)
    b = make_objects(name, n=60, seed=5)
    if name == "words":
        assert a == b
    else:
        np.testing.assert_array_equal(a, b)


def test_vector_suite_dimensions():
    for name, dim in [("deep", 96), ("glove", 25), ("hepmass", 27),
                      ("mnist", 784), ("pamap2", 51), ("sift", 128)]:
        pts = make_objects(name, n=50, seed=0)
        assert pts.shape == (50, dim), name


def test_pamap2_domain():
    pts = make_objects("pamap2", n=150, seed=0)
    assert pts.min() >= 0.0
    assert pts.max() <= 1e5 + 1e-6


def test_sift_nonnegative():
    pts = make_objects("sift", n=100, seed=0)
    assert pts.min() >= 0.0


def test_unknown_suite_rejected():
    with pytest.raises(ParameterError):
        get_spec("netflix")


def test_calibrated_ratio_holds_at_default_scale():
    """The pinned (r, k) must reproduce the recorded outlier ratio.

    Run on the cheapest suite (hepmass: L1, n=2000) to keep the test
    fast; scripts/calibrate_suites.py checks all seven.
    """
    from repro.datasets import outlier_ratio

    ds, spec = load_suite("hepmass", seed=0)
    ratio = outlier_ratio(ds, spec.default_r, spec.default_k)
    assert ratio == pytest.approx(spec.calibrated_ratio, abs=0.002)


def test_default_ratios_in_paper_band():
    for spec in SUITES.values():
        assert 0.001 <= spec.calibrated_ratio <= 0.08, spec.name
