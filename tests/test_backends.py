"""Numeric backends: float32 screening must be invisible in every answer.

The contract under test (``repro.backends``): a screening backend may
compute candidate distances in reduced precision, but any pair whose
float32 value lands inside the metric's error band of a requested
threshold is recomputed in float64 — so threshold verdicts, and with
them sub-k counts and outlier sets, are bit-identical to the exact
``numpy64`` default on every engine.  The hypothesis test at the bottom
fuzzes every registered metric's ``pair_dist(bound=)`` path across
store dtypes: a pair with true distance ``<= bound`` must never be
misclassified, screened or not.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset
from repro.backends import (
    BackendStats,
    Float32ScreenBackend,
    Numpy64Backend,
    available_backends,
    resolve_backend,
)
from repro.engine import create_engine
from repro.exceptions import BackendError, GraphError, ParameterError
from repro.index import brute_force_outliers


def _cloud(n=220, dim=8, seed=0):
    return np.random.default_rng(seed).normal(size=(n, dim))


def _radius(ds, q=0.3, seed=1):
    gen = np.random.default_rng(seed)
    a = gen.integers(0, ds.n, 300)
    b = gen.integers(0, ds.n, 300)
    keep = a != b
    return float(np.quantile(ds.pair_dist(a[keep], b[keep]), q))


# -- registry ----------------------------------------------------------------


def test_registry_names_and_resolution():
    assert {"numpy64", "float32", "cupy", "torch"} <= set(available_backends())
    assert isinstance(resolve_backend(None), Numpy64Backend)
    assert isinstance(resolve_backend("float32"), Float32ScreenBackend)
    inst = Float32ScreenBackend()
    assert resolve_backend(inst) is inst


def test_unknown_backend_raises():
    with pytest.raises(BackendError, match="unknown"):
        resolve_backend("float33")
    with pytest.raises(BackendError):
        resolve_backend(3.14)


def test_gpu_stubs_degrade_cleanly_without_their_dependency():
    # The container has neither cupy nor torch: the stubs must raise a
    # clear BackendError at construction, never fall back silently.
    for name in ("cupy", "torch"):
        with pytest.raises(BackendError, match=name):
            resolve_backend(name)


def test_each_resolution_is_a_fresh_stats_unit():
    a = resolve_backend("float32")
    b = resolve_backend("float32")
    assert a is not b
    a.stats.add(10, 2)
    assert b.stats.screened_pairs == 0


def test_backend_stats_arithmetic():
    s = BackendStats()
    s.add(100, 3)
    s.add(50, 0)
    t = BackendStats()
    t.add(7, 1)
    s.merge(t)
    assert s.as_dict() == {
        "screen_calls": 3,
        "screened_pairs": 157,
        "rescreened_pairs": 4,
    }
    s.reset()
    assert s.screen_calls == 0 and s.screened_pairs == 0


# -- store validation --------------------------------------------------------


def test_store_rejects_object_dtype_and_ragged_rows():
    with pytest.raises(GraphError, match="rectangular"):
        Dataset([[0.0, 1.0], [2.0]], "l2")
    with pytest.raises(GraphError, match="object-dtype"):
        Dataset(np.array([[0.0, "x"]], dtype=object), "l2")


def test_store_rejects_float16():
    pts = np.ones((4, 3), dtype=np.float16)
    with pytest.raises(GraphError, match="float16"):
        Dataset(pts, "l2")


def test_store_rejects_non_numeric_dtype():
    with pytest.raises(GraphError, match="non-numeric"):
        Dataset(np.array([["a", "b"]]), "l2")


def test_store_accepts_integer_and_float32_inputs():
    assert Dataset(np.arange(12).reshape(4, 3), "l2").n == 4
    assert Dataset(np.ones((4, 3), dtype=np.float32), "l1").n == 4


# -- Dataset-level screening -------------------------------------------------


@pytest.mark.parametrize("metric", ["l1", "l2", "l4", "angular"])
@pytest.mark.parametrize("consistent", [False, True])
def test_screened_verdicts_match_exact(metric, consistent):
    pts = _cloud()
    ds64 = Dataset(pts, metric)
    ds32 = Dataset(pts, metric, backend="float32")
    r = _radius(ds64)
    gen = np.random.default_rng(2)
    a = gen.integers(0, ds64.n, 4000)
    b = gen.integers(0, ds64.n, 4000)
    exact = ds64.pair_dist(a, b, consistent=consistent)
    for radii in (r, (0.5 * r, r, 1.5 * r)):
        got = ds32.pair_dist(a, b, bound=radii, consistent=consistent)
        thresholds = (radii,) if isinstance(radii, float) else radii
        for t in thresholds:
            np.testing.assert_array_equal(got <= t, exact <= t)
    stats = ds32.backend_stats()
    assert stats["backend"] == "float32"
    assert stats["screened_pairs"] > 0


def test_unbounded_and_scalar_paths_stay_exact():
    pts = _cloud(n=60)
    ds64 = Dataset(pts, "l2")
    ds32 = Dataset(pts, "l2", backend="float32")
    gen = np.random.default_rng(3)
    a = gen.integers(0, 60, 500)
    b = gen.integers(0, 60, 500)
    # bound=None never screens: values are bit-exact float64.
    np.testing.assert_array_equal(
        ds32.pair_dist(a, b), ds64.pair_dist(a, b)
    )
    # dist/dist_many are never delegated either (scalar oracle path).
    assert ds32.dist(0, 1) == ds64.dist(0, 1)
    np.testing.assert_array_equal(
        ds32.dist_many(0, np.arange(60), bound=2.0),
        ds64.dist_many(0, np.arange(60), bound=2.0),
    )
    assert ds32.backend_stats()["screen_calls"] == 0


def test_set_backend_roundtrip_and_repr():
    ds = Dataset(_cloud(n=40), "l2")
    assert ds.backend_name == "numpy64"
    assert ds.kernel_budget_scale == 1.0
    ds.set_backend("float32")
    assert ds.backend_name == "float32"
    assert ds.kernel_budget_scale == 2.0
    assert "backend=float32" in repr(ds)
    ds.set_backend(None)
    assert ds.backend_name == "numpy64"
    assert ds.backend_stats()["backend"] == "numpy64"


def test_subset_and_view_share_the_backend_instance():
    ds = Dataset(_cloud(n=50), "l2", backend="float32")
    sub = ds.subset(np.arange(0, 50, 2))
    v = ds.view()
    assert sub.backend is ds.backend
    assert v.backend is ds.backend
    r = _radius(ds)
    gen = np.random.default_rng(4)
    a = gen.integers(0, sub.n, 200)
    b = gen.integers(0, sub.n, 200)
    sub.pair_dist(a, b, bound=r)
    v.pair_dist(a, b, bound=r)
    # Both scans aggregated on the one shared stats unit.
    assert ds.backend_stats()["screen_calls"] >= 2


def test_non_vector_metric_falls_through_to_exact():
    words = ["abc", "abd", "xyz", "xxyz", "a", "ab", "abcd", "zzz"] * 4
    ds = Dataset(words, "edit", backend="float32")
    gen = np.random.default_rng(5)
    a = gen.integers(0, ds.n, 100)
    b = gen.integers(0, ds.n, 100)
    exact = Dataset(words, "edit").pair_dist(a, b, bound=2.0)
    np.testing.assert_array_equal(ds.pair_dist(a, b, bound=2.0), exact)
    assert ds.backend_stats()["screen_calls"] == 0


def test_overflow_guard_disables_screening_not_correctness():
    # Coordinates large enough to overflow float32 power sums: the
    # screen must refuse (exact kernels take over), not screen wrongly.
    pts = _cloud(n=40, dim=8) * 1e30
    ds = Dataset(pts, "l2", backend="float32")
    assert ds._screen is None or ds.backend_stats()["screen_calls"] == 0
    ds64 = Dataset(pts, "l2")
    r = _radius(ds64)
    gen = np.random.default_rng(6)
    a = gen.integers(0, 40, 200)
    b = gen.integers(0, 40, 200)
    got = ds.pair_dist(a, b, bound=r)
    exact = ds64.pair_dist(a, b, bound=r)
    np.testing.assert_array_equal(got <= r, exact <= r)


# -- engines -----------------------------------------------------------------


ENGINE_CONFIGS = [
    {},
    {"shards": 2, "workers": 1},
    {"mutable": True},
    {"mutable": True, "shards": 2, "workers": 1},
]


@pytest.mark.parametrize("config", ENGINE_CONFIGS)
def test_every_engine_kind_is_bit_identical_under_float32(config):
    pts = _cloud(n=180, dim=6, seed=7)
    ds = Dataset(pts, "l2")
    r = _radius(ds)
    with create_engine(pts, seed=3, **config) as e64, create_engine(
        pts, seed=3, backend="float32", **config
    ) as e32:
        for k in (5, 12):
            a = e64.query(r, k)
            b = e32.query(r, k)
            assert np.array_equal(a.outliers, b.outliers)
        ref = brute_force_outliers(ds.view(), r, 12)
        assert np.array_equal(b.outliers, ref)
        assert e32.backend_name == "float32"
        assert e64.backend_name == "numpy64"
        assert e32.backend_stats()["screened_pairs"] > 0
        assert e64.backend_stats()["screened_pairs"] == 0


def test_mutable_engines_stay_identical_under_churn():
    pts = _cloud(n=150, dim=6, seed=8)
    gen = np.random.default_rng(9)
    r = _radius(Dataset(pts, "l2"))
    for config in ENGINE_CONFIGS[2:]:
        with create_engine(pts, seed=3, **config) as e64, create_engine(
            pts, seed=3, backend="float32", **config
        ) as e32:
            for step in range(4):
                batch = gen.normal(size=(10, 6))
                e64.insert(batch)
                e32.insert(batch)
                victims = gen.choice(
                    e64.active_ids(), size=5, replace=False
                ).tolist()
                e64.remove(victims)
                e32.remove(victims)
                a = e64.query(r, 8)
                b = e32.query(r, 8)
                assert np.array_equal(a.outliers, b.outliers), step


def test_per_shard_backend_choice_and_validation():
    pts = _cloud(n=120, dim=6, seed=10)
    r = _radius(Dataset(pts, "l2"))
    with create_engine(pts, seed=3, shards=2, workers=1) as ref:
        expected = ref.query(r, 8).outliers
    with create_engine(
        pts, seed=3, shards=2, workers=1, backend=["float32", "numpy64"]
    ) as mixed:
        assert np.array_equal(mixed.query(r, 8).outliers, expected)
        assert mixed.backend_name == "float32+numpy64"
        per_shard = mixed.backend_stats()["per_shard"]
        assert per_shard[0]["screened_pairs"] > 0
        assert per_shard[1]["screened_pairs"] == 0
    with pytest.raises(ParameterError, match="backend list"):
        create_engine(pts, shards=3, workers=1, backend=["float32"])
    with pytest.raises(ParameterError, match="per-shard"):
        create_engine(pts, backend=["float32"])


def test_engine_surfaces_missing_dependency_eagerly():
    pts = _cloud(n=60, dim=4)
    for config in ENGINE_CONFIGS:
        with pytest.raises(BackendError):
            create_engine(pts, backend="cupy", **config)


# -- snapshots and serving ---------------------------------------------------


def test_snapshot_reload_with_backend(tmp_path):
    from repro.io import load_any_engine

    pts = _cloud(n=140, dim=6, seed=11)
    ds = Dataset(pts, "l2")
    r = _radius(ds)
    path = tmp_path / "static.npz"
    with create_engine(ds, seed=3) as engine:
        expected = engine.query(r, 8).outliers
        engine.save(path)
    with load_any_engine(path, dataset=ds, backend="float32") as warm:
        assert np.array_equal(warm.query(r, 8).outliers, expected)
        assert warm.backend_name == "float32"
        # A radius the snapshot never served: fresh screened kernels.
        fresh = warm.query(0.93 * r, 8)
        ref = brute_force_outliers(ds.view(), 0.93 * r, 8)
        assert np.array_equal(fresh.outliers, ref)
        assert warm.backend_stats()["screened_pairs"] > 0


def test_sharded_snapshot_reload_with_backend(tmp_path):
    from repro.io import load_any_engine

    pts = _cloud(n=140, dim=6, seed=12)
    ds = Dataset(pts, "l2")
    r = _radius(ds)
    path = tmp_path / "sharded"
    with create_engine(ds, seed=3, shards=2, workers=1) as engine:
        expected = engine.query(r, 8).outliers
        engine.save(path)
    with load_any_engine(
        path, dataset=ds, workers=1, backend="float32"
    ) as warm:
        assert np.array_equal(warm.query(r, 8).outliers, expected)
        fresh = warm.query(0.93 * r, 8)
        ref = brute_force_outliers(ds.view(), 0.93 * r, 8)
        assert np.array_equal(fresh.outliers, ref)
        assert warm.backend_stats()["screened_pairs"] > 0


def test_serving_stats_expose_backend_counters():
    from repro.serving import EngineServer

    pts = _cloud(n=100, dim=6, seed=13)
    r = _radius(Dataset(pts, "l2"))
    with create_engine(pts, seed=3, backend="float32") as engine:
        engine.query(r, 8)
        payload = EngineServer(engine)._stats_payload()
        assert payload["backend"]["backend"] == "float32"
        assert payload["backend"]["screened_pairs"] > 0


# -- the property: bounded pair_dist never misclassifies ---------------------


PROPERTY_METRICS = ["l1", "l2", "l4", "lp:3", "angular", "hamming", "edit",
                    "jaccard"]


def _objects_for(metric, gen, dtype):
    if metric == "hamming":
        return gen.integers(0, 2, size=(40, 24)).astype(np.uint8)
    if metric == "edit":
        letters = "abcd"
        return [
            "".join(gen.choice(list(letters), size=gen.integers(1, 9)))
            for _ in range(40)
        ]
    if metric == "jaccard":
        return [
            frozenset(gen.choice(20, size=gen.integers(1, 8), replace=False))
            for _ in range(40)
        ]
    pts = gen.normal(size=(40, 5)) * gen.uniform(1e-3, 1e3)
    if metric == "angular":
        return pts  # normalised in prepare; keep float to avoid zero rows
    if dtype == "int64":
        return np.round(pts).astype(np.int64)
    return pts.astype(dtype)


@given(
    metric=st.sampled_from(PROPERTY_METRICS),
    seed=st.integers(0, 2**16),
    dtype=st.sampled_from(["float64", "float32", "int64"]),
    backend=st.sampled_from([None, "float32"]),
    quantile=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bounded_pair_dist_never_misclassifies(
    metric, seed, dtype, backend, quantile
):
    gen = np.random.default_rng(seed)
    objects = _objects_for(metric, gen, dtype)
    ds = Dataset(objects, metric, backend=backend)
    oracle = Dataset(objects, metric)
    a = gen.integers(0, ds.n, 150)
    b = gen.integers(0, ds.n, 150)
    for consistent in (False, True):
        exact = oracle.pair_dist(a, b, consistent=consistent)
        r = float(np.quantile(exact, quantile))
        for radii in (r, (0.5 * r, r)):
            got = ds.pair_dist(a, b, bound=radii, consistent=consistent)
            thresholds = (radii,) if isinstance(radii, float) else radii
            for t in thresholds:
                np.testing.assert_array_equal(
                    got <= t, exact <= t,
                    err_msg=f"{metric} dtype={dtype} backend={backend} t={t}",
                )
