"""Unit tests for the NNDescent AKNN engine."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graphs import nndescent
from repro.index import brute_force_knn, vp_partition


@pytest.fixture(scope="module")
def result(l2_dataset):
    return nndescent(l2_dataset, K=8, rng=0)


def _recall(dataset, knn_ids, sample, K):
    hits = 0
    for p in sample:
        true_ids, _ = brute_force_knn(dataset, int(p), K)
        hits += len(set(true_ids.tolist()) & set(knn_ids[p].tolist()))
    return hits / (K * len(sample))


def test_high_recall_on_clustered_data(result, l2_dataset):
    recall = _recall(l2_dataset, result.knn_ids, range(0, l2_dataset.n, 5), 8)
    assert recall > 0.85


def test_rows_sorted_by_distance(result):
    assert np.all(np.diff(result.knn_dists, axis=1) >= 0)


def test_distances_are_true(result, l2_dataset):
    for p in (0, 50, 150):
        d = l2_dataset.dist_many(p, result.knn_ids[p])
        np.testing.assert_allclose(result.knn_dists[p], d, rtol=1e-10)


def test_no_self_neighbors(result):
    for p in range(result.knn_ids.shape[0]):
        assert p not in result.knn_ids[p]


def test_no_duplicate_neighbors(result):
    for p in range(result.knn_ids.shape[0]):
        row = result.knn_ids[p]
        assert len(set(row.tolist())) == row.size


def test_updates_taper(result):
    # Convergence: the final round has (far) fewer updates than the first.
    ups = result.updates_per_iter
    assert len(ups) >= 1
    if len(ups) > 1:
        assert ups[-1] <= ups[0]


def test_seeded_init_converges_faster(l2_dataset):
    part = vp_partition(l2_dataset, K=8, rng=0)
    seeded = nndescent(
        l2_dataset, K=8, rng=0,
        init_ids=part.init_ids, init_dists=part.init_dists,
        skip_unchanged=True,
    )
    random_init = nndescent(l2_dataset, K=8, rng=0)
    total_seeded = sum(seeded.updates_per_iter)
    total_random = sum(random_init.updates_per_iter)
    assert total_seeded < total_random


def test_skip_unchanged_preserves_recall(l2_dataset):
    res = nndescent(l2_dataset, K=8, rng=1, skip_unchanged=True)
    recall = _recall(l2_dataset, res.knn_ids, range(0, l2_dataset.n, 7), 8)
    assert recall > 0.8


def test_sum_dists_shape(result, l2_dataset):
    s = result.sum_dists
    assert s.shape == (l2_dataset.n,)
    assert np.all(np.isfinite(s))


def test_deterministic(l2_dataset):
    a = nndescent(l2_dataset, K=6, rng=42, max_iters=4)
    b = nndescent(l2_dataset, K=6, rng=42, max_iters=4)
    np.testing.assert_array_equal(a.knn_ids, b.knn_ids)


def test_edit_metric(edit_dataset):
    res = nndescent(edit_dataset, K=6, rng=0)
    recall = _recall(edit_dataset, res.knn_ids, range(0, edit_dataset.n, 9), 6)
    assert recall > 0.7


def test_validation(l2_dataset):
    with pytest.raises(ParameterError):
        nndescent(l2_dataset, K=0)
    with pytest.raises(ParameterError):
        nndescent(l2_dataset, K=l2_dataset.n)
    with pytest.raises(ParameterError):
        nndescent(
            l2_dataset, K=4,
            init_ids=np.zeros((3, 4), dtype=np.int64),
            init_dists=np.zeros((3, 4)),
        )


def test_max_iters_respected(l2_dataset):
    res = nndescent(l2_dataset, K=6, rng=0, max_iters=2)
    assert res.iterations <= 2
