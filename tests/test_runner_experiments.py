"""Tiny-scale smoke tests for every experiment runner.

The benches exercise the runners at full scale; these tests run each
one at a fraction of that size so a broken runner fails in seconds
inside ``pytest tests/`` rather than minutes into a bench session.
"""

import numpy as np
import pytest

from repro.harness import EXPERIMENTS, clear_caches, run_experiment


@pytest.fixture(autouse=True, scope="module")
def tiny_scale():
    import os

    old = {
        key: os.environ.get(key)
        for key in ("REPRO_BENCH_SCALE", "REPRO_BENCH_SUITES")
    }
    os.environ["REPRO_BENCH_SCALE"] = "0.08"
    os.environ["REPRO_BENCH_SUITES"] = "glove,words"
    clear_caches()
    yield
    clear_caches()
    for key, val in old.items():
        if val is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = val


def _run(name, **kwargs):
    tables = run_experiment(name, **kwargs)
    assert tables, name
    for table in tables:
        assert table.rows, (name, table.exp_id)
        text = table.format()
        assert table.exp_id in text
    return tables


def test_registry_is_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5", "table6",
        "table7", "table8", "fig6", "fig7", "fig8", "fig9", "fig10",
        "ablation", "ablation_nndescent", "ablation_k", "ablation_hnsw",
        "ext_topn", "ext_dynamic", "ext_streaming", "engine_sweep",
    }


def test_table3_runner():
    (table,) = _run("table3")
    assert set(table.columns) == {"dataset", "nsw", "kgraph", "mrpg-basic", "mrpg"}


def test_table4_runner():
    (table,) = _run("table4", suite="glove")
    assert [row["phase"] for row in table.rows] == [
        "NNDescent(+)", "Connect-SubGraphs", "Remove-Detours", "Remove-Links",
    ]


def test_table5_runner():
    time_table, pairs_table = _run("table5")
    assert len(time_table.rows) == 2  # glove, words
    for row in pairs_table.rows:
        assert row["mrpg"] < row["nested-loop"]


def test_table6_runner():
    (table,) = _run("table6")
    for row in table.rows:
        assert row["nested-loop"] == 0.0
        assert row["mrpg"] > 0


def test_table8_runner():
    (table,) = _run("table8", suite="glove")
    assert {row["phase"] for row in table.rows} == {"filter", "verify"}


def test_fig_runners():
    for name, x_col in [("fig6", "rate"), ("fig7", "rate"), ("fig8", "k"),
                        ("fig9", "r")]:
        (table,) = _run(name, rates=(0.5, 1.0)) if name in ("fig6", "fig7") \
            else _run(name)
        assert x_col in table.columns, name


def test_fig10_runner():
    (table,) = _run("fig10", jobs=(1, 2))
    assert {row["n_jobs"] for row in table.rows} == {1, 2}


def test_ablation_runner():
    (table,) = _run("ablation", suite="glove", K=4, k_factor=2.0)
    fp = {row["variant"]: row["false_positives"] for row in table.rows}
    assert fp["mrpg (full)"] <= fp["w/o both"]


def test_ablation_nndescent_runner():
    (table,) = _run("ablation_nndescent", suite="glove")
    assert {row["builder"] for row in table.rows} == {"nndescent", "nndescent+"}


def test_ablation_k_runner():
    (table,) = _run("ablation_k", suite="glove", Ks=(4, 8))
    rows = sorted(table.rows, key=lambda r: r["K"])
    assert rows[1]["index_mb"] > rows[0]["index_mb"]


def test_ablation_hnsw_runner():
    (table,) = _run("ablation_hnsw", suite="glove")
    assert {row["graph"] for row in table.rows} == {"nsw", "hnsw"}


def test_ext_topn_runner():
    (table,) = _run("ext_topn", suite="glove", n_top=5)
    rows = {row["variant"]: row for row in table.rows}
    assert rows["orca + mrpg seeding"]["pairs"] <= rows["orca (no graph)"]["pairs"] * 1.5


def test_ext_dynamic_runner():
    (table,) = _run("ext_dynamic", suite="glove", batches=3)
    rows = {row["strategy"]: row for row in table.rows}
    assert rows["incremental"]["outliers"] == rows["rebuild"]["outliers"]


def test_ext_streaming_runner():
    (table,) = _run("ext_streaming", suite="glove")
    assert len(table.rows) == 2
