"""Unit tests for random-partition parallel execution."""

import numpy as np
import pytest

from repro.core import map_over_objects, partition_indices
from repro.exceptions import ParameterError


def test_partition_covers_everything_once():
    chunks = partition_indices(100, 7, rng=0)
    merged = np.sort(np.concatenate(chunks))
    np.testing.assert_array_equal(merged, np.arange(100))


def test_partition_is_random(l2_dataset):
    chunks = partition_indices(100, 4, rng=1)
    # A random partition should not be four contiguous runs.
    assert any(np.any(np.diff(np.sort(c)) > 1) for c in chunks)


def test_partition_more_parts_than_items():
    chunks = partition_indices(3, 10, rng=0)
    assert sum(c.size for c in chunks) == 3
    assert all(c.size for c in chunks)


def test_partition_validation():
    with pytest.raises(ParameterError):
        partition_indices(10, 0)


def test_map_over_objects_merges_results(l2_dataset):
    def worker(view, chunk):
        return [int(p) for p in chunk if p % 2 == 0]

    results, pairs = map_over_objects(
        l2_dataset, np.arange(50), worker, n_jobs=4, rng=0
    )
    merged = sorted(p for part in results for p in part)
    assert merged == list(range(0, 50, 2))
    assert pairs == 0  # worker did no distance work


def test_map_over_objects_counts_pairs(l2_dataset):
    def worker(view, chunk):
        for p in chunk:
            view.dist_many(int(p), np.arange(10))
        return None

    _, pairs = map_over_objects(l2_dataset, np.arange(20), worker, n_jobs=3, rng=0)
    assert pairs == 20 * 10


def test_map_over_objects_serial_path(l2_dataset):
    def worker(view, chunk):
        view.dist(0, 1)
        return chunk.size

    results, pairs = map_over_objects(l2_dataset, np.arange(9), worker, n_jobs=1)
    assert results == [9]
    assert pairs == 1


def test_map_over_objects_empty_items(l2_dataset):
    results, pairs = map_over_objects(
        l2_dataset, np.empty(0, dtype=np.int64), lambda v, c: 1, n_jobs=2
    )
    assert results == []
    assert pairs == 0


def test_worker_exception_propagates(l2_dataset):
    def worker(view, chunk):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        map_over_objects(l2_dataset, np.arange(5), worker, n_jobs=2)


def test_n_jobs_validation(l2_dataset):
    with pytest.raises(ParameterError):
        map_over_objects(l2_dataset, np.arange(5), lambda v, c: 1, n_jobs=0)


# -- WorkerPool: the engine's persistent executor --------------------------------


def test_worker_pool_maps_with_slots(l2_dataset):
    from repro.core import WorkerPool

    with WorkerPool(l2_dataset, n_jobs=3, rng=0) as pool:
        seen_slots = set()

        def worker(view, chunk, slot):
            seen_slots.add(slot)
            return [int(p) for p in chunk]

        results, pairs = pool.map(np.arange(50), worker)
        covered = sorted(p for chunk in results for p in chunk)
        assert covered == list(range(50))
        assert seen_slots <= {0, 1, 2}
        assert pairs == 0  # worker did no distance computations


def test_worker_pool_counts_pair_deltas(l2_dataset):
    from repro.core import WorkerPool

    pool = WorkerPool(l2_dataset, n_jobs=2, rng=0)
    ids = np.arange(20)

    def worker(view, chunk, slot):
        for p in chunk:
            view.dist(int(p), int((p + 1) % l2_dataset.n))
        return chunk.size

    _, pairs_first = pool.map(ids, worker)
    _, pairs_second = pool.map(ids, worker)
    # Deltas, not cumulative totals: both calls report their own work.
    assert pairs_first == 20 and pairs_second == 20
    pool.close()


def test_worker_pool_map_after_close_raises(l2_dataset):
    from repro.core import WorkerPool

    pool = WorkerPool(l2_dataset, n_jobs=2, rng=0)
    pool.close()
    with pytest.raises(ParameterError, match="after close"):
        pool.map(np.arange(5), lambda view, chunk, slot: 0)
    # Serial pools must refuse too, not silently keep working.
    serial = WorkerPool(l2_dataset, n_jobs=1, rng=0)
    serial.close()
    with pytest.raises(ParameterError, match="after close"):
        serial.map(np.arange(5), lambda view, chunk, slot: 0)
