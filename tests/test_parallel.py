"""Unit tests for random-partition parallel execution and shard actors."""

import numpy as np
import pytest

from repro.core import map_over_objects, partition_indices
from repro.exceptions import ParameterError


def test_partition_covers_everything_once():
    chunks = partition_indices(100, 7, rng=0)
    merged = np.sort(np.concatenate(chunks))
    np.testing.assert_array_equal(merged, np.arange(100))


def test_partition_is_random(l2_dataset):
    chunks = partition_indices(100, 4, rng=1)
    # A random partition should not be four contiguous runs.
    assert any(np.any(np.diff(np.sort(c)) > 1) for c in chunks)


def test_partition_more_parts_than_items():
    chunks = partition_indices(3, 10, rng=0)
    assert sum(c.size for c in chunks) == 3
    assert all(c.size for c in chunks)


def test_partition_validation():
    with pytest.raises(ParameterError):
        partition_indices(10, 0)


def test_map_over_objects_merges_results(l2_dataset):
    def worker(view, chunk):
        return [int(p) for p in chunk if p % 2 == 0]

    results, pairs = map_over_objects(
        l2_dataset, np.arange(50), worker, n_jobs=4, rng=0
    )
    merged = sorted(p for part in results for p in part)
    assert merged == list(range(0, 50, 2))
    assert pairs == 0  # worker did no distance work


def test_map_over_objects_counts_pairs(l2_dataset):
    def worker(view, chunk):
        for p in chunk:
            view.dist_many(int(p), np.arange(10))
        return None

    _, pairs = map_over_objects(l2_dataset, np.arange(20), worker, n_jobs=3, rng=0)
    assert pairs == 20 * 10


def test_map_over_objects_serial_path(l2_dataset):
    def worker(view, chunk):
        view.dist(0, 1)
        return chunk.size

    results, pairs = map_over_objects(l2_dataset, np.arange(9), worker, n_jobs=1)
    assert results == [9]
    assert pairs == 1


def test_map_over_objects_empty_items(l2_dataset):
    results, pairs = map_over_objects(
        l2_dataset, np.empty(0, dtype=np.int64), lambda v, c: 1, n_jobs=2
    )
    assert results == []
    assert pairs == 0


def test_worker_exception_propagates(l2_dataset):
    def worker(view, chunk):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        map_over_objects(l2_dataset, np.arange(5), worker, n_jobs=2)


def test_n_jobs_validation(l2_dataset):
    with pytest.raises(ParameterError):
        map_over_objects(l2_dataset, np.arange(5), lambda v, c: 1, n_jobs=0)


# -- WorkerPool: the engine's persistent executor --------------------------------


def test_worker_pool_maps_with_slots(l2_dataset):
    from repro.core import WorkerPool

    with WorkerPool(l2_dataset, n_jobs=3, rng=0) as pool:
        seen_slots = set()

        def worker(view, chunk, slot):
            seen_slots.add(slot)
            return [int(p) for p in chunk]

        results, pairs = pool.map(np.arange(50), worker)
        covered = sorted(p for chunk in results for p in chunk)
        assert covered == list(range(50))
        assert seen_slots <= {0, 1, 2}
        assert pairs == 0  # worker did no distance computations


def test_worker_pool_counts_pair_deltas(l2_dataset):
    from repro.core import WorkerPool

    pool = WorkerPool(l2_dataset, n_jobs=2, rng=0)
    ids = np.arange(20)

    def worker(view, chunk, slot):
        for p in chunk:
            view.dist(int(p), int((p + 1) % l2_dataset.n))
        return chunk.size

    _, pairs_first = pool.map(ids, worker)
    _, pairs_second = pool.map(ids, worker)
    # Deltas, not cumulative totals: both calls report their own work.
    assert pairs_first == 20 and pairs_second == 20
    pool.close()


def test_worker_pool_map_after_close_raises(l2_dataset):
    from repro.core import WorkerPool

    pool = WorkerPool(l2_dataset, n_jobs=2, rng=0)
    pool.close()
    with pytest.raises(ParameterError, match="after close"):
        pool.map(np.arange(5), lambda view, chunk, slot: 0)
    # Serial pools must refuse too, not silently keep working.
    serial = WorkerPool(l2_dataset, n_jobs=1, rng=0)
    serial.close()
    with pytest.raises(ParameterError, match="after close"):
        serial.map(np.arange(5), lambda view, chunk, slot: 0)


# -- ShardPool: long-lived actors on worker processes -----------------------------


class _CounterActor:
    """Stateful test actor: remembers its shard id and a running total."""

    def __init__(self, shard: int):
        self.shard = shard
        self.total = 0

    def add(self, value: int):
        self.total += value
        return self.shard, self.total

    def boom(self):
        raise ValueError(f"shard {self.shard} exploded")


def _counter_factory(shard):
    from functools import partial

    return partial(_CounterActor, shard)


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_shard_pool_orders_results_by_shard(workers):
    from repro.core import ShardPool

    with ShardPool([_counter_factory(s) for s in range(5)], workers=workers) as pool:
        first = pool.call("add", common=(10,))
        assert first == [(s, 10) for s in range(5)]
        # Actors persist: state accumulates across calls.
        second = pool.call("add", shard_args=[(s,) for s in range(5)])
        assert second == [(s, 10 + s) for s in range(5)]


def test_shard_pool_groups_multiple_shards_per_worker():
    from repro.core import ShardPool

    # 5 shards on 2 workers: results still come back in shard order.
    with ShardPool([_counter_factory(s) for s in range(5)], workers=2) as pool:
        assert pool.call("add", common=(1,)) == [(s, 1) for s in range(5)]


@pytest.mark.parametrize("workers", [1, 2])
def test_shard_pool_propagates_actor_errors(workers):
    from repro.core import ShardPool

    with ShardPool([_counter_factory(s) for s in range(2)], workers=workers) as pool:
        with pytest.raises((RuntimeError, ValueError), match="exploded"):
            pool.call("boom")


def test_shard_pool_stays_consistent_after_actor_error():
    # An actor error in one worker must not leave the other workers'
    # replies queued on their pipes: a later call would then read the
    # failed round's stale payloads as its own answer.
    from repro.core import ShardPool

    class _HalfBroken(_CounterActor):
        def maybe_boom(self):
            if self.shard == 0:
                raise ValueError("exploded")
            return ("survived", self.shard)

    def factory(shard):
        from functools import partial

        return partial(_HalfBroken, shard)

    with ShardPool([factory(s) for s in range(4)], workers=2) as pool:
        with pytest.raises(RuntimeError, match="exploded"):
            pool.call("maybe_boom")
        # The next call must return THIS round's results for every shard.
        assert pool.call("add", common=(5,)) == [(s, 5) for s in range(4)]


def test_shard_pool_validates_arguments():
    from repro.core import ShardPool

    with pytest.raises(ParameterError):
        ShardPool([])
    with ShardPool([_counter_factory(0)], workers=1) as pool:
        with pytest.raises(ParameterError, match="shard_args"):
            pool.call("add", shard_args=[(1,), (2,)])
    with pytest.raises(ParameterError, match="after close"):
        pool.call("add", common=(1,))


def test_shard_pool_close_is_idempotent():
    from repro.core import ShardPool

    pool = ShardPool([_counter_factory(s) for s in range(3)], workers=2)
    assert pool.call("add", common=(2,))[2] == (2, 2)
    pool.close()
    pool.close()  # second close must be a no-op, not a crash


# -- shared-memory dataset transport ----------------------------------------------


def test_shared_memory_store_roundtrip():
    from repro.core import SharedMemoryStore
    import pickle

    arr = np.arange(24, dtype=np.float64).reshape(4, 6)
    store = SharedMemoryStore(arr)
    try:
        np.testing.assert_array_equal(store.array(), arr)
        # Pickling carries only the attachment handle, not the bytes.
        clone = pickle.loads(pickle.dumps(store))
        assert len(pickle.dumps(store)) < arr.nbytes
        view = clone.array()
        np.testing.assert_array_equal(view, arr)
        # Both sides map the *same* pages.
        view[0, 0] = 123.0
        assert store.array()[0, 0] == 123.0
        clone.close()
    finally:
        store.unlink()


def test_dataset_transport_vector_store(l2_dataset):
    from repro.core import DatasetTransport

    transport = DatasetTransport(l2_dataset)
    try:
        rebuilt = transport.materialize()
        assert rebuilt.n == l2_dataset.n
        assert rebuilt.metric.name == "l2"
        assert rebuilt.counter.pairs == 0  # fresh counter
        a, b = np.arange(10), np.arange(10, 20)
        np.testing.assert_array_equal(
            rebuilt.pair_dist(a, b), l2_dataset.view().pair_dist(a, b)
        )
    finally:
        transport.release()


def test_dataset_transport_string_store(edit_dataset):
    from repro.core import DatasetTransport

    transport = DatasetTransport(edit_dataset)
    rebuilt = transport.materialize()
    assert transport.kind == "raw"  # non-array stores fall back to pickling
    assert rebuilt.n == edit_dataset.n
    assert rebuilt.dist(0, 1) == edit_dataset.view().dist(0, 1)
    transport.release()


# -- the growable shared object store across processes ------------------------


class _StoreReaderActor:
    """Worker-side handle onto a :class:`SharedObjectStore`."""

    def __init__(self, shard: int):
        self.shard = shard
        self.handle = None

    def attach(self, meta):
        from repro.core.store import SharedObjectStore

        self.handle = SharedObjectStore.attach(meta)
        return self.handle.generation

    def sync(self, meta):
        self.handle.sync(meta)
        return self.handle.generation

    def checksum(self, length):
        return float(self.handle.rows(int(length)).sum())

    def detach(self):
        self.handle.close()
        return True


def _store_reader_factory(shard):
    # Module-level so spawn-mode workers can unpickle it by reference.
    from functools import partial

    return partial(_StoreReaderActor, shard)


def _require_start_method(start_method: str) -> None:
    import multiprocessing as mp

    if start_method not in mp.get_all_start_methods():
        pytest.skip(f"start method {start_method!r} unavailable")


@pytest.mark.slow
@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_store_handles_remap_across_start_methods(start_method):
    """Workers follow growth relocations and reject stale broadcasts."""
    _require_start_method(start_method)
    from repro.core import ShardPool
    from repro.core.store import SharedObjectStore

    store = SharedObjectStore(dim=4, capacity=2)
    pool = ShardPool(
        [_store_reader_factory(s) for s in range(2)],
        workers=2, start_method=start_method,
    )
    try:
        rows0 = np.arange(8, dtype=np.float64).reshape(2, 4)
        store.append(rows0)
        stale_meta = store.meta()
        assert pool.call("attach", common=(stale_meta,)) == [1, 1]
        assert pool.call("checksum", common=(store.length,)) == [rows0.sum()] * 2

        # Growth forces a relocation (generation bump, fresh segment
        # name): a metadata-only sync must re-map both workers.
        rows1 = np.ones((5, 4))
        store.append(rows1)
        assert store.generation == 2
        assert pool.call("sync", common=(store.meta(),)) == [2, 2]
        assert pool.call("checksum", common=(store.length,)) == [
            float(rows0.sum() + rows1.sum())
        ] * 2

        # A broadcast from before the relocation must be rejected in
        # the worker process, not silently rewind its view.
        with pytest.raises(RuntimeError, match="stale broadcast"):
            pool.call("sync", common=(stale_meta,))

        # The compaction epoch: drain on the barrier, compact, re-sync.
        store.tombstone([0])
        pool.barrier()
        keep = np.arange(1, store.length, dtype=np.int64)
        store.compact(keep)
        assert pool.call("sync", common=(store.meta(),)) == [3, 3]
        assert pool.call("checksum", common=(store.length,)) == [
            float(store.rows().sum())
        ] * 2
        pool.call("detach")
    finally:
        pool.close()
        store.unlink()


@pytest.mark.slow
@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_shm_engine_matches_list_engine_across_start_methods(start_method):
    """One churn trace, two stores, both start methods: identical answers."""
    _require_start_method(start_method)
    from repro.engine.mutable_sharded import MutableShardedDetectionEngine

    rng = np.random.default_rng(5)
    data = rng.standard_normal((90, 5))
    batch = rng.standard_normal((40, 5))  # overflows capacity: relocation
    engines = [
        MutableShardedDetectionEngine(
            metric="l2", n_shards=2, workers=2, K=8, seed=0,
            store=store, start_method=start_method,
        )
        for store in ("shm", "list")
    ]
    try:
        traces = []
        for eng in engines:
            eng.bulk_load(data)
            trace = [eng.insert(batch).tolist()]
            eng.remove(eng.active_ids()[::7].tolist())
            res = eng.detect(1.7, 6)
            trace.append(res.outliers.tolist())
            eng.rebalance()  # workers re-map their shard subsets
            trace.append(eng.vacuum().tolist())
            res = eng.detect(1.7, 6)
            trace.append(res.outliers.tolist())
            traces.append(trace)
        assert traces[0] == traces[1]
        assert engines[0].store_stats()["kind"] == "shm"
        assert engines[0].store_stats()["replicas"] == 1
    finally:
        for eng in engines:
            eng.close()


def test_shared_memory_store_close_unlink_idempotent():
    from repro.core import SharedMemoryStore

    arr = np.arange(6, dtype=np.float64).reshape(2, 3)
    first = SharedMemoryStore(arr)
    first.close()
    first.close()  # double close must be a no-op
    first.unlink()  # a detached owner can still destroy the segment
    first.unlink()
    second = SharedMemoryStore(arr)
    second.unlink()
    second.unlink()
    second.close()
    with pytest.raises(ParameterError, match="after unlink"):
        second.array()


@pytest.mark.parametrize("workers", [1, 2, 3])
def test_shard_pool_call_where_skips_unmasked(workers):
    from repro.core import ShardPool

    with ShardPool([_counter_factory(s) for s in range(5)], workers=workers) as pool:
        mask = [True, False, True, False, True]
        out = pool.call_where("add", [(s,) for s in range(5)], mask)
        assert [o is None for o in out] == [not m for m in mask]
        assert [o for o in out if o is not None] == [(s, s) for s in (0, 2, 4)]
        # Skipped actors really did not run: their totals are untouched.
        totals = pool.call("add", common=(0,))
        assert totals == [(0, 0), (1, 0), (2, 2), (3, 0), (4, 4)]


def test_shard_pool_call_where_validates_lengths():
    from repro.core import ShardPool
    from repro.exceptions import ParameterError

    with ShardPool([_counter_factory(s) for s in range(3)], workers=1) as pool:
        with pytest.raises(ParameterError):
            pool.call_where("add", [(0,)], [True, True, True])
        with pytest.raises(ParameterError):
            pool.call_where("add", [(0,), (1,), (2,)], [True])


@pytest.mark.parametrize("workers", [1, 2])
def test_shard_pool_busy_seconds(workers):
    import time as _time

    from repro.core import ShardPool

    class _Sleeper:
        def __init__(self, shard):
            self.shard = shard

        def nap(self):
            _time.sleep(0.02)
            return self.shard

    def factory(shard):
        from functools import partial

        return partial(_Sleeper, shard)

    with ShardPool([factory(s) for s in range(3)], workers=workers) as pool:
        baseline = pool.busy_seconds()
        assert baseline.shape == (3,)
        pool.call_where("nap", [() for _ in range(3)], [True, False, True])
        busy = pool.busy_seconds()
        assert busy[0] > baseline[0] and busy[2] > baseline[2]
        assert busy[1] == baseline[1]  # the masked-out shard never worked
