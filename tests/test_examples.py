"""Smoke tests: every example script must run end to end.

Examples honour ``REPRO_EXAMPLE_N`` so the smoke run stays fast.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    env = dict(os.environ, REPRO_EXAMPLE_N="260")
    # Examples import repro; make the subprocess see src/ whether or not
    # the package is installed or PYTHONPATH is exported.
    src = str(EXAMPLES_DIR.parent / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, f"{script}\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), script
