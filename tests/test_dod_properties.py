"""Property-based tests of the end-to-end exactness guarantee.

hypothesis drives random point clouds and (r, k) settings through the
full pipeline; the invariant is always the same: the graph-based
algorithm returns exactly the brute-force outlier set (Lemma 1 +
Theorem 1's correctness argument), for every proximity graph.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import Dataset, DetectionEngine, build_graph, graph_dod, greedy_count
from repro.core import VisitTracker
from repro.index import brute_force_outliers, brute_force_range

coords = st.floats(min_value=-30.0, max_value=30.0, allow_nan=False)

clouds = hnp.arrays(
    np.float64,
    st.tuples(st.integers(min_value=25, max_value=60), st.just(3)),
    elements=coords,
)


@given(pts=clouds, k=st.integers(min_value=1, max_value=8), seed=st.integers(0, 5))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mrpg_dod_exact_on_random_clouds(pts, k, seed):
    ds = Dataset(pts, "l2")
    # Radius from the data scale so both outcomes (out/inlier) occur.
    gen = np.random.default_rng(0)
    a = gen.integers(0, ds.n, 60)
    b = gen.integers(0, ds.n, 60)
    keep = a != b
    d = ds.pair_dist(a[keep], b[keep])
    r = float(np.quantile(d, 0.3)) if d.size else 1.0
    graph = build_graph("mrpg", ds, K=min(5, ds.n - 2), rng=seed)
    ref = brute_force_outliers(ds.view(), r, k)
    res = graph_dod(ds, graph, r, k, rng=seed)
    assert res.same_outliers(ref)


@given(pts=clouds, k=st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_kgraph_dod_exact_on_random_clouds(pts, k):
    ds = Dataset(pts, "l2")
    graph = build_graph("kgraph", ds, K=min(4, ds.n - 2), rng=0)
    r = 5.0
    ref = brute_force_outliers(ds.view(), r, k)
    res = graph_dod(ds, graph, r, k)
    assert res.same_outliers(ref)


@given(
    pts=clouds,
    r=st.floats(min_value=0.1, max_value=40.0, allow_nan=False),
    k=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_greedy_count_is_a_lower_bound(pts, r, k):
    """Lemma 1: the filter's count never exceeds the true neighbor count
    (and therefore never produces false negatives)."""
    ds = Dataset(pts, "l2")
    graph = build_graph("mrpg", ds, K=min(5, ds.n - 2), rng=1)
    tracker = VisitTracker(graph.n)
    for p in range(0, ds.n, 7):
        true_count = brute_force_range(ds, p, r).size
        got = greedy_count(ds, graph, p, r, k, tracker=tracker)
        assert got <= true_count


words_strategy = st.lists(
    st.text(alphabet="abcd", min_size=1, max_size=8),
    min_size=25,
    max_size=50,
)


@given(words=words_strategy, k=st.integers(min_value=1, max_value=5))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_edit_metric_dod_exact(words, k):
    ds = Dataset(words, "edit")
    graph = build_graph("mrpg", ds, K=min(4, ds.n - 2), rng=0)
    r = 2.0
    ref = brute_force_outliers(ds.view(), r, k)
    res = graph_dod(ds, graph, r, k)
    assert res.same_outliers(ref)


@given(pts=clouds)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_parallel_matches_serial_on_random_clouds(pts):
    ds = Dataset(pts, "l2")
    graph = build_graph("mrpg", ds, K=min(5, ds.n - 2), rng=2)
    serial = graph_dod(ds, graph, 4.0, 3, n_jobs=1)
    parallel = graph_dod(ds, graph, 4.0, 3, n_jobs=2)
    assert serial.same_outliers(parallel)


@given(pts=clouds, k=st.integers(min_value=1, max_value=6), seed=st.integers(0, 3))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_stream_is_exact_on_random_clouds(pts, k, seed):
    """A warm DetectionEngine serves every point of a mixed (r, k) stream
    bit-identically to brute force, whatever its cache has accumulated."""
    ds = Dataset(pts, "l2")
    graph = build_graph("mrpg", ds, K=min(5, ds.n - 2), rng=seed)
    gen = np.random.default_rng(0)
    a = gen.integers(0, ds.n, 60)
    b = gen.integers(0, ds.n, 60)
    keep = a != b
    d = ds.pair_dist(a[keep], b[keep])
    r = float(np.quantile(d, 0.3)) if d.size else 1.0
    engine = DetectionEngine(ds, graph, rng=seed)
    stream = [
        (r, k),
        (r * 1.2, k),
        (r * 0.8, max(1, k - 1)),
        (r, k + 2),
        (r * 1.2, k),  # revisit: must still be exact from pure cache
    ]
    for rv, kv in stream:
        ref = brute_force_outliers(ds.view(), rv, kv)
        res = engine.query(rv, kv)
        assert res.same_outliers(ref), (rv, kv)
        assert res.outliers.dtype == ref.dtype


@given(pts=clouds, k=st.integers(min_value=1, max_value=8))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_collected_evidence_bounds_are_sound(pts, k):
    """graph_dod(collect_evidence=True) may only claim provable facts:
    lower bounds never exceed the true neighbor count, and exact-flagged
    entries equal it."""
    ds = Dataset(pts, "l2")
    graph = build_graph("mrpg", ds, K=min(5, ds.n - 2), rng=0)
    gen = np.random.default_rng(0)
    a = gen.integers(0, ds.n, 60)
    b = gen.integers(0, ds.n, 60)
    keep = a != b
    d = ds.pair_dist(a[keep], b[keep])
    r = float(np.quantile(d, 0.3)) if d.size else 1.0
    res = graph_dod(ds, graph, r, k, collect_evidence=True)
    ev = res.evidence
    assert ev is not None and ev.n == ds.n and ev.r == r
    for p in range(ds.n):
        true_count = brute_force_range(ds, p, r).size
        assert int(ev.lower_bounds[p]) <= true_count, p
        if ev.exact_mask[p]:
            assert int(ev.lower_bounds[p]) == true_count, p
