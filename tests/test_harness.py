"""Unit tests for the experiment harness."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.harness import (
    BASELINE_NAMES,
    GRAPH_NAMES,
    ExperimentTable,
    Workload,
    bench_suites,
    clear_caches,
    default_workload,
    detect_with_baseline,
    detect_with_graph,
    fmt_value,
    get_dataset,
    get_graph,
    get_verifier,
    hardware_gate,
    run_experiment,
    suite_K,
)


@pytest.fixture(autouse=True, scope="module")
def small_scale(tmp_path_factory):
    """Run the whole module at a tiny scale and drop caches afterwards."""
    import os

    old_scale = os.environ.get("REPRO_BENCH_SCALE")
    old_suites = os.environ.get("REPRO_BENCH_SUITES")
    os.environ["REPRO_BENCH_SCALE"] = "0.08"
    os.environ["REPRO_BENCH_SUITES"] = "glove,words"
    yield
    clear_caches()
    for key, old in (("REPRO_BENCH_SCALE", old_scale),
                     ("REPRO_BENCH_SUITES", old_suites)):
        if old is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = old


def test_default_workload_scales():
    w = default_workload("glove")
    assert w.suite == "glove"
    assert w.n == max(64, int(round(2000 * 0.08)))
    assert w.r > 0 and w.k >= 1


def test_workload_scaled():
    w = Workload("glove", 1000, 1.0, 10)
    assert w.scaled(0.5).n == 500
    assert w.scaled(0.0001).n == 32  # floor


def test_bench_suites_env():
    assert bench_suites() == ("glove", "words")
    assert bench_suites(("sift",)) == ("glove", "words")  # env wins


def test_suite_K():
    assert suite_K("pamap2") > suite_K("glove")


def test_dataset_and_graph_caching():
    w = default_workload("glove")
    assert get_dataset(w) is get_dataset(w)
    assert get_graph(w, "kgraph") is get_graph(w, "kgraph")
    assert get_graph(w, "kgraph") is not get_graph(w, "nsw")


def test_detect_helpers_agree():
    w = default_workload("glove")
    results = [detect_with_graph(w, b) for b in GRAPH_NAMES]
    results += [detect_with_baseline(w, b) for b in BASELINE_NAMES]
    first = results[0]
    for res in results[1:]:
        assert res.same_outliers(first), res.method


def test_detect_with_unknown_baseline():
    w = default_workload("glove")
    with pytest.raises(ParameterError):
        detect_with_baseline(w, "orca")


def test_verifier_cached_and_matches_spec():
    w = default_workload("words")
    v = get_verifier(w)
    assert v is get_verifier(w)
    assert v.strategy == "vptree"  # the paper uses a VP-tree on Words


def test_run_experiment_unknown():
    with pytest.raises(ParameterError):
        run_experiment("table99")


def test_run_experiment_saves(tmp_path):
    tables = run_experiment("table1", save_dir=str(tmp_path))
    assert (tmp_path / "table1.txt").exists()
    assert tables[0].rows


def test_table2_measures_ratio():
    (table,) = run_experiment("table2")
    assert {row["dataset"] for row in table.rows} == {"glove", "words"}
    for row in table.rows:
        assert row["outlier_ratio_pct"] > 0


def test_table7_ordering_invariant():
    (table,) = run_experiment("table7")
    for row in table.rows:
        assert row["mrpg"] <= row["kgraph"]


def test_budget_marks_na(monkeypatch):
    """REPRO_BENCH_BUDGET below any runtime turns Table 5 cells to NA."""
    monkeypatch.setenv("REPRO_BENCH_BUDGET", "0.0000001")
    (time_table, _) = run_experiment("table5", suites=("words",))
    row = time_table.rows[0]
    assert row["nested-loop"] is None
    assert "NA" in time_table.format()


def test_budget_unset_keeps_numbers(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_BUDGET", raising=False)
    (time_table, _) = run_experiment("table5", suites=("words",))
    assert time_table.rows[0]["nested-loop"] is not None


def test_experiment_table_formatting():
    t = ExperimentTable("x", "demo", ["a", "b"])
    t.add_row(a="hello", b=1.23456)
    t.add_row(a="world", b=None)
    text = t.format()
    assert "demo" in text
    assert "1.235" in text
    assert "NA" in text
    assert t.column("a") == ["hello", "world"]


def test_fmt_value():
    assert fmt_value(None) == "NA"
    assert fmt_value(0.0) == "0"
    assert fmt_value(1234.5) == "1,234"
    assert fmt_value(0.5) == "0.5000"
    assert fmt_value(3) == "3"


# -- hardware_gate: auditable assertion gating for BENCH_*.json ------------


def test_hardware_gate_fires_with_enough_cores():
    gate = hardware_gate(full_scale=True, required_cores=4, cpus=8, env={})
    assert gate == {
        "cores_available": 8,
        "required_cores": 4,
        "full_scale": True,
        "assertion_ran": True,
    }


def test_hardware_gate_skips_below_core_floor():
    gate = hardware_gate(full_scale=True, required_cores=4, cpus=1, env={})
    assert gate["assertion_ran"] is False
    assert gate["cores_available"] == 1  # the honest record of why


def test_hardware_gate_skips_at_reduced_scale():
    gate = hardware_gate(full_scale=False, required_cores=4, cpus=16, env={})
    assert gate["assertion_ran"] is False
    assert gate["full_scale"] is False


def test_hardware_gate_env_override_disables_assertion():
    env = {"REPRO_BENCH_NO_ASSERT": "1"}
    gate = hardware_gate(full_scale=True, required_cores=2, cpus=8, env=env)
    assert gate["assertion_ran"] is False


def test_hardware_gate_exact_core_count_counts():
    gate = hardware_gate(full_scale=True, required_cores=4, cpus=4, env={})
    assert gate["assertion_ran"] is True


def test_hardware_gate_defaults_to_real_machine():
    import os as _os

    gate = hardware_gate(full_scale=True, required_cores=1)
    assert gate["cores_available"] == (_os.cpu_count() or 1)


def test_hardware_gate_rejects_bad_core_floor():
    with pytest.raises(ParameterError):
        hardware_gate(full_scale=True, required_cores=0)
