"""Unit tests for parameter-calibration helpers."""

import numpy as np
import pytest

from repro import Dataset
from repro.datasets import (
    calibrate_r,
    neighbor_counts,
    outlier_ratio,
    sample_distance_quantiles,
)
from repro.exceptions import ParameterError
from repro.index import brute_force_outliers, linear_count


def test_neighbor_counts_match_linear(l2_dataset):
    counts = neighbor_counts(l2_dataset, 3.0)
    for p in (0, 40, 111):
        assert counts[p] == linear_count(l2_dataset, p, 3.0)


def test_outlier_ratio_matches_brute_force(l2_dataset, l2_params):
    r, k = l2_params
    ratio = outlier_ratio(l2_dataset, r, k)
    ref = brute_force_outliers(l2_dataset.view(), r, k)
    assert ratio == pytest.approx(ref.size / l2_dataset.n)


def test_ratio_monotone_in_r(l2_dataset):
    r_small = outlier_ratio(l2_dataset, 0.5, 5)
    r_large = outlier_ratio(l2_dataset, 50.0, 5)
    assert r_large <= r_small


def test_calibrate_r_achieves_target(l2_dataset):
    r, ratio = calibrate_r(l2_dataset, k=5, target_ratio=0.05, iters=12)
    assert ratio >= 0.05
    # Slightly larger r must give a smaller-or-equal ratio.
    assert outlier_ratio(l2_dataset, r * 1.5, 5) <= ratio


def test_quantiles_ordered(l2_dataset):
    q = sample_distance_quantiles(l2_dataset, [0.1, 0.5, 0.9])
    assert q[0] <= q[1] <= q[2]


def test_validation(l2_dataset):
    with pytest.raises(ParameterError):
        neighbor_counts(l2_dataset, -1.0)
    with pytest.raises(ParameterError):
        outlier_ratio(l2_dataset, 1.0, 0)
    with pytest.raises(ParameterError):
        calibrate_r(l2_dataset, 5, target_ratio=0.0)
    with pytest.raises(ParameterError):
        calibrate_r(l2_dataset, 5, target_ratio=0.1, lo=5.0, hi=1.0)
