"""Unit tests for the vectorised edit-distance kernel."""

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics import EDIT, levenshtein


WORDS = [
    "", "a", "ab", "kitten", "sitting", "flaw", "lawn", "gumbo", "gambol",
    "saturday", "sunday", "identical", "identical", "xyzzy",
]


@pytest.fixture(scope="module")
def store():
    return EDIT.prepare(WORDS)


def test_matches_reference_on_known_pairs(store):
    n = len(WORDS)
    for i in range(n):
        got = EDIT.dist_many(store, i, np.arange(n))
        for j in range(n):
            assert got[j] == levenshtein(WORDS[i], WORDS[j]), (i, j)


def test_random_strings_match_reference(rng):
    alphabet = "abcde"
    words = [
        "".join(rng.choice(list(alphabet), size=rng.integers(0, 12)))
        for _ in range(25)
    ]
    words = [w if w else "a" * int(rng.integers(1, 3)) for w in words]
    st = EDIT.prepare(words)
    for i in range(0, 25, 5):
        got = EDIT.dist_many(st, i, np.arange(25))
        for j in range(25):
            assert got[j] == levenshtein(words[i], words[j])


def test_identical_strings_distance_zero(store):
    i = WORDS.index("identical")
    assert EDIT.dist(store, i, i + 1) == 0.0


def test_empty_string_distance_is_length(store):
    for j, w in enumerate(WORDS):
        assert EDIT.dist(store, 0, j) == len(w)


def test_bound_early_abandon_is_conservative(store):
    n = len(WORDS)
    exact = EDIT.dist_many(store, WORDS.index("saturday"), np.arange(n))
    bounded = EDIT.dist_many(store, WORDS.index("saturday"), np.arange(n), bound=2.0)
    for e, b in zip(exact, bounded):
        if e <= 2.0:
            assert b == e  # within bound must be exact
        else:
            assert b > 2.0  # beyond bound may be approximate but stays above


def test_unicode(rng):
    words = ["naïve", "naive", "café", "cafe", "日本語", "日本"]
    st = EDIT.prepare(words)
    assert EDIT.dist(st, 0, 1) == 1
    assert EDIT.dist(st, 2, 3) == 1
    assert EDIT.dist(st, 4, 5) == 1


def test_non_string_rejected():
    with pytest.raises(MetricError):
        EDIT.prepare(["ok", 42])


def test_empty_collection_rejected():
    with pytest.raises(MetricError):
        EDIT.prepare([])


def test_take_subset(store):
    idx = np.asarray([3, 5, 8])
    sub = EDIT.take(store, idx)
    assert EDIT.n_objects(sub) == 3
    assert EDIT.get(sub, 0) == WORDS[3]
    assert EDIT.dist(sub, 0, 2) == levenshtein(WORDS[3], WORDS[8])


def test_get_returns_original(store):
    assert EDIT.get(store, 3) == "kitten"


def test_nbytes_positive(store):
    assert EDIT.nbytes(store) > 0


def test_dist_many_empty_idx(store):
    out = EDIT.dist_many(store, 0, np.empty(0, dtype=np.int64))
    assert out.size == 0
