"""Metamorphic oracle for the mutable sharded engine.

The acceptance contract of ``engine/mutable_sharded.py``: after
arbitrary interleavings of insert/remove/detect/sweep/rebalance, a
:class:`MutableShardedDetectionEngine`'s answers are bit-identical to
the single-process :class:`MutableDetectionEngine` driven through the
same trace, to a fresh engine on the compacted live dataset, and to
brute force — across metrics, shard counts and worker backends.
Rebalancing (split/merge) must preserve exactness while only the
affected shards lose their evidence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Dataset,
    DetectionEngine,
    MutableDetectionEngine,
    MutableShardedDetectionEngine,
)
from repro.exceptions import ParameterError
from repro.graphs.base import build_graph
from repro.index import brute_force_outliers


def _oracle_check(engine, r, k):
    """Engine detect == fresh engine on compacted live data == brute."""
    keep = engine.active_ids()
    objects = engine.live_objects()
    dataset = Dataset(
        np.asarray(objects) if engine.metric.is_vector else objects,
        engine.metric,
    )
    result = engine.detect(r, k)
    brute = keep[brute_force_outliers(dataset, r, k)]
    np.testing.assert_array_equal(result.outliers, brute)
    fresh_graph = build_graph("kgraph", dataset, K=6, rng=0, clamp_K=True)
    with DetectionEngine(dataset, fresh_graph) as fresh:
        np.testing.assert_array_equal(
            result.outliers, keep[fresh.query(r, k).outliers]
        )
    return result


@pytest.fixture()
def pool(rng):
    return np.concatenate(
        [rng.normal(size=(240, 4)), rng.normal(size=(8, 4)) * 0.3 + 22.0]
    )


@pytest.mark.parametrize("n_shards", [2, 3])
def test_interleaved_churn_matches_oracles(pool, rng, n_shards):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=n_shards, workers=1, K=6, seed=0
    )
    single = MutableDetectionEngine(metric="l2", K=6, seed=0)
    eng.insert(pool[:100])
    single.insert(pool[:100])
    res = _oracle_check(eng, 1.8, 5)
    np.testing.assert_array_equal(
        res.outliers, single.detect(1.8, 5).outliers
    )
    victims = rng.choice(100, size=25, replace=False).tolist()
    eng.remove(victims)
    single.remove(victims)
    _oracle_check(eng, 1.8, 5)
    eng.insert(pool[100:180])
    single.insert(pool[100:180])
    res = _oracle_check(eng, 1.8, 5)
    np.testing.assert_array_equal(
        res.outliers, single.detect(1.8, 5).outliers
    )
    eng.close()
    single.close()


def test_repaired_evidence_beats_cache_drop(pool, rng):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=1, K=6, seed=0
    )
    eng.insert(pool[:120])
    cold = eng.detect(1.8, 5)
    eng.remove(rng.choice(120, size=20, replace=False).tolist())
    eng.insert(pool[120:160])
    warm = eng.detect(1.8, 5)
    # Mutations repaired the shard caches: most of the post-churn
    # population decides straight from merged bounds.
    assert warm.counts["cache_decided"] >= 0.7 * eng.n_active
    assert warm.pairs < cold.pairs
    again = eng.detect(1.8, 5)
    assert again.pairs == 0  # pure merged cache hit
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_bulk_load_builds_per_shard_graphs(pool):
    eng = MutableShardedDetectionEngine.fit(
        pool[:160], metric="l2", n_shards=3, workers=1, K=6, seed=0
    )
    assert eng.n_active == 160
    assert eng.shard_sizes().sum() == 160
    _oracle_check(eng, 1.8, 5)
    eng.insert(pool[160:200])
    _oracle_check(eng, 1.8, 5)
    with pytest.raises(ParameterError):
        eng.bulk_load(pool[:10])
    eng.close()


def test_least_loaded_placement(pool):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=4, workers=1, K=6, seed=0
    )
    eng.insert(pool[:90])
    sizes = eng.shard_sizes()
    assert sizes.sum() == 90
    assert sizes.max() - sizes.min() <= 1  # round-robin via least-loaded
    # After skewing the load with removals, new inserts refill the
    # starved shards first.
    starved = int(np.argmax(sizes))
    victims = np.flatnonzero(
        (np.asarray(eng._shard_of_list) == starved)
        & np.asarray(eng._alive)
    )[:15]
    eng.remove(victims.tolist())
    eng.insert(pool[90:105])
    refilled = eng.shard_sizes()
    assert refilled[starved] >= sizes[starved] - 1
    eng.close()


def test_split_and_merge_preserve_exactness(pool, rng):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=2, workers=1, K=6, seed=0
    )
    eng.insert(pool[:150])
    eng.sweep([1.6, 1.8], k_grid=[5])
    before = eng.detect(1.8, 5)
    new_index = eng.split_shard()
    assert eng.n_shards == 3 and new_index == 2
    after_split = _oracle_check(eng, 1.8, 5)
    np.testing.assert_array_equal(before.outliers, after_split.outliers)
    target = eng.merge_shards()
    assert eng.n_shards == 2 and 0 <= target < 2
    after_merge = _oracle_check(eng, 1.8, 5)
    np.testing.assert_array_equal(before.outliers, after_merge.outliers)
    # Churn straight after a rebalance must stay exact too.
    eng.remove(rng.choice(eng.active_ids(), size=30, replace=False).tolist())
    eng.insert(pool[150:190])
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_rebalance_policy(pool):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=2, workers=1, K=6, seed=0
    )
    eng.insert(pool[:120])
    # Starve shard 1 far below the mean: the policy merges it away.
    victims = np.flatnonzero(
        (np.asarray(eng._shard_of_list) == 1) & np.asarray(eng._alive)
    )[:55]
    eng.remove(victims.tolist())
    assert eng.rebalance(split_above=10.0, merge_below=0.25)
    assert eng.n_shards == 1
    _oracle_check(eng, 1.8, 5)
    # Skew the load again: one shard far above the mean splits.
    eng.split_shard()
    assert eng.n_shards == 2
    eng.insert(pool[120:160])
    eng.insert(pool[160:200])
    moved = np.flatnonzero(
        (np.asarray(eng._shard_of_list) == 1) & np.asarray(eng._alive)
    )
    eng.remove(moved[: max(0, moved.size - 10)].tolist())
    assert eng.shard_sizes()[0] > 1.5 * eng.n_active / 2
    assert eng.rebalance(split_above=1.5, merge_below=0.0) is True
    assert eng.n_shards == 3
    _oracle_check(eng, 1.8, 5)
    # Balanced-enough load: nothing to do.
    assert eng.rebalance(split_above=5.0, merge_below=0.0) is False
    with pytest.raises(ParameterError):
        eng.rebalance(split_above=1.0)
    eng.close()


def test_rebalance_keeps_unaffected_evidence(pool):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=1, K=6, seed=0
    )
    eng.insert(pool[:150])
    eng.detect(1.8, 5)
    warm = eng.detect(1.8, 5)
    assert warm.pairs == 0
    # Split shard 0: shards 1 and 2 transplant their caches untouched,
    # and the affected shard's evidence is decomposed into stay + moved
    # contributions — the re-query decides from bounds alone.
    eng.split_shard(0)
    after = eng.detect(1.8, 5)
    assert after.pairs == 0
    _oracle_check(eng, 1.8, 5)
    # With the transfer off, the two rebuilt shards' bounds are gone
    # and the same split forces re-proving work.
    plain = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=1, K=6, seed=0,
        evidence_transfer=False,
    )
    plain.insert(pool[:150])
    plain.detect(1.8, 5)
    plain.split_shard(0)
    refit = plain.detect(1.8, 5)
    cold_estimate = 150 * 149  # a full fresh brute force
    assert 0 < refit.pairs < cold_estimate
    np.testing.assert_array_equal(after.outliers, refit.outliers)
    plain.close()
    eng.close()


def test_process_backend_matches_serial(pool):
    serial = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=1, K=6, seed=0
    )
    procs = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=2, K=6, seed=0
    )
    for eng in (serial, procs):
        eng.insert(pool[:120])
        eng.remove(list(range(0, 25)))
        eng.insert(pool[120:150])
    a = serial.detect(1.8, 5)
    b = procs.detect(1.8, 5)
    np.testing.assert_array_equal(a.outliers, b.outliers)
    assert a.pairs == b.pairs
    procs.split_shard()
    _oracle_check(procs, 1.8, 5)
    # The worker budget survives shard-count dips: merging down to two
    # shards clamps the pool, splitting back restores it.
    procs.merge_shards()
    procs.merge_shards()
    assert procs.n_shards == 2 and procs.workers == 2
    procs.split_shard()
    assert procs.n_shards == 3 and procs.workers == 2
    _oracle_check(procs, 1.8, 5)
    serial.close()
    procs.close()


def test_edit_metric_churn(word_list):
    eng = MutableShardedDetectionEngine(
        metric="edit", n_shards=2, workers=1, K=5, seed=0
    )
    eng.insert(word_list[:90])
    _oracle_check(eng, 3.0, 3)
    eng.remove(list(np.random.default_rng(5).choice(90, 20, replace=False)))
    eng.insert(word_list[90:140])
    _oracle_check(eng, 3.0, 3)
    eng.split_shard()
    _oracle_check(eng, 3.0, 3)
    eng.close()


def test_vacuum_renumbers_and_stays_exact(pool, rng):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=1, K=6, seed=0
    )
    eng.insert(pool[:140])
    eng.remove(rng.choice(140, size=40, replace=False).tolist())
    before = _oracle_check(eng, 1.8, 5)
    remap = eng.vacuum()
    assert eng.n_total == eng.n_active == 100
    assert np.count_nonzero(remap >= 0) == 100
    after = _oracle_check(eng, 1.8, 5)
    np.testing.assert_array_equal(
        remap[before.outliers], after.outliers
    )
    eng.insert(pool[140:170])
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_last_insert_neighbors_match_single_engine(pool):
    """Both mutable engines expose the same earlier-only batch contract."""
    sharded = MutableShardedDetectionEngine(
        metric="l2", n_shards=2, workers=1, K=6, seed=0, pinned=(1.8,)
    )
    single = MutableDetectionEngine(metric="l2", K=6, seed=0, pinned=(1.8,))
    for eng in (sharded, single):
        eng.insert(pool[:60])
        eng.insert(pool[60:90])  # a real batch: intra-batch pairs exist
    for a, b in zip(sharded.last_insert_neighbors,
                    single.last_insert_neighbors):
        assert a.keys() == b.keys()
        for r in a:
            np.testing.assert_array_equal(np.sort(a[r]), np.sort(b[r]))
    sharded.close()
    single.close()


def test_pinned_radius_is_pure_cache_decision(pool):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=2, workers=1, K=6, seed=0, pinned=(1.8,)
    )
    eng.insert(pool[:80])
    eng.insert(pool[80:120])
    eng.remove(list(range(10)))
    res = eng.detect(1.8, 5)
    # Every mutation maintained exact evidence at the pinned radius, so
    # the detect decides everything from the merged cache.
    assert res.pairs == 0
    assert res.counts["cache_decided"] == eng.n_active
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_snapshot_roundtrip(pool, rng, tmp_path):
    eng = MutableShardedDetectionEngine.fit(
        pool[:130], metric="l2", n_shards=3, workers=1, K=6, seed=0
    )
    eng.remove(rng.choice(130, size=30, replace=False).tolist())
    eng.insert(pool[130:160])
    reference = eng.detect(1.8, 5)
    path = tmp_path / "snap"
    eng.save(path)
    warm = MutableShardedDetectionEngine.load(
        path, eng.object_log(), workers=1
    )
    restored = warm.detect(1.8, 5)
    np.testing.assert_array_equal(restored.outliers, reference.outliers)
    assert restored.pairs == 0
    # The restored engine keeps mutating correctly.
    warm.insert(pool[160:180])
    _oracle_check(warm, 1.8, 5)
    warm.close()
    eng.close()


def test_validation(pool):
    with pytest.raises(ParameterError):
        MutableShardedDetectionEngine(n_shards=0)
    with pytest.raises(ParameterError):
        MutableShardedDetectionEngine(K=0)
    with pytest.raises(ParameterError):
        MutableShardedDetectionEngine(rebuild_every=0)
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=2, workers=1, K=6, seed=0
    )
    with pytest.raises(ParameterError):
        eng.detect(1.8, 5)  # empty engine
    eng.insert(pool[:40])
    with pytest.raises(ParameterError):
        eng.remove([999])
    with pytest.raises(ParameterError):
        eng.remove([1, 1])
    with pytest.raises(ParameterError):
        eng.split_shard(7)
    with pytest.raises(ParameterError):
        eng.merge_shards(0, 0)
    eng.close()


# -- evidence-preserving rebalance (phase C v2) -------------------------------


def test_evidence_transfer_matches_cache_drop_rebuild(pool):
    """Transferred caches prove the same answers as re-proving from scratch."""
    kwargs = dict(metric="l2", n_shards=2, workers=1, K=6, seed=0)
    eng = MutableShardedDetectionEngine(**kwargs)
    plain = MutableShardedDetectionEngine(**kwargs, evidence_transfer=False)
    grid = dict(k_grid=[5])
    for e in (eng, plain):
        e.insert(pool[:160])
        e.sweep([1.6, 1.8], **grid)
        e.split_shard()
    # The split preserved at least half of the affected shard's entries.
    assert eng.last_transfer["before"] > 0
    assert eng.last_transfer["after"] >= 0.5 * eng.last_transfer["before"]
    assert eng.stats["evidence_rows_transferred"] == eng.last_transfer["after"]
    assert plain.last_transfer == {"before": 0, "after": 0}
    # Bit-identical sweep answers, strictly fewer re-proven pairs.
    a = eng.sweep([1.6, 1.8], **grid)
    b = plain.sweep([1.6, 1.8], **grid)
    for key in a.results:
        np.testing.assert_array_equal(
            a.results[key].outliers, b.results[key].outliers
        )
    pairs_a = sum(res.pairs for res in a.results.values())
    pairs_b = sum(res.pairs for res in b.results.values())
    assert pairs_a < pairs_b
    # Merging back stays bit-identical too (bounds add across shards).
    for e in (eng, plain):
        e.merge_shards()
    am = _oracle_check(eng, 1.8, 5)
    bm = _oracle_check(plain, 1.8, 5)
    np.testing.assert_array_equal(am.outliers, bm.outliers)
    eng.close()
    plain.close()


def test_transfer_counters_cover_merge(pool):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=1, K=6, seed=0
    )
    eng.insert(pool[:150])
    eng.detect(1.8, 5)
    before = eng.stats["evidence_rows_transferred"]
    eng.merge_shards()
    assert eng.stats["evidence_rows_transferred"] > before
    assert eng.last_transfer["before"] > 0
    _oracle_check(eng, 1.8, 5)
    eng.close()


def test_rebalance_load_trigger_and_validation(pool):
    eng = MutableShardedDetectionEngine(
        metric="l2", n_shards=2, workers=1, K=6, seed=0
    )
    eng.insert(pool[:120])
    eng.detect(1.8, 5)
    with pytest.raises(ParameterError):
        eng.rebalance(load_above=1.0)
    load = eng.shard_load()
    assert load.shape == (2,)
    assert np.isclose(load.mean(), 1.0)
    # Sizes are balanced, so the size-only policy stands pat ...
    assert eng.rebalance(split_above=5.0, merge_below=0.0) is False
    hot = float(load.max())
    if hot > 1.001:
        # ... but the serve-time signal can still split the hot shard.
        assert eng.rebalance(
            split_above=5.0, merge_below=0.0, load_above=(1.0 + hot) / 2
        ) is True
        assert eng.n_shards == 3
        _oracle_check(eng, 1.8, 5)
    eng.close()


def test_foreign_descent_toggle_matches(pool):
    on = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=1, K=6, seed=0
    )
    off = MutableShardedDetectionEngine(
        metric="l2", n_shards=3, workers=1, K=6, seed=0,
        foreign_descent=False,
    )
    for e in (on, off):
        e.insert(pool[:140])
    a = on.detect(1.8, 5)
    b = off.detect(1.8, 5)
    np.testing.assert_array_equal(a.outliers, b.outliers)
    assert off.stats["phase_pairs"]["verify_descent"] == 0
    if on.stats["phase_pairs"]["verify"]:
        assert on.stats["phase_pairs"]["verify_descent"] > 0
    on.close()
    off.close()
