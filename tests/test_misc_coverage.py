"""Targeted tests for paths not covered elsewhere."""

import numpy as np
import pytest

from repro import Dataset, DODResult, load_graph, save_graph
from repro.graphs import build_hnsw
from repro.metrics import EDIT, levenshtein


def test_edit_pair_dist_fallback():
    """Edit uses the generic per-pair fallback; it must match dist."""
    words = ["alpha", "beta", "gamma", "delta"]
    store = EDIT.prepare(words)
    a = np.asarray([0, 1, 2])
    b = np.asarray([3, 2, 0])
    got = EDIT.pair_dist(store, a, b)
    for t in range(3):
        assert got[t] == levenshtein(words[int(a[t])], words[int(b[t])])


def test_edit_empty_query_with_bound():
    store = EDIT.prepare(["", "abc", "de"])
    d = EDIT.dist_many(store, 0, np.asarray([1, 2]), bound=1.0)
    np.testing.assert_array_equal(d, [3.0, 2.0])  # lengths, exact


def test_dataset_pair_dist_counts():
    ds = Dataset(["ab", "cd", "ef"], "edit")
    ds.reset_counter()
    ds.pair_dist(np.asarray([0, 1]), np.asarray([1, 2]))
    assert ds.counter.pairs == 2


def test_hnsw_io_roundtrip(l2_dataset, tmp_path):
    g = build_hnsw(l2_dataset, M=4, ef_construction=12, rng=0)
    path = tmp_path / "hnsw.npz"
    save_graph(g, path)
    loaded = load_graph(path)
    for v in range(g.n):
        assert loaded.neighbors_list(v) == g.neighbors_list(v)
    assert loaded.meta["builder"] == "hnsw"
    assert loaded.meta["n_layers"] == g.meta["n_layers"]


def test_same_outliers_against_raw_array():
    res = DODResult(
        outliers=np.asarray([3, 1, 2]), r=1.0, k=2, n=10, method="x"
    )
    assert res.same_outliers(np.asarray([1, 2, 3]))
    assert not res.same_outliers(np.asarray([1, 2]))
    assert not res.same_outliers(np.asarray([1, 2, 4]))


def test_result_ratio_and_counts():
    res = DODResult(
        outliers=np.asarray([0, 5]), r=1.0, k=2, n=20, method="x"
    )
    assert res.n_outliers == 2
    assert res.outlier_ratio == pytest.approx(0.1)


def test_vptree_knn_on_subset(l2_dataset):
    from repro.index import VPTree, brute_force_knn

    subset = np.arange(0, l2_dataset.n, 3, dtype=np.int64)
    tree = VPTree(l2_dataset, capacity=6, rng=0, indices=subset)
    ids, dists = tree.knn(0, 5)
    # Every returned id is a subset member, distances ascending.
    assert all(int(v) in set(subset.tolist()) for v in ids)
    assert np.all(np.diff(dists) >= 0)
    # The best subset member matches a brute scan restricted to subset.
    d_all = l2_dataset.dist_many(0, subset)
    d_all[subset == 0] = np.inf
    assert dists[0] == pytest.approx(d_all.min())


def test_graph_set_links_accepts_numpy(l2_dataset):
    from repro.graphs import Graph

    g = Graph(10)
    g.set_links(0, np.asarray([1, 2, 3], dtype=np.int64))
    assert g.neighbors_list(0) == [1, 2, 3]


def test_minkowski_fractional_p_metric_axioms(rng):
    from repro.metrics import Minkowski

    m = Minkowski(1.5)
    pts = rng.normal(size=(3, 4))
    store = m.prepare(pts)
    d01, d12, d02 = m.dist(store, 0, 1), m.dist(store, 1, 2), m.dist(store, 0, 2)
    assert d02 <= d01 + d12 + 1e-9


def test_counter_snapshot():
    ds = Dataset(np.zeros((4, 2)), "l2")
    ds.dist(0, 1)
    calls, pairs = ds.counter.snapshot()
    assert calls == 1 and pairs == 1
