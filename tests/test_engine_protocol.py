"""The EngineCore protocol: one serving surface across all engine variants.

Every engine — static, mutable, sharded, mutable sharded — must
structurally satisfy :class:`repro.EngineCore` (the mutable ones also
:class:`repro.MutableEngineCore`), the :func:`repro.create_engine`
factory must be the single dispatch point from workload shape to
engine class, and :func:`repro.load_any_engine` must resolve every
snapshot format without the caller naming a loader.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Dataset,
    DetectionEngine,
    EngineCapabilities,
    EngineCore,
    MutableDetectionEngine,
    MutableEngineCore,
    MutableShardedDetectionEngine,
    ShardedDetectionEngine,
    create_engine,
    load_any_engine,
    supports,
)
from repro.exceptions import GraphError, ParameterError


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(3)
    return np.concatenate(
        [rng.normal(size=(140, 4)), rng.normal(size=(5, 4)) * 0.3 + 18.0]
    )


def _all_engines(points):
    yield create_engine(points, graph="kgraph", K=6, seed=0)
    yield create_engine(points, graph="kgraph", K=6, seed=0, shards=2)
    yield create_engine(points, graph="kgraph", K=6, seed=0, mutable=True)
    yield create_engine(
        points, graph="kgraph", K=6, seed=0, mutable=True, shards=2
    )


def test_every_engine_satisfies_the_protocol(points):
    kinds = []
    for engine in _all_engines(points):
        with engine:
            assert isinstance(engine, EngineCore), type(engine)
            assert isinstance(engine.capabilities, EngineCapabilities)
            assert engine.graph_name
            assert engine.graph_degree == 6
            assert engine.index_nbytes > 0
            assert isinstance(engine.describe(), str)
            if supports(engine, "mutable"):
                assert isinstance(engine, MutableEngineCore), type(engine)
            kinds.append(type(engine))
    assert kinds == [
        DetectionEngine,
        ShardedDetectionEngine,
        MutableDetectionEngine,
        MutableShardedDetectionEngine,
    ]


def test_all_engines_answer_identically(points):
    reference = None
    for engine in _all_engines(points):
        with engine:
            res = engine.query(1.8, 5)
            if reference is None:
                reference = res.outliers
            np.testing.assert_array_equal(res.outliers, reference)
            grid = engine.sweep([1.6, 1.8], k_grid=[5])
            np.testing.assert_array_equal(
                grid.result(1.8, 5).outliers, reference
            )
            pair = engine.batch([(1.8, 5)])
            np.testing.assert_array_equal(pair[0].outliers, reference)


def test_capability_flags(points):
    static, sharded, mutable, both = list(_all_engines(points))
    try:
        assert not supports(static, "mutable") and not supports(static, "sharded")
        assert supports(sharded, "sharded") and not supports(sharded, "mutable")
        assert supports(mutable, "mutable") and not supports(mutable, "sharded")
        assert supports(both, "mutable") and supports(both, "sharded")
        assert supports(static, "top_n") and supports(mutable, "top_n")
        with pytest.raises(ParameterError):
            supports(static, "no-such-capability")
    finally:
        for engine in (static, sharded, mutable, both):
            engine.close()


def test_factory_validation(points):
    with pytest.raises(ParameterError):
        create_engine(points, shards=0)
    with pytest.raises(ParameterError):
        create_engine(None)  # static engines need data
    # A prepared Dataset routes through unchanged (metric taken from it).
    engine = create_engine(Dataset(points, "l1"), graph="kgraph", K=6)
    with engine:
        assert engine.dataset.metric.name == "l1"
    # Mutable engines may start empty.
    engine = create_engine(None, mutable=True, K=6)
    with engine:
        assert engine.n_active == 0
    engine = create_engine(None, mutable=True, shards=3, K=6, workers=1)
    with engine:
        assert engine.n_active == 0 and engine.n_shards == 3


def test_load_any_engine_resolves_every_format(points, tmp_path):
    dataset = Dataset(points, "l2")
    expected = None
    snaps = []
    for name, engine in zip(
        ("static.npz", "sharded_dir", "mutable.npz", "mutable_sharded_dir"),
        _all_engines(points),
    ):
        with engine:
            res = engine.query(1.8, 5)
            if expected is None:
                expected = res.outliers
            path = tmp_path / name
            engine.save(path)
            snaps.append(path)

    warm = load_any_engine(snaps[0], dataset=dataset)
    assert isinstance(warm, DetectionEngine)
    np.testing.assert_array_equal(warm.query(1.8, 5).outliers, expected)
    warm.close()

    warm = load_any_engine(snaps[1], dataset=dataset, workers=1)
    assert isinstance(warm, ShardedDetectionEngine)
    np.testing.assert_array_equal(warm.query(1.8, 5).outliers, expected)
    warm.close()

    warm = load_any_engine(snaps[2], objects=list(points))
    assert isinstance(warm, MutableDetectionEngine)
    np.testing.assert_array_equal(warm.query(1.8, 5).outliers, expected)
    warm.close()

    warm = load_any_engine(snaps[3], objects=list(points), workers=1)
    assert isinstance(warm, MutableShardedDetectionEngine)
    np.testing.assert_array_equal(warm.query(1.8, 5).outliers, expected)
    warm.close()


def test_load_any_engine_error_paths(points, tmp_path):
    dataset = Dataset(points, "l2")
    with pytest.raises(GraphError):
        load_any_engine(tmp_path / "missing.npz", dataset=dataset)
    empty_dir = tmp_path / "no_manifest"
    empty_dir.mkdir()
    with pytest.raises(GraphError):
        load_any_engine(empty_dir, dataset=dataset)
    # A bare graph .npz is not an engine snapshot of any kind.
    from repro import build_graph, save_graph

    bare = tmp_path / "bare.npz"
    save_graph(build_graph("kgraph", dataset, K=6, rng=0), bare)
    with pytest.raises(GraphError):
        load_any_engine(bare, dataset=dataset)
    # Each kind demands its matching re-supplied data.
    with create_engine(points, K=6, seed=0) as engine:
        engine.save(tmp_path / "static2.npz")
    with pytest.raises(GraphError):
        load_any_engine(tmp_path / "static2.npz")  # dataset missing
    with create_engine(points, K=6, seed=0, mutable=True, shards=2,
                       workers=1) as engine:
        engine.save(tmp_path / "ms_dir")
    with pytest.raises(GraphError):
        load_any_engine(tmp_path / "ms_dir", dataset=dataset)  # needs objects
