"""Unit tests for the NSW builder."""

import numpy as np
import pytest

from repro.analysis import connectivity_report
from repro.exceptions import ParameterError
from repro.graphs import build_nsw


@pytest.fixture(scope="module")
def nsw(l2_dataset):
    return build_nsw(l2_dataset, n_links=8, attempts=2, rng=0)


def test_undirected(nsw):
    for u in range(nsw.n):
        for v in nsw.neighbors_list(u):
            assert nsw.has_link(v, u), (u, v)


def test_minimum_degree(nsw):
    # Every vertex links to at least n_links others (insertion adds
    # n_links undirected edges; early vertices accumulate more).
    degrees = [nsw.degree(v) for v in range(nsw.n)]
    assert min(degrees) >= 1
    assert np.mean(degrees) >= 8


def test_connected(nsw):
    report = connectivity_report(nsw)
    assert report["n_weak_components"] == 1


def test_no_pivots_no_exact(nsw):
    assert not nsw.pivots.any()
    assert nsw.exact_knn == {}


def test_meta(nsw):
    assert nsw.meta["builder"] == "nsw"
    assert nsw.meta["n_links"] == 8
    assert nsw.meta["build_seconds"] > 0


def test_deterministic(l2_dataset):
    a = build_nsw(l2_dataset, n_links=6, attempts=1, rng=3)
    b = build_nsw(l2_dataset, n_links=6, attempts=1, rng=3)
    for v in range(a.n):
        assert a.neighbors_list(v) == b.neighbors_list(v)


def test_links_are_mostly_local(nsw, l2_dataset):
    # NSW links should be much shorter than random pairs on average.
    gen = np.random.default_rng(0)
    link_d = []
    for u in range(0, nsw.n, 10):
        for v in nsw.neighbors_list(u)[:4]:
            link_d.append(l2_dataset.dist(u, v))
    a = gen.integers(0, l2_dataset.n, 300)
    b = gen.integers(0, l2_dataset.n, 300)
    rand_d = l2_dataset.pair_dist(a[a != b], b[a != b])
    assert np.mean(link_d) < np.mean(rand_d) * 0.8


def test_validation(l2_dataset):
    with pytest.raises(ParameterError):
        build_nsw(l2_dataset, n_links=0)
    with pytest.raises(ParameterError):
        build_nsw(l2_dataset, attempts=0)


def test_edit_metric(edit_dataset):
    g = build_nsw(edit_dataset, n_links=5, attempts=1, rng=0)
    assert connectivity_report(g)["n_weak_components"] == 1
