"""Unit tests for linear-scan search and the brute-force oracles."""

import numpy as np
import pytest

from repro import Dataset
from repro.exceptions import ParameterError
from repro.index import (
    brute_force_knn,
    brute_force_outliers,
    brute_force_range,
    linear_count,
)


def test_linear_count_matches_range(l2_dataset):
    for q, r in [(0, 1.0), (50, 3.0), (120, 8.0)]:
        assert linear_count(l2_dataset, q, r) == brute_force_range(
            l2_dataset, q, r
        ).size


def test_linear_count_chunking_irrelevant(l2_dataset):
    for chunk in (1, 7, 64, 10_000):
        assert linear_count(l2_dataset, 5, 4.0, chunk=chunk) == linear_count(
            l2_dataset, 5, 4.0
        )


def test_linear_count_stop_at(l2_dataset):
    full = linear_count(l2_dataset, 10, 10.0)
    assert full >= 5
    stopped = linear_count(l2_dataset, 10, 10.0, stop_at=5)
    assert 5 <= stopped <= full


def test_linear_count_include_self(l2_dataset):
    r = 2.0
    assert (
        linear_count(l2_dataset, 7, r, exclude_self=False)
        == linear_count(l2_dataset, 7, r) + 1
    )


def test_brute_force_knn_order(l2_dataset):
    ids, dists = brute_force_knn(l2_dataset, 3, 12)
    assert np.all(np.diff(dists) >= 0)
    assert 3 not in ids
    # Verify against a full argsort.
    all_idx = np.arange(l2_dataset.n)
    d = l2_dataset.dist_many(3, all_idx)
    d[3] = np.inf
    expected = np.sort(d)[:12]
    np.testing.assert_allclose(dists, expected, rtol=1e-12)


def test_brute_force_outliers_tiny_hand_case():
    # Three tight points and one far away: the far one is the only
    # object with 0 neighbors at r=1.
    pts = np.asarray([[0.0], [0.1], [0.2], [100.0]])
    ds = Dataset(pts, "l2")
    out = brute_force_outliers(ds, r=1.0, k=1)
    np.testing.assert_array_equal(out, [3])
    out2 = brute_force_outliers(ds, r=1.0, k=3)
    np.testing.assert_array_equal(out2, [0, 1, 2, 3])  # nobody has 3 neighbors


def test_validation():
    ds = Dataset(np.zeros((5, 2)), "l2")
    with pytest.raises(ParameterError):
        linear_count(ds, 0, -1.0)
    with pytest.raises(ParameterError):
        linear_count(ds, 0, 1.0, chunk=0)
    with pytest.raises(ParameterError):
        brute_force_knn(ds, 0, 0)
    with pytest.raises(ParameterError):
        brute_force_outliers(ds, 1.0, 0)
