"""Property-based tests: the metric axioms the algorithms rely on.

VP-tree pruning, SNIF's cluster pruning and the exactness arguments all
assume ``dist`` is a true metric — these are the invariants hypothesis
hammers on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import ANGULAR, EDIT, L1, L2, L4, Minkowski, levenshtein

VECTOR_METRICS = [L1, L2, L4, Minkowski(3)]

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


def triple_arrays(dim: int = 4):
    return hnp.arrays(np.float64, (3, dim), elements=finite_floats)


@pytest.mark.parametrize("metric", VECTOR_METRICS, ids=lambda m: m.name)
@given(pts=triple_arrays())
@settings(max_examples=60, deadline=None)
def test_vector_metric_axioms(metric, pts):
    store = metric.prepare(pts)
    d01 = metric.dist(store, 0, 1)
    d10 = metric.dist(store, 1, 0)
    d02 = metric.dist(store, 0, 2)
    d12 = metric.dist(store, 1, 2)
    assert d01 >= 0.0
    assert d01 == pytest.approx(d10, rel=1e-9, abs=1e-9)
    assert metric.dist(store, 0, 0) == pytest.approx(0.0, abs=1e-9)
    # Triangle inequality with numerical slack.
    assert d02 <= d01 + d12 + 1e-7 * (1.0 + d01 + d12)


@given(pts=triple_arrays(dim=5))
@settings(max_examples=60, deadline=None)
def test_angular_metric_axioms(pts):
    # Shift away from zero so every vector has a direction.
    pts = pts + 100.0
    store = ANGULAR.prepare(pts)
    d01 = ANGULAR.dist(store, 0, 1)
    d02 = ANGULAR.dist(store, 0, 2)
    d12 = ANGULAR.dist(store, 1, 2)
    assert 0.0 <= d01 <= np.pi + 1e-9
    assert d01 == pytest.approx(ANGULAR.dist(store, 1, 0), abs=1e-9)
    assert d02 <= d01 + d12 + 1e-7


words = st.text(alphabet="abcdef", min_size=0, max_size=14)


@given(a=words, b=words, c=words)
@settings(max_examples=150, deadline=None)
def test_edit_metric_axioms(a, b, c):
    strings = [a or "x", b or "y", c or "z"]
    store = EDIT.prepare(strings)
    d01 = EDIT.dist(store, 0, 1)
    d02 = EDIT.dist(store, 0, 2)
    d12 = EDIT.dist(store, 1, 2)
    assert d01 == EDIT.dist(store, 1, 0)
    assert d02 <= d01 + d12
    assert EDIT.dist(store, 0, 0) == 0.0


@given(a=words, b=words)
@settings(max_examples=150, deadline=None)
def test_edit_kernel_matches_reference(a, b):
    strings = [a or "x", b or "y"]
    store = EDIT.prepare(strings)
    assert EDIT.dist(store, 0, 1) == levenshtein(strings[0], strings[1])


@given(a=words, b=words, bound=st.integers(min_value=0, max_value=6))
@settings(max_examples=100, deadline=None)
def test_edit_bound_never_underreports(a, b, bound):
    strings = [a or "x", b or "y"]
    store = EDIT.prepare(strings)
    exact = levenshtein(strings[0], strings[1])
    got = float(EDIT.dist_many(store, 0, np.asarray([1]), bound=float(bound))[0])
    if exact <= bound:
        assert got == exact
    else:
        assert got > bound


@given(
    pts=hnp.arrays(np.float64, (4, 3), elements=finite_floats),
    scale=st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=40, deadline=None)
def test_minkowski_homogeneity(pts, scale):
    """Lp norms are absolutely homogeneous: d(sx, sy) = s d(x, y)."""
    s1 = L2.prepare(pts)
    s2 = L2.prepare(pts * scale)
    d1 = L2.dist(s1, 0, 1)
    d2 = L2.dist(s2, 0, 1)
    assert d2 == pytest.approx(scale * d1, rel=1e-9, abs=1e-9)
