"""Unit + property tests for sliding-window DOD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset
from repro.exceptions import ParameterError
from repro.streaming import SlidingWindowDOD, window_outliers_bruteforce


@pytest.fixture(scope="module")
def stream_dataset():
    gen = np.random.default_rng(5)
    pts = np.concatenate(
        [gen.normal(size=(180, 4)), gen.normal(size=(8, 4)) * 0.2 + 30.0]
    )
    return Dataset(pts, "l2")


def test_matches_oracle_at_every_step(stream_dataset):
    gen = np.random.default_rng(0)
    stream = gen.integers(0, stream_dataset.n, size=140)
    monitor = SlidingWindowDOD(stream_dataset, r=2.0, k=4, window=40)
    for obj in stream:
        monitor.append(int(obj))
        got = monitor.outliers()
        ref = window_outliers_bruteforce(
            stream_dataset, monitor.window_ids(), 2.0, 4
        )
        np.testing.assert_array_equal(np.unique(got), np.unique(ref))


def test_expiry_restores_outlierness(stream_dataset):
    """An object dense only thanks to expired neighbors becomes an
    outlier once they leave the window."""
    monitor = SlidingWindowDOD(stream_dataset, r=2.0, k=3, window=6)
    # Fill the window with copies of a tight region, then flood with a
    # far-away region: the early object loses its neighbors.
    monitor.extend([0, 1, 2, 3])  # near cluster (likely mutual neighbors)
    monitor.extend([180, 181, 182, 183, 184, 185])  # far planted cluster
    ids = monitor.window_ids()
    assert 0 not in ids  # expired
    ref = window_outliers_bruteforce(stream_dataset, ids, 2.0, 3)
    np.testing.assert_array_equal(monitor.outliers(), ref)


def test_window_ids_order_and_size(stream_dataset):
    monitor = SlidingWindowDOD(stream_dataset, r=1.0, k=2, window=5)
    monitor.extend([10, 11, 12])
    assert monitor.size == 3
    np.testing.assert_array_equal(monitor.window_ids(), [10, 11, 12])
    monitor.extend([13, 14, 15, 16])
    assert monitor.size == 5
    np.testing.assert_array_equal(monitor.window_ids(), [12, 13, 14, 15, 16])


def test_duplicate_stream_elements(stream_dataset):
    monitor = SlidingWindowDOD(stream_dataset, r=0.5, k=2, window=10)
    monitor.extend([7, 7, 7])
    # Three copies: each sees the other two at distance 0.
    assert monitor.outliers().size == 0
    ref = window_outliers_bruteforce(stream_dataset, monitor.window_ids(), 0.5, 2)
    np.testing.assert_array_equal(monitor.outliers(), ref)


def test_report_cadence(stream_dataset):
    monitor = SlidingWindowDOD(stream_dataset, r=2.0, k=3, window=20)
    reports = monitor.run(range(60), report_every=20)
    assert len(reports) == 3
    assert reports[0].time == 20
    assert reports[-1].time == 60
    assert reports[-1].window_ids.size == 20


def test_run_default_cadence(stream_dataset):
    monitor = SlidingWindowDOD(stream_dataset, r=2.0, k=3, window=15)
    reports = monitor.run(range(45))
    assert len(reports) == 3


def test_edit_metric_stream():
    ds = Dataset(["cat", "bat", "hat", "rat", "zzzzzzzzz", "mat"], "edit")
    monitor = SlidingWindowDOD(ds, r=1.0, k=2, window=4)
    monitor.extend([0, 1, 2, 4])
    ref = window_outliers_bruteforce(ds, monitor.window_ids(), 1.0, 2)
    np.testing.assert_array_equal(monitor.outliers(), ref)
    assert 4 in monitor.outliers()


def test_sharded_window_matches_oracle(stream_dataset):
    """The window over a mutable sharded engine: same reports, exactly."""
    gen = np.random.default_rng(2)
    stream = gen.integers(0, stream_dataset.n, size=110)
    with SlidingWindowDOD(
        stream_dataset, r=2.0, k=4, window=36, shards=2, workers=1
    ) as monitor, SlidingWindowDOD(
        stream_dataset, r=2.0, k=4, window=36
    ) as single:
        for t, obj in enumerate(stream):
            monitor.append(int(obj))
            single.append(int(obj))
            if t % 5 == 0:
                got = monitor.outliers()
                np.testing.assert_array_equal(got, single.outliers())
                ref = window_outliers_bruteforce(
                    stream_dataset, monitor.window_ids(), 2.0, 4
                )
                np.testing.assert_array_equal(np.unique(got), np.unique(ref))


def test_validation(stream_dataset):
    with pytest.raises(ParameterError):
        SlidingWindowDOD(stream_dataset, r=-1.0, k=2, window=5)
    with pytest.raises(ParameterError):
        SlidingWindowDOD(stream_dataset, r=1.0, k=0, window=5)
    with pytest.raises(ParameterError):
        SlidingWindowDOD(stream_dataset, r=1.0, k=2, window=1)
    monitor = SlidingWindowDOD(stream_dataset, r=1.0, k=2, window=5)
    with pytest.raises(ParameterError):
        monitor.append(stream_dataset.n)
    with pytest.raises(ParameterError):
        monitor.run([0, 1], report_every=0)


@given(
    stream=st.lists(st.integers(0, 39), min_size=5, max_size=60),
    k=st.integers(1, 4),
    window=st.integers(3, 15),
)
@settings(max_examples=40, deadline=None)
def test_streaming_matches_oracle_property(stream, k, window):
    gen = np.random.default_rng(1)
    ds = Dataset(gen.normal(size=(40, 3)), "l2")
    monitor = SlidingWindowDOD(ds, r=1.5, k=k, window=window)
    for obj in stream:
        monitor.append(obj)
    got = monitor.outliers()
    ref = window_outliers_bruteforce(ds, monitor.window_ids(), 1.5, k)
    np.testing.assert_array_equal(np.unique(got), np.unique(ref))
