"""Batched-vs-scalar equivalence: the level-synchronous kernels must be
bit-identical to the scalar oracle path wherever exactness depends on it.

The contract under test (see ``core/traversal.py``):

* identical ``FilterOutcome`` per object,
* identical sub-``k`` counts (counts at or above ``k`` may overshoot
  differently — no caller relies on them),
* identical final outlier sets through ``graph_dod``/the engine,
* across L1/L2/edit, every graph type, and adversarial block sizes
  (1, a prime that splits outlier runs mid-block, and one whole-chunk
  block).
"""

import numpy as np
import pytest

from repro.core import BlockTracker, VisitTracker, greedy_count, greedy_count_block
from repro.core.counting import classify_chunk, classify_chunk_arrays
from repro.core.dod import graph_dod
from repro.core.verify import Verifier
from repro.engine import DetectionEngine
from repro.exceptions import ParameterError

BLOCK_SIZES = (1, 7, None)  # None -> the whole chunk as one block


def _block_sizes(n):
    return [bs if bs is not None else n for bs in BLOCK_SIZES]


def _assert_filter_equivalent(dataset, graph, chunk, r, k, batch_size):
    ids_s, cnt_s, code_s, ex_s = classify_chunk_arrays(
        dataset.view(), graph, chunk, r, k, mode="scalar"
    )
    ids_b, cnt_b, code_b, ex_b = classify_chunk_arrays(
        dataset.view(), graph, chunk, r, k, mode="batched", batch_size=batch_size
    )
    np.testing.assert_array_equal(ids_s, ids_b)
    np.testing.assert_array_equal(code_s, code_b)
    np.testing.assert_array_equal(ex_s, ex_b)
    sub_k = (cnt_s < k) | (cnt_b < k)
    np.testing.assert_array_equal(cnt_s[sub_k], cnt_b[sub_k])


@pytest.mark.parametrize("graph_name", ["mrpg_l2", "mrpg_basic_l2", "kgraph_l2", "nsw_l2"])
def test_batched_filter_matches_scalar_l2(request, l2_dataset, l2_params, graph_name):
    graph = request.getfixturevalue(graph_name)
    r, k = l2_params
    chunk = np.arange(l2_dataset.n, dtype=np.int64)
    for bs in _block_sizes(l2_dataset.n):
        _assert_filter_equivalent(l2_dataset, graph, chunk, r, k, bs)


def test_batched_filter_matches_scalar_l1(l1_dataset, l2_params):
    from repro import build_graph

    graph = build_graph("mrpg", l1_dataset, K=8, rng=0)
    gen = np.random.default_rng(0)
    a = gen.integers(0, l1_dataset.n, size=1500)
    b = gen.integers(0, l1_dataset.n, size=1500)
    keep = a != b
    r = float(np.quantile(l1_dataset.pair_dist(a[keep], b[keep]), 0.10))
    chunk = np.arange(l1_dataset.n, dtype=np.int64)
    for bs in _block_sizes(l1_dataset.n):
        _assert_filter_equivalent(l1_dataset, graph, chunk, r, 8, bs)


def test_batched_filter_matches_scalar_edit(edit_dataset, mrpg_edit):
    chunk = np.arange(edit_dataset.n, dtype=np.int64)
    for r, k in ((2.0, 4), (3.0, 6)):
        for bs in _block_sizes(edit_dataset.n):
            _assert_filter_equivalent(edit_dataset, mrpg_edit, chunk, r, k, bs)


def test_batched_filter_adversarial_blocks(l2_dataset, mrpg_l2, l2_params, l2_reference):
    """Block boundaries that split runs of adjacent outliers must not
    change any verdict: order the chunk so all true outliers are
    contiguous, then use a prime block size that cuts the run."""
    r, k = l2_params
    outliers = l2_reference
    inliers = np.setdiff1d(np.arange(l2_dataset.n), outliers)
    mid = inliers.size // 2
    chunk = np.concatenate((inliers[:mid], outliers, inliers[mid:]))
    for bs in (1, 7, l2_dataset.n):
        _assert_filter_equivalent(l2_dataset, mrpg_l2, chunk, r, k, bs)


@pytest.mark.parametrize("k", [1, 3, 8, 40])
def test_greedy_count_block_matches_scalar_over_k(l2_dataset, kgraph_l2, l2_params, k):
    r, _ = l2_params
    tracker = VisitTracker(kgraph_l2.n)
    sources = np.arange(0, l2_dataset.n, 3, dtype=np.int64)
    batched = greedy_count_block(l2_dataset.view(), kgraph_l2, sources, r, k)
    for p, got in zip(sources, batched):
        ref = greedy_count(l2_dataset.view(), kgraph_l2, int(p), r, k, tracker=tracker)
        if ref < k or got < k:
            assert got == ref, f"p={p}: batched {got} != scalar {ref}"
        else:
            assert got >= k and ref >= k


def test_block_tracker_reuse_is_clean(l2_dataset, mrpg_l2, l2_params):
    """A reused tracker (stale stamps from previous blocks) must not
    leak visits into later epochs."""
    r, k = l2_params
    tracker = BlockTracker(mrpg_l2.n, 16)
    sources = np.arange(16, dtype=np.int64)
    first = greedy_count_block(l2_dataset.view(), mrpg_l2, sources, r, k, tracker=tracker)
    for _ in range(3):
        again = greedy_count_block(
            l2_dataset.view(), mrpg_l2, sources, r, k, tracker=tracker
        )
        np.testing.assert_array_equal(first, again)


def test_block_tracker_too_small_rejected(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    tracker = BlockTracker(mrpg_l2.n, 4)
    with pytest.raises(ParameterError):
        greedy_count_block(
            l2_dataset.view(), mrpg_l2, np.arange(8), r, k, tracker=tracker
        )


def test_batched_mode_rejects_max_visits(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    with pytest.raises(ParameterError):
        classify_chunk(
            l2_dataset.view(), mrpg_l2, np.arange(8), r, k,
            mode="batched", max_visits=50,
        )
    # auto falls back to the scalar walk instead
    out = classify_chunk(
        l2_dataset.view(), mrpg_l2, np.arange(8), r, k, mode="auto", max_visits=50,
    )
    assert len(out) == 8


def test_verify_block_matches_scalar(l2_dataset, l2_params):
    r, k = l2_params
    verifier = Verifier(l2_dataset, strategy="linear")
    gen = np.random.default_rng(5)
    cands = gen.choice(l2_dataset.n, size=60, replace=False)
    scalar = verifier.verify_chunk(cands, r, k, dataset=l2_dataset.view(), mode="scalar")
    batched = verifier.verify_chunk(cands, r, k, dataset=l2_dataset.view(), mode="batched")
    for (p1, c1, e1), (p2, c2, e2) in zip(scalar, batched):
        assert p1 == p2 and e1 == e2
        if c1 < k or c2 < k:
            assert c1 == c2


def test_verify_block_edit_metric(edit_dataset):
    verifier = Verifier(edit_dataset, strategy="linear")
    cands = np.arange(0, edit_dataset.n, 2, dtype=np.int64)
    scalar = verifier.verify_chunk(cands, 2.0, 4, dataset=edit_dataset.view(), mode="scalar")
    batched = verifier.verify_chunk(cands, 2.0, 4, dataset=edit_dataset.view(), mode="batched")
    for (p1, c1, e1), (p2, c2, e2) in zip(scalar, batched):
        assert p1 == p2 and e1 == e2
        if c1 < 4 or c2 < 4:
            assert c1 == c2


@pytest.mark.parametrize("mode,batch_size", [("batched", 1), ("batched", 7), ("batched", 999)])
def test_graph_dod_outliers_identical(l2_dataset, mrpg_l2, l2_params, l2_reference, mode, batch_size):
    r, k = l2_params
    res = graph_dod(
        l2_dataset.view(), mrpg_l2, r, k, mode=mode, batch_size=batch_size
    )
    np.testing.assert_array_equal(res.outliers, l2_reference)


def test_graph_dod_candidate_sets_identical(l2_dataset, nsw_l2, l2_params):
    r, k = l2_params
    scalar = graph_dod(l2_dataset.view(), nsw_l2, r, k, mode="scalar")
    batched = graph_dod(l2_dataset.view(), nsw_l2, r, k, mode="batched", batch_size=7)
    np.testing.assert_array_equal(scalar.outliers, batched.outliers)
    assert scalar.counts["candidates"] == batched.counts["candidates"]
    assert scalar.counts["direct_outliers"] == batched.counts["direct_outliers"]
    assert scalar.counts["false_positives"] == batched.counts["false_positives"]


def test_graph_dod_evidence_identical_sub_k(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    scalar = graph_dod(l2_dataset.view(), mrpg_l2, r, k, mode="scalar", collect_evidence=True)
    batched = graph_dod(l2_dataset.view(), mrpg_l2, r, k, mode="batched", collect_evidence=True)
    lb_s, lb_b = scalar.evidence.lower_bounds, batched.evidence.lower_bounds
    sub_k = (lb_s < k) | (lb_b < k)
    np.testing.assert_array_equal(lb_s[sub_k], lb_b[sub_k])
    np.testing.assert_array_equal(scalar.evidence.exact_mask, batched.evidence.exact_mask)


def test_engine_modes_agree_across_sweep(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    r_grid = [r * f for f in (0.9, 1.0, 1.1)]
    with DetectionEngine(l2_dataset.view(), mrpg_l2, mode="scalar", rng=0) as scalar_eng, \
         DetectionEngine(l2_dataset.view(), mrpg_l2, mode="batched", batch_size=7, rng=0) as batched_eng:
        sweep_s = scalar_eng.sweep(r_grid, k_grid=[k, max(1, k - 3)])
        sweep_b = batched_eng.sweep(r_grid, k_grid=[k, max(1, k - 3)])
        for key in sweep_s.results:
            np.testing.assert_array_equal(
                sweep_s.results[key].outliers, sweep_b.results[key].outliers
            )


def test_minkowski_bound_abandonment_consistent():
    """The chunked-axis early-abandon path must agree with the plain
    kernel on every value at or below the bound (bit-identical), and
    only ever report values above the bound for the rest."""
    from repro.metrics.minkowski import ABANDON_MIN_ROWS, L1, L2, Minkowski

    gen = np.random.default_rng(11)
    store = gen.normal(size=(ABANDON_MIN_ROWS + 200, 96))
    idx = np.arange(store.shape[0], dtype=np.int64)
    for metric in (L2, L1, Minkowski(4.0)):
        plain = metric.dist_many(store, 0, idx)
        bound = float(np.quantile(plain, 0.3))
        bounded = metric.dist_many(store, 0, idx, bound=bound)
        keep = plain <= bound
        np.testing.assert_array_equal(bounded[keep], plain[keep])
        assert np.all(bounded[~keep] > bound)
        # pair kernel: same contract, same kept values
        b_ids = np.roll(idx, 1)
        plain_p = metric.pair_dist(store, idx, b_ids)
        bounded_p = metric.pair_dist(store, idx, b_ids, bound=bound)
        keep_p = plain_p <= bound
        np.testing.assert_array_equal(bounded_p[keep_p], plain_p[keep_p])
        assert np.all(bounded_p[~keep_p] > bound)


def test_pair_dist_grouped_matches_dist_many(edit_dataset):
    """The grouped fallback must be row-consistent with dist_many."""
    gen = np.random.default_rng(3)
    a = gen.integers(0, edit_dataset.n, size=120)
    b = gen.integers(0, edit_dataset.n, size=120)
    grouped = edit_dataset.pair_dist(a, b, consistent=True)
    reference = np.array([
        edit_dataset.metric.dist(edit_dataset.store, int(x), int(y))
        for x, y in zip(a, b)
    ])
    np.testing.assert_array_equal(grouped, reference)


def test_csr_matches_neighbors(mrpg_l2):
    indptr, indices = mrpg_l2.csr()
    assert indptr[0] == 0 and indptr[-1] == indices.size
    for v in range(0, mrpg_l2.n, 17):
        np.testing.assert_array_equal(
            indices[indptr[v]:indptr[v + 1]], mrpg_l2.neighbors(v)
        )


# -- foreign multi-source descent (sharded phase C v2) ------------------------


def _foreign_setup(l2_dataset):
    """A half-dataset 'shard' graph plus out-of-shard query sources."""
    from repro.graphs.base import build_graph

    rng = np.random.default_rng(3)
    member = np.sort(
        rng.choice(l2_dataset.n, size=l2_dataset.n // 2, replace=False)
    )
    shard = l2_dataset.subset(member)
    graph = build_graph("kgraph", shard, K=8, rng=0)
    sources = rng.choice(l2_dataset.n, size=48, replace=False).astype(np.int64)
    return member, graph, sources


def test_foreign_count_block_is_a_sound_lower_bound(l2_dataset, l2_params):
    from repro.core import foreign_count_block
    from repro.index.linear import linear_count_block

    r, k = l2_params
    member, graph, sources = _foreign_setup(l2_dataset)
    counts = foreign_count_block(
        l2_dataset.view(), graph, member, sources, r, k
    )
    exact = linear_count_block(l2_dataset.view(), sources, r, subset=member)
    assert np.all(counts >= 0)
    assert np.all(counts <= exact)  # every counted hit is a real neighbor
    # The descent must be useful, not vacuous: sources with many true
    # in-shard neighbors reach their stop threshold.
    assert np.count_nonzero(counts[exact >= k] >= k) > 0


def test_foreign_count_block_is_deterministic(l2_dataset, l2_params):
    from repro.core import BlockTracker, foreign_count_block

    r, k = l2_params
    member, graph, sources = _foreign_setup(l2_dataset)
    first = foreign_count_block(l2_dataset.view(), graph, member, sources, r, k)
    again = foreign_count_block(l2_dataset.view(), graph, member, sources, r, k)
    np.testing.assert_array_equal(first, again)
    # A reused tracker (the engine's per-worker scratch) changes nothing.
    tracker = BlockTracker(graph.n, sources.size)
    warm = foreign_count_block(
        l2_dataset.view(), graph, member, sources, r, k, tracker=tracker
    )
    np.testing.assert_array_equal(first, warm)
    rerun = foreign_count_block(
        l2_dataset.view(), graph, member, sources, r, k, tracker=tracker
    )
    np.testing.assert_array_equal(first, rerun)


def test_foreign_count_block_per_source_stops(l2_dataset, l2_params):
    from repro.core import foreign_count_block

    r, k = l2_params
    member, graph, sources = _foreign_setup(l2_dataset)
    stops = np.full(sources.size, k, dtype=np.int64)
    stops[::2] = 1
    counts = foreign_count_block(
        l2_dataset.view(), graph, member, sources, r, stops
    )
    uniform = foreign_count_block(
        l2_dataset.view(), graph, member, sources, r, k
    )
    # Tighter stops can only terminate earlier, never change soundness.
    assert np.all(counts[counts < stops] <= uniform[counts < stops])
    with pytest.raises(ParameterError):
        foreign_count_block(l2_dataset.view(), graph, member, sources, r, 0)
