"""Unit tests for greedy ANN search on a graph."""

import numpy as np
import pytest

from repro.graphs import Graph, greedy_ann_search


def test_descends_towards_query(kgraph_l2, l2_dataset):
    gen = np.random.default_rng(0)
    for _ in range(10):
        query = int(gen.integers(l2_dataset.n))
        start = int(gen.integers(l2_dataset.n))
        if start == query:
            continue
        best, best_d = greedy_ann_search(l2_dataset, kgraph_l2, query, start)
        assert best_d <= l2_dataset.dist(query, start) + 1e-12
        assert best != query
        assert best_d == pytest.approx(l2_dataset.dist(query, best))


def test_never_returns_query(kgraph_l2, l2_dataset):
    # Start adjacent to the query: the walk must skip over it.
    query = 0
    start = int(kgraph_l2.neighbors(0)[0])
    best, _ = greedy_ann_search(l2_dataset, kgraph_l2, query, start)
    assert best != query


def test_isolated_start_returns_start(l2_dataset):
    g = Graph(l2_dataset.n)
    g.finalize()
    best, best_d = greedy_ann_search(l2_dataset, g, 1, 5)
    assert best == 5
    assert best_d == pytest.approx(l2_dataset.dist(1, 5))


def test_max_hops_zero_no_walk(kgraph_l2, l2_dataset):
    best, _ = greedy_ann_search(l2_dataset, kgraph_l2, 3, 200, max_hops=0)
    assert best == 200


def test_result_improves_with_hops(kgraph_l2, l2_dataset):
    query, start = 7, 250
    _, d1 = greedy_ann_search(l2_dataset, kgraph_l2, query, start, max_hops=1)
    _, d10 = greedy_ann_search(l2_dataset, kgraph_l2, query, start, max_hops=10)
    assert d10 <= d1 + 1e-12
