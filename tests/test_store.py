"""Property tests for the growable shared object store.

The store is fuzzed against a plain-ndarray model: random
append/tombstone/compact sequences must leave the mapped log
bit-identical to the model array, with offsets, generations, capacity
growth and tombstone bookkeeping matching exactly — and distances
computed through :meth:`Dataset.from_prepared` over the mapped rows
must equal distances over the model's private copy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.store import STORE_NAME_PREFIX, SharedObjectStore
from repro.data import Dataset
from repro.exceptions import GraphError, ParameterError

DIM = 3


class NdarrayModel:
    """What the store *should* hold, kept as a private ndarray."""

    def __init__(self, dim: int, capacity: int):
        self.dim = dim
        self.capacity = max(1, int(capacity))
        self.rows = np.empty((0, dim), dtype=np.float64)
        self.tombstoned: "set[int]" = set()
        self.generation = 1

    def append(self, arr: np.ndarray) -> int:
        first = len(self.rows)
        needed = first + len(arr)
        if needed > self.capacity:
            # Mirrors the store's growth policy exactly.
            self.capacity = max(needed, 2 * self.capacity)
            self.generation += 1
        self.rows = np.concatenate([self.rows, arr])
        return first

    def tombstone(self, offsets) -> None:
        self.tombstoned.update(int(o) for o in offsets)

    def compact(self, keep) -> None:
        self.rows = self.rows[np.asarray(keep, dtype=np.int64)].copy()
        self.capacity = max(1, len(keep))
        self.generation += 1
        self.tombstoned = set()


def _check_agreement(store: SharedObjectStore, model: NdarrayModel) -> None:
    assert store.length == len(model.rows)
    assert store.capacity == model.capacity
    assert store.generation == model.generation
    assert store.n_tombstoned == len(model.tombstoned)
    assert np.array_equal(store.rows(), model.rows)
    meta = store.meta()
    assert meta["length"] == len(model.rows)
    assert meta["generation"] == model.generation
    assert meta["name"].startswith(STORE_NAME_PREFIX)


# Each operation is a tagged tuple; row content is derived from a drawn
# seed so shrinking stays effective (ops shrink, content is deterministic).
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(1, 7), st.integers(0, 2**16)),
        st.tuples(st.just("tombstone"), st.integers(0, 2**16)),
        st.tuples(st.just("compact"), st.integers(0, 2**16)),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_ops, capacity=st.integers(1, 8))
def test_store_matches_ndarray_model(ops, capacity):
    model = NdarrayModel(DIM, capacity)
    with SharedObjectStore(dim=DIM, capacity=capacity) as store:
        for op in ops:
            if op[0] == "append":
                _, n_rows, seed = op
                arr = np.random.default_rng(seed).standard_normal((n_rows, DIM))
                first = store.append(arr)
                assert first == model.append(arr)
            elif op[0] == "tombstone":
                if not store.length:
                    continue
                gen = np.random.default_rng(op[1])
                offs = gen.integers(0, store.length,
                                    size=gen.integers(1, 4))
                store.tombstone(offs)
                model.tombstone(offs)
            else:  # compact
                gen = np.random.default_rng(op[1])
                live = np.array(
                    sorted(set(range(store.length)) - model.tombstoned),
                    dtype=np.int64,
                )
                keep = live[gen.random(live.size) < 0.8]
                store.compact(keep)
                model.compact(keep)
            _check_agreement(store, model)

        if store.length >= 2:
            # Distances through the zero-copy dataset equal distances
            # over the model's private copy, bit for bit.
            gen = np.random.default_rng(0)
            a = gen.integers(0, store.length, size=16)
            b = gen.integers(0, store.length, size=16)
            shared = Dataset.from_prepared(store.rows(), "l2", kind="shm")
            private = Dataset.from_prepared(model.rows.copy(), "l2")
            assert np.array_equal(
                shared.pair_dist(a, b), private.pair_dist(a, b)
            )
        store.unlink()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_ops, capacity=st.integers(1, 8))
def test_handle_follows_owner_through_relocations(ops, capacity):
    """A same-process handle synced after every op serves the same rows."""
    model = NdarrayModel(DIM, capacity)
    store = SharedObjectStore(dim=DIM, capacity=capacity)
    handle = SharedObjectStore.attach(store.meta())
    try:
        for op in ops:
            if op[0] == "append":
                _, n_rows, seed = op
                arr = np.random.default_rng(seed).standard_normal((n_rows, DIM))
                store.append(arr)
                model.append(arr)
            elif op[0] == "tombstone":
                if not store.length:
                    continue
                gen = np.random.default_rng(op[1])
                offs = gen.integers(0, store.length, size=1)
                store.tombstone(offs)
                model.tombstone(offs)
            else:
                live = np.array(
                    sorted(set(range(store.length)) - model.tombstoned),
                    dtype=np.int64,
                )
                store.compact(live)
                model.compact(live)
            handle.sync(store.meta())
            assert handle.generation == model.generation
            assert np.array_equal(handle.rows(), model.rows)
    finally:
        handle.close()
        store.unlink()


def test_append_returns_offsets_and_grows():
    with SharedObjectStore(dim=2, capacity=2) as store:
        assert store.append(np.zeros((2, 2))) == 0
        gen_before = store.generation
        assert store.append(np.ones((3, 2))) == 2  # forces a relocation
        assert store.generation == gen_before + 1
        assert store.capacity == max(5, 2 * 2)
        assert np.array_equal(
            store.rows(), np.concatenate([np.zeros((2, 2)), np.ones((3, 2))])
        )
        store.unlink()


def test_append_validates_before_mutating():
    with SharedObjectStore(dim=3, capacity=4) as store:
        store.append(np.zeros((1, 3)))
        with pytest.raises(GraphError, match="dim-3"):
            store.append(np.zeros((2, 4)))
        assert store.length == 1  # the bad batch left nothing behind
        store.unlink()


def test_tombstone_and_compact_validate_offsets():
    with SharedObjectStore(dim=2, capacity=4) as store:
        store.append(np.zeros((3, 2)))
        with pytest.raises(ParameterError, match="outside"):
            store.tombstone([3])
        with pytest.raises(ParameterError, match="outside"):
            store.compact([0, 5])
        store.unlink()


def test_compact_to_empty_keeps_a_mappable_segment():
    with SharedObjectStore(dim=2, capacity=4) as store:
        store.append(np.ones((3, 2)))
        store.tombstone([0, 1, 2])
        store.compact(np.array([], dtype=np.int64))
        assert store.length == 0
        assert store.capacity == 1
        assert store.n_tombstoned == 0
        handle = SharedObjectStore.attach(store.meta())
        assert handle.rows().shape == (0, 2)
        handle.close()
        store.unlink()


def test_stale_generation_broadcast_rejected():
    store = SharedObjectStore(dim=2, capacity=2)
    try:
        store.append(np.zeros((1, 2)))
        handle = SharedObjectStore.attach(store.meta())
        old_meta = store.meta()
        store.append(np.ones((4, 2)))  # relocation: generation bump
        handle.sync(store.meta())  # follows the move
        with pytest.raises(GraphError, match="stale broadcast"):
            handle.sync(old_meta)
        handle.close()
    finally:
        store.unlink()


def test_same_name_newer_generation_rejected():
    store = SharedObjectStore(dim=2, capacity=4)
    try:
        handle = SharedObjectStore.attach(store.meta())
        forged = dict(store.meta(), generation=store.generation + 1)
        with pytest.raises(GraphError, match="unmoved segment"):
            handle.sync(forged)
        handle.close()
    finally:
        store.unlink()


def test_attach_gone_segment_raises():
    store = SharedObjectStore(dim=2, capacity=2)
    meta = store.meta()
    store.unlink()
    with pytest.raises(GraphError, match="gone"):
        SharedObjectStore.attach(meta)


def test_attach_dim_mismatch_raises():
    store = SharedObjectStore(dim=3, capacity=2)
    try:
        forged = dict(store.meta(), dim=4)
        with pytest.raises(GraphError, match="dim"):
            SharedObjectStore.attach(forged)
    finally:
        store.unlink()


def test_close_unlink_idempotent_both_orders():
    a = SharedObjectStore(dim=2, capacity=2)
    a.close()
    a.close()
    a.unlink()  # unlink after close still removes the segment
    a.unlink()
    b = SharedObjectStore(dim=2, capacity=2)
    b.unlink()
    b.unlink()
    b.close()


def test_use_after_close_raises():
    store = SharedObjectStore(dim=2, capacity=2)
    store.unlink()
    with pytest.raises(ParameterError, match="after close"):
        store.rows()
    with pytest.raises(ParameterError, match="after close"):
        store.append(np.zeros((1, 2)))


def test_handle_cannot_mutate():
    store = SharedObjectStore(dim=2, capacity=2)
    try:
        handle = SharedObjectStore.attach(store.meta())
        with pytest.raises(ParameterError, match="only the owner"):
            handle.append(np.zeros((1, 2)))
        with pytest.raises(ParameterError, match="only the owner"):
            handle.tombstone([0])
        with pytest.raises(ParameterError, match="only the owner"):
            handle.compact([])
        handle.unlink()  # a no-op: handles never own the segment
        handle.close()
        assert store.rows().shape == (0, 2)  # still mapped and alive
    finally:
        store.unlink()


def test_float32_store_roundtrip():
    with SharedObjectStore(dim=4, dtype=np.float32, capacity=2) as store:
        rows = np.arange(8, dtype=np.float32).reshape(2, 4)
        store.append(rows)
        assert store.rows().dtype == np.float32
        assert np.array_equal(store.rows(), rows)
        store.unlink()


def test_invalid_construction():
    with pytest.raises(ParameterError, match="dim"):
        SharedObjectStore(dim=0)
    with pytest.raises(ParameterError, match="float"):
        SharedObjectStore(dim=2, dtype=np.int64)
