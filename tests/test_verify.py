"""Unit tests for the Exact-Counting verifier."""

import numpy as np
import pytest

from repro import Dataset, Verifier
from repro.core.intrinsic import estimate_intrinsic_dim
from repro.exceptions import ParameterError
from repro.index import brute_force_range


def test_strategies_agree(l2_dataset, l2_params):
    r, k = l2_params
    vp = Verifier(l2_dataset, strategy="vptree", rng=0)
    lin = Verifier(l2_dataset, strategy="linear")
    for p in range(0, l2_dataset.n, 17):
        assert vp.is_outlier(p, r, k) == lin.is_outlier(p, r, k)


def test_count_exact_without_stop(l2_dataset):
    v = Verifier(l2_dataset, strategy="vptree", rng=0)
    for p in (0, 31, 200):
        assert v.count(p, 5.0) == brute_force_range(l2_dataset, p, 5.0).size


def test_auto_picks_vptree_for_low_intrinsic_dim(rng):
    pts = rng.normal(size=(300, 2))  # genuinely 2-dimensional
    ds = Dataset(pts, "l2")
    v = Verifier(ds, strategy="auto", rng=0)
    assert v.strategy == "vptree"
    assert v.intrinsic_dim is not None and v.intrinsic_dim <= 8.0


def test_auto_picks_linear_for_high_intrinsic_dim(rng):
    pts = rng.normal(size=(300, 64))  # i.i.d. 64-dim gaussian
    ds = Dataset(pts, "l2")
    v = Verifier(ds, strategy="auto", rng=0)
    assert v.strategy == "linear"
    assert v.nbytes == 0


def test_prebuilt_tree_reused(l2_dataset):
    from repro import VPTree

    tree = VPTree(l2_dataset, capacity=8, rng=0)
    v = Verifier(l2_dataset, strategy="vptree", vptree=tree)
    assert v.vptree is tree


def test_dataset_override_counts_on_view(l2_dataset):
    v = Verifier(l2_dataset, strategy="linear")
    view = l2_dataset.view()
    v.count(0, 3.0, dataset=view)
    assert view.counter.pairs > 0


def test_unknown_strategy_rejected(l2_dataset):
    with pytest.raises(ParameterError):
        Verifier(l2_dataset, strategy="quantum")


def test_k_validation(l2_dataset):
    v = Verifier(l2_dataset, strategy="linear")
    with pytest.raises(ParameterError):
        v.is_outlier(0, 1.0, 0)


def test_intrinsic_dim_estimator_orders_correctly(rng):
    low = Dataset(rng.normal(size=(400, 2)), "l2")
    high = Dataset(rng.normal(size=(400, 50)), "l2")
    assert estimate_intrinsic_dim(low, rng=0) < estimate_intrinsic_dim(high, rng=0)


def test_intrinsic_dim_degenerate_cases():
    same = Dataset(np.ones((50, 3)), "l2")
    assert estimate_intrinsic_dim(same, rng=0) == 0.0
    with pytest.raises(ParameterError):
        estimate_intrinsic_dim(same, n_pairs=1)
