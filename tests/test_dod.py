"""Integration tests: Algorithm 1 end-to-end, all graphs, exactness.

The library's central guarantee — identical outlier sets to brute force
for every graph, metric and parallelism setting — is exercised here.
"""

import numpy as np
import pytest

from repro import DODetector, Verifier, detect_outliers, graph_dod
from repro.exceptions import GraphError, ParameterError
from repro.index import brute_force_outliers


@pytest.fixture(scope="module")
def all_graphs(mrpg_l2, mrpg_basic_l2, kgraph_l2, nsw_l2):
    return {
        "mrpg": mrpg_l2,
        "mrpg-basic": mrpg_basic_l2,
        "kgraph": kgraph_l2,
        "nsw": nsw_l2,
    }


def test_exact_for_every_graph(l2_dataset, l2_params, l2_reference, all_graphs):
    r, k = l2_params
    for name, graph in all_graphs.items():
        res = graph_dod(l2_dataset, graph, r, k)
        assert res.same_outliers(l2_reference), name
        assert res.method == name


def test_exact_across_rk_grid(l2_dataset, mrpg_l2, l2_params):
    base_r, base_k = l2_params
    for r_mult in (0.6, 1.0, 1.7):
        for k in (2, base_k, base_k * 3):
            r = base_r * r_mult
            ref = brute_force_outliers(l2_dataset.view(), r, k)
            res = graph_dod(l2_dataset, mrpg_l2, r, k)
            assert res.same_outliers(ref), (r, k)


def test_exact_on_edit_metric(edit_dataset, mrpg_edit):
    r, k = 3.0, 4
    ref = brute_force_outliers(edit_dataset.view(), r, k)
    res = graph_dod(edit_dataset, mrpg_edit, r, k)
    assert res.same_outliers(ref)


def test_parallel_equals_serial(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    serial = graph_dod(l2_dataset, mrpg_l2, r, k, n_jobs=1)
    parallel = graph_dod(l2_dataset, mrpg_l2, r, k, n_jobs=3)
    assert serial.same_outliers(parallel)


def test_result_accounting(l2_dataset, mrpg_l2, l2_params, l2_reference):
    r, k = l2_params
    res = graph_dod(l2_dataset, mrpg_l2, r, k)
    assert res.n == l2_dataset.n
    assert res.n_outliers == l2_reference.size
    assert res.counts["candidates"] >= 0
    # candidates = false positives + outliers found via verification.
    verified_outliers = res.n_outliers - res.counts["direct_outliers"]
    assert res.counts["false_positives"] == res.counts["candidates"] - verified_outliers
    assert res.pairs == res.phase_pairs["filter"] + res.phase_pairs["verify"]
    assert res.seconds >= 0
    assert set(res.phases) == {"filter", "verify"}


def test_kprime_shortcut_reduces_candidates(
    l2_dataset, mrpg_l2, mrpg_basic_l2, l2_params
):
    """MRPG's K'-NN lists resolve probable outliers without verification."""
    r, k = l2_params
    full = graph_dod(l2_dataset, mrpg_l2, r, k)
    basic = graph_dod(l2_dataset, mrpg_basic_l2, r, k)
    assert full.counts["direct_outliers"] >= basic.counts["direct_outliers"]


def test_explicit_verifier_strategy(l2_dataset, mrpg_l2, l2_params, l2_reference):
    r, k = l2_params
    for strategy in ("vptree", "linear"):
        v = Verifier(l2_dataset, strategy=strategy, rng=0)
        res = graph_dod(l2_dataset, mrpg_l2, r, k, verifier=v)
        assert res.same_outliers(l2_reference)


def test_max_visits_preserves_exactness(l2_dataset, mrpg_l2, l2_params, l2_reference):
    r, k = l2_params
    res = graph_dod(l2_dataset, mrpg_l2, r, k, max_visits=5)
    assert res.same_outliers(l2_reference)


def test_mismatched_graph_rejected(l2_dataset, mrpg_edit):
    with pytest.raises(GraphError):
        graph_dod(l2_dataset, mrpg_edit, 1.0, 2)


def test_parameter_validation(l2_dataset, mrpg_l2):
    with pytest.raises(ParameterError):
        graph_dod(l2_dataset, mrpg_l2, -1.0, 2)
    with pytest.raises(ParameterError):
        graph_dod(l2_dataset, mrpg_l2, 1.0, 0)


# -- DODetector -----------------------------------------------------------------


def test_detector_fit_detect(blob_points, l2_params, l2_reference):
    r, k = l2_params
    det = DODetector(metric="l2", graph="mrpg", K=8, seed=0)
    assert not det.is_fitted
    det.fit(blob_points)
    assert det.is_fitted
    res = det.detect(r, k)
    assert res.same_outliers(l2_reference)
    assert det.index_nbytes > 0


def test_detector_detect_before_fit():
    det = DODetector()
    with pytest.raises(ParameterError):
        det.detect(1.0, 2)


def test_detector_fit_detect_shortcut(blob_points, l2_params, l2_reference):
    r, k = l2_params
    res = DODetector(metric="l2", graph="kgraph", K=8, seed=0).fit_detect(
        blob_points, r, k
    )
    assert res.same_outliers(l2_reference)


def test_detect_outliers_convenience(blob_points, l2_params, l2_reference):
    r, k = l2_params
    res = detect_outliers(blob_points, r, k, metric="l2", graph="mrpg", K=8, seed=0)
    assert res.same_outliers(l2_reference)


def test_detector_repeated_detect_consistent(blob_points, l2_params):
    r, k = l2_params
    det = DODetector(metric="l2", graph="mrpg", K=8, seed=0).fit(blob_points)
    a = det.detect(r, k)
    b = det.detect(r, k)
    assert a.same_outliers(b)


def test_detector_string_data(word_list):
    det = DODetector(metric="edit", graph="mrpg", K=6, seed=0).fit(word_list)
    res = det.detect(3.0, 4)
    from repro import Dataset

    ref = brute_force_outliers(Dataset(word_list, "edit"), 3.0, 4)
    assert res.same_outliers(ref)


def test_result_summary_format(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    res = graph_dod(l2_dataset, mrpg_l2, r, k)
    text = res.summary()
    assert "mrpg" in text
    assert "outliers" in text
    assert "filter" in text
