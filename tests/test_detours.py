"""Unit tests for Remove-Detours and Get-Non-Monotonic (Algorithm 5)."""

import numpy as np
import pytest

from repro import Dataset
from repro.analysis import monotonic_path_coverage
from repro.graphs import Graph, remove_detours, scan_monotonicity
from repro.exceptions import ParameterError


def _detour_fixture():
    """A 1-D path graph with a known detour.

    Points: p0=0, p1=10, p2=1.  Edges: 0-1, 1-2.  The only path from p0
    to p2 goes through p1 which is *farther* from p0 than p2 — a detour.
    """
    ds = Dataset(np.asarray([[0.0], [10.0], [1.0]]), "l2")
    g = Graph(3)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.meta["K"] = 2
    g.finalize()
    return ds, g


def test_scan_flags_detour():
    ds, g = _detour_fixture()
    scan = scan_monotonicity(ds, g, reference=0, start=0, max_hops=3)
    flagged = {int(v): bool(m) for v, m in zip(scan.nodes, scan.monotonic)}
    assert flagged[1] is True  # direct neighbor: trivially monotonic
    assert flagged[2] is False  # reached via the farther vertex: detour


def test_scan_distances_and_hops():
    ds, g = _detour_fixture()
    scan = scan_monotonicity(ds, g, reference=0, start=0, max_hops=3)
    by_node = {int(v): t for t, v in enumerate(scan.nodes)}
    assert scan.dists[by_node[1]] == pytest.approx(10.0)
    assert scan.dists[by_node[2]] == pytest.approx(1.0)
    assert scan.hops[by_node[1]] == 1
    assert scan.hops[by_node[2]] == 2


def test_scan_respects_hop_budget():
    ds, g = _detour_fixture()
    scan = scan_monotonicity(ds, g, reference=0, start=0, max_hops=1)
    assert set(scan.nodes.tolist()) == {1}


def test_scan_from_pivot_start():
    ds, g = _detour_fixture()
    # Start at vertex 1, but measure distances to reference 0.
    scan = scan_monotonicity(ds, g, reference=0, start=1, max_hops=2)
    by_node = {int(v): t for t, v in enumerate(scan.nodes)}
    assert 2 in by_node
    assert scan.dists[by_node[2]] == pytest.approx(1.0)


def test_scan_validation():
    ds, g = _detour_fixture()
    with pytest.raises(ParameterError):
        scan_monotonicity(ds, g, reference=0, start=0, max_hops=0)


def test_remove_detours_adds_links(l2_dataset, kgraph_l2):
    g = kgraph_l2.copy()
    # Give the copy pivots so pivot-weighted sampling has targets.
    gen = np.random.default_rng(0)
    g.pivots[gen.choice(g.n, size=20, replace=False)] = True
    links_before = g.n_links
    stats = remove_detours(l2_dataset, g, rng=0)
    assert stats["targets"] >= 1
    assert g.n_links >= links_before
    assert stats["links_added"] == g.n_links - links_before


def test_remove_detours_improves_reachability(l2_dataset, l2_params, kgraph_l2):
    r, _ = l2_params
    g = kgraph_l2.copy()
    gen = np.random.default_rng(1)
    g.pivots[gen.choice(g.n, size=20, replace=False)] = True
    before = monotonic_path_coverage(l2_dataset, g, r, sample_size=40, rng=5)
    remove_detours(l2_dataset, g, rng=0, n_targets=g.n // 2)
    g.finalize()
    after = monotonic_path_coverage(l2_dataset, g, r, sample_size=40, rng=5)
    assert after >= before - 1e-9


def test_exact_knn_vertices_never_get_new_links(l2_dataset, mrpg_basic_l2):
    g = mrpg_basic_l2.copy()
    before = {p: list(g.neighbors_list(p)) for p in g.exact_knn}
    remove_detours(l2_dataset, g, rng=9, n_targets=50)
    for p, links in before.items():
        assert g.neighbors_list(p) == links
