"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def test_suites_lists_all(capsys):
    assert main(["suites"]) == 0
    out = capsys.readouterr().out
    for name in ("deep", "glove", "hepmass", "mnist", "pamap2", "sift", "words"):
        assert name in out


def test_detect_on_suite(capsys):
    code = main(
        ["detect", "--suite", "glove", "--n", "220", "--K", "8", "--k", "6"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "outliers" in out
    assert "mrpg" in out


def test_detect_on_npy_input(tmp_path, capsys, rng):
    pts = np.concatenate(
        [rng.normal(size=(150, 4)), rng.normal(size=(4, 4)) + 50.0]
    )
    path = tmp_path / "pts.npy"
    np.save(path, pts)
    out_path = tmp_path / "outliers.txt"
    code = main(
        ["detect", "--input", str(path), "--r", "2.0", "--k", "5",
         "--K", "8", "--output", str(out_path)]
    )
    assert code == 0
    ids = np.loadtxt(out_path, dtype=np.int64, ndmin=1)
    assert ids.size >= 4  # at least the planted far points


def test_detect_text_input_edit_metric(tmp_path, capsys):
    from repro.datasets import words_with_outliers

    words = words_with_outliers(160, n_stems=10, planted_frac=0.02, rng=0)
    path = tmp_path / "words.txt"
    path.write_text("\n".join(words), encoding="utf-8")
    code = main(
        ["detect", "--input", str(path), "--metric", "edit",
         "--r", "4", "--k", "4", "--K", "6"]
    )
    assert code == 0
    assert "edit" not in capsys.readouterr().err


def test_detect_input_requires_r_and_k(tmp_path, capsys, rng):
    path = tmp_path / "pts.npy"
    np.save(path, rng.normal(size=(50, 3)))
    assert main(["detect", "--input", str(path)]) == 2
    assert "--r and --k" in capsys.readouterr().err


def test_sweep_on_suite_with_check(capsys):
    code = main(
        ["sweep", "--suite", "glove", "--n", "300", "--K", "8",
         "--k-grid", "5,8", "--check"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "check passed" in out
    assert "cache_decided" in out
    assert "speedup from reuse" in out


def test_sweep_snapshot_restart_serves_warm(tmp_path, capsys):
    snap = tmp_path / "engine.npz"
    args = ["sweep", "--suite", "glove", "--n", "250", "--K", "8",
            "--k", "6", "--snapshot", str(snap)]
    assert main(args) == 0
    assert snap.exists()
    first = capsys.readouterr().out
    assert "snapshot written" in first
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "loaded warm engine snapshot" in second
    # The ", 0" anchor matters: "10 distance computations" would still
    # contain the bare substring "0 distance computations".
    assert ", 0 distance computations" in second


def test_sweep_rejects_bad_grids_cleanly(capsys):
    # Library ParameterErrors must surface as CLI errors, not tracebacks.
    code = main(["sweep", "--suite", "glove", "--n", "150", "--K", "6",
                 "--k-grid", "0"])
    assert code == 2
    assert "k must be >= 1" in capsys.readouterr().err
    code = main(["sweep", "--suite", "glove", "--n", "150", "--K", "6",
                 "--r-grid", ""])
    assert code == 2
    assert "at least one value" in capsys.readouterr().err
    # Malformed tokens are a clean CLI error too, not a ValueError traceback.
    code = main(["sweep", "--suite", "glove", "--n", "150", "--K", "6",
                 "--k-grid", "5a"])
    assert code == 2
    assert "invalid grid value '5a'" in capsys.readouterr().err


def test_sweep_input_requires_parameters(tmp_path, capsys, rng):
    path = tmp_path / "pts.npy"
    np.save(path, rng.normal(size=(60, 3)))
    assert main(["sweep", "--input", str(path)]) == 2
    assert "--r/--r-grid" in capsys.readouterr().err


def test_sweep_on_npy_input(tmp_path, capsys, rng):
    pts = np.concatenate(
        [rng.normal(size=(120, 4)), rng.normal(size=(4, 4)) + 40.0]
    )
    path = tmp_path / "pts.npy"
    np.save(path, pts)
    code = main(
        ["sweep", "--input", str(path), "--r-grid", "1.5,2.0,2.5",
         "--k-grid", "4", "--K", "8", "--check"]
    )
    assert code == 0
    assert "check passed" in capsys.readouterr().out


def test_experiment_command(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SUITES", "words")
    from repro.harness import clear_caches

    clear_caches()
    code = main(
        ["experiment", "table1", "--save-dir", str(tmp_path), "--scale", "0.1"]
    )
    clear_caches()
    assert code == 0
    assert (tmp_path / "table1.txt").exists()
    assert "table1" in capsys.readouterr().out


def test_topn_command(capsys):
    code = main(
        ["topn", "--suite", "words", "--n-top", "5", "--n", "200",
         "--K", "6", "--k", "4"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "kNN distance" in out
    assert "seeding=mrpg" in out


def test_topn_command_no_graph(capsys):
    code = main(
        ["topn", "--suite", "words", "--n-top", "3", "--n", "150",
         "--no-graph", "--k", "3"]
    )
    assert code == 0
    assert "seeding=none" in capsys.readouterr().out


def test_stream_command(capsys):
    code = main(
        ["stream", "--suite", "words", "--n", "160", "--window", "40", "--k", "4"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "window outliers" in out
    assert "reports" in out


def test_stream_command_with_check(capsys):
    code = main(
        ["stream", "--suite", "glove", "--n", "120", "--window", "30",
         "--k", "4", "--check"]
    )
    assert code == 0
    assert "check passed" in capsys.readouterr().out


def test_update_command_with_check_and_snapshot(tmp_path, capsys):
    snap = str(tmp_path / "mutable.npz")
    args = ["update", "--suite", "glove", "--n", "200", "--batches", "3",
            "--churn", "0.1", "--K", "8", "--check", "--snapshot", snap]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "check passed" in out
    assert "snapshot written" in out
    # Second run restores the snapshot and serves warm.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "loaded warm mutable snapshot" in out
    assert "check passed" in out


def test_update_command_rejects_bad_parameters(capsys):
    code = main(
        ["update", "--suite", "glove", "--n", "120", "--batches", "0"]
    )
    assert code == 2
    assert "batches" in capsys.readouterr().err
    code = main(
        ["update", "--suite", "glove", "--n", "120", "--rebalance"]
    )
    assert code == 2
    assert "--shards" in capsys.readouterr().err


def test_update_command_sharded_with_snapshot(tmp_path, capsys):
    snap = str(tmp_path / "mutable_sharded")
    args = ["update", "--suite", "glove", "--n", "180", "--batches", "3",
            "--churn", "0.1", "--K", "8", "--shards", "2", "--check",
            "--snapshot", snap]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "check passed" in out
    assert "snapshot written" in out
    # Second run restores the directory snapshot and serves warm.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "loaded warm mutable snapshot" in out
    assert "pairs=        0" in out
    assert "check passed" in out


def test_stream_command_sharded_with_check(capsys):
    code = main(
        ["stream", "--suite", "glove", "--n", "120", "--window", "30",
         "--k", "4", "--shards", "2", "--check"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "shards=2" in out
    assert "check passed" in out


def test_calibrate_command(capsys):
    code = main(
        ["calibrate", "--suite", "words", "--k", "4", "--target", "0.05",
         "--n", "150"]
    )
    assert code == 0
    assert "calibrated r=" in capsys.readouterr().out


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
