"""Unit tests for Remove-Links (§5.4)."""

import numpy as np

from repro import Dataset
from repro.core import VisitTracker, greedy_count
from repro.graphs import Graph, remove_links


def _triangle_fixture():
    """p0, p1 non-pivots both linked to pivot p2; p0-p1 also linked.

    Remove-Links must drop the redundant p0-p1 edge: p1 stays reachable
    from p0 through the pivot.
    """
    g = Graph(4)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 2)
    g.add_edge(2, 3)  # keep degrees above the safety floor
    g.add_edge(0, 3)
    g.add_edge(1, 3)
    g.pivots[2] = True
    return g


def test_removes_pivot_shadowed_edge():
    g = _triangle_fixture()
    stats = remove_links(g)
    assert stats["removed"] >= 1
    assert not g.has_link(0, 1)
    assert not g.has_link(1, 0)
    # Links to the pivot survive.
    assert g.has_link(0, 2) and g.has_link(1, 2)


def test_no_pivot_no_removal():
    g = _triangle_fixture()
    g.pivots[2] = False
    stats = remove_links(g)
    assert stats["removed"] == 0
    assert g.has_link(0, 1)


def test_degree_floor_respected():
    g = Graph(3)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 2)
    g.pivots[2] = True
    remove_links(g)
    # Degrees are exactly 2 everywhere: nothing may be removed.
    assert g.has_link(0, 1)


def test_exact_knn_vertices_untouched():
    g = _triangle_fixture()
    g.exact_knn[1] = (np.asarray([0, 2]), np.asarray([1.0, 1.0]))
    remove_links(g)
    assert g.has_link(0, 1)  # q=1 holds an exact list: edge kept


def test_reachability_preserved_through_pivot():
    # Points on a line; 0 and 1 are within r of each other; after the
    # 0-1 edge is pruned, greedy counting from 0 must still find 1 via
    # the out-of-range pivot 2 (Algorithm 2 lines 13-14).
    pts = np.asarray([[0.0], [1.0], [50.0], [51.0]])
    ds = Dataset(pts, "l2")
    g = _triangle_fixture()
    remove_links(g)
    g.finalize()
    assert not g.has_link(0, 1)
    count = greedy_count(ds, g, 0, r=2.0, k=1, tracker=VisitTracker(4))
    assert count >= 1  # found vertex 1 through pivot 2


def test_mrpg_fixture_pruning_stats(mrpg_l2):
    # The session MRPG recorded its pruning phase.
    assert "links_removed" in mrpg_l2.meta
    assert mrpg_l2.meta["links_removed"] >= 0
