"""Worker-count invariance of the process-parallel graph build.

The contract of :mod:`repro.graphs.parallel_build`: for a fixed seed,
``build_workers=W`` produces the *bit-identical* graph for every W >= 1
and for either multiprocessing start method, because all randomness
comes from per-(seed, stage, round, partition) streams and all merges
happen in fixed partition order.  ``build_workers=None`` keeps the
legacy sequential algorithm (a different, order-dependent fixed point)
so existing seeded artifacts stay valid.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro import Dataset, build_graph
from repro.exceptions import ParameterError
from repro.graphs import BUILD_PARTITIONS, build_partitions, graphs_equal
from repro.index import brute_force_outliers

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

_HAS_FORK = "fork" in mp.get_all_start_methods()


def _dataset(request, name: str) -> Dataset:
    return request.getfixturevalue(f"{name}_dataset")


def _build(dataset, graph="mrpg", workers=1, start_method=None, seed=7, K=6):
    return build_graph(
        graph,
        dataset.view(),
        K=K,
        rng=np.random.default_rng(seed),
        build_workers=workers,
        build_start_method=start_method,
    )


# -- partitioning ------------------------------------------------------------


def test_partitions_cover_every_id_once():
    for n in (1, 2, 15, 16, 17, 260, 1000):
        parts = build_partitions(n)
        assert len(parts) == min(n, BUILD_PARTITIONS)
        flat = np.concatenate(parts)
        assert np.array_equal(np.sort(flat), np.arange(n))
        # Contiguous ranges: workers can be assigned any subset without
        # changing which rows belong to which partition.
        for ids in parts:
            assert np.array_equal(ids, np.arange(ids[0], ids[-1] + 1))


def test_partition_layout_independent_of_worker_count():
    # The partition list is a function of n alone — nothing about the
    # pool may leak into it, or invariance would break.
    assert all(
        np.array_equal(a, b)
        for a, b in zip(build_partitions(260), build_partitions(260))
    )


# -- worker-count invariance --------------------------------------------------


@pytest.mark.parametrize("metric", ["l2", "l1", "angular", "edit"])
@pytest.mark.parametrize("graph", ["mrpg", "kgraph"])
def test_bit_identical_across_worker_counts(request, metric, graph):
    ds = _dataset(request, metric)
    reference = _build(ds, graph=graph, workers=1)
    for workers in (2, 4):
        other = _build(ds, graph=graph, workers=workers)
        assert graphs_equal(reference, other), (
            f"{graph}/{metric}: build_workers={workers} diverged from the "
            f"serial reference"
        )


@pytest.mark.parametrize("metric", ["l2", "edit"])
def test_exact_knn_arrays_bit_identical(request, metric):
    ds = _dataset(request, metric)
    a = _build(ds, workers=1)
    b = _build(ds, workers=4)
    assert set(a.exact_knn) == set(b.exact_knn)
    for p, (ids_a, dists_a) in a.exact_knn.items():
        ids_b, dists_b = b.exact_knn[p]
        assert np.array_equal(ids_a, ids_b)
        # Bit-identity, not tolerance: the same distances must have been
        # computed in the same order on both sides.
        assert np.array_equal(
            dists_a.view(np.uint64), dists_b.view(np.uint64)
        )


@pytest.mark.skipif(not _HAS_FORK, reason="platform has no fork")
@pytest.mark.parametrize("metric", ["l2", "l1", "angular", "edit"])
def test_spawn_matches_fork(request, metric):
    ds = _dataset(request, metric)
    forked = _build(ds, workers=2, start_method="fork")
    spawned = _build(ds, workers=2, start_method="spawn")
    assert graphs_equal(forked, spawned)
    assert forked.meta["build_stats"]["start_method"] == "fork"
    assert spawned.meta["build_stats"]["start_method"] == "spawn"


def test_legacy_default_is_untouched(l2_dataset, mrpg_l2):
    # build_workers=None must keep producing the historical sequential
    # graph — the session fixture was built that way.
    again = build_graph(
        "mrpg", l2_dataset.view(), K=8, rng=np.random.default_rng(0)
    )
    assert graphs_equal(mrpg_l2, again)
    assert "build_workers" not in again.meta


# -- downstream exactness -----------------------------------------------------


def test_parallel_build_serves_exact_answers(l2_dataset, l2_params):
    from repro import graph_dod

    r, k = l2_params
    ref = brute_force_outliers(l2_dataset.view(), r, k)
    g = _build(l2_dataset, workers=3, K=8)
    res = graph_dod(l2_dataset.view(), g, r, k)
    assert res.same_outliers(ref)


def test_engine_paths_agree_across_worker_counts(l2_dataset, l2_params):
    from repro.engine import create_engine

    r, k = l2_params
    data = np.asarray(
        [l2_dataset.get(i) for i in range(l2_dataset.n)], dtype=np.float64
    )
    outs = []
    for workers in (1, 2):
        with create_engine(
            data, metric="l2", K=8, seed=3, build_workers=workers
        ) as engine:
            outs.append(engine.query(r, k).outliers)
    assert np.array_equal(outs[0], outs[1])
    ref = brute_force_outliers(l2_dataset.view(), r, k)
    assert np.array_equal(np.sort(outs[0]), np.sort(ref))


# -- observability ------------------------------------------------------------


def test_build_stats_phases_recorded(l2_dataset):
    g = _build(l2_dataset, workers=2, K=8)
    stats = g.build_stats()
    for key in (
        "build_seconds",
        "phase_seconds",
        "iterations",
        "updates_per_round",
        "init_seconds",
        "round_seconds",
        "workers",
        "start_method",
        "build_pairs",
    ):
        assert key in stats, key
    assert stats["workers"] == 2
    assert stats["build_workers"] == 2
    assert len(stats["round_seconds"]) == stats["iterations"]
    assert len(stats["updates_per_round"]) == stats["iterations"]
    assert stats["build_pairs"] > 0


def test_one_pool_spans_all_stages(l2_dataset):
    # A single persistent pool serves NN-Descent, exact-K'NN, detour
    # and prune stages: the distance work done by the workers lands in
    # the parent counter exactly once, at release time.
    view = l2_dataset.view()
    before = view.counter.pairs
    g = build_graph(
        "mrpg", view, K=8, rng=np.random.default_rng(7), build_workers=2
    )
    spent = view.counter.pairs - before
    # Worker-side pairs were folded back: total accounting must cover at
    # least the all-stage budget recorded in the graph meta.
    assert spent >= g.meta["build_stats"]["build_pairs"] > 0


def test_sharded_engine_daemon_guard(l2_dataset, l2_params):
    # Shard workers are daemon processes and cannot fork their own
    # build pool; the guard silently degrades to one in-process build
    # worker, and invariance keeps the result identical to any W.
    from repro.engine import create_engine

    r, k = l2_params
    data = np.asarray(
        [l2_dataset.get(i) for i in range(l2_dataset.n)], dtype=np.float64
    )
    with create_engine(
        data, metric="l2", K=8, seed=3, shards=2, workers=2, build_workers=4
    ) as engine:
        res = engine.query(r, k)
        stats = engine.build_stats()
    assert stats["build_workers"] == 4
    assert len(stats["per_shard"]) == 2
    for entry in stats["per_shard"]:
        # Guard engaged: effective in-shard pool is one worker.
        assert entry["workers"] == 1
    ref = brute_force_outliers(l2_dataset.view(), r, k)
    assert np.array_equal(np.sort(res.outliers), np.sort(ref))


def test_invalid_worker_count_rejected(l2_dataset):
    with pytest.raises(ParameterError):
        _build(l2_dataset, workers=0)
