"""Unit tests for seeded randomness helpers."""

import numpy as np

from repro.rng import ensure_rng, spawn


def test_ensure_rng_from_int():
    a = ensure_rng(7)
    b = ensure_rng(7)
    assert a.integers(1000) == b.integers(1000)


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_is_fresh():
    a = ensure_rng(None)
    b = ensure_rng(None)
    assert a is not b


def test_spawn_independent_streams():
    parent = ensure_rng(3)
    children = spawn(parent, 4)
    assert len(children) == 4
    draws = [c.integers(10**9) for c in children]
    assert len(set(draws)) == 4  # distinct with overwhelming probability


def test_spawn_deterministic():
    a = spawn(ensure_rng(5), 3)
    b = spawn(ensure_rng(5), 3)
    for ca, cb in zip(a, b):
        assert ca.integers(10**9) == cb.integers(10**9)
