"""Metamorphic and exactness properties of the multi-query DetectionEngine.

The engine's contract is absolute: every answer it serves — cold, warm,
in any query order, after a snapshot restart, at any parallelism — is
*bit-identical* to a fresh ``graph_dod`` run, which is itself exactly
the brute-force outlier set.  The tests here drive the full
metric x graph-type x seed matrix through query streams designed to
stress the cache (ascending/descending/shuffled grids), and check the
set-monotonicity laws against the nested-loop oracle:
``outliers(r') ⊆ outliers(r)`` for ``r' >= r`` and
``outliers(k') ⊆ outliers(k)`` for ``k' <= k``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Dataset,
    DetectionEngine,
    DODetector,
    EvidenceCache,
    build_graph,
    graph_dod,
)
from repro.baselines import nested_loop_dod
from repro.core import Verifier
from repro.datasets import blobs_with_outliers, words_with_outliers
from repro.engine.evidence import NO_BOUND
from repro.exceptions import GraphError, ParameterError

GRAPHS = ("mrpg", "mrpg-basic", "kgraph", "nsw")
METRICS = ("l1", "l2", "edit")


def _make_dataset(metric: str, seed: int) -> Dataset:
    if metric == "edit":
        words = words_with_outliers(110, n_stems=9, planted_frac=0.03, rng=seed)
        return Dataset(words, "edit")
    pts = blobs_with_outliers(
        140, dim=4, n_clusters=3, core_std=0.7, tail_std=2.0, tail_frac=0.07,
        center_spread=10.0, planted_frac=0.03, planted_spread=45.0, rng=seed,
    )
    return Dataset(pts, metric)


def _base_radius(ds: Dataset) -> float:
    gen = np.random.default_rng(0)
    a = gen.integers(0, ds.n, 800)
    b = gen.integers(0, ds.n, 800)
    keep = a != b
    d = ds.view().pair_dist(a[keep], b[keep])
    return float(np.quantile(d, 0.12))


def _assert_bit_identical(fresh, served, where):
    assert np.array_equal(fresh.outliers, served.outliers), where
    assert fresh.outliers.dtype == served.outliers.dtype, where
    assert served.r == fresh.r and served.k == fresh.k, where


# -- the metamorphic matrix: metrics x graph types x seeds ---------------------


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("builder", GRAPHS)
@pytest.mark.parametrize("seed", [0, 1])
def test_engine_bit_identical_to_graph_dod(metric, builder, seed):
    ds = _make_dataset(metric, seed)
    graph = build_graph(builder, ds, K=6, rng=seed)
    verifier = Verifier(ds, rng=seed)
    engine = DetectionEngine(ds, graph, verifier=verifier, rng=seed)

    r0 = _base_radius(ds)
    grid = [
        (r0 * f, k)
        for f in (0.85, 1.0, 1.2)
        for k in (2, 5, 9)
    ]
    # A shuffled stream exercises every transfer direction of the cache.
    order = np.random.default_rng(seed).permutation(len(grid))
    for t in order:
        r, k = grid[t]
        fresh = graph_dod(ds.view(), graph, r, k, verifier=verifier, rng=seed)
        served = engine.query(r, k)
        _assert_bit_identical(fresh, served, (metric, builder, seed, r, k))
    assert engine.stats["queries"] == len(grid)
    # Reuse must actually kick in: the stream revisits nearby settings.
    assert engine.stats["cache_decided"] > 0


@pytest.mark.parametrize("metric", ("l2", "edit"))
def test_engine_monotone_in_r_against_oracle(metric):
    ds = _make_dataset(metric, seed=3)
    graph = build_graph("mrpg", ds, K=6, rng=3)
    engine = DetectionEngine(ds, graph, rng=3)
    r0 = _base_radius(ds)
    k = 5
    r_grid = [r0 * f for f in (0.8, 0.95, 1.1, 1.3)]
    sweep = engine.sweep(r_grid, k=k)
    previous: set[int] | None = None
    for r in r_grid:  # ascending
        served = sweep.result(r, k)
        oracle = nested_loop_dod(ds.view(), r, k, rng=0)
        assert oracle.same_outliers(served), (metric, r)
        current = set(served.outliers.tolist())
        if previous is not None:
            # Growing r can only shrink the outlier set.
            assert current <= previous, (metric, r)
        previous = current


@pytest.mark.parametrize("metric", ("l2", "edit"))
def test_engine_monotone_in_k_against_oracle(metric):
    ds = _make_dataset(metric, seed=4)
    graph = build_graph("mrpg", ds, K=6, rng=4)
    engine = DetectionEngine(ds, graph, rng=4)
    r = _base_radius(ds)
    k_grid = [2, 4, 7, 10]
    sweep = engine.sweep([r], k_grid=k_grid)
    previous: set[int] | None = None
    for k in sorted(k_grid, reverse=True):  # descending k
        served = sweep.result(r, k)
        oracle = nested_loop_dod(ds.view(), r, k, rng=0)
        assert oracle.same_outliers(served), (metric, k)
        current = set(served.outliers.tolist())
        if previous is not None:
            # Lowering k can only shrink the outlier set.
            assert current <= previous, (metric, k)
        previous = current


# -- cache semantics ------------------------------------------------------------


def test_repeat_query_is_pure_cache_hit(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    first = engine.query(r, k)
    again = engine.query(r, k)
    _assert_bit_identical(first, again, "repeat")
    assert again.pairs == 0
    assert again.counts["cache_decided"] == l2_dataset.n
    assert again.counts["filtered"] == 0


def test_sweep_matches_independent_queries(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    r_grid = [r * f for f in (0.9, 1.0, 1.1)]
    k_grid = [max(1, k - 3), k]
    sweep = DetectionEngine(l2_dataset, mrpg_l2, rng=0).sweep(r_grid, k_grid)
    for rv in r_grid:
        for kv in k_grid:
            fresh = graph_dod(l2_dataset.view(), mrpg_l2, rv, kv, rng=0)
            _assert_bit_identical(fresh, sweep.result(rv, kv), (rv, kv))
    assert sweep.seconds >= 0
    assert "sweep over 6 queries" in sweep.summary()


def test_batch_preserves_given_order(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    queries = [(r, k), (r * 0.9, k), (r * 1.1, max(1, k - 2)), (r, k)]
    results = engine.batch(queries)
    assert [(res.r, res.k) for res in results] == [
        (float(rv), int(kv)) for rv, kv in queries
    ]
    for (rv, kv), res in zip(queries, results):
        fresh = graph_dod(l2_dataset.view(), mrpg_l2, rv, kv, rng=0)
        _assert_bit_identical(fresh, res, (rv, kv))


def test_parallel_engine_matches_serial(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    serial = DetectionEngine(l2_dataset, mrpg_l2, n_jobs=1, rng=0)
    parallel = DetectionEngine(l2_dataset, mrpg_l2, n_jobs=3, rng=0)
    with parallel:
        for f in (0.9, 1.0, 1.1):
            _assert_bit_identical(
                serial.query(r * f, k), parallel.query(r * f, k), f
            )


def test_ingested_evidence_warms_the_cache(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    run = graph_dod(l2_dataset.view(), mrpg_l2, r, k, rng=0, collect_evidence=True)
    assert run.evidence is not None and run.evidence.n == l2_dataset.n
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    engine.ingest(run.evidence)
    served = engine.query(r, k)
    _assert_bit_identical(run, served, "ingest")
    assert served.counts["cache_decided"] == l2_dataset.n
    assert served.pairs == 0


def test_engine_query_collects_evidence(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    res = engine.query(r, k, collect_evidence=True)
    assert res.evidence is not None
    outliers = set(res.outliers.tolist())
    for p in range(l2_dataset.n):
        lb = int(res.evidence.lower_bounds[p])
        if p in outliers:
            assert lb < k
            assert res.evidence.exact_mask[p]
        else:
            assert lb >= k or not res.evidence.exact_mask[p]


def test_reset_cache_forgets_everything(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    first = engine.query(r, k)
    engine.reset_cache()
    cold = engine.query(r, k)
    _assert_bit_identical(first, cold, "reset")
    assert cold.counts["filtered"] > 0  # really recomputed


def test_detector_engine_handoff(blob_points):
    det = DODetector(metric="l2", graph="mrpg", K=8, seed=0).fit(blob_points)
    engine = det.engine()
    res_det = det.detect(r=3.0, k=6)
    res_eng = engine.query(r=3.0, k=6)
    _assert_bit_identical(res_det, res_eng, "detector-handoff")
    assert engine.index_nbytes >= det.index_nbytes


# -- outlier distance memoisation ---------------------------------------------


def test_ascending_sweep_memoises_repeat_outliers(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    sweep = engine.sweep([r * 0.9, r, r * 1.1, r * 1.2], k=k)
    assert engine.stats["memoised"] > 0
    for (rv, kv), res in sweep.results.items():
        fresh = graph_dod(
            l2_dataset.view(), mrpg_l2, rv, kv,
            verifier=engine.verifier, rng=0,
        )
        assert fresh.same_outliers(res), (rv, kv)
    # Memoised objects are decided in O(log n) at a never-seen radius:
    # the sweep's outliers cost no further linear scans.
    probe = engine.query(r * 1.15, k)
    fresh = graph_dod(
        l2_dataset.view(), mrpg_l2, r * 1.15, k,
        verifier=engine.verifier, rng=0,
    )
    assert fresh.same_outliers(probe)


def test_memo_budget_respected(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0, memo_budget=2)
    engine.sweep([r * 0.9, r, r * 1.1], k=k)
    assert len(engine._memo) <= 2
    assert engine.stats["memoised"] <= 2


def test_memo_disabled_still_exact(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    on = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    off = DetectionEngine(l2_dataset, mrpg_l2, rng=0, memo_outliers=False)
    grid = [r * 0.9, r, r * 1.1]
    sweep_on = on.sweep(grid, k=k)
    sweep_off = off.sweep(grid, k=k)
    assert off.stats["memoised"] == 0
    for key in sweep_on.results:
        np.testing.assert_array_equal(
            sweep_on.results[key].outliers, sweep_off.results[key].outliers
        )


def test_memo_survives_reset_cache(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    engine.sweep([r * 0.9, r], k=k)
    memoised = dict(engine._memo)
    engine.reset_cache()
    res = engine.query(r, k)
    fresh = graph_dod(
        l2_dataset.view(), mrpg_l2, r, k, verifier=engine.verifier, rng=0
    )
    assert fresh.same_outliers(res)
    for p, vec in memoised.items():
        np.testing.assert_array_equal(engine._memo[p], vec)


# -- bounded-cache serving -------------------------------------------------------


def test_cache_radii_budget_keeps_answers_exact(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    capped = DetectionEngine(l2_dataset, mrpg_l2, rng=0, cache_radii=2)
    grid = [r * f for f in (0.85, 0.9, 0.95, 1.0, 1.05, 1.1)]
    sweep = capped.sweep(grid, k=k)
    assert len(capped.cache._lb) <= 2 and len(capped.cache._ub) <= 2
    for (rv, kv), res in sweep.results.items():
        fresh = graph_dod(
            l2_dataset.view(), mrpg_l2, rv, kv, verifier=capped.verifier, rng=0
        )
        assert fresh.same_outliers(res), (rv, kv)


# -- engine-seeded top-n ----------------------------------------------------------


def test_engine_top_n_matches_plain_and_prunes_more(l2_dataset, mrpg_l2, l2_params):
    from repro.extensions import top_n_outliers
    from repro.extensions.topn import knn_distance_scores

    r, k = l2_params
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    engine.sweep([r * 0.9, r, r * 1.1], k=k)
    seeded = engine.top_n(10, k)
    plain = top_n_outliers(l2_dataset, 10, k, rng=0)
    np.testing.assert_allclose(
        np.sort(seeded.scores), np.sort(plain.scores), rtol=1e-12
    )
    expected = np.sort(knn_distance_scores(l2_dataset, k))[::-1][:10]
    np.testing.assert_allclose(np.sort(seeded.scores)[::-1], expected)
    assert seeded.pruned_objects >= plain.pruned_objects
    assert seeded.pairs <= plain.pairs


def test_top_n_rejects_conflicting_inputs(l2_dataset, mrpg_l2, rng):
    from repro.extensions import top_n_outliers

    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    other = Dataset(rng.normal(size=(l2_dataset.n, 6)), "l2")
    with pytest.raises(ParameterError):
        top_n_outliers(other, 5, 3, engine=engine)
    with pytest.raises(ParameterError):
        top_n_outliers(None, 5, 3)


# -- evidence cache unit behavior ---------------------------------------------


def test_evidence_cache_bound_folding():
    cache = EvidenceCache(4)
    ids = np.arange(4)
    cache.record(1.0, ids, np.array([3, 1, 0, 2]),
                 exact_mask=np.array([True, False, True, False]))
    cache.record(2.0, ids, np.array([5, 1, 1, 2]),
                 exact_mask=np.array([False, True, True, False]))
    # Lower bounds transfer upward in r.
    np.testing.assert_array_equal(cache.lower_bounds(1.5), [3, 1, 0, 2])
    np.testing.assert_array_equal(cache.lower_bounds(2.0), [5, 1, 1, 2])
    np.testing.assert_array_equal(cache.lower_bounds(0.5), [0, 0, 0, 0])
    # Upper bounds (exact counts) transfer downward in r.
    np.testing.assert_array_equal(cache.upper_bounds(1.0), [3, 1, 0, NO_BOUND])
    np.testing.assert_array_equal(
        cache.upper_bounds(0.5), [3, 1, 0, NO_BOUND]
    )
    assert cache.upper_bounds(2.5)[0] == NO_BOUND
    assert cache.radii == [1.0, 2.0]
    assert cache.nbytes > 0
    cache.clear()
    assert cache.radii == []


def test_evidence_cache_rejects_mismatched_ingest(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    run = graph_dod(l2_dataset.view(), mrpg_l2, r, k, rng=0, collect_evidence=True)
    with pytest.raises(ParameterError):
        EvidenceCache(l2_dataset.n + 1).ingest(run.evidence)


def test_engine_tolerates_empty_exact_knn_lists(blob_points):
    # np.add.reduceat fabricates values for zero-length segments; the
    # engine must drop empty exact-K'NN lists rather than turn them into
    # phantom count evidence.
    ds = Dataset(blob_points, "l2")
    graph = build_graph("mrpg", ds, K=6, rng=0).copy()
    victims = sorted(graph.exact_knn)[:2]
    for p in victims:
        graph.exact_knn[p] = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    engine = DetectionEngine(ds, graph, rng=0)
    r = _base_radius(ds)
    for k in (1, 4):
        fresh = graph_dod(ds.view(), graph, r, k, rng=0)
        _assert_bit_identical(fresh, engine.query(r, k), ("empty-knn", k))


# -- error paths ----------------------------------------------------------------


def test_engine_rejects_mismatched_graph(l2_dataset):
    small = Dataset(np.random.default_rng(0).normal(size=(40, 6)), "l2")
    graph = build_graph("kgraph", small, K=4, rng=0)
    with pytest.raises(GraphError):
        DetectionEngine(l2_dataset, graph)


def test_engine_rejects_bad_parameters(l2_dataset, mrpg_l2):
    engine = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    with pytest.raises(ParameterError):
        engine.query(-1.0, 5)
    with pytest.raises(ParameterError):
        engine.query(1.0, 0)
    with pytest.raises(ParameterError):
        engine.sweep([1.0, 2.0])  # no k at all
    with pytest.raises(ParameterError):
        engine.sweep([1.0, 1.0], k=5)  # duplicate grid point
