"""Unit tests for graph (de)serialisation."""

import numpy as np
import pytest

from repro import graph_dod, load_graph, save_graph
from repro.exceptions import GraphError


def test_roundtrip_adjacency(mrpg_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(mrpg_l2, path)
    loaded = load_graph(path)
    assert loaded.n == mrpg_l2.n
    for v in range(mrpg_l2.n):
        assert loaded.neighbors_list(v) == mrpg_l2.neighbors_list(v)


def test_roundtrip_pivots_and_exact(mrpg_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(mrpg_l2, path)
    loaded = load_graph(path)
    np.testing.assert_array_equal(loaded.pivots, mrpg_l2.pivots)
    assert sorted(loaded.exact_knn) == sorted(mrpg_l2.exact_knn)
    for p, (ids, dists) in mrpg_l2.exact_knn.items():
        lids, ldists = loaded.exact_knn[p]
        np.testing.assert_array_equal(lids, ids)
        np.testing.assert_allclose(ldists, dists)


def test_roundtrip_meta(mrpg_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(mrpg_l2, path)
    loaded = load_graph(path)
    assert loaded.meta["builder"] == "mrpg"
    assert loaded.meta["K"] == mrpg_l2.meta["K"]


def test_loaded_graph_detects_identically(
    mrpg_l2, l2_dataset, l2_params, tmp_path
):
    r, k = l2_params
    path = tmp_path / "g.npz"
    save_graph(mrpg_l2, path)
    loaded = load_graph(path)
    a = graph_dod(l2_dataset, mrpg_l2, r, k)
    b = graph_dod(l2_dataset, loaded, r, k)
    assert a.same_outliers(b)


def test_loaded_graph_is_finalized(kgraph_l2, tmp_path):
    path = tmp_path / "g.npz"
    save_graph(kgraph_l2, path)
    assert load_graph(path).finalized


def test_version_check(tmp_path, kgraph_l2):
    path = tmp_path / "g.npz"
    save_graph(kgraph_l2, path)
    import numpy as np

    with np.load(path) as data:
        payload = dict(data)
    payload["format_version"] = np.asarray(99)
    np.savez(path, **payload)
    with pytest.raises(GraphError):
        load_graph(path)
