"""Unit tests for the dynamic (insert/remove) DOD extension."""

import numpy as np
import pytest

from repro import Dataset
from repro.exceptions import ParameterError
from repro.extensions import DynamicDODetector
from repro.index import brute_force_outliers


def _reference(objects, metric, r, k, active_ids):
    """Brute-force outliers of the live collection, as external ids."""
    ds = Dataset(objects, metric)
    local = brute_force_outliers(ds, r, k)
    return np.asarray(sorted(int(active_ids[t]) for t in local), dtype=np.int64)


@pytest.fixture()
def clustered_points(rng):
    return np.concatenate(
        [rng.normal(size=(120, 4)), rng.normal(size=(6, 4)) * 0.3 + 25.0]
    )


def test_detect_after_bulk_add(clustered_points):
    det = DynamicDODetector(metric="l2", K=6, seed=0)
    det.add(clustered_points)
    res = det.detect(r=2.0, k=5)
    active = det.active_ids()
    ref = _reference(clustered_points, "l2", 2.0, 5, active)
    np.testing.assert_array_equal(res.outliers, ref)


def test_incremental_adds_match_bulk(clustered_points):
    inc = DynamicDODetector(metric="l2", K=6, seed=0)
    for lo in range(0, clustered_points.shape[0], 25):
        inc.add(clustered_points[lo : lo + 25])
    bulk = DynamicDODetector(metric="l2", K=6, seed=0)
    bulk.add(clustered_points)
    a = inc.detect(r=2.0, k=5)
    b = bulk.detect(r=2.0, k=5)
    np.testing.assert_array_equal(a.outliers, b.outliers)


def test_remove_changes_answer_exactly(clustered_points, rng):
    det = DynamicDODetector(metric="l2", K=6, seed=0)
    det.add(clustered_points)
    victims = rng.choice(120, size=30, replace=False)
    det.remove(victims.tolist())
    assert det.n_active == clustered_points.shape[0] - 30
    active = det.active_ids()
    live_objects = clustered_points[active]
    ref = _reference(live_objects, "l2", 2.0, 5, active)
    res = det.detect(r=2.0, k=5)
    np.testing.assert_array_equal(res.outliers, ref)


def test_interleaved_churn_stays_exact(rng):
    det = DynamicDODetector(metric="l2", K=5, seed=0)
    pool = rng.normal(size=(300, 3))
    det.add(pool[:80])
    det.remove(range(0, 20))
    det.add(pool[80:140])
    det.remove(range(50, 70))
    det.add(pool[140:170])
    active = det.active_ids()
    objects = pool[: det.n_total][active]
    ref = _reference(objects, "l2", 1.5, 4, active)
    res = det.detect(r=1.5, k=4)
    np.testing.assert_array_equal(res.outliers, ref)


def test_rebuild_preserves_answers(clustered_points, rng):
    det = DynamicDODetector(metric="l2", K=6, seed=0)
    det.add(clustered_points)
    det.remove(rng.choice(120, size=40, replace=False).tolist())
    before_objects = clustered_points[det.active_ids()]
    before = det.detect(r=2.0, k=5)
    n_before = before.n_outliers
    det.rebuild()  # renumbers: compare by object values via counts
    after = det.detect(r=2.0, k=5)
    assert after.n_outliers == n_before
    assert det.n_total == det.n_active == before_objects.shape[0]


def test_exact_lists_dropped_when_member_removed(clustered_points):
    det = DynamicDODetector(metric="l2", K=6, seed=0)
    det.add(clustered_points)
    det.rebuild()  # builds a real MRPG with exact lists
    holders = list(det._graph.exact_knn)
    if holders:
        victim_list = det._graph.exact_knn[holders[0]][0]
        det.remove([int(victim_list[0])])
        res = det.detect(r=2.0, k=5)
        active = det.active_ids()
        objects = [det._objects[int(v)] for v in active]
        ref = _reference(np.asarray(objects), "l2", 2.0, 5, active)
        np.testing.assert_array_equal(res.outliers, ref)


def test_string_objects():
    from repro.datasets import words_with_outliers

    words = words_with_outliers(120, n_stems=8, planted_frac=0.03, rng=2)
    det = DynamicDODetector(metric="edit", K=5, seed=0)
    det.add(words)
    det.remove([0, 5, 9])
    res = det.detect(r=4.0, k=3)
    active = det.active_ids()
    live = [words[int(v)] for v in active]
    ref = _reference(live, "edit", 4.0, 3, active)
    np.testing.assert_array_equal(res.outliers, ref)


def test_validation(clustered_points):
    det = DynamicDODetector(metric="l2", K=4, seed=0)
    with pytest.raises(ParameterError):
        det.detect(1.0, 2)
    with pytest.raises(ParameterError):
        det.remove([0])
    det.add(clustered_points[:10])
    with pytest.raises(ParameterError):
        det.remove([99])
    det.remove([3])
    with pytest.raises(ParameterError):
        det.remove([3])  # already dead
    with pytest.raises(ParameterError):
        DynamicDODetector(K=0)


def test_add_nothing_is_noop():
    det = DynamicDODetector(metric="l2", K=4, seed=0)
    ids = det.add([])
    assert ids.size == 0
