"""Exactness and behavior of the shard-per-worker ShardedDetectionEngine.

The sharded engine's contract is the single-process engine's, verbatim:
every answer — cold, warm, any query order, any shard count, any
partition strategy, serial or multi-process backend — is *bit-identical*
to a fresh ``graph_dod`` run and to the brute-force oracle.  The merge
layer must stay conservative (a shard-local traversal can never prove a
global outlier) yet lose nothing (summed lower bounds prove inliers,
all-shards-exact sums prove outliers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Dataset,
    DetectionEngine,
    ShardedDetectionEngine,
    build_graph,
    graph_dod,
    plan_shards,
)
from repro.core import Verifier
from repro.datasets import blobs_with_outliers, words_with_outliers
from repro.exceptions import GraphError, ParameterError
from repro.index import brute_force_outliers

GRAPHS = ("mrpg", "kgraph")
METRICS = ("l1", "l2", "edit")
STRATEGIES = ("contiguous", "permuted")


def _make_dataset(metric: str, seed: int) -> Dataset:
    if metric == "edit":
        words = words_with_outliers(110, n_stems=9, planted_frac=0.03, rng=seed)
        return Dataset(words, "edit")
    pts = blobs_with_outliers(
        140, dim=4, n_clusters=3, core_std=0.7, tail_std=2.0, tail_frac=0.07,
        center_spread=10.0, planted_frac=0.03, planted_spread=45.0, rng=seed,
    )
    return Dataset(pts, metric)


def _base_radius(ds: Dataset) -> float:
    gen = np.random.default_rng(0)
    a = gen.integers(0, ds.n, 800)
    b = gen.integers(0, ds.n, 800)
    keep = a != b
    d = ds.view().pair_dist(a[keep], b[keep])
    return float(np.quantile(d, 0.12))


def _assert_bit_identical(fresh, served, where):
    assert np.array_equal(fresh.outliers, served.outliers), where
    assert fresh.outliers.dtype == served.outliers.dtype, where


# -- shard planning ---------------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_plan_shards_partitions_exactly(strategy):
    shards = plan_shards(97, 5, strategy=strategy, rng=3)
    assert len(shards) == 5
    merged = np.concatenate(shards)
    np.testing.assert_array_equal(np.sort(merged), np.arange(97))
    for ids in shards:
        assert ids.size >= 1
        np.testing.assert_array_equal(ids, np.sort(ids))  # sorted for bisect


def test_plan_shards_permuted_is_seeded_and_scattered():
    a = plan_shards(60, 4, strategy="permuted", rng=7)
    b = plan_shards(60, 4, strategy="permuted", rng=7)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)
    # A permuted shard should not be one contiguous run.
    assert any(np.any(np.diff(ids) > 1) for ids in a)


def test_plan_shards_validation():
    with pytest.raises(ParameterError):
        plan_shards(10, 0)
    with pytest.raises(ParameterError):
        plan_shards(3, 4)
    with pytest.raises(ParameterError):
        plan_shards(10, 2, strategy="zigzag")


# -- the exactness matrix: metrics x graphs x strategies ---------------------------


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("builder", GRAPHS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sharded_bit_identical_to_graph_dod(metric, builder, strategy):
    ds = _make_dataset(metric, seed=0)
    graph = build_graph(builder, ds, K=6, rng=0)
    verifier = Verifier(ds, rng=0)
    engine = ShardedDetectionEngine(
        ds, n_shards=3, workers=1, strategy=strategy, graph=builder, K=6, rng=0
    )
    r0 = _base_radius(ds)
    grid = [(r0 * f, k) for f in (0.85, 1.0, 1.2) for k in (2, 5, 9)]
    order = np.random.default_rng(1).permutation(len(grid))
    for t in order:
        r, k = grid[t]
        fresh = graph_dod(ds.view(), graph, r, k, verifier=verifier, rng=0)
        served = engine.query(r, k)
        _assert_bit_identical(fresh, served, (metric, builder, strategy, r, k))
    assert engine.stats["queries"] == len(grid)
    assert engine.stats["cache_decided"] > 0  # reuse kicks in across the merge
    engine.close()


@pytest.mark.parametrize("mode", ["scalar", "batched"])
def test_sharded_modes_match_single_engine(l2_dataset, mrpg_l2, l2_params, mode):
    r, k = l2_params
    single = DetectionEngine(l2_dataset, mrpg_l2, rng=0)
    sharded = ShardedDetectionEngine(
        l2_dataset, n_shards=4, workers=1, graph="mrpg", K=8, rng=0, mode=mode
    )
    for f in (0.9, 1.0, 1.1):
        _assert_bit_identical(
            single.query(r * f, k), sharded.query(r * f, k), (mode, f)
        )
    single.close()
    sharded.close()


def test_sharded_many_single_object_shards(l2_dataset, l2_params):
    # n_shards == n: every shard is one object with a trivial graph, so
    # filtering proves nothing and the cross-shard verification sweeps
    # carry the whole answer.  Still exactly the brute-force set.
    r, k = l2_params
    small = l2_dataset.subset(np.arange(40))
    engine = ShardedDetectionEngine(
        small, n_shards=40, workers=1, graph="kgraph", K=4, rng=0
    )
    reference = brute_force_outliers(small.view(), r, k)
    assert np.array_equal(engine.query(r, k).outliers, reference)
    engine.close()


# -- multi-process backend ---------------------------------------------------------


def test_process_backend_matches_serial(l2_dataset, l2_params):
    r, k = l2_params
    serial = ShardedDetectionEngine(
        l2_dataset, n_shards=4, workers=1, graph="mrpg", K=8, rng=0
    )
    with ShardedDetectionEngine(
        l2_dataset, n_shards=4, workers=2, graph="mrpg", K=8, rng=0
    ) as procs:
        for f in (0.9, 1.0, 1.1):
            a = serial.query(r * f, k)
            b = procs.query(r * f, k)
            _assert_bit_identical(a, b, f)
            # Same shard plan + same seeds => identical work, not just
            # identical answers.
            assert a.pairs == b.pairs, f
    serial.close()


def test_process_backend_edit_metric():
    ds = _make_dataset("edit", seed=2)
    with ShardedDetectionEngine(
        ds, n_shards=3, workers=3, graph="kgraph", K=5, rng=0
    ) as engine:
        r0 = _base_radius(ds)
        reference = brute_force_outliers(ds.view(), r0, 4)
        assert np.array_equal(engine.query(r0, 4).outliers, reference)


# -- serving semantics -------------------------------------------------------------


def test_repeat_query_is_pure_cache_hit_across_shards(l2_dataset, l2_params):
    r, k = l2_params
    engine = ShardedDetectionEngine(
        l2_dataset, n_shards=3, workers=1, graph="mrpg", K=8, rng=0
    )
    first = engine.query(r, k)
    again = engine.query(r, k)
    _assert_bit_identical(first, again, "repeat")
    assert again.pairs == 0
    assert again.counts["cache_decided"] == l2_dataset.n
    engine.close()


def test_sharded_sweep_matches_independent_queries(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    r_grid = [r * f for f in (0.9, 1.0, 1.1)]
    k_grid = [max(1, k - 3), k]
    engine = ShardedDetectionEngine(
        l2_dataset, n_shards=3, workers=1, graph="mrpg", K=8, rng=0
    )
    sweep = engine.sweep(r_grid, k_grid)
    for rv in r_grid:
        for kv in k_grid:
            fresh = graph_dod(l2_dataset.view(), mrpg_l2, rv, kv, rng=0)
            _assert_bit_identical(fresh, sweep.result(rv, kv), (rv, kv))
    engine.close()


def test_sharded_batch_preserves_given_order(l2_dataset, l2_params):
    r, k = l2_params
    engine = ShardedDetectionEngine(
        l2_dataset, n_shards=2, workers=1, graph="kgraph", K=8, rng=0
    )
    queries = [(r, k), (r * 0.9, k), (r * 1.1, max(1, k - 2))]
    results = engine.batch(queries)
    assert [(res.r, res.k) for res in results] == [
        (float(rv), int(kv)) for rv, kv in queries
    ]
    engine.close()


def test_reset_cache_forgets_everything_in_every_shard(l2_dataset, l2_params):
    r, k = l2_params
    engine = ShardedDetectionEngine(
        l2_dataset, n_shards=3, workers=1, graph="mrpg", K=8, rng=0
    )
    first = engine.query(r, k)
    engine.reset_cache()
    cold = engine.query(r, k)
    _assert_bit_identical(first, cold, "reset")
    assert cold.pairs > 0  # really recomputed
    engine.close()


def test_fit_classmethod_and_bookkeeping(blob_points):
    engine = ShardedDetectionEngine.fit(
        blob_points, metric="l2", graph="kgraph", K=6, n_shards=3, workers=1
    )
    reference = brute_force_outliers(Dataset(blob_points, "l2"), 3.0, 6)
    assert np.array_equal(engine.query(3.0, 6).outliers, reference)
    assert engine.index_nbytes > 0
    assert engine.n == len(blob_points)
    assert engine.n_shards == 3
    engine.close()


# -- error paths ----------------------------------------------------------------


def test_sharded_rejects_bad_parameters(l2_dataset):
    with pytest.raises(ParameterError):
        ShardedDetectionEngine(l2_dataset, n_shards=0, workers=1)
    with pytest.raises(ParameterError):
        ShardedDetectionEngine(l2_dataset, n_shards=l2_dataset.n + 1, workers=1)
    with pytest.raises(ParameterError):
        ShardedDetectionEngine(l2_dataset, n_shards=2, workers=1, strategy="nope")
    engine = ShardedDetectionEngine(
        l2_dataset, n_shards=2, workers=1, graph="kgraph", K=6, rng=0
    )
    with pytest.raises(ParameterError):
        engine.query(-1.0, 5)
    with pytest.raises(ParameterError):
        engine.query(1.0, 0)
    with pytest.raises(ParameterError):
        engine.sweep([1.0, 2.0])  # no k at all
    with pytest.raises(ParameterError):
        engine.sweep([1.0, 1.0], k=5)  # duplicate grid point
    engine.close()


def test_sharded_rejects_bad_explicit_partition(l2_dataset):
    n = l2_dataset.n
    with pytest.raises(ParameterError, match="partition"):
        ShardedDetectionEngine(
            l2_dataset, workers=1, graph="kgraph", K=6,
            shard_ids=[np.arange(n // 2), np.arange(n // 2)],  # overlapping
        )
    with pytest.raises(ParameterError):
        ShardedDetectionEngine(
            l2_dataset, workers=1, graph="kgraph", K=6,
            shard_ids=[np.arange(n), np.empty(0, dtype=np.int64)],  # empty shard
        )


def test_shard_worker_rejects_mismatched_prebuilt_graph(l2_dataset):
    from repro.engine import ShardWorker

    tiny = build_graph("kgraph", l2_dataset.subset(np.arange(10)), K=3, rng=0)
    with pytest.raises(GraphError, match="shard graph"):
        ShardWorker(l2_dataset, np.arange(20), graph=tiny)


# -- phase C v2: graph-assisted foreign counting ------------------------------


def test_foreign_descent_matches_sweep_only(l2_dataset, l2_params, l2_reference):
    """Descent-assisted phase C is invisible in the answers and fires."""
    r, k = l2_params
    on = ShardedDetectionEngine(
        l2_dataset, n_shards=4, workers=1, graph="mrpg", K=8, rng=0
    )
    off = ShardedDetectionEngine(
        l2_dataset, n_shards=4, workers=1, graph="mrpg", K=8, rng=0,
        foreign_descent=False,
    )
    a = on.query(r, k)
    b = off.query(r, k)
    np.testing.assert_array_equal(a.outliers, l2_reference)
    np.testing.assert_array_equal(b.outliers, l2_reference)
    assert b.phase_pairs["verify_descent"] == 0
    assert b.phase_pairs["verify_index"] == 0
    if a.phase_pairs["verify"]:
        # The v2 path decided phase C by graph descent + exact index;
        # the linear sweep rounds never ran.
        assert (
            a.phase_pairs["verify_descent"] + a.phase_pairs["verify_index"]
        ) > 0
        assert a.phase_pairs["verify_sweep"] == 0
    # Descent lower bounds land in the shard caches like sweep counts
    # do: the re-query is a pure phase-A decision.
    warm = on.query(r, k)
    assert warm.pairs == 0
    np.testing.assert_array_equal(warm.outliers, l2_reference)
    on.close()
    off.close()


def test_shard_worker_count_exact_is_sound(l2_dataset, l2_params):
    """``count_exact`` flags are trustworthy against the linear oracle.

    For every candidate the tree answers: a count flagged exact equals
    the true within-shard count, a truncated count is a lower bound
    that already reaches its ``need`` stop — and the treeless worker
    (``foreign_index=False``) returns the same counts through the
    linear subset sweep.
    """
    from repro.engine import ShardWorker
    from repro.index.linear import linear_count_block

    r, _ = l2_params
    n = l2_dataset.n
    ids = np.arange(0, n, 2, dtype=np.int64)
    qs = np.arange(1, 40, 2, dtype=np.int64)  # foreign to the shard
    need = np.full(qs.size, 4, dtype=np.int64)
    worker = ShardWorker(l2_dataset, ids, graph="kgraph", K=6, seed=3)
    counts, exact, pairs = worker.count_exact(r, qs, need)
    assert pairs > 0
    truth = linear_count_block(l2_dataset, qs, r, subset=ids)
    np.testing.assert_array_equal(counts[exact], truth[exact])
    assert np.all(counts[~exact] >= need[~exact])
    assert np.all(counts <= truth)
    plain = ShardWorker(
        l2_dataset, ids, graph="kgraph", K=6, seed=3, foreign_index=False,
    )
    assert plain._ftree is None
    p_counts, p_exact, _ = plain.count_exact(r, qs, need)
    np.testing.assert_array_equal(p_counts[p_exact], truth[p_exact])
    assert np.all(p_counts[~p_exact] >= need[~p_exact])


def test_sharded_stats_phase_breakdown(l2_dataset, l2_params):
    r, k = l2_params
    engine = ShardedDetectionEngine(
        l2_dataset, n_shards=3, workers=1, graph="kgraph", K=8, rng=0
    )
    res = engine.query(r, k)
    assert set(engine.stats["phase_seconds"]) == {"cache", "filter", "verify"}
    pp = engine.stats["phase_pairs"]
    assert pp["verify"] == (
        pp["verify_descent"] + pp["verify_index"] + pp["verify_sweep"]
    )
    assert res.pairs == pp["cache"] + pp["filter"] + pp["verify"]
    assert res.phase_pairs["verify"] == (
        res.phase_pairs["verify_descent"]
        + res.phase_pairs["verify_index"]
        + res.phase_pairs["verify_sweep"]
    )
    assert all(v >= 0.0 for v in engine.stats["phase_seconds"].values())
    assert res.counts["descent_decided"] >= 0
    engine.close()


def test_shard_load_is_mean_normalised(l2_dataset, l2_params):
    r, k = l2_params
    engine = ShardedDetectionEngine(
        l2_dataset, n_shards=3, workers=1, graph="kgraph", K=8, rng=0
    )
    engine.query(r, k)
    load = engine.shard_load()
    assert load.shape == (3,)
    assert np.all(load >= 0.0)
    assert np.isclose(load.mean(), 1.0)
    engine.close()
