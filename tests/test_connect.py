"""Unit tests for Connect-SubGraphs (Algorithm 4)."""

import numpy as np
import pytest

from repro import Dataset
from repro.analysis import connectivity_report
from repro.graphs import Graph, connect_subgraphs, nndescent_plus


def _disconnected_fixture(rng_seed=0):
    """Two well-separated blobs whose AKNN graphs don't touch."""
    gen = np.random.default_rng(rng_seed)
    a = gen.normal(0.0, 1.0, size=(60, 4))
    b = gen.normal(0.0, 1.0, size=(60, 4)) + 100.0
    ds = Dataset(np.concatenate([a, b]), "l2")
    ndp = nndescent_plus(ds, K=5, n_exact=4, rng=0)
    g = Graph(ds.n)
    g.meta["K"] = 5
    g.pivots = ndp.pivots.copy()
    g.exact_knn = ndp.exact_knn
    for p in range(ds.n):
        if p in ndp.exact_knn:
            g.set_links(p, ndp.exact_knn[p][0])
        else:
            g.set_links(p, ndp.knn.knn_ids[p])
    return ds, g


def test_disconnected_graph_becomes_connected():
    ds, g = _disconnected_fixture()
    before = connectivity_report(g)
    assert before["n_weak_components"] >= 2  # blobs are AKNN-disjoint
    stats = connect_subgraphs(ds, g, rng=0)
    after = connectivity_report(g)
    assert after["n_weak_components"] == 1
    assert stats["patches"] >= 1


def test_everything_reachable_by_out_links():
    ds, g = _disconnected_fixture(1)
    connect_subgraphs(ds, g, rng=1)
    # BFS over out-links from vertex 0 must reach every vertex.
    seen = np.zeros(g.n, dtype=bool)
    seen[0] = True
    stack = [0]
    while stack:
        v = stack.pop()
        for w in g.neighbors_list(v):
            if not seen[w]:
                seen[w] = True
                stack.append(w)
    assert seen.all()


def test_reverse_edges_added_except_exact():
    ds, g = _disconnected_fixture(2)
    exact_nodes = set(g.exact_knn)
    connect_subgraphs(ds, g, rng=2)
    for u in range(g.n):
        for v in g.neighbors_list(u):
            if v not in exact_nodes:
                assert g.has_link(v, u), (u, v)


def test_exact_link_lists_untouched():
    ds, g = _disconnected_fixture(3)
    before = {p: list(g.neighbors_list(p)) for p in g.exact_knn}
    connect_subgraphs(ds, g, rng=3)
    for p, links in before.items():
        assert g.neighbors_list(p) == links


def test_already_connected_graph_needs_no_patch(l2_dataset, kgraph_l2):
    g = kgraph_l2.copy()
    report = connectivity_report(g)
    stats = connect_subgraphs(l2_dataset, g, rng=0)
    if report["n_weak_components"] == 1:
        # KGraph on blob data is usually weakly connected already; then
        # undirecting suffices and no ANN patch is needed.
        assert stats["patches"] == 0
    assert connectivity_report(g)["n_weak_components"] == 1
