"""Shared fixtures.

Expensive artifacts (datasets, graphs, references) are session-scoped;
tests must treat them as immutable (copy before mutating a graph).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Dataset, build_graph
from repro.datasets import blobs_with_outliers, words_with_outliers
from repro.index import brute_force_outliers

_SHM_DIR = "/dev/shm"


def _repro_shm_entries() -> "set[str]":
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # platforms without a tmpfs /dev/shm
        return set()
    return {n for n in names if n.startswith("repro_")}


@pytest.fixture(autouse=True)
def no_shared_memory_leaks():
    """Every test must release the shared segments it created.

    Both shared-memory stores (``repro_shm_*`` transport segments and
    ``repro_store_*`` object stores) land in ``/dev/shm`` under a
    ``repro_`` prefix; a test that leaks one would silently pin memory
    for the whole machine until reboot.  Pre-existing segments (from a
    concurrently running process) are tolerated; *new* ones are not.
    """
    before = _repro_shm_entries()
    yield
    leaked = _repro_shm_entries() - before
    assert not leaked, f"test leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


# -- vector data -------------------------------------------------------------


@pytest.fixture(scope="session")
def blob_points() -> np.ndarray:
    return blobs_with_outliers(
        260, dim=6, n_clusters=4, core_std=0.8, tail_std=2.5, tail_frac=0.06,
        center_spread=12.0, planted_frac=0.015, planted_spread=60.0, rng=42,
    )


@pytest.fixture(scope="session")
def l2_dataset(blob_points) -> Dataset:
    return Dataset(blob_points, "l2")


@pytest.fixture(scope="session")
def l1_dataset(blob_points) -> Dataset:
    return Dataset(blob_points, "l1")


@pytest.fixture(scope="session")
def angular_dataset(blob_points) -> Dataset:
    # Shift away from the origin so no vector is ~zero.
    return Dataset(blob_points + 8.0, "angular")


# -- string data -------------------------------------------------------------


@pytest.fixture(scope="session")
def word_list() -> list[str]:
    return words_with_outliers(180, n_stems=12, planted_frac=0.02, rng=7)


@pytest.fixture(scope="session")
def edit_dataset(word_list) -> Dataset:
    return Dataset(word_list, "edit")


# -- detection parameters ------------------------------------------------------

# Calibrated once for the session blob data: r is a low quantile of the
# pairwise-distance distribution, which leaves a handful of outliers.


@pytest.fixture(scope="session")
def l2_params(l2_dataset) -> tuple[float, int]:
    gen = np.random.default_rng(0)
    a = gen.integers(0, l2_dataset.n, size=1500)
    b = gen.integers(0, l2_dataset.n, size=1500)
    keep = a != b
    d = l2_dataset.pair_dist(a[keep], b[keep])
    return float(np.quantile(d, 0.10)), 8


@pytest.fixture(scope="session")
def l2_reference(l2_dataset, l2_params) -> np.ndarray:
    r, k = l2_params
    return brute_force_outliers(l2_dataset.view(), r, k)


# -- graphs -------------------------------------------------------------------


@pytest.fixture(scope="session")
def mrpg_l2(l2_dataset):
    return build_graph("mrpg", l2_dataset, K=8, rng=0)


@pytest.fixture(scope="session")
def mrpg_basic_l2(l2_dataset):
    return build_graph("mrpg-basic", l2_dataset, K=8, rng=0)


@pytest.fixture(scope="session")
def kgraph_l2(l2_dataset):
    return build_graph("kgraph", l2_dataset, K=8, rng=0)


@pytest.fixture(scope="session")
def nsw_l2(l2_dataset):
    return build_graph("nsw", l2_dataset, K=8, rng=0)


@pytest.fixture(scope="session")
def mrpg_edit(edit_dataset):
    return build_graph("mrpg", edit_dataset, K=6, rng=0)
