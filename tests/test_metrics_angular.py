"""Unit tests for the angular (geodesic) metric."""

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metrics import ANGULAR


@pytest.fixture()
def vectors(rng):
    return rng.normal(size=(30, 5)) + 0.1


def test_range(vectors):
    store = ANGULAR.prepare(vectors)
    d = ANGULAR.dist_many(store, 0, np.arange(30))
    assert np.all(d >= 0.0)
    assert np.all(d <= np.pi + 1e-12)


def test_matches_manual_formula(vectors):
    store = ANGULAR.prepare(vectors)
    a, b = vectors[2], vectors[9]
    cos = a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
    assert ANGULAR.dist(store, 2, 9) == pytest.approx(np.arccos(cos), abs=1e-10)


def test_scale_invariance(rng):
    base = rng.normal(size=(10, 4)) + 0.2
    scaled = base * rng.uniform(0.5, 20.0, size=(10, 1))
    s1 = ANGULAR.prepare(base)
    s2 = ANGULAR.prepare(scaled)
    d1 = ANGULAR.dist_many(s1, 0, np.arange(10))
    d2 = ANGULAR.dist_many(s2, 0, np.arange(10))
    np.testing.assert_allclose(d1, d2, atol=1e-10)


def test_identity(vectors):
    store = ANGULAR.prepare(vectors)
    assert ANGULAR.dist(store, 4, 4) == pytest.approx(0.0, abs=1e-7)


def test_opposite_vectors_give_pi():
    store = ANGULAR.prepare(np.asarray([[1.0, 0.0], [-1.0, 0.0]]))
    assert ANGULAR.dist(store, 0, 1) == pytest.approx(np.pi)


def test_zero_vector_rejected():
    with pytest.raises(MetricError):
        ANGULAR.prepare(np.asarray([[0.0, 0.0], [1.0, 1.0]]))


def test_pair_dist(vectors):
    store = ANGULAR.prepare(vectors)
    a = np.asarray([0, 5])
    b = np.asarray([7, 3])
    got = ANGULAR.pair_dist(store, a, b)
    for t in range(2):
        assert got[t] == pytest.approx(ANGULAR.dist(store, int(a[t]), int(b[t])))


def test_store_rows_are_normalised(vectors):
    store = ANGULAR.prepare(vectors)
    np.testing.assert_allclose(np.linalg.norm(store, axis=1), 1.0, atol=1e-12)
