"""Unit tests for detection-quality evaluation and labelled generators."""

import numpy as np
import pytest

from repro import Dataset, detect_outliers
from repro.analysis import DetectionQuality, detection_quality, quality_over_r
from repro.datasets import (
    blobs_with_outliers,
    image_blobs_with_outliers,
    sphere_blobs_with_outliers,
    words_with_outliers,
)
from repro.exceptions import ParameterError


def test_quality_arithmetic():
    q = DetectionQuality(n=100, n_detected=10, n_true=8, true_positives=6)
    assert q.precision == pytest.approx(0.6)
    assert q.recall == pytest.approx(0.75)
    assert q.f1 == pytest.approx(2 * 0.6 * 0.75 / 1.35)


def test_quality_degenerate_cases():
    nothing = DetectionQuality(n=10, n_detected=0, n_true=0, true_positives=0)
    assert nothing.precision == 1.0 and nothing.recall == 1.0
    assert DetectionQuality(10, 0, 5, 0).f1 == 0.0


def test_detection_quality_from_ids():
    truth = np.zeros(20, dtype=bool)
    truth[[3, 7, 11]] = True
    q = detection_quality(np.asarray([3, 7, 15]), truth)
    assert q.true_positives == 2
    assert q.n_detected == 3
    assert q.n_true == 3


def test_detection_quality_from_result():
    pts, truth = blobs_with_outliers(
        300, dim=6, n_clusters=4, planted_frac=0.02, planted_spread=90.0,
        tail_frac=0.0, rng=0, return_labels=True,
    )
    result = detect_outliers(pts, r=4.0, k=6, K=8, seed=0)
    q = detection_quality(result, truth)
    # Planted points are far from everything: all of them are caught.
    assert q.recall == 1.0
    assert q.precision > 0.2


def test_labels_consistent_across_generators(rng):
    for maker, kwargs in [
        (blobs_with_outliers, {"dim": 4}),
        (sphere_blobs_with_outliers, {"dim": 6}),
        (image_blobs_with_outliers, {"side": 8}),
    ]:
        pts, labels = maker(150, planted_frac=0.03, rng=1, return_labels=True, **kwargs)
        assert labels.shape[0] == 150
        assert labels.sum() == round(0.03 * 150)
        # Without the flag, the same seed yields the same points.
        pts2 = maker(150, planted_frac=0.03, rng=1, **kwargs)
        np.testing.assert_array_equal(np.asarray(pts), np.asarray(pts2))


def test_words_labels():
    words, labels = words_with_outliers(
        200, n_stems=10, planted_frac=0.02, rng=0, return_labels=True
    )
    assert len(words) == 200
    assert labels.sum() == 4
    # Labelled words are the long random strings.
    flagged_lengths = [len(w) for w, flag in zip(words, labels) if flag]
    assert min(flagged_lengths) >= 25


def test_quality_over_r_tradeoff():
    pts, truth = blobs_with_outliers(
        250, dim=5, n_clusters=3, planted_frac=0.02, planted_spread=80.0,
        tail_frac=0.05, rng=2, return_labels=True,
    )
    ds = Dataset(pts, "l2")
    sweep = quality_over_r(ds, truth, k=6, r_values=[0.5, 3.0, 20.0])
    # Tiny r flags almost everyone (low precision, full recall); huge r
    # flags almost no one.
    assert sweep[0][1].recall == 1.0
    assert sweep[0][1].precision <= sweep[1][1].precision + 1e-9
    assert sweep[2][1].n_detected <= sweep[0][1].n_detected


def test_validation():
    truth = np.zeros(10, dtype=bool)
    with pytest.raises(ParameterError):
        detection_quality(np.asarray([11]), truth)
    ds = Dataset(np.zeros((10, 2)), "l2")
    with pytest.raises(ParameterError):
        quality_over_r(ds, truth[:5], 2, [1.0])
    with pytest.raises(ParameterError):
        quality_over_r(ds, truth, 0, [1.0])
