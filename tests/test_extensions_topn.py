"""Unit tests for the top-n DOD extension."""

import numpy as np
import pytest

from repro.exceptions import GraphError, ParameterError
from repro.extensions import knn_distance_scores, top_n_outliers


def test_scores_match_brute_force(l2_dataset):
    scores = knn_distance_scores(l2_dataset, k=5)
    from repro.index import brute_force_knn

    for p in (0, 33, 140):
        _, d = brute_force_knn(l2_dataset, p, 5)
        assert scores[p] == pytest.approx(d[-1])


def test_topn_matches_score_ranking(l2_dataset):
    k, n_top = 6, 12
    scores = knn_distance_scores(l2_dataset, k)
    expected = set(np.argsort(-scores, kind="stable")[:n_top].tolist())
    result = top_n_outliers(l2_dataset, n_top, k, rng=0)
    # Ties can swap marginal members; compare scores instead of ids.
    expected_scores = np.sort(scores[list(expected)])[::-1]
    np.testing.assert_allclose(np.sort(result.scores)[::-1], expected_scores)
    assert result.ids.size == n_top


def test_topn_scores_sorted_descending(l2_dataset):
    result = top_n_outliers(l2_dataset, 10, 5, rng=1)
    assert np.all(np.diff(result.scores) <= 1e-12)


def test_graph_seeding_same_answer_fewer_pairs(l2_dataset, mrpg_l2):
    k, n_top = 6, 10
    plain = top_n_outliers(l2_dataset, n_top, k, rng=0)
    seeded = top_n_outliers(l2_dataset, n_top, k, graph=mrpg_l2, rng=0)
    np.testing.assert_allclose(
        np.sort(plain.scores), np.sort(seeded.scores), rtol=1e-12
    )
    assert seeded.pruned_objects >= plain.pruned_objects


def test_topn_on_edit_metric(edit_dataset):
    result = top_n_outliers(edit_dataset, 5, 3, rng=0)
    scores = knn_distance_scores(edit_dataset, 3)
    np.testing.assert_allclose(
        np.sort(result.scores)[::-1],
        np.sort(scores)[::-1][:5],
    )


def test_topn_whole_dataset(l2_dataset):
    result = top_n_outliers(l2_dataset, l2_dataset.n, 4, rng=0)
    scores = knn_distance_scores(l2_dataset, 4)
    np.testing.assert_allclose(np.sort(result.scores), np.sort(scores))


def test_planted_outliers_rank_first():
    from repro import Dataset

    pts = np.concatenate(
        [np.random.default_rng(0).normal(size=(120, 3)), [[80.0] * 3, [90.0] * 3]]
    )
    ds = Dataset(pts, "l2")
    result = top_n_outliers(ds, 2, 3, rng=0)
    assert set(result.ids.tolist()) == {120, 121}


def test_validation(l2_dataset, mrpg_edit):
    with pytest.raises(ParameterError):
        top_n_outliers(l2_dataset, 0, 3)
    with pytest.raises(ParameterError):
        top_n_outliers(l2_dataset, 5, 0)
    with pytest.raises(ParameterError):
        top_n_outliers(l2_dataset, 5, l2_dataset.n)
    with pytest.raises(ParameterError):
        knn_distance_scores(l2_dataset, 0)
    with pytest.raises(GraphError):
        top_n_outliers(l2_dataset, 5, 3, graph=mrpg_edit)


def test_chunking_irrelevant(l2_dataset):
    a = top_n_outliers(l2_dataset, 8, 4, chunk=17, rng=3)
    b = top_n_outliers(l2_dataset, 8, 4, chunk=4096, rng=3)
    np.testing.assert_allclose(np.sort(a.scores), np.sort(b.scores))
