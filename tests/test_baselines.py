"""Unit tests for the four state-of-the-art baselines (§3/§6)."""

import numpy as np
import pytest

from repro import Dataset, VPTree
from repro.baselines import dolphin_dod, nested_loop_dod, snif_dod, vptree_dod
from repro.exceptions import ParameterError
from repro.index import brute_force_outliers

ALL_BASELINES = [nested_loop_dod, snif_dod, dolphin_dod, vptree_dod]


@pytest.mark.parametrize("fn", ALL_BASELINES)
def test_exact_on_l2(fn, l2_dataset, l2_params, l2_reference):
    r, k = l2_params
    res = fn(l2_dataset, r, k)
    assert res.same_outliers(l2_reference)
    assert res.n == l2_dataset.n


@pytest.mark.parametrize("fn", ALL_BASELINES)
def test_exact_on_edit(fn, edit_dataset):
    r, k = 3.0, 4
    ref = brute_force_outliers(edit_dataset.view(), r, k)
    res = fn(edit_dataset, r, k)
    assert res.same_outliers(ref)


@pytest.mark.parametrize("fn", ALL_BASELINES)
def test_parallel_equals_serial(fn, l2_dataset, l2_params):
    r, k = l2_params
    serial = fn(l2_dataset, r, k, rng=5)
    parallel = fn(l2_dataset, r, k, rng=5, n_jobs=3)
    assert serial.same_outliers(parallel)


@pytest.mark.parametrize("fn", ALL_BASELINES)
def test_deterministic(fn, l2_dataset, l2_params):
    r, k = l2_params
    a = fn(l2_dataset, r, k, rng=9)
    b = fn(l2_dataset, r, k, rng=9)
    assert a.same_outliers(b)


@pytest.mark.parametrize("fn", ALL_BASELINES)
def test_validation(fn, l2_dataset):
    with pytest.raises(ParameterError):
        fn(l2_dataset, -1.0, 3)
    with pytest.raises(ParameterError):
        fn(l2_dataset, 1.0, 0)


@pytest.mark.parametrize("fn", ALL_BASELINES)
def test_extreme_radii(fn, l2_dataset):
    # r huge: nobody is an outlier.  r zero: everyone is (distinct points).
    res_all_in = fn(l2_dataset, 1e9, 2)
    assert res_all_in.n_outliers == 0
    res_all_out = fn(l2_dataset, 0.0, 1)
    assert res_all_out.n_outliers == l2_dataset.n


def test_nested_loop_phase_accounting(l2_dataset, l2_params):
    r, k = l2_params
    res = nested_loop_dod(l2_dataset, r, k)
    assert res.method == "nested-loop"
    assert res.pairs > 0
    assert "scan" in res.phases


def test_nested_loop_chunk_sizes_agree(l2_dataset, l2_params):
    r, k = l2_params
    a = nested_loop_dod(l2_dataset, r, k, chunk=16, rng=0)
    b = nested_loop_dod(l2_dataset, r, k, chunk=4096, rng=0)
    assert a.same_outliers(b)


def test_snif_cluster_accounting(l2_dataset, l2_params):
    r, k = l2_params
    res = snif_dod(l2_dataset, r, k)
    assert res.method == "snif"
    assert 1 <= res.counts["clusters"] <= l2_dataset.n
    assert 0 <= res.counts["candidates"] <= l2_dataset.n
    assert set(res.phases) == {"cluster", "verify"}


def test_snif_prunes_work_vs_nested_loop(l2_dataset, l2_params):
    """SNIF's cluster certificates must save distance computations.

    The certificate (cluster size > k implies all members are inliers)
    only bites when the radius is generous enough that clusters exceed
    k — the low-outlier-ratio regime the paper targets — so the test
    runs at 3x the base radius (sub-percent outliers).
    """
    r, k = l2_params
    snif = snif_dod(l2_dataset, 3 * r, k)
    nested = nested_loop_dod(l2_dataset, 3 * r, k)
    assert snif.same_outliers(nested)
    assert snif.pairs < nested.pairs


def test_dolphin_candidate_shrinkage(l2_dataset, l2_params):
    r, k = l2_params
    res = dolphin_dod(l2_dataset, r, k)
    assert res.method == "dolphin"
    # The candidate index after scan 1 is a superset of the outliers but
    # far smaller than the dataset on clustered data.
    assert res.n_outliers <= res.counts["candidates"] < l2_dataset.n


def test_vptree_prebuilt_tree(l2_dataset, l2_params, l2_reference):
    r, k = l2_params
    tree = VPTree(l2_dataset, capacity=8, rng=0)
    res = vptree_dod(l2_dataset, r, k, tree=tree)
    assert res.same_outliers(l2_reference)
    assert "build" not in res.phases  # offline build excluded


def test_vptree_prunes_work_vs_nested_loop_low_dim(rng):
    pts = np.concatenate(
        [rng.normal(size=(200, 2)), rng.normal(size=(5, 2)) + 40.0]
    )
    ds = Dataset(pts, "l2")
    vp = vptree_dod(ds, 1.0, 5, rng=0)
    nl = nested_loop_dod(ds, 1.0, 5, rng=0)
    assert vp.same_outliers(nl)
    assert vp.pairs < nl.pairs
