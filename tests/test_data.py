"""Unit tests for the Dataset container and distance accounting."""

import numpy as np
import pytest

from repro import Dataset
from repro.exceptions import MetricError, ParameterError


@pytest.fixture()
def ds(rng):
    return Dataset(rng.normal(size=(50, 4)), "l2")


def test_basic_properties(ds):
    assert ds.n == 50
    assert len(ds) == 50
    assert ds.metric.name == "l2"
    assert ds.nbytes == 50 * 4 * 8


def test_counter_counts_pairs(ds):
    ds.reset_counter()
    ds.dist(0, 1)
    assert ds.counter.pairs == 1
    assert ds.counter.calls == 1
    ds.dist_many(0, np.arange(10))
    assert ds.counter.pairs == 11
    assert ds.counter.calls == 2
    ds.pair_dist(np.asarray([0, 1]), np.asarray([2, 3]))
    assert ds.counter.pairs == 13


def test_counter_reset(ds):
    ds.dist(0, 1)
    ds.reset_counter()
    assert ds.counter.pairs == 0
    assert ds.counter.calls == 0


def test_view_shares_store_not_counter(ds):
    view = ds.view()
    assert view.store is ds.store
    ds.reset_counter()
    view.dist(0, 1)
    assert ds.counter.pairs == 0
    assert view.counter.pairs == 1
    assert view.dist(3, 7) == pytest.approx(ds.dist(3, 7))


def test_subset_preserves_distances(ds):
    idx = np.asarray([5, 10, 20, 40])
    sub = ds.subset(idx)
    assert sub.n == 4
    assert sub.dist(0, 2) == pytest.approx(ds.dist(5, 20))
    assert sub.dist(1, 3) == pytest.approx(ds.dist(10, 40))


def test_subset_empty_rejected(ds):
    with pytest.raises(ParameterError):
        ds.subset(np.empty(0, dtype=np.int64))


def test_sample_rate(ds):
    sub = ds.sample(0.5, rng=0)
    assert sub.n == 25
    assert ds.sample(1.0) is ds
    with pytest.raises(ParameterError):
        ds.sample(0.0)
    with pytest.raises(ParameterError):
        ds.sample(1.5)


def test_sample_deterministic(ds):
    s1 = ds.sample(0.4, rng=3)
    s2 = ds.sample(0.4, rng=3)
    np.testing.assert_allclose(s1.store, s2.store)


def test_get_vector(ds):
    row = ds.get(7)
    np.testing.assert_allclose(row, ds.store[7])


def test_string_dataset_roundtrip():
    words = ["alpha", "beta", "gamma", "delta"]
    ds = Dataset(words, "edit")
    assert ds.n == 4
    assert ds.get(2) == "gamma"
    sub = ds.subset(np.asarray([1, 3]))
    assert sub.get(0) == "beta"
    assert sub.get(1) == "delta"
    assert sub.dist(0, 1) == ds.dist(1, 3)


def test_metric_by_instance():
    from repro.metrics import L4

    ds = Dataset(np.zeros((3, 2)), L4)
    assert ds.metric is L4


def test_unknown_metric_rejected():
    with pytest.raises(MetricError):
        Dataset(np.zeros((3, 2)), "no-such-metric")


def test_dist_many_bound_passthrough():
    ds = Dataset(["aaa", "bbb", "aab"], "edit")
    d = ds.dist_many(0, np.asarray([1, 2]), bound=1.0)
    assert d[1] == 1.0  # within bound: exact
    assert d[0] > 1.0  # beyond bound: conservative
