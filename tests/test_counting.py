"""Unit tests for Greedy-Counting (Algorithm 2) and the filter verdicts."""

import numpy as np
import pytest

from repro.core import FilterOutcome, VisitTracker, classify, greedy_count
from repro.exceptions import ParameterError
from repro.index import brute_force_range


def _true_count(dataset, p, r):
    return brute_force_range(dataset, p, r).size


def test_never_overcounts(l2_dataset, mrpg_l2, l2_params):
    """Lemma 1's engine: the greedy count counts only true neighbors."""
    r, k = l2_params
    tracker = VisitTracker(mrpg_l2.n)
    for p in range(0, l2_dataset.n, 13):
        got = greedy_count(l2_dataset, mrpg_l2, p, r, k, tracker=tracker)
        assert got <= max(_true_count(l2_dataset, p, r), 0) or got <= k + 50
        # Tighter check: a count below k is a lower bound on the truth.
        if got < k:
            assert got <= _true_count(l2_dataset, p, r)


def test_inlier_certificate_is_sound(l2_dataset, mrpg_l2, l2_params):
    """count >= k must imply the object truly has >= k neighbors."""
    r, k = l2_params
    tracker = VisitTracker(mrpg_l2.n)
    for p in range(0, l2_dataset.n, 7):
        got = greedy_count(l2_dataset, mrpg_l2, p, r, k, tracker=tracker)
        if got >= k:
            assert _true_count(l2_dataset, p, r) >= k


def test_no_false_negatives_across_graphs(
    l2_dataset, l2_params, l2_reference, mrpg_l2, mrpg_basic_l2, kgraph_l2, nsw_l2
):
    """Every true outlier must survive filtering in every graph."""
    r, k = l2_params
    true_outliers = set(l2_reference.tolist())
    for graph in (mrpg_l2, mrpg_basic_l2, kgraph_l2, nsw_l2):
        tracker = VisitTracker(graph.n)
        for p in true_outliers:
            outcome = classify(l2_dataset, graph, int(p), r, k, tracker=tracker)
            assert outcome in (FilterOutcome.CANDIDATE, FilterOutcome.OUTLIER)


def test_classify_inlier_verdicts_are_sound(l2_dataset, mrpg_l2, l2_params, l2_reference):
    r, k = l2_params
    outliers = set(l2_reference.tolist())
    tracker = VisitTracker(mrpg_l2.n)
    for p in range(l2_dataset.n):
        outcome = classify(l2_dataset, mrpg_l2, p, r, k, tracker=tracker)
        if outcome is FilterOutcome.INLIER:
            assert p not in outliers
        elif outcome is FilterOutcome.OUTLIER:
            assert p in outliers


def test_exact_shortcut_needs_no_distances(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    holders = list(mrpg_l2.exact_knn)
    assert holders, "MRPG fixture should have exact-K'NN holders"
    view = l2_dataset.view()
    outcome = classify(view, mrpg_l2, holders[0], r, k)
    assert outcome in (FilterOutcome.INLIER, FilterOutcome.OUTLIER)
    assert view.counter.pairs == 0  # decided from stored distances


def test_exact_shortcut_falls_back_when_k_exceeds_kprime(l2_dataset, mrpg_l2, l2_params):
    r, _ = l2_params
    holders = list(mrpg_l2.exact_knn)
    k_too_big = mrpg_l2.meta["K_prime"] + 1
    view = l2_dataset.view()
    classify(view, mrpg_l2, holders[0], r, k_too_big)
    assert view.counter.pairs > 0  # generic traversal ran


def test_max_visits_caps_work(l2_dataset, mrpg_l2, l2_params):
    r, k = l2_params
    view = l2_dataset.view()
    greedy_count(view, mrpg_l2, 0, r, 10_000, tracker=VisitTracker(mrpg_l2.n))
    unbounded = view.counter.pairs
    view2 = l2_dataset.view()
    greedy_count(
        view2, mrpg_l2, 0, r, 10_000,
        tracker=VisitTracker(mrpg_l2.n), max_visits=10,
    )
    assert view2.counter.pairs <= unbounded
    assert view2.counter.pairs <= 10 + mrpg_l2.neighbors(0).size + 64


def test_visit_tracker_epochs():
    t = VisitTracker(5)
    t.new_epoch()
    ids = np.asarray([1, 3])
    assert t.fresh_mask(ids).all()
    t.visit(ids)
    assert not t.fresh_mask(ids).any()
    t.new_epoch()
    assert t.fresh_mask(ids).all()


def test_validation(l2_dataset, mrpg_l2):
    with pytest.raises(ParameterError):
        greedy_count(l2_dataset, mrpg_l2, 0, -1.0, 5)
    with pytest.raises(ParameterError):
        greedy_count(l2_dataset, mrpg_l2, 0, 1.0, 0)


def test_follow_pivots_off_matches_paper_kgraph_mode(l2_dataset, kgraph_l2, l2_params):
    # KGraph has no pivots: explicit False and auto mode must agree.
    r, k = l2_params
    for p in (0, 5, 11):
        auto = greedy_count(
            l2_dataset, kgraph_l2, p, r, k, tracker=VisitTracker(kgraph_l2.n)
        )
        off = greedy_count(
            l2_dataset, kgraph_l2, p, r, k,
            tracker=VisitTracker(kgraph_l2.n), follow_pivots=False,
        )
        assert auto == off
