"""Unit tests for ASCII chart rendering."""

import pytest

from repro.exceptions import ParameterError
from repro.harness import ExperimentTable, ascii_chart, render_figure


def test_basic_chart_contains_markers_and_legend():
    text = ascii_chart(
        [1, 2, 3, 4],
        {"alpha": [1.0, 2.0, 3.0, 4.0], "beta": [4.0, 3.0, 2.0, 1.0]},
        width=32,
        height=8,
        title="demo",
    )
    assert "demo" in text
    assert "o alpha" in text
    assert "x beta" in text
    assert "o" in text.splitlines()[1]  # markers plotted somewhere


def test_monotone_series_orientation():
    text = ascii_chart([0, 1], {"up": [0.0, 10.0]}, width=16, height=5)
    lines = [l for l in text.splitlines() if "|" in l]
    # Rising series: marker in the top row at the right, bottom at left.
    assert lines[0].rstrip().endswith("o")
    assert lines[-1].split("|")[1].startswith("o")


def test_log_scale():
    text = ascii_chart(
        [1, 2, 3], {"s": [0.001, 1.0, 1000.0]}, logy=True, width=16, height=5
    )
    assert "1e" in text


def test_flat_series_does_not_crash():
    text = ascii_chart([1, 2], {"s": [5.0, 5.0]}, width=8, height=4)
    assert "s" in text


def test_validation():
    with pytest.raises(ParameterError):
        ascii_chart([1, 2], {})
    with pytest.raises(ParameterError):
        ascii_chart([1], {"s": [1.0]})
    with pytest.raises(ParameterError):
        ascii_chart([1, 2], {"s": [1.0]})


def test_render_figure_groups():
    t = ExperimentTable("figX", "demo", ["dataset", "rate", "mrpg", "kgraph"])
    for suite in ("a", "b"):
        for rate, v in [(0.5, 1.0), (1.0, 2.0)]:
            t.add_row(dataset=suite, rate=rate, mrpg=v, kgraph=v * 2)
    text = render_figure(t, "rate", ["mrpg", "kgraph"])
    assert "figX — a" in text
    assert "figX — b" in text
    assert "legend" in text


def test_render_figure_skips_missing_series():
    t = ExperimentTable("figY", "demo", ["dataset", "rate", "mrpg", "nsw"])
    t.add_row(dataset="a", rate=0.5, mrpg=1.0, nsw=None)
    t.add_row(dataset="a", rate=1.0, mrpg=2.0, nsw=None)
    text = render_figure(t, "rate", ["mrpg", "nsw"])
    assert "mrpg" in text
    assert "nsw" not in text.split("legend:")[1]
