"""repro — proximity graph-based exact outlier detection in metric spaces.

A from-scratch Python reproduction of Amagata, Onizuka & Hara,
*Fast and Exact Outlier Detection in Metric Spaces: A Proximity
Graph-based Approach*, SIGMOD 2021 (arXiv:2110.08959).

Quickstart::

    from repro import DODetector
    det = DODetector(metric="l2", graph="mrpg", K=12, seed=0).fit(points)
    result = det.detect(r=0.5, k=20)
    print(result.summary())

See README.md for the architecture tour and DESIGN.md / EXPERIMENTS.md
for the reproduction methodology.
"""

from .core import (
    DODetector,
    DODResult,
    FilterEvidence,
    ObjectEvidence,
    Verifier,
    WorkerPool,
    classify,
    classify_evidence,
    detect_outliers,
    graph_dod,
    greedy_count,
)
from .data import Dataset, DistanceCounter
from .exceptions import (
    BudgetExceeded,
    GraphError,
    MetricError,
    ParameterError,
    ReproError,
)
from .engine import (
    DetectionEngine,
    EngineCapabilities,
    EngineCore,
    EvidenceCache,
    MutableDetectionEngine,
    MutableEngineCore,
    MutableShardedDetectionEngine,
    ShardedDetectionEngine,
    SweepResult,
    create_engine,
    plan_shards,
    supports,
)
from .extensions import DynamicDODetector, top_n_outliers
from .graphs import (
    Graph,
    MRPGConfig,
    available_graphs,
    build_graph,
    build_hnsw,
    build_kgraph,
    build_mrpg,
    build_nsw,
)
from .index import VPTree, brute_force_outliers
from .io import (
    load_any_engine,
    load_engine,
    load_graph,
    load_mutable_engine,
    load_mutable_sharded_engine,
    load_sharded_engine,
    save_engine,
    save_graph,
    save_mutable_engine,
    save_mutable_sharded_engine,
    save_sharded_engine,
)
from .metrics import available_metrics, resolve_metric
from .streaming import SlidingWindowDOD

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Dataset",
    "DistanceCounter",
    "DODetector",
    "DODResult",
    "ObjectEvidence",
    "detect_outliers",
    "graph_dod",
    "greedy_count",
    "classify",
    "classify_evidence",
    "FilterEvidence",
    "Verifier",
    "WorkerPool",
    "DetectionEngine",
    "EngineCapabilities",
    "EngineCore",
    "MutableDetectionEngine",
    "MutableEngineCore",
    "MutableShardedDetectionEngine",
    "ShardedDetectionEngine",
    "create_engine",
    "supports",
    "EvidenceCache",
    "SweepResult",
    "plan_shards",
    "Graph",
    "build_graph",
    "available_graphs",
    "build_kgraph",
    "build_nsw",
    "build_hnsw",
    "build_mrpg",
    "MRPGConfig",
    "VPTree",
    "brute_force_outliers",
    "top_n_outliers",
    "DynamicDODetector",
    "SlidingWindowDOD",
    "save_graph",
    "load_graph",
    "save_engine",
    "load_engine",
    "load_any_engine",
    "save_mutable_engine",
    "load_mutable_engine",
    "save_mutable_sharded_engine",
    "load_mutable_sharded_engine",
    "save_sharded_engine",
    "load_sharded_engine",
    "resolve_metric",
    "available_metrics",
    "ReproError",
    "MetricError",
    "GraphError",
    "ParameterError",
    "BudgetExceeded",
]
