"""Seeded randomness helpers.

All stochastic components of the library (graph builders, dataset
generators, sampling inside MRPG construction) accept either an integer
seed or a :class:`numpy.random.Generator`.  Funnelling every call through
:func:`ensure_rng` keeps experiments reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a fresh nondeterministic generator; an ``int`` seeds a
    new generator; an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used to give each worker of a parallel phase its own stream so results
    do not depend on scheduling order.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
