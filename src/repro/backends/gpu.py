"""GPU screening backends: cupy / torch drop-ins (stubs without the dep).

The screen/rescreen split is exactly the shape a GPU consumes: the
float32 screen is one large batched kernel over index arrays, and only
the thin in-band residue comes back to the CPU for the exact float64
rescreen.  A real implementation subclasses
:class:`~repro.backends.float32.Float32ScreenBackend` and overrides the
screen evaluation to run on device (upload the float32 store once in
``screen_state``, evaluate ``screen_pair_dist`` on device, download the
``(values, decided)`` pair) — the error-band math and the rescreen path
are inherited unchanged, so the exactness argument is too.

This container has neither ``cupy`` nor ``torch``, so these classes are
*registered stubs*: constructing one raises a clear
:class:`~repro.exceptions.BackendError` naming the missing dependency.
That keeps ``--backend cupy`` a clean, user-visible failure (and lets
CI prove optional backends degrade cleanly) instead of an import crash
deep inside a query.  Per-shard-worker backend selection on the sharded
engines means one worker per GPU is just
``backend=["cupy", "cupy", ...]`` once the dependency exists.
"""

from __future__ import annotations

import importlib.util

from ..exceptions import BackendError
from .base import register_backend
from .float32 import Float32ScreenBackend


def _require(module: str, backend: str) -> None:
    if importlib.util.find_spec(module) is None:
        raise BackendError(
            f"backend {backend!r} needs the optional dependency {module!r}, "
            f"which is not installed; use 'float32' for the CPU screen or "
            f"'numpy64' for the exact default"
        )


class CupyScreenBackend(Float32ScreenBackend):
    """Float32 screen evaluated on a CUDA device via cupy (stub)."""

    name = "cupy"

    def __init__(self) -> None:
        _require("cupy", self.name)
        super().__init__()  # pragma: no cover - needs cupy


class TorchScreenBackend(Float32ScreenBackend):
    """Float32 screen evaluated through torch tensors (stub)."""

    name = "torch"

    def __init__(self) -> None:
        _require("torch", self.name)
        super().__init__()  # pragma: no cover - needs torch


register_backend("cupy", CupyScreenBackend)
register_backend("torch", TorchScreenBackend)
