"""The :class:`NumericBackend` protocol and registry.

A numeric backend decides *how* the batched ``pair_dist`` kernels are
evaluated; the :class:`~repro.data.Dataset` seam decides *when* one may
be consulted (only bounded, verdict-driven calls — see
``docs/backends.md``).  The contract a backend must honor:

* ``dist``/``dist_many`` are never delegated: the scalar oracle path is
  always the metric's exact float64 kernel.
* A backend may answer ``pair_dist(bound=...)`` only with values that
  are **verdict-faithful at every threshold in** ``bound``: for each
  pair and each threshold ``r``, ``value <= r`` exactly when the exact
  float64 kernel's value is ``<= r``.  Values for pairs within the
  metric's error band of a threshold must be bit-identical to the exact
  kernel (screening backends achieve this by re-evaluating the band in
  float64).
* When a backend cannot screen a given metric or store (no reduced
  precision kernel, overflow risk), :meth:`NumericBackend.screen_state`
  returns ``None`` and every call falls through to the exact kernels —
  optional backends degrade to correct behavior, never to wrong
  answers.

Backends are deliberately *stateless with respect to data*: per-store
screening state (e.g. a float32 copy plus error-band facts) is built by
:meth:`screen_state` and owned by the ``Dataset``, so one backend
instance can serve a dataset family (views, subsets) and aggregate its
:class:`BackendStats` across them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

import numpy as np

from ..exceptions import BackendError


class BackendStats:
    """Screen/rescreen pair counters for one backend instance.

    ``screened_pairs`` counts pairs the low-precision pass decided on
    its own; ``rescreened_pairs`` counts pairs that fell inside an
    error band and were re-evaluated exactly in float64.  A healthy
    workload keeps the rescreen fraction small — the serving tier
    exposes both through ``/stats`` so band-width health is observable
    in production.  Counters are advisory (threaded engines may lose
    the odd increment); correctness never depends on them.
    """

    __slots__ = ("screen_calls", "screened_pairs", "rescreened_pairs")

    def __init__(self) -> None:
        self.screen_calls = 0
        self.screened_pairs = 0
        self.rescreened_pairs = 0

    def add(self, screened: int, rescreened: int) -> None:
        self.screen_calls += 1
        self.screened_pairs += int(screened)
        self.rescreened_pairs += int(rescreened)

    def merge(self, other: "BackendStats | dict") -> None:
        if isinstance(other, BackendStats):
            other = other.as_dict()
        self.screen_calls += int(other.get("screen_calls", 0))
        self.screened_pairs += int(other.get("screened_pairs", 0))
        self.rescreened_pairs += int(other.get("rescreened_pairs", 0))

    def reset(self) -> None:
        self.screen_calls = 0
        self.screened_pairs = 0
        self.rescreened_pairs = 0

    def as_dict(self) -> dict:
        return {
            "screen_calls": int(self.screen_calls),
            "screened_pairs": int(self.screened_pairs),
            "rescreened_pairs": int(self.rescreened_pairs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BackendStats(calls={self.screen_calls}, "
            f"screened={self.screened_pairs}, "
            f"rescreened={self.rescreened_pairs})"
        )


class NumericBackend(ABC):
    """How bounded ``pair_dist`` kernels are evaluated for one dataset.

    Subclasses implement :meth:`screen_state` (and usually inherit
    :meth:`screened_pair_dist`); the default backend returns ``None``
    from both so the exact float64 kernels run untouched.
    """

    #: registry name, e.g. ``"float32"``.
    name: str = ""
    #: multiply the linear-sweep kernel pair budgets by this: screening
    #: backends touch half the bytes per pair, so they can afford wider
    #: blocks for the same cache footprint.
    kernel_budget_scale: float = 1.0

    def __init__(self) -> None:
        self.stats = BackendStats()

    @abstractmethod
    def screen_state(self, metric, store) -> Any:
        """Per-store screening state, or ``None`` to disable screening.

        Called once per prepared store (dataset construction, subset,
        backend attach).  ``None`` means every ``pair_dist`` call on
        that store uses the exact float64 kernels — the correct
        degraded mode for metrics without a screen kernel.
        """

    def screened_pair_dist(
        self,
        metric,
        store,
        state: Any,
        a: np.ndarray,
        b: np.ndarray,
        radii: Sequence[float],
        consistent: bool,
    ) -> "np.ndarray | None":
        """Bounded element-wise distances via the screen, or ``None``.

        Returning ``None`` makes the caller fall back to the exact
        kernels for this one call.  The default implementation never
        screens.
        """
        return None

    def stats_dict(self) -> dict:
        """``{"backend": name, **pair counters}`` — the ``/stats`` form."""
        return {"backend": self.name, **self.stats.as_dict()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Numpy64Backend(NumericBackend):
    """The default backend: exact float64 numpy kernels, zero overhead.

    :meth:`screen_state` always returns ``None``, so the ``Dataset``
    seam never takes the screening branch — the hot path is the same
    code it was before backends existed.
    """

    name = "numpy64"

    def screen_state(self, metric, store) -> None:
        return None


#: name -> zero-argument factory.  Factories (not instances) because a
#: backend instance carries per-engine counters.
_REGISTRY: "dict[str, Callable[[], NumericBackend]]" = {}


def register_backend(name: str, factory: Callable[[], NumericBackend]) -> None:
    """Register ``factory`` under ``name`` (overwrites silently)."""
    _REGISTRY[name.strip().lower()] = factory


def resolve_backend(backend: "str | NumericBackend | None") -> NumericBackend:
    """Return a :class:`NumericBackend` instance for ``backend``.

    Accepts an instance (returned unchanged, so callers can share one
    across datasets and aggregate its stats), a registered name, or
    ``None`` for the default ``numpy64``.  Unknown names and optional
    backends whose dependency is absent raise :class:`BackendError`.
    """
    if backend is None:
        return Numpy64Backend()
    if isinstance(backend, NumericBackend):
        return backend
    if not isinstance(backend, str):
        raise BackendError(f"cannot interpret {backend!r} as a numeric backend")
    key = backend.strip().lower()
    factory = _REGISTRY.get(key)
    if factory is None:
        raise BackendError(
            f"unknown backend {backend!r}; known: {available_backends()}"
        )
    return factory()


def available_backends() -> list[str]:
    """Names accepted by :func:`resolve_backend` (stubs included)."""
    return sorted(_REGISTRY)


register_backend("numpy64", Numpy64Backend)
