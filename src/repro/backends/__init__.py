"""Pluggable numeric backends for the batched distance kernels.

See :mod:`repro.backends.base` for the protocol and registry,
:mod:`repro.backends.float32` for the CPU screening backend, and
``docs/backends.md`` for the error-band derivations.
"""

from .base import (
    BackendStats,
    NumericBackend,
    Numpy64Backend,
    available_backends,
    register_backend,
    resolve_backend,
)
from .float32 import Float32ScreenBackend
from . import gpu  # noqa: F401  (registers the cupy/torch stubs)

__all__ = [
    "BackendStats",
    "NumericBackend",
    "Numpy64Backend",
    "Float32ScreenBackend",
    "available_backends",
    "register_backend",
    "resolve_backend",
]
