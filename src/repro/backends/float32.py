"""Float32 screening backend: cheap prefilter, exact float64 rescreen.

The screen answers one question per pair: *is this distance far enough
from every query threshold that float32 rounding cannot flip the
verdict?*  Each metric that supports screening derives a conservative
error band ``eps(r)`` on ``|d32 - d64|`` (see
``Metric.screen_prepare``/``screen_pair_dist`` and
``docs/backends.md``); pairs outside every band keep their float32
value, pairs inside any band are re-evaluated with the exact float64
kernel — through the grouped fallback when the caller demanded
row-consistency — so every verdict, sub-``k`` count and outlier set
stays bit-identical to the all-float64 run.

The win is bandwidth and SIMD width: the float32 pass touches half the
bytes per pair, and on well-separated data the rescreen set is a tiny
fraction of the pairs (the band is ~1e-4 relative on typical L2
workloads), so the bounded kernels run close to 2x faster.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .base import NumericBackend, register_backend


class Float32ScreenBackend(NumericBackend):
    """Screen bounded pair kernels in float32, rescreen the band exactly."""

    name = "float32"
    kernel_budget_scale = 2.0

    def screen_state(self, metric, store) -> Any:
        prepare = getattr(metric, "screen_prepare", None)
        if prepare is None:
            return None
        return prepare(store)

    def screened_pair_dist(
        self,
        metric,
        store,
        state: Any,
        a: np.ndarray,
        b: np.ndarray,
        radii: Sequence[float],
        consistent: bool,
    ) -> "np.ndarray | None":
        values, decided = metric.screen_pair_dist(state, a, b, radii)
        redo = np.flatnonzero(~decided)
        self.stats.add(values.size - redo.size, redo.size)
        if redo.size:
            bound = radii[-1]
            if consistent and not metric.pair_rowwise_consistent:
                exact = metric.pair_dist_grouped(
                    store, a[redo], b[redo], bound=bound
                )
            else:
                exact = metric.pair_dist(store, a[redo], b[redo], bound=bound)
            values[redo] = exact
        return values


register_backend("float32", Float32ScreenBackend)
