"""HNSW — Hierarchical Navigable Small World [Malkov & Yashunin, TPAMI'20].

The paper discusses HNSW in §3 and deliberately *excludes* it from the
evaluation: the hierarchy exists to reach a query's neighborhood
quickly from a random entry point, but in DOD every query object is
already a vertex, so traversal starts at the object itself and the
"skipping structure" buys nothing.  We implement HNSW anyway, for two
reasons:

* it is part of the proximity-graph landscape the paper positions
  itself in, and a downstream user will expect it;
* it lets us *test* the paper's §3 claim instead of assuming it — the
  ``ablation_hnsw`` bench runs DOD on HNSW's layer-0 graph and shows
  its filter is no better than NSW's while construction costs more.

Construction follows the original: each object draws a level from a
geometric distribution with ``m_L = 1/ln(M)``; insertion descends
greedily through upper layers and runs an ``ef_construction`` beam
search on each layer at or below the object's level, linking to the
``M`` closest candidates (``2M`` on layer 0) and shrinking overfull
neighbor lists.

For DOD, :func:`build_hnsw` exports the layer-0 graph as a standard
:class:`~repro.graphs.adjacency.Graph`; the hierarchy is kept in
``meta`` for inspection.
"""

from __future__ import annotations

import heapq
import math
import time

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng
from .adjacency import Graph


class _Hierarchy:
    """Mutable multi-layer adjacency used during construction."""

    def __init__(self, n: int):
        # layers[l][v] -> list of neighbors of v on layer l.
        self.layers: list[dict[int, list[int]]] = []
        self.levels = np.full(n, -1, dtype=np.int64)
        self.entry: int = -1

    def ensure_layer(self, level: int) -> None:
        while len(self.layers) <= level:
            self.layers.append({})

    def neighbors(self, level: int, v: int) -> list[int]:
        return self.layers[level].get(v, [])

    def add_node(self, v: int, level: int) -> None:
        self.ensure_layer(level)
        self.levels[v] = level
        for l in range(level + 1):
            self.layers[l].setdefault(v, [])

    def connect(self, level: int, u: int, v: int) -> None:
        layer = self.layers[level]
        if v not in layer[u]:
            layer[u].append(v)
        if u not in layer[v]:
            layer[v].append(u)


def _greedy_descend(
    dataset: Dataset, h: _Hierarchy, query: int, entry: int, level: int
) -> int:
    """Single-step greedy walk on one layer; returns the local minimum."""
    current = entry
    current_d = dataset.dist(query, current)
    improved = True
    while improved:
        improved = False
        nbrs = [v for v in h.neighbors(level, current) if v != query]
        if not nbrs:
            break
        d = dataset.dist_many(query, np.asarray(nbrs, dtype=np.int64))
        j = int(np.argmin(d))
        if d[j] < current_d:
            current, current_d = nbrs[j], float(d[j])
            improved = True
    return current


def _beam_search(
    dataset: Dataset,
    h: _Hierarchy,
    query: int,
    entry: int,
    level: int,
    ef: int,
) -> list[tuple[float, int]]:
    """ef-bounded best-first search; returns (dist, id) sorted ascending."""
    entry_d = dataset.dist(query, entry)
    visited = {entry, query}
    candidates = [(entry_d, entry)]  # min-heap
    results = [(-entry_d, entry)]  # max-heap of the ef best
    while candidates:
        d, v = heapq.heappop(candidates)
        if d > -results[0][0] and len(results) >= ef:
            break
        fresh = [w for w in h.neighbors(level, v) if w not in visited]
        if not fresh:
            continue
        visited.update(fresh)
        dists = dataset.dist_many(query, np.asarray(fresh, dtype=np.int64))
        for w, dw in zip(fresh, dists):
            dw = float(dw)
            if len(results) < ef:
                heapq.heappush(results, (-dw, w))
                heapq.heappush(candidates, (dw, w))
            elif dw < -results[0][0]:
                heapq.heapreplace(results, (-dw, w))
                heapq.heappush(candidates, (dw, w))
    return sorted((-nd, v) for nd, v in results)


def _shrink(dataset: Dataset, h: _Hierarchy, level: int, v: int, cap: int) -> None:
    """Keep only the ``cap`` closest neighbors of ``v`` on ``level``."""
    nbrs = h.neighbors(level, v)
    if len(nbrs) <= cap:
        return
    arr = np.asarray(nbrs, dtype=np.int64)
    d = dataset.dist_many(v, arr)
    order = np.argsort(d, kind="stable")[:cap]
    kept = arr[order].tolist()
    h.layers[level][v] = kept
    # Drop the reverse links of evicted neighbors.
    for w in set(nbrs) - set(kept):
        lst = h.layers[level].get(w)
        if lst and v in lst:
            lst.remove(v)


def build_hnsw(
    dataset: Dataset,
    M: int = 8,
    ef_construction: int = 32,
    rng: "int | np.random.Generator | None" = None,
) -> Graph:
    """Build an HNSW and export its layer-0 graph for DOD.

    ``M`` is the per-layer degree target (layer 0 allows ``2M``);
    ``ef_construction`` the construction beam width.  The exported
    graph carries ``meta["levels"]`` (per-object layer) and
    ``meta["n_layers"]``.
    """
    n = dataset.n
    if M < 1:
        raise ParameterError(f"M must be >= 1, got {M}")
    if ef_construction < 1:
        raise ParameterError(f"ef_construction must be >= 1, got {ef_construction}")
    gen = ensure_rng(rng)
    m_l = 1.0 / math.log(max(M, 2))
    t0 = time.perf_counter()

    h = _Hierarchy(n)
    order = gen.permutation(n)
    for q in order:
        q = int(q)
        level = int(-math.log(max(gen.random(), 1e-12)) * m_l)
        if h.entry < 0:
            h.add_node(q, level)
            h.entry = q
            continue
        h.add_node(q, level)
        top = int(h.levels[h.entry])
        entry = h.entry
        # Phase 1: greedy descent through layers above the new level.
        for l in range(top, level, -1):
            if l < len(h.layers):
                entry = _greedy_descend(dataset, h, q, entry, l)
        # Phase 2: beam search and linking on each layer <= level.
        for l in range(min(level, top), -1, -1):
            found = _beam_search(dataset, h, q, entry, l, ef_construction)
            cap = 2 * M if l == 0 else M
            for _, v in found[:M]:
                h.connect(l, q, v)
                _shrink(dataset, h, l, v, cap)
            _shrink(dataset, h, l, q, cap)
            entry = found[0][1] if found else entry
        if level > top:
            h.entry = q

    g = Graph(n)
    for v in range(n):
        g.set_links(v, h.layers[0].get(v, []))
    g.finalize()
    g.meta["builder"] = "hnsw"
    g.meta["M"] = M
    g.meta["ef_construction"] = ef_construction
    g.meta["n_layers"] = len(h.layers)
    g.meta["levels"] = h.levels.tolist()
    g.meta["phase_seconds"] = {"insertion": time.perf_counter() - t0}
    g.meta["build_seconds"] = time.perf_counter() - t0
    return g
