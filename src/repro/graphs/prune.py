"""Remove-Links (§5.4 of the paper).

After Connect-SubGraphs and Remove-Detours, objects one hop apart often
share many common neighbors, which ``Greedy-Counting`` would touch twice
(once per endpoint).  This pass prunes such triangles *through pivots*:
when a non-pivot ``p`` links to a pivot ``p'``, links from ``p`` to
objects they share are dropped — the shared object stays reachable via
``p'``, because Algorithm 2 (lines 13-14) enqueues pivots even when they
fall outside the query radius.

Pruning never touches pivot link lists, exact-K'NN vertices, or the
last two links of a vertex (a safety floor so no vertex is stranded);
the paper notes this step does not change reachability and therefore
does not affect false positives, only traversal cost and index size.
"""

from __future__ import annotations

import time

from .adjacency import Graph


def remove_links(graph: Graph) -> dict:
    """Prune pivot-shadowed redundant links in place.

    Returns ``{"removed": #undirected edges removed, "seconds": ...}``.
    """
    t0 = time.perf_counter()
    removed = 0
    min_degree = 2
    for p in range(graph.n):
        if graph.is_pivot(p) or graph.has_exact_knn(p):
            continue
        pivot_nbrs = [v for v in graph.neighbors_list(p) if graph.is_pivot(v)]
        if not pivot_nbrs:
            continue
        for piv in pivot_nbrs:
            p_nbrs = set(graph.neighbors_list(p))
            common = p_nbrs.intersection(graph.neighbors_list(piv))
            for q in common:
                if graph.is_pivot(q) or graph.has_exact_knn(q):
                    continue
                if graph.degree(p) <= min_degree or graph.degree(q) <= min_degree:
                    continue
                graph.remove_edge(p, q)
                removed += 1
    return {"removed": removed, "seconds": time.perf_counter() - t0}
