"""Name-based proximity-graph builder registry.

The DOD algorithm is orthogonal to the proximity graph (§4: "our
algorithm is orthogonal to any metric proximity graphs"), so experiments
select builders by name: ``"kgraph"``, ``"nsw"``, ``"mrpg"``,
``"mrpg-basic"``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data import Dataset
from ..exceptions import GraphError
from .adjacency import Graph
from .hnsw import build_hnsw
from .kgraph import build_kgraph
from .mrpg import MRPGConfig, build_mrpg
from .nsw import build_nsw


def _mrpg(dataset: Dataset, K: int, rng, **params) -> Graph:
    cfg = MRPGConfig(K=K, **params)
    return build_mrpg(dataset, K=K, rng=rng, basic=False, config=cfg)


def _mrpg_basic(dataset: Dataset, K: int, rng, **params) -> Graph:
    cfg = MRPGConfig(K=K, **params)
    return build_mrpg(dataset, K=K, rng=rng, basic=True, config=cfg)


def _kgraph(dataset: Dataset, K: int, rng, **params) -> Graph:
    return build_kgraph(dataset, K=K, rng=rng, **params)


def _nsw(dataset: Dataset, K: int, rng, **params) -> Graph:
    # The paper sizes NSW so its memory matches KGraph's: K links/object.
    params.setdefault("n_links", K)
    return build_nsw(dataset, rng=rng, **params)


def _hnsw(dataset: Dataset, K: int, rng, **params) -> Graph:
    # Layer-0 degree cap is 2M, so M = K/2 matches the others' memory.
    params.setdefault("M", max(2, K // 2))
    return build_hnsw(dataset, rng=rng, **params)


_BUILDERS: dict[str, Callable[..., Graph]] = {
    "kgraph": _kgraph,
    "nsw": _nsw,
    "hnsw": _hnsw,
    "mrpg": _mrpg,
    "mrpg-basic": _mrpg_basic,
}


def available_graphs() -> list[str]:
    """Builder names accepted by :func:`build_graph`."""
    return sorted(_BUILDERS)


def build_graph(
    name: str,
    dataset: Dataset,
    K: int = 16,
    rng: "int | np.random.Generator | None" = None,
    **params,
) -> Graph:
    """Build the proximity graph ``name`` over ``dataset``."""
    key = name.strip().lower().replace("_", "-")
    if key not in _BUILDERS:
        raise GraphError(f"unknown graph {name!r}; known: {available_graphs()}")
    return _BUILDERS[key](dataset, K=K, rng=rng, **params)
