"""Name-based proximity-graph builder registry.

The DOD algorithm is orthogonal to the proximity graph (§4: "our
algorithm is orthogonal to any metric proximity graphs"), so experiments
select builders by name: ``"kgraph"``, ``"nsw"``, ``"mrpg"``,
``"mrpg-basic"``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data import Dataset
from ..exceptions import GraphError
from .adjacency import Graph
from .hnsw import build_hnsw
from .kgraph import build_kgraph
from .mrpg import MRPGConfig, build_mrpg
from .nsw import build_nsw


def _mrpg(dataset: Dataset, K: int, rng, **params) -> Graph:
    cfg = MRPGConfig(K=K, **params)
    return build_mrpg(dataset, K=K, rng=rng, basic=False, config=cfg)


def _mrpg_basic(dataset: Dataset, K: int, rng, **params) -> Graph:
    cfg = MRPGConfig(K=K, **params)
    return build_mrpg(dataset, K=K, rng=rng, basic=True, config=cfg)


def _kgraph(dataset: Dataset, K: int, rng, **params) -> Graph:
    return build_kgraph(dataset, K=K, rng=rng, **params)


def _nsw(dataset: Dataset, K: int, rng, **params) -> Graph:
    # NSW/HNSW insert sequentially (each insert searches the graph built
    # so far) — no parallel build path; the flag is accepted and ignored
    # so callers can thread one setting through any builder.
    params.pop("build_workers", None)
    params.pop("build_start_method", None)
    # The paper sizes NSW so its memory matches KGraph's: K links/object.
    params.setdefault("n_links", K)
    return build_nsw(dataset, rng=rng, **params)


def _hnsw(dataset: Dataset, K: int, rng, **params) -> Graph:
    params.pop("build_workers", None)
    params.pop("build_start_method", None)
    # Layer-0 degree cap is 2M, so M = K/2 matches the others' memory.
    params.setdefault("M", max(2, K // 2))
    return build_hnsw(dataset, rng=rng, **params)


_BUILDERS: dict[str, Callable[..., Graph]] = {
    "kgraph": _kgraph,
    "nsw": _nsw,
    "hnsw": _hnsw,
    "mrpg": _mrpg,
    "mrpg-basic": _mrpg_basic,
}


def available_graphs() -> list[str]:
    """Builder names accepted by :func:`build_graph`."""
    return sorted(_BUILDERS)


def build_graph(
    name: str,
    dataset: Dataset,
    K: int = 16,
    rng: "int | np.random.Generator | None" = None,
    clamp_K: bool = False,
    build_workers: "int | None" = None,
    build_start_method: "str | None" = None,
    **params,
) -> Graph:
    """Build the proximity graph ``name`` over ``dataset``.

    ``build_workers`` selects the process-parallel, worker-count-
    invariant construction path of
    :mod:`repro.graphs.parallel_build` for builders that support it
    (kgraph, mrpg, mrpg-basic; nsw/hnsw ignore it) — the same seed
    yields a bit-identical graph at any worker count.  ``None`` keeps
    the legacy sequential algorithms byte-for-byte.

    ``clamp_K`` lowers ``K`` to ``dataset.n - 1`` when the dataset is
    too small to have ``K`` distinct neighbors per object — the normal
    case for the per-shard sub-graphs of
    :class:`~repro.engine.sharded.ShardedDetectionEngine`, whose shards
    can be much smaller than the configured degree.  Without it the
    caller keeps the builders' own validation behavior.

    Example
    -------
    >>> import numpy as np
    >>> from repro import Dataset, build_graph
    >>> ds = Dataset(np.random.default_rng(0).normal(size=(60, 4)), "l2")
    >>> graph = build_graph("kgraph", ds, K=4, rng=0)
    >>> graph.n
    60
    >>> tiny = Dataset(np.random.default_rng(1).normal(size=(3, 4)), "l2")
    >>> build_graph("kgraph", tiny, K=16, clamp_K=True).n  # K clamped to 2
    3
    """
    key = name.strip().lower().replace("_", "-")
    if key not in _BUILDERS:
        raise GraphError(f"unknown graph {name!r}; known: {available_graphs()}")
    if clamp_K:
        K = max(1, min(int(K), dataset.n - 1))
    if build_workers is not None:
        params["build_workers"] = int(build_workers)
        if build_start_method is not None:
            params["build_start_method"] = str(build_start_method)
    return _BUILDERS[key](dataset, K=K, rng=rng, **params)
