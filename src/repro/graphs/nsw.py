"""NSW — Navigable Small World graph [Malkov et al., Inf. Systems 2014].

The incremental competitor of §3/§6: objects are inserted in random
order; each new object runs a handful of greedy searches over the graph
built so far, collects every vertex those searches evaluate, and links
(undirected) to the closest ``n_links`` of them.

Two properties the paper leans on fall straight out of the construction:

* insertion is inherently sequential (each insert searches the current
  graph), which is why the paper reports NSW's build as slowest and
  non-parallelisable;
* early links are long-range (the graph is sparse when they are made),
  giving the small-world routing property.
"""

from __future__ import annotations

import time

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng
from .adjacency import Graph


def _search_collect(
    dataset: Dataset,
    graph: Graph,
    query: int,
    entry: int,
    pool: dict[int, float],
    max_path: int = 64,
) -> None:
    """One greedy search; every evaluated vertex lands in ``pool``."""
    current = entry
    if current not in pool:
        pool[current] = dataset.dist(query, current)
    current_d = pool[current]
    for _ in range(max_path):
        nbrs = graph.neighbors(current)
        fresh = [int(v) for v in nbrs if int(v) not in pool and int(v) != query]
        if fresh:
            d = dataset.dist_many(query, np.asarray(fresh, dtype=np.int64))
            for v, dv in zip(fresh, d):
                pool[v] = float(dv)
        # Move to the best neighbor if it improves on the current vertex.
        best_v, best_d = current, current_d
        for v in nbrs:
            v = int(v)
            dv = pool.get(v)
            if dv is not None and dv < best_d:
                best_v, best_d = v, dv
        if best_v == current:
            break
        current, current_d = best_v, best_d


def build_nsw(
    dataset: Dataset,
    n_links: int = 16,
    attempts: int = 2,
    rng: "int | np.random.Generator | None" = None,
) -> Graph:
    """Build an NSW graph by incremental insertion.

    ``n_links`` plays the role of ``f`` in Malkov et al.; the paper sizes
    it so NSW's memory matches KGraph's, which undirected edges with
    ``n_links = K`` roughly achieve.  ``attempts`` is the number of
    independent greedy searches per insertion (``w`` in the original).
    """
    n = dataset.n
    if n_links < 1:
        raise ParameterError(f"n_links must be >= 1, got {n_links}")
    if attempts < 1:
        raise ParameterError(f"attempts must be >= 1, got {attempts}")
    gen = ensure_rng(rng)
    t0 = time.perf_counter()

    g = Graph(n)
    order = gen.permutation(n)
    inserted: list[int] = []
    for q in order:
        q = int(q)
        if len(inserted) <= n_links:
            for v in inserted:
                g.add_edge(q, v)
            inserted.append(q)
            continue
        pool: dict[int, float] = {}
        for _ in range(attempts):
            entry = inserted[int(gen.integers(len(inserted)))]
            _search_collect(dataset, g, q, entry, pool)
        closest = sorted(pool.items(), key=lambda kv: kv[1])[:n_links]
        for v, _ in closest:
            g.add_edge(q, v)
        inserted.append(q)

    g.finalize()
    g.meta["builder"] = "nsw"
    g.meta["n_links"] = n_links
    g.meta["attempts"] = attempts
    g.meta["phase_seconds"] = {"insertion": time.perf_counter() - t0}
    g.meta["build_seconds"] = time.perf_counter() - t0
    return g
