"""Proximity graphs: KGraph, NSW and the paper's MRPG / MRPG-basic."""

from .adjacency import Graph
from .ann import greedy_ann_search
from .base import available_graphs, build_graph
from .connect import connect_subgraphs
from .detours import BFSScan, remove_detours, scan_monotonicity
from .hnsw import build_hnsw
from .kgraph import build_kgraph
from .mrpg import MRPGConfig, build_mrpg
from .nndescent import NNDescentResult, nndescent
from .nndescent_plus import NNDescentPlusResult, nndescent_plus
from .nsw import build_nsw
from .parallel_build import (
    BUILD_PARTITIONS,
    BuildPool,
    build_partitions,
    graphs_equal,
)
from .prune import remove_links

__all__ = [
    "Graph",
    "build_graph",
    "available_graphs",
    "build_kgraph",
    "build_nsw",
    "build_hnsw",
    "build_mrpg",
    "MRPGConfig",
    "nndescent",
    "NNDescentResult",
    "nndescent_plus",
    "NNDescentPlusResult",
    "connect_subgraphs",
    "remove_detours",
    "scan_monotonicity",
    "BFSScan",
    "remove_links",
    "greedy_ann_search",
    "BuildPool",
    "BUILD_PARTITIONS",
    "build_partitions",
    "graphs_equal",
]
