"""The proximity-graph container.

A :class:`Graph` is a passive structure produced by the builders in this
package and consumed by the DOD algorithms: directed adjacency lists (a
link ``u -> v`` means ``v in neighbors(u)``), a pivot flag per vertex
(§5.1), and, for MRPG, per-vertex *exact K'-NN* lists (§5.5, Property 3).

Adjacency is kept as Python lists plus membership sets while building
(O(1) dedup, cheap edge removal) and finalised into numpy arrays for
traversal, where ``Greedy-Counting`` feeds whole neighbor arrays into one
vectorised distance kernel per visited vertex.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..exceptions import GraphError

_EMPTY = np.empty(0, dtype=np.int64)


class Graph:
    """Directed graph over vertices ``0..n-1`` with pivot/exact-NN labels."""

    def __init__(self, n: int):
        if n < 1:
            raise GraphError(f"graph needs at least one vertex, got n={n}")
        self.n = int(n)
        self._adj: list[list[int]] = [[] for _ in range(n)]
        self._members: list[set[int]] = [set() for _ in range(n)]
        self._arrays: list[np.ndarray] | None = None
        #: pivot flags (Algorithm 3 vantage points whose left child is a leaf).
        self.pivots = np.zeros(n, dtype=bool)
        #: vertex id -> (ids, dists) of its *exact* K'-NN (MRPG Property 3).
        self.exact_knn: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: free-form build metadata (phase timings, parameters, ...).
        self.meta: dict = {}

    # -- mutation ----------------------------------------------------------

    def add_link(self, u: int, v: int) -> bool:
        """Add the directed link ``u -> v``; returns False if redundant."""
        if u == v:
            return False
        if v in self._members[u]:
            return False
        self._members[u].add(v)
        self._adj[u].append(v)
        self._arrays = None
        return True

    def add_edge(self, u: int, v: int) -> None:
        """Add links in both directions (undirected edge)."""
        self.add_link(u, v)
        self.add_link(v, u)

    def remove_link(self, u: int, v: int) -> bool:
        """Remove the directed link ``u -> v`` if present."""
        if v not in self._members[u]:
            return False
        self._members[u].discard(v)
        self._adj[u].remove(v)
        self._arrays = None
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove both directions of an edge."""
        self.remove_link(u, v)
        self.remove_link(v, u)

    def set_links(self, u: int, targets: Iterable[int]) -> None:
        """Replace the out-links of ``u``."""
        fresh: list[int] = []
        seen: set[int] = set()
        for v in targets:
            v = int(v)
            if v != u and v not in seen:
                seen.add(v)
                fresh.append(v)
        self._adj[u] = fresh
        self._members[u] = seen
        self._arrays = None

    # -- queries -----------------------------------------------------------

    def has_link(self, u: int, v: int) -> bool:
        return v in self._members[u]

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` as an int64 array (cached after finalize)."""
        if self._arrays is not None:
            return self._arrays[v]
        lst = self._adj[v]
        if not lst:
            return _EMPTY
        return np.asarray(lst, dtype=np.int64)

    def neighbors_list(self, v: int) -> list[int]:
        """Mutable-view-free copy of ``v``'s out-neighbor list."""
        return list(self._adj[v])

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    @property
    def n_links(self) -> int:
        """Total number of directed links."""
        return sum(len(lst) for lst in self._adj)

    def is_pivot(self, v: int) -> bool:
        return bool(self.pivots[v])

    def has_exact_knn(self, v: int) -> bool:
        return v in self.exact_knn

    # -- lifecycle -----------------------------------------------------------

    def finalize(self) -> "Graph":
        """Freeze adjacency into numpy arrays for fast traversal."""
        self._arrays = [
            np.asarray(lst, dtype=np.int64) if lst else _EMPTY for lst in self._adj
        ]
        return self

    @property
    def finalized(self) -> bool:
        return self._arrays is not None

    @property
    def nbytes(self) -> int:
        """Approximate memory of the finalised index (Table 6 measure).

        Counts adjacency as int64 ids plus per-vertex offsets, pivot flags,
        and the exact-K'NN payloads — i.e. what a serialised MRPG carries.
        """
        total = 8 * self.n_links + 8 * (self.n + 1) + self.pivots.nbytes
        for ids, dists in self.exact_knn.values():
            total += ids.nbytes + dists.nbytes
        return int(total)

    def copy(self) -> "Graph":
        """Deep copy (used by the MRPG ablation variants)."""
        g = Graph(self.n)
        g._adj = [list(lst) for lst in self._adj]
        g._members = [set(s) for s in self._members]
        g.pivots = self.pivots.copy()
        g.exact_knn = {
            v: (ids.copy(), dd.copy()) for v, (ids, dd) in self.exact_knn.items()
        }
        g.meta = dict(self.meta)
        if self._arrays is not None:
            g.finalize()
        return g

    def validate(self) -> None:
        """Internal consistency check (tests and io round-trips)."""
        for u in range(self.n):
            lst = self._adj[u]
            if len(lst) != len(self._members[u]):
                raise GraphError(f"vertex {u}: duplicate links")
            for v in lst:
                if not 0 <= v < self.n:
                    raise GraphError(f"vertex {u}: link target {v} out of range")
                if v == u:
                    raise GraphError(f"vertex {u}: self loop")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(n={self.n}, links={self.n_links}, "
            f"pivots={int(self.pivots.sum())}, exact={len(self.exact_knn)})"
        )
