"""The proximity-graph container.

A :class:`Graph` is a passive structure produced by the builders in this
package and consumed by the DOD algorithms: directed adjacency lists (a
link ``u -> v`` means ``v in neighbors(u)``), a pivot flag per vertex
(§5.1), and, for MRPG, per-vertex *exact K'-NN* lists (§5.5, Property 3).

Adjacency is kept as Python lists plus membership sets while building
(O(1) dedup, cheap edge removal) and finalised into a CSR representation
(``indptr``/``indices``) for traversal: ``neighbors(v)`` is a constant
-time slice, and the multi-source level-synchronous kernel in
:mod:`repro.core.traversal` gathers whole frontier levels straight from
the two flat arrays without touching per-vertex Python objects.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..exceptions import GraphError

_EMPTY = np.empty(0, dtype=np.int64)


class Graph:
    """Directed graph over vertices ``0..n-1`` with pivot/exact-NN labels."""

    def __init__(self, n: int):
        if n < 1:
            raise GraphError(f"graph needs at least one vertex, got n={n}")
        self.n = int(n)
        self._adj: list[list[int]] = [[] for _ in range(n)]
        self._members: list[set[int]] = [set() for _ in range(n)]
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        #: pivot flags (Algorithm 3 vantage points whose left child is a leaf).
        self.pivots = np.zeros(n, dtype=bool)
        #: vertex id -> (ids, dists) of its *exact* K'-NN (MRPG Property 3).
        self.exact_knn: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._knn_arrays: tuple | None = None
        #: free-form build metadata (phase timings, parameters, ...).
        self.meta: dict = {}

    # -- mutation ----------------------------------------------------------

    def add_link(self, u: int, v: int) -> bool:
        """Add the directed link ``u -> v``; returns False if redundant."""
        if u == v:
            return False
        if v in self._members[u]:
            return False
        self._members[u].add(v)
        self._adj[u].append(v)
        self._csr = None
        return True

    def add_edge(self, u: int, v: int) -> None:
        """Add links in both directions (undirected edge)."""
        self.add_link(u, v)
        self.add_link(v, u)

    def remove_link(self, u: int, v: int) -> bool:
        """Remove the directed link ``u -> v`` if present."""
        if v not in self._members[u]:
            return False
        self._members[u].discard(v)
        self._adj[u].remove(v)
        self._csr = None
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove both directions of an edge."""
        self.remove_link(u, v)
        self.remove_link(v, u)

    def set_links(self, u: int, targets: Iterable[int]) -> None:
        """Replace the out-links of ``u``."""
        fresh: list[int] = []
        seen: set[int] = set()
        for v in targets:
            v = int(v)
            if v != u and v not in seen:
                seen.add(v)
                fresh.append(v)
        self._adj[u] = fresh
        self._members[u] = seen
        self._csr = None

    # -- queries -----------------------------------------------------------

    def has_link(self, u: int, v: int) -> bool:
        return v in self._members[u]

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` as an int64 array.

        After :meth:`finalize` this is a read-only view into the CSR
        ``indices`` array — do not mutate it in place.
        """
        if self._csr is not None:
            indptr, indices = self._csr
            return indices[indptr[v]:indptr[v + 1]]
        lst = self._adj[v]
        if not lst:
            return _EMPTY
        return np.asarray(lst, dtype=np.int64)

    def neighbors_list(self, v: int) -> list[int]:
        """Mutable-view-free copy of ``v``'s out-neighbor list."""
        return list(self._adj[v])

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    @property
    def n_links(self) -> int:
        """Total number of directed links."""
        return sum(len(lst) for lst in self._adj)

    def is_pivot(self, v: int) -> bool:
        return bool(self.pivots[v])

    def has_exact_knn(self, v: int) -> bool:
        return v in self.exact_knn

    # -- incremental maintenance ----------------------------------------------
    #
    # The mutable engine (:mod:`repro.engine.mutable`) maintains one
    # graph over a changing collection: vertices are appended with
    # :meth:`grow`, retired with :meth:`tombstone`, and detection runs
    # over the :meth:`compact` live-only remap.

    def grow(self, n_new: int) -> None:
        """Extend the vertex range to ``0..n_new-1`` (new vertices isolated)."""
        if n_new < self.n:
            raise GraphError(f"cannot shrink graph from {self.n} to {n_new}")
        if n_new == self.n:
            return
        pad = n_new - self.n
        self._adj.extend([] for _ in range(pad))
        self._members.extend(set() for _ in range(pad))
        self.pivots = np.concatenate([self.pivots, np.zeros(pad, dtype=bool)])
        self.n = int(n_new)
        self._csr = None
        self._knn_arrays = None

    def tombstone(self, v: int, alive: "np.ndarray | None" = None) -> None:
        """Retire vertex ``v``: chain its neighbors, clear its adjacency.

        Chaining consecutive (live) neighbors patches connectivity so
        traversals never dead-end where ``v`` used to be.  The vertex
        keeps its id (callers renumber via :meth:`compact`); its pivot
        flag and exact-K'NN list are dropped.
        """
        if not 0 <= v < self.n:
            raise GraphError(f"tombstone target {v} out of range")
        nbrs = self.neighbors_list(v)
        if alive is not None:
            nbrs = [w for w in nbrs if alive[w]]
        for a, b in zip(nbrs, nbrs[1:]):
            self.add_edge(a, b)
        for w in self.neighbors_list(v):
            self.remove_edge(v, w)
        self.exact_knn.pop(v, None)
        self._knn_arrays = None
        self.pivots[v] = False

    def tombstone_many(self, ids, alive: "np.ndarray | None" = None) -> None:
        """Retire a block of vertices in one call.

        The batched form of :meth:`tombstone`: victims are chained
        against the *final* alive mask (an id being retired in the same
        block is already dead for chaining purposes), so one mutation
        batch pays one pass of adjacency surgery instead of re-deriving
        liveness per victim.
        """
        ids = [int(v) for v in ids]
        for v in ids:
            if not 0 <= v < self.n:
                raise GraphError(f"tombstone target {v} out of range")
        for v in ids:
            self.tombstone(v, alive=alive)

    def patch_exact_knn(self, v: int, new_id: int, dist: float) -> bool:
        """Insert ``new_id`` into ``v``'s exact-K'NN list, keeping it exact.

        Decremental maintenance of Property 3 under inserts: a newcomer
        strictly closer than the list's last entry would falsify the
        stored "exact K' nearest" claim, but the *union* of the old list
        and the newcomer still contains the true K' nearest — so
        inserting by distance and truncating back to K' keeps the list
        exact (its coverage radius only shrinks).  Returns ``True`` when
        the list was patched, ``False`` when the newcomer lies outside
        it (the list was exact already).
        """
        entry = self.exact_knn.get(int(v))
        if entry is None:
            return False
        ids, dists = entry
        if dists.size == 0 or dist >= dists[-1]:
            return False
        pos = int(np.searchsorted(dists, dist, side="left"))
        kprime = dists.size
        self.exact_knn[int(v)] = (
            np.insert(ids, pos, int(new_id))[:kprime],
            np.insert(dists, pos, float(dist))[:kprime],
        )
        # The flat-array cache fingerprints on (holders, payload size),
        # both unchanged by an in-place patch — invalidate explicitly.
        self._knn_arrays = None
        return True

    def compact(self, keep: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Live-only copy over ``keep`` (renumbered), plus the id remap.

        Returns ``(graph, remap)`` where ``remap[old_id]`` is the new id
        (``-1`` for dropped vertices).  Links to dropped vertices are
        removed; exact-K'NN lists survive only when *every* member is
        kept — otherwise the "exact K'-NN" property no longer holds for
        the remaining population.  The returned graph is finalised.
        """
        keep = np.asarray(keep, dtype=np.int64)
        if keep.size == 0:
            raise GraphError("compact: empty keep set")
        remap = np.full(self.n, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size)
        graph = Graph(keep.size)
        graph.meta = dict(self.meta)
        graph.pivots = self.pivots[keep].copy()
        for new_u, old_u in enumerate(keep):
            graph.set_links(
                new_u,
                (
                    int(remap[w])
                    for w in self._adj[int(old_u)]
                    if remap[w] >= 0
                ),
            )
        for old_v, (ids, dists) in self.exact_knn.items():
            if remap[old_v] >= 0 and np.all(remap[ids] >= 0):
                graph.exact_knn[int(remap[old_v])] = (remap[ids], dists.copy())
        graph.finalize()
        return graph, remap

    # -- lifecycle -----------------------------------------------------------

    def finalize(self) -> "Graph":
        """Freeze adjacency into CSR arrays for fast traversal."""
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(lst) for lst in self._adj])
        if indptr[-1]:
            indices = np.concatenate(
                [np.asarray(lst, dtype=np.int64) for lst in self._adj if lst]
            )
        else:
            indices = _EMPTY
        self._csr = (indptr, indices)
        return self

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The finalised ``(indptr, indices)`` adjacency (finalizing if needed).

        ``indices[indptr[v]:indptr[v + 1]]`` are the out-neighbors of
        ``v``; both arrays are int64 and must be treated as immutable.
        The level-synchronous traversal kernel gathers whole frontiers
        from these with ``np.repeat`` instead of per-vertex lookups.
        """
        if self._csr is None:
            self.finalize()
        assert self._csr is not None
        return self._csr

    def exact_knn_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Exact-K'NN payloads as flat arrays: ``(owners, sizes, ptr, dists)``.

        ``owners`` is sorted and holds every vertex with a *non-empty*
        list; ``dists[ptr[t]:ptr[t + 1]]`` are owner ``t``'s sorted K'NN
        distances (``sizes[t]`` of them).  The batched filter and the
        engine's evidence warm-up both consume this instead of the
        per-vertex dict.  Cached; the cache is invalidated when the
        number of holders or the total payload size changes (builders
        only ever add whole lists, so that fingerprint is sufficient).
        """
        fingerprint = (
            len(self.exact_knn),
            sum(dd.size for _, dd in self.exact_knn.values()),
        )
        if self._knn_arrays is not None and self._knn_arrays[0] == fingerprint:
            return self._knn_arrays[1]
        owners = np.asarray(
            sorted(p for p, (_, dd) in self.exact_knn.items() if dd.size),
            dtype=np.int64,
        )
        if owners.size:
            sizes = np.asarray(
                [self.exact_knn[int(p)][1].size for p in owners], dtype=np.int64
            )
            ptr = np.concatenate(([0], np.cumsum(sizes)))
            dists = np.concatenate(
                [self.exact_knn[int(p)][1] for p in owners]
            ).astype(np.float64)
        else:
            sizes = np.empty(0, dtype=np.int64)
            ptr = np.zeros(1, dtype=np.int64)
            dists = np.empty(0, dtype=np.float64)
        arrays = (owners, sizes, ptr, dists)
        self._knn_arrays = (fingerprint, arrays)
        return arrays

    def build_stats(self) -> dict:
        """Per-phase construction observability, derived from :attr:`meta`.

        One flat dict for engine ``stats()`` / serving ``/stats`` / CLI
        ``--verbose``: builder name, wall-clock per phase, NN-Descent
        round convergence, and — for pool-built graphs — the worker
        count, start method, per-stage seconds and worker pair counts
        recorded by :mod:`repro.graphs.parallel_build`.  Keys absent
        from ``meta`` are omitted rather than padded with ``None``.
        """
        stats: dict = {}
        for key in (
            "builder",
            "build_seconds",
            "phase_seconds",
            "iterations",
            "updates_per_round",
            "build_workers",
            "detour_scans",
            "detour_links_added",
            "links_removed",
            "connect_patches",
        ):
            if key in self.meta:
                stats[key] = self.meta[key]
        extra = self.meta.get("build_stats")
        if isinstance(extra, dict):
            stats.update(extra)
        return stats

    @property
    def finalized(self) -> bool:
        return self._csr is not None

    @property
    def nbytes(self) -> int:
        """Approximate memory of the finalised index (Table 6 measure).

        Counts adjacency as int64 ids plus per-vertex offsets, pivot flags,
        and the exact-K'NN payloads — i.e. what a serialised MRPG carries.
        """
        total = 8 * self.n_links + 8 * (self.n + 1) + self.pivots.nbytes
        for ids, dists in self.exact_knn.values():
            total += ids.nbytes + dists.nbytes
        return int(total)

    def copy(self) -> "Graph":
        """Deep copy (used by the MRPG ablation variants)."""
        g = Graph(self.n)
        g._adj = [list(lst) for lst in self._adj]
        g._members = [set(s) for s in self._members]
        g.pivots = self.pivots.copy()
        g.exact_knn = {
            v: (ids.copy(), dd.copy()) for v, (ids, dd) in self.exact_knn.items()
        }
        g.meta = dict(self.meta)
        if self._csr is not None:
            g.finalize()
        return g

    def validate(self) -> None:
        """Internal consistency check (tests and io round-trips)."""
        for u in range(self.n):
            lst = self._adj[u]
            if len(lst) != len(self._members[u]):
                raise GraphError(f"vertex {u}: duplicate links")
            for v in lst:
                if not 0 <= v < self.n:
                    raise GraphError(f"vertex {u}: link target {v} out of range")
                if v == u:
                    raise GraphError(f"vertex {u}: self loop")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(n={self.n}, links={self.n_links}, "
            f"pivots={int(self.pivots.sum())}, exact={len(self.exact_knn)})"
        )
