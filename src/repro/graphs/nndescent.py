"""NNDescent — approximate K-NN graph construction [Dong et al., WWW'11].

This is the paper's baseline AKNN builder (a finished AKNN graph is the
``KGraph`` competitor of §6) and the backbone that NNDescent+ extends.
We implement the *basic* variant the paper targets (§5.1 footnote 3):

1. every object starts with ``K`` random neighbors (or caller-provided
   seeds),
2. each round, an object ``p`` gathers its *similar object list* — its
   AKNNs plus reverse AKNNs — and probes the similar lists of those
   objects for anything closer than its current K-th neighbor,
3. rounds repeat until no list changes (or ``max_iters``).

The per-object probe is expressed as one candidate-id union plus a single
vectorised distance kernel, followed by an argsort merge — no Python
inner loop over candidates.

The update-skipping optimisation of NNDescent+ (§5.1: only probe similar
objects whose own list changed last round) is implemented here behind the
``skip_unchanged`` flag so both builders share one engine and the
ablation is a parameter flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng


@dataclass
class NNDescentResult:
    """AKNN lists plus convergence diagnostics."""

    knn_ids: np.ndarray
    knn_dists: np.ndarray
    iterations: int
    updates_per_iter: list[int] = field(default_factory=list)
    #: pooled-build timing detail (init seconds, per-round join seconds);
    #: empty for the legacy sequential path.
    stage_seconds: dict = field(default_factory=dict)

    @property
    def sum_dists(self) -> np.ndarray:
        """Per-object sum of distances to its AKNNs.

        NNDescent+ ranks objects by this to decide who gets exact K'-NNs:
        a large sum flags a probably-inaccurate list *and* a likely
        outlier (§5.1, §5.5).
        """
        return self.knn_dists.sum(axis=1)


#: pairs per distance kernel when scoring the random initial lists.
_INIT_PAIR_CHUNK = 1 << 16


def _random_init(
    dataset: Dataset, K: int, gen: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """K distinct random neighbors per object, with distances.

    Distances are evaluated in chunked ``pair_dist`` kernels over many
    objects' rows at once instead of one tiny ``dist_many`` call per
    object.
    """
    n = dataset.n
    ids = np.empty((n, K), dtype=np.int64)
    for p in range(n):
        picks = gen.choice(n - 1, size=K, replace=False)
        picks[picks >= p] += 1  # skip self without rejection sampling
        ids[p] = picks
    dists = np.empty((n, K), dtype=np.float64)
    rows = max(1, _INIT_PAIR_CHUNK // K)
    for lo in range(0, n, rows):
        hi = min(lo + rows, n)
        left = np.repeat(np.arange(lo, hi, dtype=np.int64), K)
        dists[lo:hi] = dataset.pair_dist(
            left, ids[lo:hi].ravel(), consistent=True
        ).reshape(hi - lo, K)
    return ids, dists


def _sort_rows(ids: np.ndarray, dists: np.ndarray) -> None:
    """Sort each AKNN row ascending by distance, in place."""
    order = np.argsort(dists, axis=1, kind="stable")
    taken = np.take_along_axis(ids, order, axis=1)
    ids[:] = taken
    dists[:] = np.take_along_axis(dists, order, axis=1)


def _reverse_lists(
    knn_ids: np.ndarray, cap: int, gen: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group owners by target: reverse AKNN lists in CSR form.

    Returns ``(owners, starts, ends)`` with ``owners[starts[p]:ends[p]]``
    the reverse AKNNs of ``p``.  Hub objects (huge reverse lists, common
    in high dimensions) are down-sampled to ``cap`` to bound the join.
    """
    n, K = knn_ids.shape
    targets = knn_ids.ravel()
    owners = np.repeat(np.arange(n, dtype=np.int64), K)
    order = np.argsort(targets, kind="stable")
    targets = targets[order]
    owners = owners[order]
    starts = np.searchsorted(targets, np.arange(n), side="left")
    ends = np.searchsorted(targets, np.arange(n), side="right")
    if cap > 0:
        lengths = ends - starts
        over = np.flatnonzero(lengths > cap)
        if over.size:
            keep_owner_chunks = []
            keep_bounds = np.stack([starts, ends], axis=1)
            for p in over:
                lo, hi = int(starts[p]), int(ends[p])
                picks = gen.choice(hi - lo, size=cap, replace=False) + lo
                picks.sort()
                keep_owner_chunks.append((p, owners[picks]))
            # Rebuild the owner array with capped chunks.
            pieces = []
            cursor = 0
            new_starts = starts.copy()
            new_ends = ends.copy()
            capped = dict(keep_owner_chunks)
            for p in range(n):
                lo, hi = int(keep_bounds[p, 0]), int(keep_bounds[p, 1])
                chunk = capped.get(p, owners[lo:hi])
                new_starts[p] = cursor
                cursor += len(chunk)
                new_ends[p] = cursor
                pieces.append(chunk)
            owners = np.concatenate(pieces) if pieces else owners[:0]
            starts, ends = new_starts, new_ends
    return owners, starts, ends


def nndescent(
    dataset: Dataset,
    K: int,
    max_iters: int = 12,
    rng: "int | np.random.Generator | None" = None,
    init_ids: np.ndarray | None = None,
    init_dists: np.ndarray | None = None,
    skip_unchanged: bool = False,
    reverse_cap: int | None = None,
    max_candidates: int | None = None,
    pool=None,
) -> NNDescentResult:
    """Build approximate K-NN lists for every object.

    Parameters
    ----------
    init_ids, init_dists:
        Optional ``(n, K)`` seeds with −1 / +inf padding (the VP-tree
        partition seeds of NNDescent+).  Padded slots are topped up with
        random distinct neighbors.
    skip_unchanged:
        NNDescent+ optimisation: drop similar objects whose AKNN list did
        not change in the previous round.
    reverse_cap:
        Cap on reverse-AKNN list length (default ``3K``).
    max_candidates:
        Cap on the per-object candidate union (default ``8K``); beyond
        it a random subset is probed.
    pool:
        Optional :class:`~repro.graphs.parallel_build.BuildPool`.  When
        given, rounds run as partitioned *Jacobi* local joins across the
        pool's worker processes — a worker-count-invariant algorithm
        whose result depends only on the seed, not on the pool size
        (see :mod:`repro.graphs.parallel_build`).  ``None`` keeps the
        legacy sequential Gauss-Seidel loop byte-for-byte.
    """
    n = dataset.n
    if K < 1:
        raise ParameterError(f"K must be >= 1, got {K}")
    if K >= n:
        raise ParameterError(f"K must be < n (K={K}, n={n})")
    gen = ensure_rng(rng)
    if reverse_cap is None:
        reverse_cap = 3 * K
    if max_candidates is None:
        max_candidates = 8 * K
    if init_ids is not None:
        seed_shape = np.asarray(init_ids).shape
        if seed_shape != (n, K):
            raise ParameterError(
                f"init_ids must have shape ({n}, {K}), got {seed_shape}"
            )

    if pool is not None:
        from .parallel_build import nndescent_pooled

        return nndescent_pooled(
            dataset,
            K,
            pool,
            gen,
            max_iters,
            init_ids,
            init_dists,
            skip_unchanged,
            reverse_cap,
            max_candidates,
        )

    if init_ids is None:
        knn_ids, knn_dists = _random_init(dataset, K, gen)
    else:
        knn_ids = np.array(init_ids, dtype=np.int64, copy=True)
        knn_dists = np.array(init_dists, dtype=np.float64, copy=True)
        if knn_ids.shape != (n, K):
            raise ParameterError(
                f"init_ids must have shape ({n}, {K}), got {knn_ids.shape}"
            )
        _fill_padding(dataset, knn_ids, knn_dists, gen)
    _sort_rows(knn_ids, knn_dists)

    changed_prev = np.ones(n, dtype=bool)
    updates_per_iter: list[int] = []
    iterations = 0
    for _ in range(max_iters):
        iterations += 1
        rev_owners, rev_starts, rev_ends = _reverse_lists(knn_ids, reverse_cap, gen)
        changed_now = np.zeros(n, dtype=bool)
        total_updates = 0
        for p in range(n):
            similar = np.concatenate(
                (knn_ids[p], rev_owners[rev_starts[p] : rev_ends[p]])
            )
            if skip_unchanged:
                similar = similar[changed_prev[similar]]
            if similar.size == 0:
                continue
            similar = np.unique(similar)
            # Candidate pool: AKNNs and reverse AKNNs of similar objects.
            pool = [knn_ids[similar].ravel()]
            for s in similar:
                pool.append(rev_owners[rev_starts[s] : rev_ends[s]])
            cands = np.unique(np.concatenate(pool))
            # Drop self and already-known neighbors.
            cands = cands[cands != p]
            known = np.isin(cands, knn_ids[p], assume_unique=True)
            cands = cands[~known]
            if cands.size == 0:
                continue
            if cands.size > max_candidates:
                cands = gen.choice(cands, size=max_candidates, replace=False)
            worst = knn_dists[p, -1]
            d = dataset.dist_many(p, cands, bound=worst)
            better = d < worst
            if not np.any(better):
                continue
            merged_ids = np.concatenate((knn_ids[p], cands[better]))
            merged_d = np.concatenate((knn_dists[p], d[better]))
            order = np.argsort(merged_d, kind="stable")[:K]
            new_ids = merged_ids[order]
            n_new = K - int(np.isin(new_ids, knn_ids[p], assume_unique=False).sum())
            knn_ids[p] = new_ids
            knn_dists[p] = merged_d[order]
            if n_new > 0:
                changed_now[p] = True
                total_updates += n_new
        updates_per_iter.append(total_updates)
        changed_prev = changed_now
        if total_updates == 0:
            break
    return NNDescentResult(knn_ids, knn_dists, iterations, updates_per_iter)


def _fill_padding(
    dataset: Dataset,
    knn_ids: np.ndarray,
    knn_dists: np.ndarray,
    gen: np.random.Generator,
) -> None:
    """Replace −1 padding slots with random distinct neighbors."""
    n, K = knn_ids.shape
    for p in range(n):
        row = knn_ids[p]
        missing = np.flatnonzero(row < 0)
        if missing.size == 0:
            continue
        present = set(int(v) for v in row[row >= 0])
        present.add(p)
        fresh: list[int] = []
        while len(fresh) < missing.size:
            cand = int(gen.integers(n))
            if cand not in present:
                present.add(cand)
                fresh.append(cand)
        picks = np.asarray(fresh, dtype=np.int64)
        knn_ids[p, missing] = picks
        knn_dists[p, missing] = dataset.dist_many(p, picks)
