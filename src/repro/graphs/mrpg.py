"""MRPG — Metric Randomized Proximity Graph (§5 of the paper).

The graph purpose-built for DOD filtering.  Construction pipeline:

1. :func:`~repro.graphs.nndescent_plus.nndescent_plus` — AKNN lists
   (Property 1), pivots, and exact K'-NN lists for probable outliers
   (Property 3),
2. :func:`~repro.graphs.connect.connect_subgraphs` — strong
   connectivity,
3. :func:`~repro.graphs.detours.remove_detours` — pivot-based
   monotonic paths (Property 2),
4. :func:`~repro.graphs.prune.remove_links` — redundant-link pruning.

``basic=True`` builds **MRPG-basic** (§6): identical pipeline but with
``K' = K``, i.e. exact *K*-NN lists instead of the enlarged K'-NN lists
— which disables the O(k) direct-outlier decision for most useful ``k``
and isolates the benefit of §5.5's verification shortcut.

Ablation flags ``connect``/``detours``/``prune`` reproduce the §6.2
variant study ("Effectiveness of Connect-SubGraphs and Remove-Detours").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..data import Dataset
from ..rng import ensure_rng
from .adjacency import Graph
from .connect import connect_subgraphs
from .detours import remove_detours
from .nndescent_plus import nndescent_plus
from .parallel_build import (
    remove_detours_batched,
    remove_links_batched,
    resolve_build_pool,
)
from .prune import remove_links


@dataclass
class MRPGConfig:
    """Tunables for :func:`build_mrpg`; defaults follow the paper.

    ``K_prime`` defaults to ``4K`` (§6); ``n_exact`` to the
    :func:`~repro.graphs.nndescent_plus.default_n_exact` heuristic.
    """

    K: int = 16
    K_prime: int | None = None
    n_exact: int | None = None
    partition_repeats: int = 2
    capacity: int | None = None
    max_iters: int = 12
    n_probe_pivots: int = 3
    ann_max_hops: int = 10
    detour_targets: int | None = None
    detour_pivots: int | None = None
    detour_cap: int | None = None
    connect: bool = True
    detours: bool = True
    prune: bool = True
    #: ``None`` keeps the legacy sequential construction byte-for-byte;
    #: an int selects the worker-count-invariant partitioned build of
    #: :mod:`repro.graphs.parallel_build` (``1`` runs it in-process —
    #: the bit-identical serial reference for any larger pool).
    build_workers: int | None = None
    #: multiprocessing start method for the build pool (``None`` =
    #: platform default: ``fork`` where available, else ``spawn``).
    build_start_method: str | None = None


def build_mrpg(
    dataset: Dataset,
    K: int = 16,
    rng: "int | np.random.Generator | None" = None,
    basic: bool = False,
    config: MRPGConfig | None = None,
) -> Graph:
    """Build an MRPG (or MRPG-basic) over ``dataset``.

    Phase timings land in ``graph.meta["phase_seconds"]`` — the
    decomposition reported in the paper's Table 4.
    """
    cfg = config if config is not None else MRPGConfig(K=K)
    gen = ensure_rng(rng)
    n = dataset.n
    phases: dict[str, float] = {}

    # One pool outlives every stage (descent rounds, exact K'-NN, detour
    # and prune scans) so the fork/spawn cost is paid once per build.
    pool = resolve_build_pool(dataset, cfg.build_workers, cfg.build_start_method)
    try:
        t0 = time.perf_counter()
        k_prime = cfg.K if basic else cfg.K_prime
        ndp = nndescent_plus(
            dataset,
            cfg.K,
            K_prime=k_prime,
            n_exact=cfg.n_exact,
            partition_repeats=cfg.partition_repeats,
            capacity=cfg.capacity,
            max_iters=cfg.max_iters,
            rng=gen,
            pool=pool,
        )
        phases["nndescent+"] = time.perf_counter() - t0

        g = Graph(n)
        g.meta["K"] = cfg.K  # remove_detours sizes its samples from this
        g.pivots = ndp.pivots.copy()
        g.exact_knn = ndp.exact_knn
        for p in range(n):
            if p in ndp.exact_knn:
                g.set_links(p, ndp.exact_knn[p][0])
            else:
                g.set_links(p, ndp.knn.knn_ids[p])

        if cfg.connect:
            stats = connect_subgraphs(
                dataset,
                g,
                rng=gen,
                n_probe_pivots=cfg.n_probe_pivots,
                ann_max_hops=cfg.ann_max_hops,
            )
            phases["connect_subgraphs"] = stats["seconds"]
            g.meta["connect_patches"] = stats["patches"]

        if cfg.detours:
            if pool is not None:
                stats = remove_detours_batched(
                    dataset,
                    g,
                    pool,
                    gen,
                    n_targets=cfg.detour_targets,
                    pivots_per_target=cfg.detour_pivots,
                    cap=cfg.detour_cap,
                )
                g.meta["detour_scans"] = stats["scans"]
            else:
                stats = remove_detours(
                    dataset,
                    g,
                    rng=gen,
                    n_targets=cfg.detour_targets,
                    pivots_per_target=cfg.detour_pivots,
                    cap=cfg.detour_cap,
                )
            phases["remove_detours"] = stats["seconds"]
            g.meta["detour_links_added"] = stats["links_added"]

        if cfg.prune:
            if pool is not None:
                stats = remove_links_batched(g, pool)
            else:
                stats = remove_links(g)
            phases["remove_links"] = stats["seconds"]
            g.meta["links_removed"] = stats["removed"]

        g.finalize()
        g.meta["builder"] = "mrpg-basic" if basic else "mrpg"
        g.meta["K"] = cfg.K
        g.meta["K_prime"] = min(
            cfg.K if basic else (cfg.K_prime or 4 * cfg.K), n - 1
        )
        g.meta["iterations"] = ndp.knn.iterations
        g.meta["updates_per_round"] = list(ndp.knn.updates_per_iter)
        g.meta["seeded_fraction"] = ndp.seeded_fraction
        g.meta["nndescent_plus_timings"] = ndp.timings
        g.meta["phase_seconds"] = phases
        g.meta["build_seconds"] = sum(phases.values())
        if pool is not None:
            # Fold worker-side distance evaluations back into the parent
            # counter so build-cost accounting matches sequential builds.
            pairs = pool.take_pairs()
            dataset.counter.pairs += pairs
            g.meta["build_workers"] = pool.workers
            g.meta["build_stats"] = dict(
                ndp.knn.stage_seconds,
                workers=pool.workers,
                requested_workers=pool.requested_workers,
                start_method=pool.start_method,
                build_pairs=pairs,
            )
    finally:
        if pool is not None:
            pool.release()
    return g
