"""Remove-Detours (Algorithm 5 of the paper, §5.3).

``Greedy-Counting`` can only reach a neighbor of ``p`` along a path it
can afford to walk — one whose intermediate vertices stay within the
radius (or are pivots).  A *detour* — a path that first moves away from
``p`` — hides neighbors and inflates false positives.  A full monotonic
search graph fixes this but costs Ω(n²) (Theorem 3), so the paper
approximates: for a sample of source objects (pivot-weighted), find
nearby objects whose BFS tree path is non-monotonic and chain them to
the source in ascending distance order, creating monotonic paths where
they matter (small distances).

``scan_monotonicity`` is the bounded-hop ``Get-Non-Monotonic()``; it
also reports every pivot encountered, which Algorithm 5 uses to pick the
"pivots with small distances to p" for the secondary 2-hop scans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng
from .adjacency import Graph


@dataclass
class BFSScan:
    """Vertices discovered by a bounded BFS, with distance-to-source data.

    ``monotonic[t]`` tells whether the BFS tree path from the scan start
    to ``nodes[t]`` is monotonic w.r.t. distances to the *reference*
    object (which may differ from the start for pivot-initiated scans).
    """

    nodes: np.ndarray
    dists: np.ndarray
    hops: np.ndarray
    monotonic: np.ndarray


def scan_monotonicity(
    dataset: Dataset,
    graph: Graph,
    reference: int,
    start: int,
    max_hops: int,
) -> BFSScan:
    """Bounded BFS from ``start`` checking monotonicity towards ``reference``."""
    if max_hops < 1:
        raise ParameterError(f"max_hops must be >= 1, got {max_hops}")
    seen: set[int] = {start, reference}
    start_d = dataset.dist(reference, start) if start != reference else 0.0
    frontier_nodes = [start]
    frontier_dists = [start_d]
    frontier_mono = [True]

    all_nodes: list[int] = []
    all_dists: list[float] = []
    all_hops: list[int] = []
    all_mono: list[bool] = []

    for hop in range(1, max_hops + 1):
        next_nodes: list[int] = []
        parent_dists: list[float] = []
        parent_mono: list[bool] = []
        for v, dv, mono in zip(frontier_nodes, frontier_dists, frontier_mono):
            for w in graph.neighbors(v):
                w = int(w)
                if w in seen:
                    continue
                seen.add(w)
                next_nodes.append(w)
                parent_dists.append(dv)
                parent_mono.append(mono)
        if not next_nodes:
            break
        batch = np.asarray(next_nodes, dtype=np.int64)
        d = dataset.dist_many(reference, batch)
        mono_now = np.asarray(parent_mono) & (np.asarray(parent_dists) <= d)
        all_nodes.extend(next_nodes)
        all_dists.extend(d.tolist())
        all_hops.extend([hop] * len(next_nodes))
        all_mono.extend(mono_now.tolist())
        frontier_nodes = next_nodes
        frontier_dists = d.tolist()
        frontier_mono = mono_now.tolist()

    return BFSScan(
        np.asarray(all_nodes, dtype=np.int64),
        np.asarray(all_dists, dtype=np.float64),
        np.asarray(all_hops, dtype=np.int64),
        np.asarray(all_mono, dtype=bool),
    )


def _sample_targets(
    graph: Graph, n_targets: int, gen: np.random.Generator, pivot_weight: float = 4.0
) -> np.ndarray:
    """Pivot-weighted sample of source objects (exact-K'NN holders excluded)."""
    eligible = np.asarray(
        [v for v in range(graph.n) if not graph.has_exact_knn(v)], dtype=np.int64
    )
    if eligible.size == 0:
        return eligible
    weights = np.where(graph.pivots[eligible], pivot_weight, 1.0)
    weights /= weights.sum()
    size = min(n_targets, eligible.size)
    return gen.choice(eligible, size=size, replace=False, p=weights)


def remove_detours(
    dataset: Dataset,
    graph: Graph,
    rng: "int | np.random.Generator | None" = None,
    n_targets: int | None = None,
    pivots_per_target: int | None = None,
    cap: int | None = None,
    source_hops: int = 3,
    pivot_hops: int = 2,
) -> dict:
    """Create approximate monotonic paths in place.

    Defaults follow §5.3: ``|P'| = O(n/K)`` targets, ``|P_piv| = O(K)``
    secondary pivots per target, and at most ``O(K^2)`` chained objects
    per target (the closest ones).
    """
    gen = ensure_rng(rng)
    t0 = time.perf_counter()
    K = int(graph.meta.get("K", 16))
    if n_targets is None:
        n_targets = max(1, graph.n // max(K, 1))
    if pivots_per_target is None:
        pivots_per_target = K
    if cap is None:
        cap = K * K

    targets = _sample_targets(graph, n_targets, gen)
    links_added = 0
    for p in targets:
        p = int(p)
        scan = scan_monotonicity(dataset, graph, reference=p, start=p, max_hops=source_hops)
        # Collect non-monotonic vertices: node -> smallest observed distance.
        found: dict[int, float] = {}
        for t in np.flatnonzero(~scan.monotonic):
            v = int(scan.nodes[t])
            d = float(scan.dists[t])
            if d < found.get(v, np.inf):
                found[v] = d

        # Secondary scans from nearby pivots (hop >= 2, no exact lists).
        piv_mask = (
            graph.pivots[scan.nodes]
            & (scan.hops >= 2)
        )
        piv_candidates = [
            (float(scan.dists[t]), int(scan.nodes[t]))
            for t in np.flatnonzero(piv_mask)
            if not graph.has_exact_knn(int(scan.nodes[t]))
        ]
        piv_candidates.sort()
        for _, pv in piv_candidates[:pivots_per_target]:
            sub = scan_monotonicity(
                dataset, graph, reference=p, start=pv, max_hops=pivot_hops
            )
            for t in np.flatnonzero(~sub.monotonic):
                v = int(sub.nodes[t])
                d = float(sub.dists[t])
                if d < found.get(v, np.inf):
                    found[v] = d

        if not found:
            continue
        # Direct neighbors already have a trivially monotonic 1-hop path.
        direct = set(graph.neighbors_list(p))
        chain = sorted(
            (d, v) for v, d in found.items() if v not in direct and v != p
        )[:cap]
        prev = p
        for _, v in chain:
            if not graph.has_exact_knn(v) and not graph.has_exact_knn(prev):
                if graph.add_link(prev, v):
                    links_added += 1
                if graph.add_link(v, prev):
                    links_added += 1
            prev = v

    return {
        "targets": int(targets.size),
        "links_added": links_added,
        "seconds": time.perf_counter() - t0,
    }
