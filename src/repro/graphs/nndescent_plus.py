"""NNDescent+ — the paper's extension of NNDescent (§5.1).

Three changes over plain NNDescent, each mapped to a keyword here:

* **VP-tree seeded initialisation** (Algorithm 3): objects start from
  their K-NN *within a ball-partition leaf* instead of random links,
  which slashes the number of update rounds.  Vantages of left-leaf
  parents become the **pivots** used by every later MRPG phase.
* **Update skipping**: similar-object lists that did not change in the
  previous round are not probed again (``skip_unchanged`` in the shared
  NNDescent engine).
* **Exact K'-NN retrieval**: after convergence, the objects with the
  largest sum of AKNN distances — the probable outliers, whose seeds are
  also least trustworthy — get *exact* K'-NN lists (``K' >= K``).  MRPG
  later uses these lists to decide outlierness in O(k) without
  verification (§5.5); MRPG-basic uses ``K' = K`` (§6, "Algorithms").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..index.linear import brute_force_knn
from ..index.partition import vp_partition
from ..rng import ensure_rng
from .nndescent import NNDescentResult, nndescent


@dataclass
class NNDescentPlusResult:
    """AKNN lists, pivots, exact K'-NN lists and phase timings."""

    knn: NNDescentResult
    pivots: np.ndarray
    exact_knn: dict[int, tuple[np.ndarray, np.ndarray]]
    seeded_fraction: float
    timings: dict[str, float] = field(default_factory=dict)


def default_n_exact(n: int) -> int:
    """Default number of objects given exact K'-NN lists.

    The paper fixes a constant ``m << n``; we scale mildly with ``n`` so
    scaled-down experiments keep the same *proportional* behaviour
    (outlier ratios in Table 2 are percentages of ``n``).
    """
    return max(8, n // 50)


def nndescent_plus(
    dataset: Dataset,
    K: int,
    K_prime: int | None = None,
    n_exact: int | None = None,
    partition_repeats: int = 2,
    capacity: int | None = None,
    max_iters: int = 12,
    rng: "int | np.random.Generator | None" = None,
    pool=None,
) -> NNDescentPlusResult:
    """Run NNDescent+ and return AKNN lists plus pivots and exact lists.

    ``K_prime`` defaults to ``4K`` (the paper's setting); pass
    ``K_prime=K`` to obtain the MRPG-basic flavour.

    ``pool`` (a :class:`~repro.graphs.parallel_build.BuildPool`) moves
    the descent rounds and the exact-K'-NN scans onto worker processes;
    the VP-tree partition stays in the caller's process (it drives the
    shared generator).  Results are worker-count-invariant.
    """
    n = dataset.n
    if K < 1:
        raise ParameterError(f"K must be >= 1, got {K}")
    if K >= n:
        raise ParameterError(f"K must be < n (K={K}, n={n})")
    gen = ensure_rng(rng)
    if K_prime is None:
        K_prime = 4 * K
    K_prime = min(int(K_prime), n - 1)
    if K_prime < K:
        raise ParameterError(f"K' must be >= K ({K_prime} < {K})")
    if n_exact is None:
        n_exact = default_n_exact(n)
    n_exact = min(int(n_exact), n)

    timings: dict[str, float] = {}

    t0 = time.perf_counter()
    part = vp_partition(
        dataset, K, capacity=capacity, repeats=partition_repeats, rng=gen
    )
    timings["partition"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    knn = nndescent(
        dataset,
        K,
        max_iters=max_iters,
        rng=gen,
        init_ids=part.init_ids,
        init_dists=part.init_dists,
        skip_unchanged=True,
        pool=pool,
    )
    timings["descent"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    exact: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    if n_exact > 0:
        order = np.argsort(-knn.sum_dists, kind="stable")[:n_exact]
        if pool is not None:
            from .parallel_build import exact_knn_pooled

            exact = exact_knn_pooled(pool, order, K_prime)
        else:
            for p in order:
                ids, dists = brute_force_knn(dataset, int(p), K_prime)
                exact[int(p)] = (ids, dists)
    timings["exact_knn"] = time.perf_counter() - t0

    seeded = float(np.count_nonzero(part.covered)) / n
    return NNDescentPlusResult(knn, part.pivots, exact, seeded, timings)
