"""Greedy approximate-NN search on a proximity graph [Malkov et al. 2014].

Used by Connect-SubGraphs (Algorithm 4): given a query object and a
starting vertex, repeatedly hop to the out-neighbor closest to the query
until no neighbor improves, with a hop budget (the paper caps it at 10).
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset
from .adjacency import Graph


def greedy_ann_search(
    dataset: Dataset,
    graph: Graph,
    query: int,
    start: int,
    max_hops: int = 10,
) -> tuple[int, float]:
    """Greedy descent from ``start`` towards object ``query``.

    Returns ``(vertex, distance)`` of the best vertex reached.  ``query``
    itself is never returned even if the walk touches it.
    """
    current = int(start)
    best = current
    best_d = dataset.dist(query, current)
    for _ in range(max_hops):
        nbrs = graph.neighbors(current)
        if nbrs.size == 0:
            break
        cand = nbrs[nbrs != query]
        if cand.size == 0:
            break
        d = dataset.dist_many(query, cand)
        j = int(np.argmin(d))
        if d[j] < best_d:
            best = int(cand[j])
            best_d = float(d[j])
            current = best
        else:
            break
    return best, best_d
