"""Connect-SubGraphs (Algorithm 4 of the paper, §5.2).

An AKNN graph with ``K << n`` can fall apart into disjoint sub-graphs,
which would make some neighbors unreachable for ``Greedy-Counting`` and
inflate the false-positive count.  This pass makes the graph (weakly,
and in practice strongly) connected in two phases:

1. **Reverse-AKNN phase** — every directed link gains its reverse,
   turning the graph undirected.  Vertices holding *exact K'-NN* lists
   are exempt as targets: their link list must remain exactly their
   K'-NNs so the O(k) outlier decision of §5.5 stays valid (see
   DESIGN.md on this reading of Algorithm 4, line 2).
2. **BFS + ANN phase** — BFS from a random vertex; whenever vertices
   remain unvisited, a random *pivot* among them is connected to the
   visited side by running greedy ANN searches (§5.2) from a few random
   visited pivots and linking the best vertex found.  Pivots sit in
   every subspace (ball partitioning), so the patch edges join objects
   that are as close as the graph can cheaply find.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from ..data import Dataset
from ..rng import ensure_rng
from .adjacency import Graph
from .ann import greedy_ann_search


def _bfs_mark(graph: Graph, start: int, visited: np.ndarray) -> int:
    """Mark everything out-reachable from ``start``; returns #newly marked."""
    marked = 0
    if not visited[start]:
        visited[start] = True
        marked += 1
    queue: deque[int] = deque([start])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            w = int(w)
            if not visited[w]:
                visited[w] = True
                marked += 1
                queue.append(w)
    return marked


def connect_subgraphs(
    dataset: Dataset,
    graph: Graph,
    rng: "int | np.random.Generator | None" = None,
    n_probe_pivots: int = 3,
    ann_max_hops: int = 10,
) -> dict:
    """Run both phases in place; returns ``{"patches": ..., "seconds": ...}``."""
    gen = ensure_rng(rng)
    t0 = time.perf_counter()
    n = graph.n

    # Phase 1: undirect, preserving exact-K'NN link lists.
    for u in range(n):
        for v in graph.neighbors_list(u):
            if not graph.has_exact_knn(v):
                graph.add_link(v, u)

    # Phase 2: BFS with ANN patching.
    visited = np.zeros(n, dtype=bool)
    pivot_ids = np.flatnonzero(graph.pivots)
    patches = 0
    _bfs_mark(graph, int(gen.integers(n)), visited)
    while not visited.all():
        unvisited = np.flatnonzero(~visited)
        unv_pivots = unvisited[graph.pivots[unvisited]]
        v_piv = int(gen.choice(unv_pivots if unv_pivots.size else unvisited))

        vis_pivots = pivot_ids[visited[pivot_ids]]
        source_pool = vis_pivots if vis_pivots.size else np.flatnonzero(visited)
        n_probe = min(n_probe_pivots, source_pool.size)
        probes = gen.choice(source_pool, size=n_probe, replace=False)

        best, best_d = -1, np.inf
        for v in probes:
            cand, d = greedy_ann_search(
                dataset, graph, query=v_piv, start=int(v), max_hops=ann_max_hops
            )
            if d < best_d:
                best, best_d = cand, d
        graph.add_edge(v_piv, best)
        patches += 1
        # Resume BFS from the just-connected vertex; already-visited
        # vertices are skipped, so each patch monotonically grows the
        # visited set and the loop terminates.
        _bfs_mark(graph, v_piv, visited)

    return {"patches": patches, "seconds": time.perf_counter() - t0}
