"""Process-parallel, worker-count-invariant graph construction.

The paper parallelises MRPG construction with OpenMP threads (Figure 10:
near-linear speedup in build threads).  CPython threads cannot run the
Python half of NN-Descent concurrently, so this module moves the build
off the GIL the same way the sharded engine moved queries off it: a pool
of long-lived worker *processes* over a zero-copy view of the dataset
(`fork` shares pages copy-on-write; ``spawn`` rides a
:class:`~repro.core.parallel.DatasetTransport`).

The construction stages map onto the pool as follows:

* **NN-Descent rounds** become *Jacobi* rounds: workers read a frozen
  round-start snapshot of the AKNN lists, locally join their partitions,
  and return candidate patches ``(p, better_ids, better_dists)``; the
  parent merges every patch with the same stable-argsort discipline the
  sequential loop uses.  (The sequential loop is *Gauss-Seidel* — it
  updates lists mid-round — so the two algorithms converge along
  slightly different paths; both produce valid AKNN graphs, and the DOD
  algorithm is exact over any graph.)
* **Exact K'-NN retrieval**, **Remove-Detours scans** and
  **Remove-Links scans** are embarrassingly parallel per-object maps:
  workers compute against a broadcast CSR snapshot and the parent
  applies the results in deterministic order.
* **Connect-SubGraphs** (BFS + incremental patching) stays in the
  parent: it is inherently sequential and cheap.

**Worker-count invariance** is the design rule that makes "the parallel
build is correct" a cheap equality assert instead of a statistical
argument: work is split into a *fixed* number of logical partitions
(:data:`BUILD_PARTITIONS`, independent of the worker count), every
random decision inside a partition draws from a stream seeded by
``(seed_root, stage, round, partition)``, objects within a partition
are processed in ascending id order, and the parent applies all patches
in partition/target order.  The result is a pure function of the seed —
bit-identical at 1, 2 or 8 workers, fork or spawn.  ``build_workers=1``
runs the identical algorithm in-process and is the serial reference the
``build-equivalence`` CI gate compares against.

``build_workers=None`` (the default everywhere) keeps the legacy
sequential algorithm byte-for-byte, so every pre-existing seeded
artifact and equivalence gate is untouched.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from functools import partial
from typing import Any, Sequence

import numpy as np

from ..data import Dataset
from ..exceptions import GraphError, ParameterError
from ..index.linear import brute_force_knn
from .adjacency import Graph
from .nndescent import (
    _INIT_PAIR_CHUNK,
    NNDescentResult,
    _reverse_lists,
    _sort_rows,
)

#: fixed number of logical work partitions.  Independent of the worker
#: count by design — this is the invariance anchor: partition ``j``'s
#: RNG stream and object order never change, only *where* it executes.
BUILD_PARTITIONS = 16

# RNG stream tags: one namespace per randomized stage.
_TAG_INIT = 1
_TAG_FILL = 2
_TAG_REVERSE = 3
_TAG_JOIN = 4


def _stream(seed_root: int, *tags: int) -> np.random.Generator:
    """Deterministic stream for ``(seed_root, *tags)``.

    ``np.random.SeedSequence`` mixes the entropy words, so streams for
    different (stage, round, partition) coordinates are independent.
    """
    return np.random.default_rng(
        np.random.SeedSequence([int(seed_root)] + [int(t) for t in tags])
    )


def build_partitions(n: int) -> list[np.ndarray]:
    """Contiguous id partitions — the same at every worker count."""
    return [
        part
        for part in np.array_split(
            np.arange(n, dtype=np.int64), min(n, BUILD_PARTITIONS)
        )
        if part.size
    ]


def _snapshot_graph(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    pivots: np.ndarray,
    exact_ids: np.ndarray,
) -> Graph:
    """A read-only :class:`Graph` over a broadcast CSR snapshot.

    Only the surface the scan kernels touch is populated: ``neighbors``
    (CSR), ``pivots`` and ``has_exact_knn`` membership.  The adjacency
    lists stay empty — mutating a snapshot graph is a bug.
    """
    g = Graph(n)
    g._csr = (indptr, indices)
    g.pivots = pivots
    empty = np.empty(0, dtype=np.int64)
    g.exact_knn = {int(v): (empty, empty) for v in exact_ids}
    return g


class BuildWorker:
    """Stateless-per-call build executor hosted by a :class:`BuildPool`.

    Every method takes a list of *tasks* plus stage-wide arguments and
    returns one result per task, in task order.  Results are pure
    functions of their inputs (plus the dataset and the last broadcast
    graph snapshot) — never of which worker ran them.
    """

    def __init__(self, payload: Any):
        from ..core.parallel import DatasetTransport

        if isinstance(payload, DatasetTransport):
            self.dataset = payload.materialize()
        else:
            self.dataset = payload.view()
        self._graph: Graph | None = None
        self._pairs_taken = 0

    # -- NN-Descent stages -------------------------------------------------

    def init_rows(
        self, tasks: list, K: int, seed_root: int
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Random-init AKNN rows for each ``(part_idx, ids)`` task."""
        n = self.dataset.n
        out = []
        for part_idx, ids in tasks:
            gen = _stream(seed_root, _TAG_INIT, part_idx)
            rows = np.empty((ids.size, K), dtype=np.int64)
            for j, p in enumerate(ids):
                picks = gen.choice(n - 1, size=K, replace=False)
                picks[picks >= p] += 1
                rows[j] = picks
            dists = np.empty((ids.size, K), dtype=np.float64)
            span = max(1, _INIT_PAIR_CHUNK // K)
            for lo in range(0, ids.size, span):
                hi = min(lo + span, ids.size)
                left = np.repeat(ids[lo:hi], K)
                dists[lo:hi] = self.dataset.pair_dist(
                    left, rows[lo:hi].ravel(), consistent=True
                ).reshape(hi - lo, K)
            out.append((rows, dists))
        return out

    def fill_rows(self, tasks: list, seed_root: int) -> list:
        """Top up −1 padding slots for ``(part_idx, ids, rows, dists)``."""
        n = self.dataset.n
        out = []
        for part_idx, ids, rows, dists in tasks:
            gen = _stream(seed_root, _TAG_FILL, part_idx)
            rows = np.array(rows, dtype=np.int64, copy=True)
            dists = np.array(dists, dtype=np.float64, copy=True)
            for j, p in enumerate(ids):
                row = rows[j]
                missing = np.flatnonzero(row < 0)
                if missing.size == 0:
                    continue
                present = set(int(v) for v in row[row >= 0])
                present.add(int(p))
                fresh: list[int] = []
                while len(fresh) < missing.size:
                    cand = int(gen.integers(n))
                    if cand not in present:
                        present.add(cand)
                        fresh.append(cand)
                picks = np.asarray(fresh, dtype=np.int64)
                rows[j, missing] = picks
                dists[j, missing] = self.dataset.dist_many(int(p), picks)
            out.append((rows, dists))
        return out

    def join_round(
        self,
        tasks: list,
        knn_ids: np.ndarray,
        knn_dists: np.ndarray,
        changed_prev: np.ndarray,
        round_no: int,
        seed_root: int,
        reverse_cap: int,
        max_candidates: int,
        skip_unchanged: bool,
    ) -> list:
        """One Jacobi local-join round over the assigned partitions.

        Reads only the round-start snapshot; returns per-partition
        candidate patches ``(ps, counts, flat_ids, flat_dists)`` for the
        parent to merge.  The reverse-AKNN lists are recomputed here from
        the snapshot with a round-level stream shared by every worker,
        so all partitions see identical hub down-sampling.
        """
        rev_owners, rev_starts, rev_ends = _reverse_lists(
            knn_ids, reverse_cap, _stream(seed_root, _TAG_REVERSE, round_no)
        )
        out = []
        for part_idx, ids in tasks:
            gen = _stream(seed_root, _TAG_JOIN, round_no, part_idx)
            ps: list[int] = []
            counts: list[int] = []
            flat_ids: list[np.ndarray] = []
            flat_dists: list[np.ndarray] = []
            for p in ids:
                p = int(p)
                similar = np.concatenate(
                    (knn_ids[p], rev_owners[rev_starts[p] : rev_ends[p]])
                )
                if skip_unchanged:
                    similar = similar[changed_prev[similar]]
                if similar.size == 0:
                    continue
                similar = np.unique(similar)
                cand_pool = [knn_ids[similar].ravel()]
                for s in similar:
                    cand_pool.append(rev_owners[rev_starts[s] : rev_ends[s]])
                cands = np.unique(np.concatenate(cand_pool))
                cands = cands[cands != p]
                known = np.isin(cands, knn_ids[p], assume_unique=True)
                cands = cands[~known]
                if cands.size == 0:
                    continue
                if cands.size > max_candidates:
                    cands = gen.choice(cands, size=max_candidates, replace=False)
                worst = knn_dists[p, -1]
                d = self.dataset.dist_many(p, cands, bound=worst)
                better = d < worst
                if not np.any(better):
                    continue
                ps.append(p)
                counts.append(int(np.count_nonzero(better)))
                flat_ids.append(cands[better])
                flat_dists.append(d[better])
            out.append(
                (
                    np.asarray(ps, dtype=np.int64),
                    np.asarray(counts, dtype=np.int64),
                    np.concatenate(flat_ids) if flat_ids else np.empty(0, np.int64),
                    np.concatenate(flat_dists)
                    if flat_dists
                    else np.empty(0, np.float64),
                )
            )
        return out

    def exact_rows(self, tasks: list, K_prime: int) -> list:
        """Exact K'-NN lists (full scans) for each target id."""
        return [brute_force_knn(self.dataset, int(p), K_prime) for p in tasks]

    # -- graph-snapshot stages ---------------------------------------------

    def load_graph(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        pivots: np.ndarray,
        exact_ids: np.ndarray,
    ) -> bool:
        """Install the CSR snapshot the scan stages read."""
        self._graph = _snapshot_graph(
            self.dataset.n, indptr, indices, pivots, exact_ids
        )
        return True

    def detour_scan(
        self,
        tasks: list,
        source_hops: int,
        pivot_hops: int,
        pivots_per_target: int,
        cap: int,
    ) -> list:
        """Remove-Detours scans for each target against the snapshot.

        Returns ``(chain, n_scans)`` per target, where ``chain`` is the
        capped ascending-distance list of non-monotonic vertices — the
        parent applies the actual link insertions in target order.
        """
        from .detours import scan_monotonicity

        if self._graph is None:
            raise GraphError("detour_scan before load_graph")
        graph = self._graph
        out = []
        for p in tasks:
            p = int(p)
            n_scans = 1
            scan = scan_monotonicity(
                self.dataset, graph, reference=p, start=p, max_hops=source_hops
            )
            found: dict[int, float] = {}
            for t in np.flatnonzero(~scan.monotonic):
                v = int(scan.nodes[t])
                d = float(scan.dists[t])
                if d < found.get(v, np.inf):
                    found[v] = d
            piv_mask = graph.pivots[scan.nodes] & (scan.hops >= 2)
            piv_candidates = [
                (float(scan.dists[t]), int(scan.nodes[t]))
                for t in np.flatnonzero(piv_mask)
                if not graph.has_exact_knn(int(scan.nodes[t]))
            ]
            piv_candidates.sort()
            for _, pv in piv_candidates[:pivots_per_target]:
                n_scans += 1
                sub = scan_monotonicity(
                    self.dataset, graph, reference=p, start=pv, max_hops=pivot_hops
                )
                for t in np.flatnonzero(~sub.monotonic):
                    v = int(sub.nodes[t])
                    d = float(sub.dists[t])
                    if d < found.get(v, np.inf):
                        found[v] = d
            direct = set(int(w) for w in graph.neighbors(p))
            chain = sorted(
                (d, v) for v, d in found.items() if v not in direct and v != p
            )[:cap]
            out.append((chain, n_scans))
        return out

    def prune_scan(self, tasks: list) -> list:
        """Remove-Links candidates for each ``(part_idx, ids)`` partition.

        Mirrors the sequential pass against the snapshot, but only
        *proposes* ``(p, [q...])`` removals — the parent re-checks the
        live degree/link guards while applying them in order.
        """
        if self._graph is None:
            raise GraphError("prune_scan before load_graph")
        graph = self._graph
        out = []
        for part_idx, ids in tasks:
            entries = []
            for p in ids:
                p = int(p)
                if graph.is_pivot(p) or graph.has_exact_knn(p):
                    continue
                nbrs = graph.neighbors(p)
                pivot_nbrs = [int(v) for v in nbrs if graph.is_pivot(v)]
                if not pivot_nbrs:
                    continue
                p_nbrs = set(int(v) for v in nbrs)
                victims: set[int] = set()
                for piv in pivot_nbrs:
                    common = p_nbrs.intersection(
                        int(v) for v in graph.neighbors(piv)
                    )
                    for q in common:
                        if graph.is_pivot(q) or graph.has_exact_knn(q):
                            continue
                        victims.add(q)
                if victims:
                    entries.append((p, sorted(victims)))
            out.append(entries)
        return out

    # -- accounting --------------------------------------------------------

    def take_pairs(self) -> int:
        """Distance pairs evaluated since the last take (delta)."""
        total = self.dataset.counter.pairs
        delta = total - self._pairs_taken
        self._pairs_taken = total
        return int(delta)


def _make_build_worker(payload: Any) -> BuildWorker:
    """Module-level factory so ``spawn`` pools can pickle it."""
    return BuildWorker(payload)


class BuildPool:
    """A persistent pool of :class:`BuildWorker` processes.

    One pool is created per graph build and reused across every stage —
    NN-Descent init/fill, all join rounds, exact-K'NN retrieval, detour
    scans and prune scans — so the fork/spawn cost is paid once.

    ``workers <= 1`` (and any *daemonic* caller — per-shard builds run
    inside the sharded engines' daemon workers, which may not spawn
    children) executes the identical partitioned algorithm in-process;
    worker-count invariance makes that the bit-identical serial
    reference rather than a semantic fork.
    """

    def __init__(
        self,
        dataset: Dataset,
        workers: int = 1,
        start_method: "str | None" = None,
    ):
        from ..core.parallel import (
            DatasetTransport,
            ShardPool,
            default_start_method,
        )

        if int(workers) < 1:
            raise ParameterError(
                f"build_workers must be >= 1 (or None for the legacy "
                f"sequential build), got {workers}"
            )
        self.requested_workers = int(workers)
        workers = self.requested_workers
        if mp.current_process().daemon:
            workers = 1  # daemonic workers cannot have children
        self.workers = workers
        self.start_method = (
            (start_method or default_start_method()) if workers > 1 else None
        )
        self._transport: "DatasetTransport | None" = None
        self._pool: "ShardPool | None" = None
        self._local: BuildWorker | None = None
        if workers == 1:
            self._local = BuildWorker(dataset)
            return
        payload: Any = dataset
        if self.start_method != "fork":
            self._transport = DatasetTransport(dataset)
            payload = self._transport
        factory = partial(_make_build_worker, payload)
        try:
            self._pool = ShardPool(
                [factory] * workers,
                workers=workers,
                start_method=self.start_method,
            )
        except BaseException:
            self.release()
            raise

    def run(self, method: str, tasks: Sequence, common: tuple = ()) -> list:
        """Run ``method`` over ``tasks``; results come back in task order.

        Tasks are dealt round-robin over the workers; because every
        result is a pure function of its task, the assignment affects
        only wall-clock, never the merged outcome.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self._local is not None:
            return getattr(self._local, method)(tasks, *common)
        assert self._pool is not None
        buckets = [tasks[w :: self.workers] for w in range(self.workers)]
        shard_args = [(bucket, *common) for bucket in buckets]
        per_worker = self._call("call", method, shard_args)
        out: list = [None] * len(tasks)
        for w, results in enumerate(per_worker):
            for slot, res in zip(range(w, len(tasks), self.workers), results):
                out[slot] = res
        return out

    def broadcast(self, method: str, common: tuple = ()) -> list:
        """Run ``method(*common)`` on every worker (state installation)."""
        if self._local is not None:
            return [getattr(self._local, method)(*common)]
        return self._call("call", method, None, common)

    def _call(self, kind: str, method: str, shard_args, common: tuple = ()) -> list:
        assert self._pool is not None
        try:
            return self._pool.call(method, shard_args=shard_args, common=common)
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise GraphError(
                f"graph build worker died mid-{method}; the partial build "
                "is discarded (re-run the build — same seed, same result)"
            ) from exc

    def take_pairs(self) -> int:
        """Distance pairs evaluated by the workers since the last take."""
        return int(sum(self.broadcast("take_pairs")))

    def release(self) -> None:
        """Tear the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._transport is not None:
            self._transport.release()
            self._transport = None
        self._local = None

    def __enter__(self) -> "BuildPool":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def resolve_build_pool(
    dataset: Dataset,
    build_workers: "int | None",
    start_method: "str | None" = None,
) -> "BuildPool | None":
    """``None`` for the legacy sequential path, else a ready pool."""
    if build_workers is None:
        return None
    return BuildPool(dataset, build_workers, start_method)


# -- pooled NN-Descent --------------------------------------------------------


def nndescent_pooled(
    dataset: Dataset,
    K: int,
    pool: BuildPool,
    gen: np.random.Generator,
    max_iters: int,
    init_ids: "np.ndarray | None",
    init_dists: "np.ndarray | None",
    skip_unchanged: bool,
    reverse_cap: int,
    max_candidates: int,
) -> NNDescentResult:
    """Partitioned Jacobi NN-Descent over a :class:`BuildPool`.

    Called by :func:`repro.graphs.nndescent.nndescent` when a pool is
    supplied; the parameter validation happened there.  One seed root is
    drawn from ``gen`` (the only way the caller's generator advances),
    and every random decision derives from per-(stage, round, partition)
    streams — the result is invariant in the worker count.
    """
    n = dataset.n
    seed_root = int(gen.integers(2**31 - 1))
    parts = build_partitions(n)
    part_tasks = [(i, part) for i, part in enumerate(parts)]
    timings: dict[str, Any] = {}

    t0 = time.perf_counter()
    knn_ids = np.empty((n, K), dtype=np.int64)
    knn_dists = np.empty((n, K), dtype=np.float64)
    if init_ids is None:
        for (_, part), (rows, dists) in zip(
            part_tasks, pool.run("init_rows", part_tasks, common=(K, seed_root))
        ):
            knn_ids[part] = rows
            knn_dists[part] = dists
    else:
        seed_rows = np.array(init_ids, dtype=np.int64, copy=True)
        seed_dists = np.array(init_dists, dtype=np.float64, copy=True)
        fill_tasks = [
            (i, part, seed_rows[part], seed_dists[part])
            for i, part in enumerate(parts)
        ]
        for (_, part), (rows, dists) in zip(
            part_tasks, pool.run("fill_rows", fill_tasks, common=(seed_root,))
        ):
            knn_ids[part] = rows
            knn_dists[part] = dists
    _sort_rows(knn_ids, knn_dists)
    timings["init_seconds"] = time.perf_counter() - t0

    changed_prev = np.ones(n, dtype=bool)
    updates_per_iter: list[int] = []
    round_seconds: list[float] = []
    iterations = 0
    for round_no in range(max_iters):
        iterations += 1
        t0 = time.perf_counter()
        patches = pool.run(
            "join_round",
            part_tasks,
            common=(
                knn_ids,
                knn_dists,
                changed_prev,
                round_no,
                seed_root,
                reverse_cap,
                max_candidates,
                skip_unchanged,
            ),
        )
        changed_now = np.zeros(n, dtype=bool)
        total_updates = 0
        for ps, counts, flat_ids, flat_d in patches:
            offset = 0
            for p, count in zip(ps, counts):
                p = int(p)
                cand_ids = flat_ids[offset : offset + count]
                cand_d = flat_d[offset : offset + count]
                offset += count
                merged_ids = np.concatenate((knn_ids[p], cand_ids))
                merged_d = np.concatenate((knn_dists[p], cand_d))
                order = np.argsort(merged_d, kind="stable")[:K]
                new_ids = merged_ids[order]
                n_new = K - int(
                    np.isin(new_ids, knn_ids[p], assume_unique=False).sum()
                )
                knn_ids[p] = new_ids
                knn_dists[p] = merged_d[order]
                if n_new > 0:
                    changed_now[p] = True
                    total_updates += n_new
        round_seconds.append(time.perf_counter() - t0)
        updates_per_iter.append(total_updates)
        changed_prev = changed_now
        if total_updates == 0:
            break
    result = NNDescentResult(knn_ids, knn_dists, iterations, updates_per_iter)
    result.stage_seconds = dict(timings, round_seconds=round_seconds)
    return result


def exact_knn_pooled(
    pool: BuildPool, order: np.ndarray, K_prime: int
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Exact K'-NN lists for ``order`` (insertion order preserved)."""
    results = pool.run("exact_rows", [int(p) for p in order], common=(K_prime,))
    return {int(p): (ids, dists) for p, (ids, dists) in zip(order, results)}


# -- pooled MRPG refinement stages --------------------------------------------


def _broadcast_graph(pool: BuildPool, graph: Graph) -> None:
    indptr, indices = graph.csr()
    exact_ids = np.asarray(sorted(graph.exact_knn), dtype=np.int64)
    pool.broadcast("load_graph", (indptr, indices, graph.pivots, exact_ids))


def remove_detours_batched(
    dataset: Dataset,
    graph: Graph,
    pool: BuildPool,
    gen: np.random.Generator,
    n_targets: "int | None" = None,
    pivots_per_target: "int | None" = None,
    cap: "int | None" = None,
    source_hops: int = 3,
    pivot_hops: int = 2,
) -> dict:
    """Batched Remove-Detours: snapshot scans, ordered application.

    All targets are scanned against one round-start snapshot (the
    sequential pass lets earlier targets' new links feed later scans;
    the batched pass trades that coupling for parallelism — both are
    approximations of the same monotonic-path repair, and the DOD
    algorithm is exact over either graph).  Chains are applied in target
    order with the live-graph guards, so the result only depends on the
    seed.
    """
    from .detours import _sample_targets

    t0 = time.perf_counter()
    K = int(graph.meta.get("K", 16))
    if n_targets is None:
        n_targets = max(1, graph.n // max(K, 1))
    if pivots_per_target is None:
        pivots_per_target = K
    if cap is None:
        cap = K * K

    targets = _sample_targets(graph, n_targets, gen)
    _broadcast_graph(pool, graph)
    results = pool.run(
        "detour_scan",
        [int(t) for t in targets],
        common=(source_hops, pivot_hops, pivots_per_target, cap),
    )
    links_added = 0
    scans = 0
    for p, (chain, n_scans) in zip(targets, results):
        p = int(p)
        scans += int(n_scans)
        prev = p
        for _, v in chain:
            if not graph.has_exact_knn(v) and not graph.has_exact_knn(prev):
                if graph.add_link(prev, v):
                    links_added += 1
                if graph.add_link(v, prev):
                    links_added += 1
            prev = v
    return {
        "targets": int(targets.size),
        "links_added": links_added,
        "scans": scans,
        "seconds": time.perf_counter() - t0,
    }


def remove_links_batched(graph: Graph, pool: BuildPool) -> dict:
    """Batched Remove-Links: snapshot proposals, guarded application."""
    t0 = time.perf_counter()
    min_degree = 2
    _broadcast_graph(pool, graph)
    part_tasks = [(i, part) for i, part in enumerate(build_partitions(graph.n))]
    removed = 0
    for entries in pool.run("prune_scan", part_tasks):
        for p, victims in entries:
            for q in victims:
                if graph.degree(p) <= min_degree or graph.degree(q) <= min_degree:
                    continue
                if not graph.has_link(p, q) and not graph.has_link(q, p):
                    continue
                graph.remove_edge(p, q)
                removed += 1
    return {"removed": removed, "seconds": time.perf_counter() - t0}


# -- equality ----------------------------------------------------------------


def graphs_equal(a: Graph, b: Graph) -> bool:
    """Bit-identity of two graphs: CSR adjacency, pivots, exact K'-NN.

    The check the invariance tests and the ``build-equivalence`` CI gate
    assert — not isomorphism, literal array equality.
    """
    if a.n != b.n:
        return False
    a_indptr, a_indices = a.csr()
    b_indptr, b_indices = b.csr()
    if not np.array_equal(a_indptr, b_indptr):
        return False
    if not np.array_equal(a_indices, b_indices):
        return False
    if not np.array_equal(a.pivots, b.pivots):
        return False
    if sorted(a.exact_knn) != sorted(b.exact_knn):
        return False
    for v, (ids, dists) in a.exact_knn.items():
        other_ids, other_dists = b.exact_knn[v]
        if not np.array_equal(ids, other_ids):
            return False
        if not np.array_equal(dists, other_dists):
            return False
    return True
