"""KGraph — the plain AKNN graph competitor (§3, §6).

Each object links to its NNDescent-approximated K nearest neighbors.
The graph is directed (out-links only), carries no pivots and no exact
lists — exactly the structure Algorithm 1 uses "without lines 13-14 of
Algorithm 2" in the paper's evaluation.
"""

from __future__ import annotations

import time

import numpy as np

from ..data import Dataset
from .adjacency import Graph
from .nndescent import nndescent


def build_kgraph(
    dataset: Dataset,
    K: int = 16,
    max_iters: int = 12,
    rng: "int | np.random.Generator | None" = None,
) -> Graph:
    """Build a KGraph with plain NNDescent (random init, no skipping)."""
    t0 = time.perf_counter()
    result = nndescent(dataset, K, max_iters=max_iters, rng=rng)
    g = Graph(dataset.n)
    for p in range(dataset.n):
        g.set_links(p, result.knn_ids[p])
    g.finalize()
    g.meta["builder"] = "kgraph"
    g.meta["K"] = K
    g.meta["iterations"] = result.iterations
    g.meta["phase_seconds"] = {"nndescent": time.perf_counter() - t0}
    g.meta["build_seconds"] = time.perf_counter() - t0
    return g
