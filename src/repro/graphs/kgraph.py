"""KGraph — the plain AKNN graph competitor (§3, §6).

Each object links to its NNDescent-approximated K nearest neighbors.
The graph is directed (out-links only), carries no pivots and no exact
lists — exactly the structure Algorithm 1 uses "without lines 13-14 of
Algorithm 2" in the paper's evaluation.
"""

from __future__ import annotations

import time

import numpy as np

from ..data import Dataset
from .adjacency import Graph
from .nndescent import nndescent
from .parallel_build import resolve_build_pool


def build_kgraph(
    dataset: Dataset,
    K: int = 16,
    max_iters: int = 12,
    rng: "int | np.random.Generator | None" = None,
    build_workers: int | None = None,
    build_start_method: str | None = None,
) -> Graph:
    """Build a KGraph with plain NNDescent (random init, no skipping).

    ``build_workers`` selects the worker-count-invariant partitioned
    NN-Descent of :mod:`repro.graphs.parallel_build`; ``None`` (default)
    keeps the legacy sequential loop byte-for-byte.
    """
    t0 = time.perf_counter()
    pool = resolve_build_pool(dataset, build_workers, build_start_method)
    try:
        result = nndescent(dataset, K, max_iters=max_iters, rng=rng, pool=pool)
        g = Graph(dataset.n)
        for p in range(dataset.n):
            g.set_links(p, result.knn_ids[p])
        g.finalize()
        g.meta["builder"] = "kgraph"
        g.meta["K"] = K
        g.meta["iterations"] = result.iterations
        g.meta["updates_per_round"] = list(result.updates_per_iter)
        g.meta["phase_seconds"] = {"nndescent": time.perf_counter() - t0}
        g.meta["build_seconds"] = time.perf_counter() - t0
        if pool is not None:
            pairs = pool.take_pairs()
            dataset.counter.pairs += pairs
            g.meta["build_workers"] = pool.workers
            g.meta["build_stats"] = dict(
                result.stage_seconds,
                workers=pool.workers,
                requested_workers=pool.requested_workers,
                start_method=pool.start_method,
                build_pairs=pairs,
            )
    finally:
        if pool is not None:
            pool.release()
    return g
