"""Nested-loop DOD [Knorr & Ng, VLDB'98; Bay & Schwabacher, KDD'03].

The classic O(n^2) baseline: for each object, scan the dataset counting
neighbors and stop as soon as ``k`` are found.  Following ORCA (Bay &
Schwabacher), objects are scanned in a *randomised* order, which makes
early termination kick in after ~k/π(p) comparisons for an inlier with
neighbor density π(p) — fast for dense inliers, full-scan for outliers.

The scan is chunked so each step is one vectorised distance kernel.
"""

from __future__ import annotations

import time

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..core.parallel import map_over_objects
from ..core.result import DODResult
from ..rng import ensure_rng

DEFAULT_CHUNK = 2048


def nested_loop_dod(
    dataset: Dataset,
    r: float,
    k: int,
    chunk: int = DEFAULT_CHUNK,
    rng: "int | np.random.Generator | None" = 0,
    n_jobs: int = 1,
) -> DODResult:
    """Exact DOD by randomised block nested loop."""
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if chunk < 1:
        raise ParameterError(f"chunk must be >= 1, got {chunk}")
    gen = ensure_rng(rng)
    n = dataset.n
    order = gen.permutation(n).astype(np.int64)
    t0 = time.perf_counter()

    def worker(view: Dataset, ids: np.ndarray) -> list[int]:
        found: list[int] = []
        for p in ids:
            p = int(p)
            count = 0
            for lo in range(0, n, chunk):
                block = order[lo : lo + chunk]
                d = view.dist_many(p, block, bound=r)
                within = int(np.count_nonzero(d <= r))
                if np.any(block == p):
                    within -= 1  # an object is not its own neighbor
                count += within
                if count >= k:
                    break
            if count < k:
                found.append(p)
        return found

    results, pairs = map_over_objects(
        dataset, np.arange(n, dtype=np.int64), worker, n_jobs=n_jobs, rng=gen
    )
    outliers = np.asarray(sorted(p for part in results for p in part), dtype=np.int64)
    seconds = time.perf_counter() - t0
    return DODResult(
        outliers=outliers,
        r=r,
        k=k,
        n=n,
        method="nested-loop",
        seconds=seconds,
        pairs=pairs,
        phases={"scan": seconds},
        phase_pairs={"scan": pairs},
    )
