"""State-of-the-art DOD baselines the paper compares against (§3, §6)."""

from .dolphin import dolphin_dod
from .nested_loop import nested_loop_dod
from .snif import snif_dod
from .vptree_dod import vptree_dod

__all__ = ["nested_loop_dod", "snif_dod", "dolphin_dod", "vptree_dod"]
