"""VP-tree DOD — the strongest metric range-search baseline (§3).

Builds a VP-tree offline (like the paper, which reports its build under
pre-processing: "building a VP-tree took less than 310 seconds"), then
answers one early-terminating range count per object.
"""

from __future__ import annotations

import time

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..core.parallel import map_over_objects
from ..core.result import DODResult
from ..index.vptree import VPTree
from ..rng import ensure_rng


def vptree_dod(
    dataset: Dataset,
    r: float,
    k: int,
    tree: VPTree | None = None,
    capacity: int = 16,
    rng: "int | np.random.Generator | None" = 0,
    n_jobs: int = 1,
) -> DODResult:
    """Exact DOD by per-object VP-tree range counting.

    Pass a prebuilt ``tree`` to exclude index construction from the
    online time (the paper's offline/online split).
    """
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    gen = ensure_rng(rng)
    build_seconds = 0.0
    if tree is None:
        t0 = time.perf_counter()
        tree = VPTree(dataset, capacity=capacity, rng=gen)
        build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()

    def worker(view: Dataset, ids: np.ndarray) -> list[int]:
        return [
            int(p)
            for p in ids
            if tree.count_within(int(p), r, stop_at=k, dataset=view) < k
        ]

    results, pairs = map_over_objects(
        dataset, np.arange(dataset.n, dtype=np.int64), worker, n_jobs=n_jobs, rng=gen
    )
    outliers = np.asarray(sorted(p for part in results for p in part), dtype=np.int64)
    seconds = time.perf_counter() - t0
    phases = {"count": seconds}
    if build_seconds:
        phases["build"] = build_seconds
    return DODResult(
        outliers=outliers,
        r=r,
        k=k,
        n=dataset.n,
        method="vptree",
        seconds=seconds,
        pairs=pairs,
        phases=phases,
        phase_pairs={"count": pairs},
    )
