"""SNIF [Tao, Xiao & Zhou, KDD'06] — in-memory adaptation.

SNIF clusters the dataset with randomly-chosen centers of radius ``r/2``.
Triangle inequality gives two prunes the paper's §3 recounts:

* any two members of one cluster are within ``r`` of each other, so a
  cluster with more than ``k`` objects is a certificate that all its
  members are inliers;
* a member of cluster ``c_p`` can only have neighbors in clusters whose
  center lies within ``1.5 r`` of it (``dist(p, q) >= dist(p, c_q) - r/2``),
  so small-cluster members are verified against nearby clusters only.

The original is an I/O-conscious external algorithm (it prioritises
which pages to keep in memory); with a memory-resident dataset those
concerns vanish and what remains — implemented here — is its pruning
logic.  This simplification is documented in DESIGN.md.
"""

from __future__ import annotations

import time

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..core.parallel import map_over_objects
from ..core.result import DODResult
from ..rng import ensure_rng


def snif_dod(
    dataset: Dataset,
    r: float,
    k: int,
    rng: "int | np.random.Generator | None" = 0,
    n_jobs: int = 1,
) -> DODResult:
    """Exact DOD with SNIF's r/2-cluster pruning."""
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    gen = ensure_rng(rng)
    n = dataset.n
    pairs_at_entry = dataset.counter.pairs
    t0 = time.perf_counter()

    # -- clustering pass: first center within r/2 wins, else new center.
    half_r = r / 2.0
    centers: list[int] = []
    member_of = np.full(n, -1, dtype=np.int64)
    for p in gen.permutation(n):
        p = int(p)
        if centers:
            d = dataset.dist_many(p, np.asarray(centers, dtype=np.int64), bound=half_r)
            hit = np.flatnonzero(d <= half_r)
            if hit.size:
                member_of[p] = int(hit[0])
                continue
        member_of[p] = len(centers)
        centers.append(p)
    centers_arr = np.asarray(centers, dtype=np.int64)
    n_clusters = centers_arr.size
    members: list[np.ndarray] = [
        np.flatnonzero(member_of == c).astype(np.int64) for c in range(n_clusters)
    ]
    sizes = np.asarray([m.size for m in members], dtype=np.int64)
    cluster_seconds = time.perf_counter() - t0

    # -- big clusters certify their members as inliers.
    t0 = time.perf_counter()
    candidate_ids = np.concatenate(
        [members[c] for c in range(n_clusters) if sizes[c] <= k]
    ) if np.any(sizes <= k) else np.empty(0, dtype=np.int64)

    def worker(view: Dataset, ids: np.ndarray) -> list[int]:
        found: list[int] = []
        for p in ids:
            p = int(p)
            own = int(member_of[p])
            # Own-cluster members are all within r (triangle inequality).
            count = int(sizes[own]) - 1
            if count >= k:
                continue
            d_centers = view.dist_many(p, centers_arr)
            near = np.flatnonzero((d_centers <= 1.5 * r))
            # Nearest clusters first: maximises early termination.
            near = near[np.argsort(d_centers[near], kind="stable")]
            for c in near:
                c = int(c)
                if c == own:
                    continue
                d = view.dist_many(p, members[c], bound=r)
                count += int(np.count_nonzero(d <= r))
                if count >= k:
                    break
            if count < k:
                found.append(p)
        return found

    results, verify_pairs = map_over_objects(
        dataset, candidate_ids, worker, n_jobs=n_jobs, rng=gen
    )
    outliers = np.asarray(sorted(p for part in results for p in part), dtype=np.int64)
    verify_seconds = time.perf_counter() - t0
    cluster_pairs = dataset.counter.pairs - pairs_at_entry  # main-counter delta
    return DODResult(
        outliers=outliers,
        r=r,
        k=k,
        n=n,
        method="snif",
        seconds=cluster_seconds + verify_seconds,
        pairs=cluster_pairs + verify_pairs,
        phases={"cluster": cluster_seconds, "verify": verify_seconds},
        phase_pairs={"cluster": cluster_pairs, "verify": verify_pairs},
        counts={"clusters": int(n_clusters), "candidates": int(candidate_ids.size)},
    )
