"""DOLPHIN [Angiulli & Fassetti, TKDD'09] — in-memory adaptation.

DOLPHIN streams the dataset while maintaining an index of objects not
yet proven to be inliers.  Each arriving object is ranged against the
index; every match within ``r`` raises the neighbor count of *both*
endpoints, and an index member that reaches ``k`` confirmed neighbors is
evicted (proven inlier).  Objects that arrive already having ``k``
confirmed neighbors are never inserted.  A second pass verifies the
surviving index members exactly.

Correctness: counts only ever reflect true neighbors, so no outlier can
be evicted or skipped — the index after scan 1 is a superset of the
outliers, and scan 2 is exact.

The original works off disk pages and samples the index for eviction;
in memory the essence is the shrinking candidate index implemented here
(documented in DESIGN.md).
"""

from __future__ import annotations

import time

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..core.parallel import map_over_objects
from ..core.result import DODResult
from ..index.linear import linear_count
from ..rng import ensure_rng


class _CandidateIndex:
    """Append/evict integer set with a compacted numpy view for ranging."""

    def __init__(self, capacity: int):
        self._buf = np.empty(capacity, dtype=np.int64)
        self._size = 0
        self._dead = np.zeros(capacity, dtype=bool)
        self._n_dead = 0
        self._slot_of: dict[int, int] = {}

    def add(self, p: int) -> None:
        self._buf[self._size] = p
        self._dead[self._size] = False  # slot may hold a stale tombstone
        self._slot_of[p] = self._size
        self._size += 1

    def evict(self, p: int) -> None:
        slot = self._slot_of.pop(p, None)
        if slot is not None:
            self._dead[slot] = True
            self._n_dead += 1

    def view(self) -> np.ndarray:
        """Live members; compacts lazily when >50% of slots are dead."""
        if self._n_dead * 2 > self._size:
            live = self._buf[: self._size][~self._dead[: self._size]]
            self._size = live.size
            self._buf[: self._size] = live
            self._dead[: self._size] = False
            self._n_dead = 0
            self._slot_of = {int(v): t for t, v in enumerate(live)}
        return self._buf[: self._size][~self._dead[: self._size]]

    def members(self) -> np.ndarray:
        return np.sort(self.view().copy())


def dolphin_dod(
    dataset: Dataset,
    r: float,
    k: int,
    rng: "int | np.random.Generator | None" = 0,
    n_jobs: int = 1,
) -> DODResult:
    """Exact DOD with DOLPHIN's shrinking candidate index."""
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    gen = ensure_rng(rng)
    n = dataset.n
    pairs_at_entry = dataset.counter.pairs
    t0 = time.perf_counter()

    counts = np.zeros(n, dtype=np.int64)
    index = _CandidateIndex(n)
    max_index = 0
    for p in gen.permutation(n):
        p = int(p)
        live = index.view()
        max_index = max(max_index, live.size)
        if live.size:
            d = dataset.dist_many(p, live, bound=r)
            hits = live[d <= r]
            if hits.size:
                counts[p] += hits.size
                counts[hits] += 1
                for q in hits:
                    if counts[q] >= k:
                        index.evict(int(q))
        if counts[p] < k:
            index.add(p)
    candidates = index.members()
    scan1_seconds = time.perf_counter() - t0
    scan1_pairs = dataset.counter.pairs - pairs_at_entry

    t0 = time.perf_counter()

    def worker(view: Dataset, ids: np.ndarray) -> list[int]:
        return [
            int(p) for p in ids if linear_count(view, int(p), r, stop_at=k) < k
        ]

    results, scan2_pairs = map_over_objects(
        dataset, candidates, worker, n_jobs=n_jobs, rng=gen
    )
    outliers = np.asarray(sorted(p for part in results for p in part), dtype=np.int64)
    scan2_seconds = time.perf_counter() - t0
    return DODResult(
        outliers=outliers,
        r=r,
        k=k,
        n=n,
        method="dolphin",
        seconds=scan1_seconds + scan2_seconds,
        pairs=scan1_pairs + scan2_pairs,
        phases={"scan1": scan1_seconds, "scan2": scan2_seconds},
        phase_pairs={"scan1": scan1_pairs, "scan2": scan2_pairs},
        counts={"candidates": int(candidates.size), "max_index": int(max_index)},
    )
