"""Top-n distance-based outliers (the ranking variant of DOD).

The paper's Nested-loop baseline [Bay & Schwabacher, KDD'03] was
originally designed for the *top-n* formulation: return the ``n_top``
objects with the largest distance to their k-th nearest neighbor.
This module implements that variant exactly — ORCA's randomized
nested loop with cutoff pruning — and extends it with the paper's core
insight: seeding each object's k-NN candidates from a **proximity
graph** tightens its k-th-NN upper bound immediately, so the cutoff
prune fires before most of the scan happens.

This is the "optional extension" counterpart of Algorithm 1: same
data structures, same graphs, a different query semantics that many
deployments (fraud ranking, data-cleaning triage) prefer over the
(r, k) threshold form.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from ..data import Dataset
from ..exceptions import GraphError, ParameterError
from ..graphs.adjacency import Graph
from ..rng import ensure_rng

DEFAULT_CHUNK = 2048


@dataclass
class TopNResult:
    """Ranked outliers: ids with their exact k-th-NN distances."""

    ids: np.ndarray
    scores: np.ndarray
    n_top: int
    k: int
    seconds: float
    pairs: int
    pruned_objects: int

    def __post_init__(self) -> None:
        order = np.argsort(-self.scores, kind="stable")
        self.ids = self.ids[order]
        self.scores = self.scores[order]


def knn_distance_scores(
    dataset: Dataset, k: int, chunk: int = DEFAULT_CHUNK
) -> np.ndarray:
    """Exact k-th-NN distance of every object (brute force; test oracle)."""
    if k < 1 or k >= dataset.n:
        raise ParameterError(f"need 1 <= k < n, got k={k}, n={dataset.n}")
    scores = np.empty(dataset.n, dtype=np.float64)
    idx = np.arange(dataset.n, dtype=np.int64)
    for p in range(dataset.n):
        d = dataset.dist_many(p, idx)
        d[p] = np.inf
        scores[p] = np.partition(d, k - 1)[k - 1]
    return scores


def _merge_smallest(current: np.ndarray, incoming: np.ndarray, k: int) -> np.ndarray:
    """Keep the k smallest values of ``current ∪ incoming`` (sorted)."""
    merged = np.concatenate((current, incoming))
    if merged.size > k:
        merged = np.partition(merged, k - 1)[:k]
    merged.sort()
    return merged


def _engine_score_evidence(
    engine, k: int, n: int
) -> tuple[dict[int, float], np.ndarray]:
    """Exact scores and score upper bounds provable from engine evidence.

    * An exact-K'NN list of length ``>= k`` (MRPG Property 3) *is* the
      object's score: its k-th entry, no scan needed.  Memoised outlier
      distance vectors qualify the same way.
    * A cached count lower bound ``lb(p, r) >= k`` proves the k-th NN
      sits within ``r`` — an upper bound on the score.  Once the result
      heap is full, any object whose upper bound cannot beat the
      cutoff is pruned before its scan starts.
    """
    exact_scores: dict[int, float] = {}
    owners, sizes, ptr, dists = engine.graph.exact_knn_arrays()
    for t in np.flatnonzero(sizes >= k):
        exact_scores[int(owners[t])] = float(dists[ptr[t] + k - 1])
    for p, vec in engine._memo.items():
        if vec.size >= k:
            exact_scores[int(p)] = float(vec[k - 1])
    score_ub = np.full(n, np.inf)
    for r0 in sorted(engine.cache.radii):
        lb = engine.cache.lower_bounds(r0)
        hit = np.isinf(score_ub) & (lb >= k)
        score_ub[hit] = r0
    return exact_scores, score_ub


def top_n_outliers(
    dataset: Dataset | None,
    n_top: int,
    k: int,
    graph: Graph | None = None,
    chunk: int = DEFAULT_CHUNK,
    rng: "int | np.random.Generator | None" = 0,
    engine=None,
) -> TopNResult:
    """Exact top-``n_top`` outliers by k-th-NN distance.

    ORCA's pruning rule: once the result heap holds ``n_top`` objects,
    any object whose *running* k-th-NN upper bound falls below the
    heap's minimum score can never enter the result — its scan is
    abandoned.  A proximity ``graph`` (any builder from
    :mod:`repro.graphs`) makes the initial upper bound tight at the
    cost of one batch distance evaluation over the object's links.

    Passing a fitted :class:`~repro.engine.DetectionEngine` as
    ``engine`` additionally seeds the ranking from its evidence: stored
    exact-K'NN lists and memoised distance vectors contribute *exact*
    scores with no scan at all, and cached count lower bounds become
    score upper bounds that pre-fire the cutoff prune (see
    :func:`_engine_score_evidence`).  The ranking stays exact either
    way.
    """
    if engine is not None:
        if dataset is None:
            dataset = engine.dataset
        elif dataset is not engine.dataset:
            raise ParameterError(
                "pass either a dataset or an engine, not two different ones"
            )
        if graph is None:
            graph = engine.graph
    if dataset is None:
        raise ParameterError("top_n_outliers needs a dataset or an engine")
    n = dataset.n
    if not 1 <= n_top <= n:
        raise ParameterError(f"need 1 <= n_top <= n, got n_top={n_top}, n={n}")
    if k < 1 or k >= n:
        raise ParameterError(f"need 1 <= k < n, got k={k}, n={n}")
    if graph is not None and graph.n != n:
        raise GraphError(f"graph has {graph.n} vertices, dataset {n} objects")
    gen = ensure_rng(rng)
    pairs_at_entry = dataset.counter.pairs
    t0 = time.perf_counter()

    scan_order = gen.permutation(n).astype(np.int64)
    heap: list[tuple[float, int]] = []  # min-heap of (score, id)
    cutoff = -np.inf
    pruned = 0

    exact_scores: dict[int, float] = {}
    score_ub = None
    if engine is not None:
        exact_scores, score_ub = _engine_score_evidence(engine, k, n)
        # Exact-scored objects enter the ranking up front: the cutoff
        # starts tight before any scan runs.
        for p, score in exact_scores.items():
            if len(heap) < n_top:
                heapq.heappush(heap, (score, p))
            elif score > heap[0][0]:
                heapq.heapreplace(heap, (score, p))
        if len(heap) == n_top:
            cutoff = heap[0][0]

    for p in gen.permutation(n):
        p = int(p)
        if p in exact_scores:
            pruned += 1  # decided from stored evidence, no scan
            continue
        if score_ub is not None and score_ub[p] <= cutoff:
            pruned += 1
            continue
        best = np.full(0, np.inf)
        seeded_ids = np.empty(0, dtype=np.int64)
        if graph is not None:
            nbrs = graph.neighbors(p)
            if nbrs.size:
                best = _merge_smallest(best, dataset.dist_many(p, nbrs), k)
                seeded_ids = np.sort(nbrs)
        abandoned = False
        for lo in range(0, n, chunk):
            if best.size == k and best[-1] <= cutoff:
                pruned += 1
                abandoned = True
                break
            block = scan_order[lo : lo + chunk]
            keep = block != p
            if seeded_ids.size:
                # Seeded neighbors are already in `best`; counting them
                # twice would deflate the k-th smallest.
                pos = np.searchsorted(seeded_ids, block)
                pos[pos == seeded_ids.size] = seeded_ids.size - 1
                keep &= seeded_ids[pos] != block
            block = block[keep]
            if block.size == 0:
                continue
            best = _merge_smallest(best, dataset.dist_many(p, block), k)
        if abandoned:
            continue
        score = float(best[-1]) if best.size == k else np.inf
        if len(heap) < n_top:
            heapq.heappush(heap, (score, p))
        elif score > heap[0][0]:
            heapq.heapreplace(heap, (score, p))
        if len(heap) == n_top:
            cutoff = heap[0][0]

    ids = np.asarray([p for _, p in heap], dtype=np.int64)
    scores = np.asarray([s for s, _ in heap], dtype=np.float64)
    return TopNResult(
        ids=ids,
        scores=scores,
        n_top=n_top,
        k=k,
        seconds=time.perf_counter() - t0,
        pairs=dataset.counter.pairs - pairs_at_entry,
        pruned_objects=pruned,
    )
