"""Incrementally maintained DOD over a changing object collection.

The paper assumes a static ``P`` (§2) and notes that dynamic data is
the province of streaming algorithms.  Between those two poles sits a
common practical case: a collection that grows and shrinks slowly
(catalogue updates, feedback loops) where rebuilding the proximity
graph from scratch per change is wasteful but windows don't apply.

:class:`DynamicDODetector` maintains the graph incrementally:

* **insert** — NSW-style: a few greedy searches over the current graph
  collect candidates, the new vertex links (undirected) to the ``K``
  closest.  Graph quality degrades gracefully; exactness never does,
  because Algorithm 1 verifies whatever the filter cannot certify.
* **remove** — the vertex is tombstoned: its neighbors are chained
  together first (connectivity patch), then its adjacency is cleared.
* **detect** — active objects are compacted into a fresh
  :class:`~repro.data.Dataset` view with the adjacency remapped, and
  the paper's ``graph_dod`` runs unchanged.  Compaction is O(n) —
  trivially dominated by detection itself.

A periodic :meth:`rebuild` (full MRPG) restores filter quality after
heavy churn; the ``ext_dynamic`` bench measures that trade.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.dod import graph_dod
from ..core.result import DODResult
from ..core.verify import Verifier
from ..data import Dataset
from ..exceptions import ParameterError
from ..graphs.adjacency import Graph
from ..graphs.mrpg import build_mrpg
from ..metrics import Metric, resolve_metric
from ..rng import ensure_rng


class DynamicDODetector:
    """Exact DOD over a mutable collection with an incremental graph."""

    def __init__(
        self,
        metric: "str | Metric" = "l2",
        K: int = 16,
        seed: "int | None" = 0,
        search_attempts: int = 2,
    ):
        if K < 1:
            raise ParameterError(f"K must be >= 1, got {K}")
        if search_attempts < 1:
            raise ParameterError(f"search_attempts must be >= 1, got {search_attempts}")
        self.metric = resolve_metric(metric)
        self.K = int(K)
        self.search_attempts = int(search_attempts)
        self._rng = ensure_rng(seed)
        self._objects: list[Any] = []
        self._alive: list[bool] = []
        self._graph = None  # type: Graph | None
        self._dataset: Dataset | None = None  # covers all objects, incl. dead

    # -- bookkeeping ------------------------------------------------------------

    @property
    def n_total(self) -> int:
        return len(self._objects)

    @property
    def n_active(self) -> int:
        return sum(self._alive)

    def active_ids(self) -> np.ndarray:
        """Stable external ids (insertion order) of live objects."""
        return np.flatnonzero(np.asarray(self._alive, dtype=bool))

    def _refresh_dataset(self) -> None:
        self._dataset = Dataset(self._materialise(), self.metric)

    def _materialise(self):
        if self.metric.is_vector:
            return np.asarray(self._objects, dtype=np.float64)
        return self._objects

    # -- mutation ---------------------------------------------------------------

    def add(self, objects: Sequence[Any]) -> np.ndarray:
        """Insert objects; returns their stable ids."""
        objects = list(objects)
        if not objects:
            return np.empty(0, dtype=np.int64)
        first_new = self.n_total
        self._objects.extend(objects)
        self._alive.extend([True] * len(objects))
        self._refresh_dataset()

        if self._graph is None:
            self._graph = Graph(self.n_total)
            self._graph.meta["builder"] = "dynamic"
            self._graph.meta["K"] = self.K
        else:
            grown = Graph(self.n_total)
            grown.meta = dict(self._graph.meta)
            grown.pivots = np.concatenate(
                [self._graph.pivots, np.zeros(len(objects), dtype=bool)]
            )
            grown.exact_knn = dict(self._graph.exact_knn)
            for v in range(self._graph.n):
                grown.set_links(v, self._graph.neighbors_list(v))
            self._graph = grown

        assert self._dataset is not None
        for new_id in range(first_new, self.n_total):
            self._link_new_vertex(new_id)
        self._graph.finalize()
        return np.arange(first_new, self.n_total, dtype=np.int64)

    def _link_new_vertex(self, new_id: int) -> None:
        """NSW-style insertion: greedy searches collect link candidates."""
        assert self._graph is not None and self._dataset is not None
        alive = [
            v for v in range(new_id) if self._alive[v]
        ]
        if not alive:
            return
        if len(alive) <= self.K:
            for v in alive:
                self._graph.add_edge(new_id, v)
            return
        pool: dict[int, float] = {}
        for _ in range(self.search_attempts):
            entry = alive[int(self._rng.integers(len(alive)))]
            self._collect(new_id, entry, pool)
        closest = sorted(pool.items(), key=lambda kv: kv[1])[: self.K]
        for v, _ in closest:
            self._graph.add_edge(new_id, v)

    def _collect(self, query: int, entry: int, pool: dict[int, float]) -> None:
        assert self._graph is not None and self._dataset is not None
        current = entry
        if current not in pool:
            pool[current] = self._dataset.dist(query, current)
        current_d = pool[current]
        for _ in range(64):
            nbrs = [
                int(v)
                for v in self._graph.neighbors_list(current)
                if self._alive[int(v)] and int(v) != query
            ]
            fresh = [v for v in nbrs if v not in pool]
            if fresh:
                d = self._dataset.dist_many(query, np.asarray(fresh, dtype=np.int64))
                for v, dv in zip(fresh, d):
                    pool[v] = float(dv)
            best_v, best_d = current, current_d
            for v in nbrs:
                dv = pool.get(v)
                if dv is not None and dv < best_d:
                    best_v, best_d = v, dv
            if best_v == current:
                break
            current, current_d = best_v, best_d

    def remove(self, ids: Sequence[int]) -> None:
        """Tombstone objects; their neighbors are chained to stay connected."""
        if self._graph is None:
            raise ParameterError("remove before any add")
        for raw in ids:
            v = int(raw)
            if not 0 <= v < self.n_total or not self._alive[v]:
                raise ParameterError(f"id {v} is not an active object")
        for raw in ids:
            v = int(raw)
            nbrs = [w for w in self._graph.neighbors_list(v) if self._alive[w]]
            for a, b in zip(nbrs, nbrs[1:]):
                self._graph.add_edge(a, b)
            for w in self._graph.neighbors_list(v):
                self._graph.remove_edge(v, w)
            self._graph.exact_knn.pop(v, None)
            self._graph.pivots[v] = False
            self._alive[v] = False
        self._graph.finalize()

    def rebuild(self) -> None:
        """Compact and rebuild a fresh MRPG over the live objects.

        Resets the internal numbering: subsequent external ids are
        0..n_active-1 in previous insertion order.
        """
        keep = self.active_ids()
        objects = [self._objects[int(v)] for v in keep]
        self._objects = objects
        self._alive = [True] * len(objects)
        self._refresh_dataset()
        assert self._dataset is not None
        if len(objects) > self.K + 1:
            self._graph = build_mrpg(self._dataset, K=self.K, rng=self._rng)
        else:
            self._graph = Graph(max(len(objects), 1))
            for u in range(len(objects)):
                for v in range(u + 1, len(objects)):
                    self._graph.add_edge(u, v)
            self._graph.finalize()
        self._graph.meta["builder"] = "dynamic"
        self._graph.meta["K"] = self.K

    # -- detection -----------------------------------------------------------------

    def detect(self, r: float, k: int, n_jobs: int = 1) -> DODResult:
        """Exact (r, k)-outliers among the live objects.

        The result's ``outliers`` are *stable external ids*.
        """
        if self._graph is None or self.n_active == 0:
            raise ParameterError("detect before any add")
        keep = self.active_ids()
        objects = [self._objects[int(v)] for v in keep]
        compact = Dataset(
            np.asarray(objects, dtype=np.float64) if self.metric.is_vector else objects,
            self.metric,
        )
        remap = np.full(self.n_total, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size)
        graph = Graph(keep.size)
        graph.meta = {"builder": "dynamic", "K": self.K}
        graph.pivots = self._graph.pivots[keep].copy()
        for new_u, old_u in enumerate(keep):
            targets = [
                int(remap[w])
                for w in self._graph.neighbors_list(int(old_u))
                if remap[w] >= 0
            ]
            graph.set_links(new_u, targets)
        for old_v, (ids, dists) in self._graph.exact_knn.items():
            # Exact lists survive only if every member is still alive —
            # otherwise the "exact K'-NN" property no longer holds.
            if remap[old_v] >= 0 and np.all(remap[ids] >= 0):
                graph.exact_knn[int(remap[old_v])] = (remap[ids], dists.copy())
        graph.finalize()
        verifier = Verifier(compact, strategy="linear")
        result = graph_dod(compact, graph, r, k, verifier=verifier, n_jobs=n_jobs)
        result.outliers = keep[result.outliers]
        return result
