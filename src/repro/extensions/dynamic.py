"""Incrementally maintained DOD — thin shim over the mutable engine core.

The original ``DynamicDODetector`` lived here, maintaining its own
NSW-style incremental graph and recomputing every ``detect`` from
scratch.  That machinery now lives a layer down in
:class:`repro.engine.mutable.MutableDetectionEngine`, where mutations
also *repair* the engine's evidence cache instead of bypassing it
(see ``docs/incremental.md``).  This module keeps the historical
class name and call signatures so existing code keeps working:

* ``add`` is :meth:`~repro.engine.mutable.MutableDetectionEngine.insert`;
* ``remove``/``detect`` are the engine's, answering from repaired
  bounds (still exactly the ``graph_dod`` outlier sets);
* ``rebuild()`` keeps its historical renumbering semantics
  (``rebuild(renumber=True)`` on the engine).
"""

from __future__ import annotations

import warnings
from typing import Any, Sequence

import numpy as np

from ..engine.mutable import MutableDetectionEngine
from ..metrics import Metric


class DynamicDODetector(MutableDetectionEngine):
    """Exact DOD over a mutable collection (engine-backed shim).

    Prefer :class:`repro.engine.mutable.MutableDetectionEngine` in new
    code — it exposes the same mutations plus ``sweep``/``top_n``,
    pinned radii and snapshotting.
    """

    def __init__(
        self,
        metric: "str | Metric" = "l2",
        K: int = 16,
        seed: "int | None" = 0,
        search_attempts: int = 2,
    ):
        warnings.warn(
            "DynamicDODetector is deprecated; use "
            "repro.engine.MutableDetectionEngine (same mutations plus "
            "sweep/top_n, pinned radii and snapshots) or "
            "repro.engine.MutableShardedDetectionEngine for multi-process "
            "serving",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            metric=metric, K=K, seed=seed, search_attempts=search_attempts
        )

    def add(self, objects: Sequence[Any]) -> np.ndarray:
        """Insert objects; returns their stable ids."""
        return self.insert(objects)

    def rebuild(self, renumber: bool = True) -> "np.ndarray | None":
        """Compact and rebuild a fresh MRPG over the live objects.

        Resets the internal numbering (historical semantics):
        subsequent external ids are 0..n_active-1 in previous insertion
        order.
        """
        return super().rebuild(renumber=renumber)
