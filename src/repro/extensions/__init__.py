"""Extensions beyond the paper's core problem statement.

* top-n ranking DOD (the formulation of the paper's Nested-loop
  baseline reference), accelerated by the same proximity graphs;
* incrementally maintained DOD over a mutable collection (the static-P
  assumption of §2, relaxed).
"""

from .dynamic import DynamicDODetector
from .topn import TopNResult, knn_distance_scores, top_n_outliers

__all__ = [
    "top_n_outliers",
    "knn_distance_scores",
    "TopNResult",
    "DynamicDODetector",
]
