"""Blocking stdlib client for :class:`~repro.serving.server.EngineServer`.

Used by the CI equivalence gate, the serving load benchmark and the
tests; also a reference for what the wire protocol looks like from the
outside.  One :class:`ServingClient` holds one keep-alive connection
and is **not** thread-safe — concurrent load drivers create one client
per thread.
"""

from __future__ import annotations

import http.client
import json

from ..exceptions import ReproError


class ServingClientError(ReproError):
    """A non-200 response from the serving tier."""

    def __init__(self, status: int, payload: dict):
        message = payload.get("error", "unknown server error")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.kind = payload.get("kind", "error")
        self.payload = payload


class ServingClient:
    """Talk JSON to one ``EngineServer`` over a keep-alive connection."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: "http.client.HTTPConnection | None" = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request(self, method: str, path: str, payload: "dict | None" = None):
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except (ConnectionError, http.client.HTTPException, OSError):
            # One transparent retry on a fresh connection: the server may
            # have closed an idle keep-alive socket under us.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        parsed = json.loads(data) if data else {}
        if response.status != 200:
            raise ServingClientError(response.status, parsed)
        return parsed

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def query(self, r: float, k: int, deadline: "float | None" = None) -> dict:
        payload = {"r": float(r), "k": int(k)}
        if deadline is not None:
            payload["deadline"] = float(deadline)
        return self._request("POST", "/query", payload)

    def insert(self, objects, deadline: "float | None" = None) -> list[int]:
        payload = {"objects": [
            row if isinstance(row, str) else list(map(float, row))
            for row in objects
        ]}
        if deadline is not None:
            payload["deadline"] = float(deadline)
        return self._request("POST", "/insert", payload)["ids"]

    def remove(self, ids, deadline: "float | None" = None) -> int:
        payload = {"ids": [int(i) for i in ids]}
        if deadline is not None:
            payload["deadline"] = float(deadline)
        return self._request("POST", "/remove", payload)["removed"]

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
