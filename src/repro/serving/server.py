"""Minimal HTTP/1.1 JSON front-end over :class:`QueryCoalescer`.

Pure stdlib (``asyncio.start_server`` + hand-rolled request parsing) so
the serving tier adds no dependency.  The surface is small and
JSON-only:

========  ==========  =====================================================
method    path        body / response
========  ==========  =====================================================
GET       /healthz    ``{"status": "ok", "engine": ...}``
GET       /stats      serving + engine counters and capability flags
POST      /query      ``{"r": .., "k": .., "deadline": ..?}`` →
                      ``{"outliers": [...], "n_outliers": .., ...}``
POST      /insert     ``{"objects": [[...], ...]}`` → ``{"ids": [...]}``
POST      /remove     ``{"ids": [...]}`` → ``{"removed": N}``
========  ==========  =====================================================

Error mapping keeps failures client-visible and sockets clean: bad
parameters → 400, unsupported operation (e.g. mutation on an immutable
engine) → 501, queue-full admission rejection → 503, deadline expiry →
504, anything unexpected → 500.  Every error body is
``{"error": "...", "kind": "..."}``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from ..engine.protocol import supports
from ..exceptions import ParameterError, ReproError
from .coalescer import AdmissionError, DeadlineExceeded, QueryCoalescer, ServingConfig

#: request-line + header block size bound (we never need more).
_MAX_HEADER = 64 * 1024
#: request body size bound (bulk inserts ride many small batches).
_MAX_BODY = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def result_to_json(result) -> dict:
    """The wire form of one :class:`~repro.core.result.DODResult`."""
    return {
        "r": float(result.r),
        "k": int(result.k),
        "n": int(result.n),
        "outliers": [int(p) for p in result.outliers],
        "n_outliers": int(result.n_outliers),
        "method": str(result.method),
        "seconds": float(result.seconds),
        "pairs": int(result.pairs),
        "cache_decided": int(result.counts.get("cache_decided", 0)),
    }


class _HttpError(Exception):
    """Internal: carries an HTTP status + JSON error body."""

    def __init__(self, status: int, message: str, kind: str = "error"):
        super().__init__(message)
        self.status = status
        self.body = {"error": message, "kind": kind}


def _map_error(exc: Exception) -> _HttpError:
    if isinstance(exc, _HttpError):
        return exc
    if isinstance(exc, DeadlineExceeded):
        return _HttpError(504, str(exc), "deadline")
    if isinstance(exc, AdmissionError):
        return _HttpError(503, str(exc), "admission")
    if isinstance(exc, (ParameterError, json.JSONDecodeError, KeyError,
                        TypeError, ValueError)):
        return _HttpError(400, f"bad request: {exc}", "parameter")
    if isinstance(exc, ReproError):
        return _HttpError(500, str(exc), "engine")
    return _HttpError(500, f"internal error: {exc}", "internal")


class EngineServer:
    """Serve one engine over HTTP/JSON through a query coalescer.

    Binds lazily: :meth:`start` opens the listening socket (``port=0``
    picks a free port; see :attr:`address`) and starts the coalescer's
    drain task.  ``close_engine=True`` hands engine ownership to the
    server, for the CLI's process-lifetime usage.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 8734,
        config: "ServingConfig | None" = None,
        *,
        close_engine: bool = False,
    ):
        self.coalescer = QueryCoalescer(engine, config, close_engine=close_engine)
        self.host = host
        self.port = int(port)
        self._server: "asyncio.Server | None" = None

    @property
    def engine(self):
        return self.coalescer.engine

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` requests)."""
        if self._server is None:
            raise ParameterError("EngineServer.address before start")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, int(port)

    async def start(self) -> "EngineServer":
        self.coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coalescer.aclose()

    async def __aenter__(self) -> "EngineServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _handle_one(self, reader, writer) -> bool:
        """Serve one request; returns whether to keep the connection."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return False  # clean close between requests
            raise
        except asyncio.LimitOverrunError:
            await self._respond(
                writer, _HttpError(413, "header block too large"), close=True
            )
            return False
        if len(head) > _MAX_HEADER:
            await self._respond(
                writer, _HttpError(413, "header block too large"), close=True
            )
            return False
        try:
            method, path, headers = self._parse_head(head)
        except _HttpError as exc:
            await self._respond(writer, exc, close=True)
            return False
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            await self._respond(
                writer, _HttpError(413, "request body too large"), close=True
            )
            return False
        body = await reader.readexactly(length) if length else b""
        close = headers.get("connection", "").lower() == "close"
        try:
            status, payload = await self._route(method, path, body)
        except Exception as exc:  # noqa: BLE001 - mapped to HTTP statuses
            await self._respond(writer, _map_error(exc), close=close)
            return not close
        await self._respond(writer, (status, payload), close=close)
        return not close

    @staticmethod
    def _parse_head(head: bytes):
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise _HttpError(400, f"undecodable request head: {exc}") from None
        lines = text.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _respond(self, writer, outcome, close: bool) -> None:
        if isinstance(outcome, _HttpError):
            status, payload = outcome.status, outcome.body
        else:
            status, payload = outcome
        data = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0]
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, {"status": "ok", "engine": self.engine.describe()}
        if path == "/stats":
            self._require(method, "GET", path)
            return 200, self._stats_payload()
        if path == "/query":
            self._require(method, "POST", path)
            req = json.loads(body)
            result = await self.coalescer.query(
                req["r"], req["k"], deadline=req.get("deadline")
            )
            return 200, result_to_json(result)
        if path in ("/insert", "/remove") and not supports(
            self.engine, "mutable"
        ):
            raise _HttpError(
                501, f"{path} needs a mutable engine; this one is "
                     f"{self.engine.describe()}", "capability"
            )
        if path == "/insert":
            self._require(method, "POST", path)
            req = json.loads(body)
            objects = req["objects"]
            if objects and isinstance(objects[0], list):
                objects = np.asarray(objects, dtype=np.float64)
            ids = await self.coalescer.insert(
                objects, deadline=req.get("deadline")
            )
            return 200, {"ids": [int(i) for i in ids]}
        if path == "/remove":
            self._require(method, "POST", path)
            req = json.loads(body)
            await self.coalescer.remove(
                [int(i) for i in req["ids"]], deadline=req.get("deadline")
            )
            return 200, {"removed": len(req["ids"])}
        raise _HttpError(404, f"no such endpoint: {path}", "route")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HttpError(405, f"{path} requires {expected}, got {method}",
                             "method")

    def _stats_payload(self) -> dict:
        engine = self.engine
        caps = engine.capabilities
        if not supports(engine, "mutable"):
            live = int(engine.n) if hasattr(engine, "n") else None
        else:
            live = int(engine.n_active)
        payload = {
            "serving": dict(self.coalescer.stats),
            "engine": {
                k: (dict(v) if isinstance(v, dict) else v)
                for k, v in engine.stats.items()
            },
            "capabilities": dict(caps.__dict__),
            "describe": self.coalescer.describe(),
            "n_live": live,
        }
        # Sharded merges break their cost into phases A/B/C (cache /
        # filter / verify, with verify split descent-vs-sweep); surface
        # them as a first-class block so dashboards need not know the
        # engine.stats schema.
        if isinstance(engine.stats.get("phase_seconds"), dict):
            payload["phases"] = {
                "seconds": dict(engine.stats["phase_seconds"]),
                "pairs": dict(engine.stats.get("phase_pairs", {})),
            }
        # Numeric-backend counters (screened/rescreened pairs); guarded
        # so a duck-typed engine without the accessor still serves.
        stats_fn = getattr(engine, "backend_stats", None)
        if callable(stats_fn):
            payload["backend"] = stats_fn()
        # Object-store memory counters (kind, bytes pinned, replicas);
        # same duck-typed guard.
        store_fn = getattr(engine, "store_stats", None)
        if callable(store_fn):
            payload["store"] = store_fn()
        # Graph-construction phase timings (init / join rounds / detour
        # scans / connect / prune) of the most recent build or rebuild.
        build_fn = getattr(engine, "build_stats", None)
        if callable(build_fn):
            build = build_fn()
            if build:
                payload["build"] = build
        return payload
