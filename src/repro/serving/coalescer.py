"""Query coalescing: concurrent ``(r, k)`` requests share engine calls.

The batched kernels already take *blocks* of sources, and every engine
answers ``batch`` with full cross-query evidence reuse — so the cheapest
way to serve many concurrent clients is to stop answering them one at a
time.  :class:`QueryCoalescer` owns one engine and one dedicated engine
thread, and turns the concurrent request stream into a sequence of
engine calls:

* requests arriving within a short **coalescing window** (plus anything
  that queued up while the engine thread was busy) are drained into one
  ``engine.batch`` call; identical ``(r, k)`` requests collapse onto a
  *single* engine query — on sharded engines, one shard broadcast
  answers every waiter;
* each request carries a **deadline**; expiry surfaces as a clean
  :class:`DeadlineExceeded` to that client only — the batch in flight
  is unaffected;
* **admission control** bounds the damage of cold (cache-miss-heavy)
  queries: at most ``max_cold`` not-yet-warm radii are admitted per
  batch (excess cold requests stay queued, in order), and a full queue
  rejects new work with :class:`AdmissionError` instead of building an
  unbounded backlog;
* on mutable engines, ``insert``/``remove`` requests are **fences**: a
  read is never reordered across a mutation in either direction, each
  mutation runs exclusively on the engine thread, and on sharded
  engines the shard **epoch barrier**
  (:meth:`~repro.core.parallel.ShardPool.barrier`) is drained before
  the reads queued behind it are released — shard-local repairs are
  fully applied before the next coalesced broadcast.

Exactness: reads are only ever reordered relative to *other reads*
inside a mutation-free segment, where the engine state they observe is
identical; every response is the engine's own answer for that request's
``(r, k)``.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from ..engine.protocol import supports
from ..exceptions import ParameterError, ReproError


class DeadlineExceeded(ReproError):
    """A request's deadline expired before its answer was ready."""


class AdmissionError(ReproError):
    """The serving queue is full; the request was rejected, not queued."""


@dataclass(frozen=True)
class ServingConfig:
    """Tuning knobs for one :class:`QueryCoalescer`.

    ``window``
        Seconds to linger after the first pending request before
        draining a batch, letting concurrent arrivals coalesce.  While
        the engine thread is busy the queue accumulates anyway, so the
        window mostly matters at low load; ``0`` disables the linger.
    ``max_batch``
        Most requests drained into one ``engine.batch`` call.
    ``max_queue``
        Queue depth past which new requests are rejected with
        :class:`AdmissionError` (admission control under overload).
    ``max_cold``
        Cold radii (never yet served by this coalescer) admitted per
        batch.  Cold queries pay the full filter/verify walk; bounding
        them per batch keeps one burst of cache-cold traffic from
        stalling every warm query behind it.
    ``default_deadline``
        Seconds a request may wait end-to-end when the client names no
        deadline of its own.
    """

    window: float = 0.002
    max_batch: int = 64
    max_queue: int = 1024
    max_cold: int = 4
    default_deadline: float = 30.0

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ParameterError(f"window must be >= 0, got {self.window}")
        if self.max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise ParameterError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_cold < 1:
            raise ParameterError(f"max_cold must be >= 1, got {self.max_cold}")
        if self.default_deadline <= 0:
            raise ParameterError(
                f"default_deadline must be > 0, got {self.default_deadline}"
            )


class _Request:
    """One queued client request (a read or a mutation)."""

    __slots__ = ("kind", "args", "future", "abandoned")

    def __init__(self, kind: str, args, future: asyncio.Future):
        self.kind = kind
        self.args = args
        self.future = future
        #: set by the client when its deadline fired or it was
        #: cancelled while queued — the drain loop must not spend
        #: engine time on it.
        self.abandoned = False

    @property
    def dead(self) -> bool:
        return self.abandoned or self.future.done()


class QueryCoalescer:
    """Multiplex concurrent async clients onto one blocking engine.

    The engine is driven from a single dedicated thread (engines are
    not safe for concurrent calls), so the coalescer is also the
    engine's concurrency guard.  Use as an async context manager, or
    call :meth:`start` / :meth:`aclose` explicitly::

        async with QueryCoalescer(engine) as serving:
            results = await asyncio.gather(
                serving.query(0.5, 20), serving.query(0.5, 20)
            )

    Both requests above are answered by **one** engine query.
    """

    def __init__(
        self,
        engine,
        config: "ServingConfig | None" = None,
        *,
        close_engine: bool = False,
    ):
        if not supports(engine, "coalescable"):
            raise ParameterError(
                f"engine {engine!r} does not declare the coalescable "
                f"capability"
            )
        self.engine = engine
        self.config = config if config is not None else ServingConfig()
        self._close_engine = bool(close_engine)
        self._queue: deque[_Request] = deque()
        self._warm_radii: set[float] = set()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._wake: "asyncio.Event | None" = None
        self._task: "asyncio.Task | None" = None
        self._executor: "ThreadPoolExecutor | None" = None
        self._closing = False
        self.stats: dict[str, int] = {
            "requests": 0,
            "answered": 0,
            "batches": 0,
            "engine_queries": 0,
            "coalesced": 0,
            "max_batch": 0,
            "cold_deferred": 0,
            "deadline_expired": 0,
            "cancelled": 0,
            "rejected": 0,
            "mutations": 0,
            "barrier_epoch": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "QueryCoalescer":
        """Bind to the running event loop and start the drain task."""
        if self._task is not None:
            raise ParameterError("QueryCoalescer already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="engine"
        )
        self._closing = False
        self._task = self._loop.create_task(self._drain_loop())
        return self

    async def aclose(self) -> None:
        """Answer everything still queued, then stop (idempotent)."""
        if self._task is None:
            return
        self._closing = True
        self._wake.set()
        await self._task
        self._task = None
        self._executor.shutdown(wait=True)
        self._executor = None
        if self._close_engine:
            self.engine.close()

    async def __aenter__(self) -> "QueryCoalescer":
        return self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    @property
    def pending(self) -> int:
        """Requests currently queued (not yet handed to the engine)."""
        return sum(0 if req.dead else 1 for req in self._queue)

    # -- client surface ----------------------------------------------------

    async def query(self, r: float, k: int, deadline: "float | None" = None):
        """Exact ``(r, k)`` outliers, possibly shared with other clients.

        Raises :class:`DeadlineExceeded` when no answer arrived within
        ``deadline`` seconds (default: the config's), and
        :class:`AdmissionError` when the queue is full.  Parameters are
        validated *before* queueing so one malformed request cannot
        poison the batch it would have joined.
        """
        r, k = float(r), int(k)
        if not math.isfinite(r) or r < 0:
            raise ParameterError(f"radius must be finite and >= 0, got {r}")
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        return await self._submit("query", (r, k), deadline)

    async def insert(self, objects: Sequence, deadline: "float | None" = None):
        """Append objects through the serving queue; returns stable ids."""
        self._require_mutable("insert")
        return await self._submit("insert", objects, deadline)

    async def remove(self, ids: Sequence[int], deadline: "float | None" = None):
        """Tombstone objects through the serving queue."""
        self._require_mutable("remove")
        return await self._submit("remove", list(ids), deadline)

    def _require_mutable(self, what: str) -> None:
        if not supports(self.engine, "mutable"):
            raise ParameterError(
                f"{what} needs a mutable engine; {self.engine.describe()} "
                f"is immutable"
            )

    async def _submit(self, kind: str, args, deadline: "float | None"):
        if self._task is None or self._closing:
            raise ParameterError("QueryCoalescer is not running")
        if deadline is None:
            deadline = self.config.default_deadline
        if deadline <= 0:
            raise ParameterError(f"deadline must be > 0, got {deadline}")
        self.stats["requests"] += 1
        if self.pending >= self.config.max_queue:
            self.stats["rejected"] += 1
            raise AdmissionError(
                f"serving queue full ({self.config.max_queue} pending); "
                f"{kind} rejected"
            )
        req = _Request(kind, args, self._loop.create_future())
        self._queue.append(req)
        self._wake.set()
        try:
            return await asyncio.wait_for(asyncio.shield(req.future), deadline)
        except TimeoutError:
            req.abandoned = True
            self.stats["deadline_expired"] += 1
            raise DeadlineExceeded(
                f"{kind} request missed its {deadline:.3f}s deadline"
            ) from None
        except asyncio.CancelledError:
            req.abandoned = True
            self.stats["cancelled"] += 1
            raise

    # -- the drain loop ----------------------------------------------------

    async def _drain_loop(self) -> None:
        while True:
            if not any(not req.dead for req in self._queue):
                self._queue.clear()
                if self._closing:
                    return
                self._wake.clear()
                # Re-check after clear(): a request appended between the
                # any() scan and clear() also set the event first, so
                # either we see it queued or the wait returns at once.
                if not self._queue:
                    await self._wake.wait()
                continue
            if self.config.window > 0 and not self._closing:
                await asyncio.sleep(self.config.window)
            reads, mutation = self._select()
            if mutation is not None:
                await self._run_mutation(mutation)
            elif reads:
                await self._run_reads(reads)

    def _select(self) -> "tuple[list[_Request], _Request | None]":
        """Pick the next engine call from the queue (synchronous).

        Returns either a list of read requests to batch, or a single
        mutation to run exclusively.  Order discipline: a read never
        crosses a mutation; a *deferred* cold read keeps its place in
        the queue (still ahead of any later mutation); the head of the
        queue is always admitted so cold traffic cannot starve.
        """
        reads: list[_Request] = []
        kept: list[_Request] = []
        mutation: "_Request | None" = None
        cold_admitted: set[float] = set()
        blocked = False
        while self._queue:
            req = self._queue.popleft()
            if req.dead:
                continue
            if blocked:
                kept.append(req)
                continue
            if req.kind != "query":
                if reads:
                    # Reads ahead of the fence run this round; the
                    # mutation (and everything behind it) waits.
                    kept.append(req)
                else:
                    mutation = req
                blocked = True
                continue
            r = req.args[0]
            cold = r not in self._warm_radii and r not in cold_admitted
            if cold and reads and len(cold_admitted) >= self.config.max_cold:
                self.stats["cold_deferred"] += 1
                kept.append(req)
                continue
            if cold:
                cold_admitted.add(r)
            reads.append(req)
            if len(reads) >= self.config.max_batch:
                blocked = True
        self._queue = deque(kept)
        return reads, mutation

    async def _run_reads(self, reads: list[_Request]) -> None:
        unique: list[tuple[float, int]] = []
        slot: dict[tuple[float, int], int] = {}
        for req in reads:
            if req.args not in slot:
                slot[req.args] = len(unique)
                unique.append(req.args)
        try:
            results = await self._loop.run_in_executor(
                self._executor, self._engine_batch, unique
            )
        except Exception as exc:
            for req in reads:
                self._resolve(req, error=exc)
            return
        self._warm_radii.update(r for r, _ in unique)
        self.stats["batches"] += 1
        self.stats["engine_queries"] += len(unique)
        self.stats["coalesced"] += len(reads) - len(unique)
        self.stats["max_batch"] = max(self.stats["max_batch"], len(reads))
        for req in reads:
            self._resolve(req, result=results[slot[req.args]])

    async def _run_mutation(self, req: _Request) -> None:
        try:
            result = await self._loop.run_in_executor(
                self._executor, self._engine_mutate, req.kind, req.args
            )
        except Exception as exc:
            self._resolve(req, error=exc)
            return
        self.stats["mutations"] += 1
        self._resolve(req, result=result)

    def _engine_batch(self, queries: list[tuple[float, int]]):
        """Engine-thread body: one batch call answers every unique query."""
        return self.engine.batch(queries)

    def _engine_mutate(self, kind: str, args):
        """Engine-thread body: run one mutation, then drain the shards.

        The epoch barrier is the read/repair interleaving guarantee on
        sharded engines: once it returns, every shard worker has fully
        applied this mutation's evidence repairs, so the reads queued
        behind the fence observe a consistent post-mutation state.
        """
        result = getattr(self.engine, kind)(args)
        if supports(self.engine, "epoch_barrier"):
            self.stats["barrier_epoch"] = self.engine.barrier()
        return result

    def _resolve(self, req: _Request, result=None, error=None) -> None:
        if req.future.cancelled():
            return
        if error is not None:
            req.future.set_exception(error)
            if req.abandoned:
                # Nobody is awaiting an abandoned request; consume the
                # exception so GC does not log it as never-retrieved.
                req.future.exception()
            return
        req.future.set_result(result)
        self.stats["answered"] += 1

    def describe(self) -> str:
        """One-line human description of the serving front-end."""
        cfg = self.config
        return (
            f"coalescer(window={cfg.window * 1e3:g}ms, "
            f"max_batch={cfg.max_batch}, max_cold={cfg.max_cold}, "
            f"max_queue={cfg.max_queue}) over {self.engine.describe()}"
        )
