"""Async serving tier: many concurrent clients, one exact engine.

Every engine in :mod:`repro.engine` answers blocking library calls.
This package multiplexes concurrent clients onto a single
:class:`~repro.engine.protocol.EngineCore`:

* :class:`QueryCoalescer` — batches concurrent ``(r, k)`` requests
  arriving within a short window into one ``batch`` call (one shard
  broadcast per unique query on sharded engines), with per-request
  deadlines, admission control for cold queries, and FIFO-safe
  interleaving of reads with mutations through the shard epoch
  barrier;
* :class:`EngineServer` — a minimal stdlib HTTP/1.1 JSON front-end
  over ``asyncio.start_server`` (``repro-dod serve`` on the CLI);
* :class:`ServingClient` — a blocking stdlib client for tests, the
  CI equivalence gate and the load benchmark.

Exactness is untouched: the coalescer only reorders *reads* relative
to each other within a mutation-free segment, and every response is
the engine's own answer for that request's ``(r, k)``.
"""

from .coalescer import (
    AdmissionError,
    DeadlineExceeded,
    QueryCoalescer,
    ServingConfig,
)
from .client import ServingClient, ServingClientError
from .server import EngineServer, result_to_json

__all__ = [
    "AdmissionError",
    "DeadlineExceeded",
    "EngineServer",
    "QueryCoalescer",
    "ServingClient",
    "ServingClientError",
    "ServingConfig",
    "result_to_json",
]
