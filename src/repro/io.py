"""Proximity-graph (de)serialisation.

Graphs are the paper's offline pre-processing product; persisting them
is what makes the offline/online split real for a user.  The format is
a single ``.npz``: CSR-shaped adjacency, pivot flags, exact-K'NN
payloads, and the build metadata as JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .exceptions import GraphError
from .graphs.adjacency import Graph

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: "str | Path") -> None:
    """Write ``graph`` to ``path`` (.npz)."""
    indptr = np.zeros(graph.n + 1, dtype=np.int64)
    chunks = []
    for v in range(graph.n):
        nbrs = graph.neighbors(v)
        indptr[v + 1] = indptr[v] + nbrs.size
        chunks.append(nbrs)
    indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)

    exact_owners = np.asarray(sorted(graph.exact_knn), dtype=np.int64)
    exact_ptr = np.zeros(exact_owners.size + 1, dtype=np.int64)
    exact_ids_chunks = []
    exact_dists_chunks = []
    for t, p in enumerate(exact_owners):
        ids, dists = graph.exact_knn[int(p)]
        exact_ptr[t + 1] = exact_ptr[t] + ids.size
        exact_ids_chunks.append(ids)
        exact_dists_chunks.append(dists)
    exact_ids = (
        np.concatenate(exact_ids_chunks) if exact_ids_chunks else np.empty(0, np.int64)
    )
    exact_dists = (
        np.concatenate(exact_dists_chunks)
        if exact_dists_chunks
        else np.empty(0, np.float64)
    )

    np.savez_compressed(
        Path(path),
        format_version=np.asarray(_FORMAT_VERSION),
        n=np.asarray(graph.n),
        indptr=indptr,
        indices=indices,
        pivots=graph.pivots,
        exact_owners=exact_owners,
        exact_ptr=exact_ptr,
        exact_ids=exact_ids,
        exact_dists=exact_dists,
        meta=np.asarray(json.dumps(graph.meta, default=str)),
    )


def load_graph(path: "str | Path") -> Graph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise GraphError(f"unsupported graph format version {version}")
        n = int(data["n"])
        graph = Graph(n)
        indptr = data["indptr"]
        indices = data["indices"]
        for v in range(n):
            graph.set_links(v, indices[indptr[v] : indptr[v + 1]])
        graph.pivots = data["pivots"].astype(bool)
        owners = data["exact_owners"]
        exact_ptr = data["exact_ptr"]
        exact_ids = data["exact_ids"]
        exact_dists = data["exact_dists"]
        for t, p in enumerate(owners):
            lo, hi = int(exact_ptr[t]), int(exact_ptr[t + 1])
            graph.exact_knn[int(p)] = (
                exact_ids[lo:hi].copy(),
                exact_dists[lo:hi].copy(),
            )
        graph.meta = json.loads(str(data["meta"]))
    graph.finalize()
    return graph
