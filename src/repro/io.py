"""Proximity-graph and engine-snapshot (de)serialisation.

Graphs are the paper's offline pre-processing product; persisting them
is what makes the offline/online split real for a user.  The format is
a single ``.npz``: CSR-shaped adjacency, pivot flags, exact-K'NN
payloads, and the build metadata as JSON.

Engine snapshots (:func:`save_engine` / :func:`load_engine`) extend the
same container with the :class:`~repro.engine.EvidenceCache` bound
arrays and serving statistics, so a restarted serving process answers
its first queries warm instead of re-proving everything.  Sharded
engines (:func:`save_sharded_engine` / :func:`load_sharded_engine`)
persist as a *directory*: one manifest describing the shard plan plus
one per-shard archive in the same graph+cache format.

Every malformed input — truncated or corrupted archives, missing
arrays, unsupported format versions, payloads inconsistent with
themselves or with the dataset they are loaded against — raises
:class:`~repro.exceptions.GraphError` with a message naming the file.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from .exceptions import GraphError
from .graphs.adjacency import Graph

_FORMAT_VERSION = 1
_ENGINE_FORMAT_VERSION = 1

#: arrays every graph .npz must carry.
_GRAPH_KEYS = (
    "format_version",
    "n",
    "indptr",
    "indices",
    "pivots",
    "exact_owners",
    "exact_ptr",
    "exact_ids",
    "exact_dists",
    "meta",
)


# -- out-of-core datasets -----------------------------------------------------

#: rows handled per chunk when writing/validating memmap stores.
_MEMMAP_CHUNK = 4096

#: tolerance on unit row norms when opening a foreign angular store
#: (float64 normalisation leaves norms within a few ulp of 1).
_UNIT_NORM_TOL = 1e-9


def create_memmap_store(
    path: "str | Path",
    objects,
    metric="l2",
    *,
    chunk: int = _MEMMAP_CHUNK,
) -> Path:
    """Write a *prepared* vector store as a ``.npy`` file for mapping.

    The out-of-core counterpart of ``Dataset(objects, metric)``: the
    input is validated and pushed through ``metric.prepare`` **chunk by
    chunk** (preparation is row-wise for every vector metric, so the
    chunked output is bit-identical to preparing the whole array), and
    the result lands in an ``.npy`` whose rows are exactly what an
    in-RAM dataset would hold.  :func:`open_memmap_dataset` then maps
    it back without copying — sweeps over it return bit-identical
    outlier sets to the in-RAM dataset, while resident memory stays
    bounded by the kernel chunk size.

    Non-rectangular, mis-typed or empty inputs raise
    :class:`GraphError`; content violations (non-finite rows, zero
    vectors under angular) surface as the metric's usual errors.
    """
    from .data import _checked_vector_input
    from .exceptions import ParameterError
    from .metrics import resolve_metric

    if chunk < 1:
        raise ParameterError(f"chunk must be >= 1, got {chunk}")
    resolved = resolve_metric(metric)
    if not resolved.is_vector:
        raise GraphError(
            f"{resolved.name}: memmap stores hold vector data only"
        )
    arr = _checked_vector_input(objects, resolved.name)
    # 1-D input means n objects of dimension 1, matching metric.prepare.
    if (
        arr.ndim not in (1, 2)
        or arr.shape[0] == 0
        or (arr.ndim == 2 and arr.shape[1] == 0)
    ):
        raise GraphError(
            f"{resolved.name}: memmap store needs a non-empty 1-D or 2-D "
            f"input, got shape {arr.shape}"
        )
    path = Path(path)
    n = int(arr.shape[0])
    first = resolved.prepare(arr[: min(chunk, n)])
    dim = int(first.shape[1])
    try:
        out = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.float64, shape=(n, dim)
        )
    except OSError as exc:
        raise GraphError(f"{path}: cannot create memmap store ({exc})") from exc
    try:
        out[: first.shape[0]] = first
        for lo in range(first.shape[0], n, chunk):
            out[lo : lo + chunk] = resolved.prepare(arr[lo : lo + chunk])
        out.flush()
    except BaseException:
        del out
        path.unlink(missing_ok=True)
        raise
    del out
    return path


def open_memmap_dataset(
    path: "str | Path",
    metric="l2",
    backend=None,
    *,
    validate: bool = True,
):
    """Map a ``.npy`` store as an out-of-core :class:`~repro.data.Dataset`.

    The file must hold *prepared* rows — what :func:`create_memmap_store`
    writes, or any C-ordered non-empty 2-D float64 array that already
    satisfies the metric's prepared contract (finite everywhere;
    unit-norm rows for the angular metric).  Structural violations and,
    with ``validate=True``, chunked content checks raise
    :class:`GraphError` naming the file; the returned dataset reads the
    file lazily (``store_kind == "memmap"``), so resident memory stays
    bounded by the kernel chunk size regardless of the file size.
    """
    from .data import Dataset
    from .metrics import resolve_metric

    path = Path(path)
    resolved = resolve_metric(metric)
    if not resolved.is_vector:
        raise GraphError(
            f"{resolved.name}: memmap stores hold vector data only"
        )
    try:
        arr = np.lib.format.open_memmap(path, mode="r")
    except FileNotFoundError:
        raise GraphError(f"{path}: no such memmap store") from None
    except (ValueError, OSError) as exc:
        raise GraphError(f"{path}: not a readable .npy store ({exc})") from exc
    if arr.dtype != np.float64:
        raise GraphError(
            f"{path}: memmap store dtype is {arr.dtype}, prepared stores "
            f"are float64 (write it with create_memmap_store)"
        )
    if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
        raise GraphError(
            f"{path}: memmap store shape {arr.shape} is not a non-empty "
            f"2-D row store"
        )
    if not arr.flags["C_CONTIGUOUS"]:
        raise GraphError(
            f"{path}: memmap store is Fortran-ordered; prepared stores "
            f"are C-contiguous"
        )
    if validate:
        for lo in range(0, arr.shape[0], _MEMMAP_CHUNK):
            block = np.asarray(arr[lo : lo + _MEMMAP_CHUNK])
            if not np.isfinite(block).all():
                raise GraphError(
                    f"{path}: non-finite values in rows "
                    f"[{lo}, {lo + block.shape[0]}) — not a prepared store"
                )
            if resolved.name == "angular":
                norms = np.linalg.norm(block, axis=1)
                if np.abs(norms - 1.0).max() > _UNIT_NORM_TOL:
                    raise GraphError(
                        f"{path}: angular stores hold unit-norm rows; "
                        f"rewrite the file with create_memmap_store("
                        f"..., metric='angular')"
                    )
    return Dataset.from_prepared(arr, resolved, backend=backend)


def _graph_arrays(graph: Graph) -> dict[str, np.ndarray]:
    """Flatten a graph into the named arrays of the .npz container."""
    indptr = np.zeros(graph.n + 1, dtype=np.int64)
    chunks = []
    for v in range(graph.n):
        nbrs = graph.neighbors(v)
        indptr[v + 1] = indptr[v] + nbrs.size
        chunks.append(nbrs)
    indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)

    exact_owners = np.asarray(sorted(graph.exact_knn), dtype=np.int64)
    exact_ptr = np.zeros(exact_owners.size + 1, dtype=np.int64)
    exact_ids_chunks = []
    exact_dists_chunks = []
    for t, p in enumerate(exact_owners):
        ids, dists = graph.exact_knn[int(p)]
        exact_ptr[t + 1] = exact_ptr[t] + ids.size
        exact_ids_chunks.append(ids)
        exact_dists_chunks.append(dists)
    exact_ids = (
        np.concatenate(exact_ids_chunks) if exact_ids_chunks else np.empty(0, np.int64)
    )
    exact_dists = (
        np.concatenate(exact_dists_chunks)
        if exact_dists_chunks
        else np.empty(0, np.float64)
    )
    return {
        "format_version": np.asarray(_FORMAT_VERSION),
        "n": np.asarray(graph.n),
        "indptr": indptr,
        "indices": indices,
        "pivots": graph.pivots,
        "exact_owners": exact_owners,
        "exact_ptr": exact_ptr,
        "exact_ids": exact_ids,
        "exact_dists": exact_dists,
        "meta": np.asarray(json.dumps(graph.meta, default=str)),
    }


def _graph_from_arrays(data, path: Path) -> Graph:
    """Rebuild and sanity-check a graph from loaded .npz arrays."""
    version = int(data["format_version"])
    if version != _FORMAT_VERSION:
        raise GraphError(
            f"{path}: unsupported graph format version {version} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    n = int(data["n"])
    if n < 1:
        raise GraphError(f"{path}: invalid vertex count {n}")
    indptr = data["indptr"]
    indices = data["indices"]
    if indptr.shape != (n + 1,) or int(indptr[0]) != 0:
        raise GraphError(f"{path}: adjacency offsets do not match n={n}")
    if np.any(np.diff(indptr) < 0) or int(indptr[-1]) != indices.size:
        raise GraphError(f"{path}: adjacency offsets are inconsistent")
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise GraphError(f"{path}: adjacency targets out of range for n={n}")
    graph = Graph(n)
    for v in range(n):
        graph.set_links(v, indices[indptr[v] : indptr[v + 1]])
    pivots = data["pivots"]
    if pivots.shape != (n,):
        raise GraphError(f"{path}: pivot flags do not match n={n}")
    graph.pivots = pivots.astype(bool)
    owners = data["exact_owners"]
    exact_ptr = data["exact_ptr"]
    exact_ids = data["exact_ids"]
    exact_dists = data["exact_dists"]
    if exact_ptr.shape != (owners.size + 1,) or (
        owners.size and int(exact_ptr[-1]) != exact_ids.size
    ) or np.any(np.diff(exact_ptr) < 0):
        raise GraphError(f"{path}: exact-K'NN offsets are inconsistent")
    if exact_ids.size != exact_dists.size:
        raise GraphError(f"{path}: exact-K'NN ids/distances length mismatch")
    if owners.size and (owners.min() < 0 or owners.max() >= n):
        raise GraphError(f"{path}: exact-K'NN owners out of range for n={n}")
    for t, p in enumerate(owners):
        lo, hi = int(exact_ptr[t]), int(exact_ptr[t + 1])
        graph.exact_knn[int(p)] = (
            exact_ids[lo:hi].copy(),
            exact_dists[lo:hi].copy(),
        )
    graph.meta = json.loads(str(data["meta"]))
    graph.finalize()
    return graph


class _NpzReader:
    """np.load wrapper turning every decode failure into GraphError."""

    def __init__(self, path: Path, what: str):
        self.path = path
        self.what = what
        try:
            self._data = np.load(path, allow_pickle=False)
        except FileNotFoundError:
            raise GraphError(f"{path}: no such {self.what} file")
        except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
            raise GraphError(
                f"{path}: not a readable {self.what} .npz "
                f"(corrupted or truncated: {exc})"
            ) from exc

    def __getitem__(self, key: str) -> np.ndarray:
        try:
            return self._data[key]
        except KeyError as exc:
            raise GraphError(
                f"{self.path}: {self.what} archive is missing array {key!r}"
            ) from exc
        except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
            raise GraphError(
                f"{self.path}: array {key!r} is unreadable "
                f"(corrupted or truncated: {exc})"
            ) from exc

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __enter__(self) -> "_NpzReader":
        return self

    def __exit__(self, *exc) -> None:
        self._data.close()


def save_graph(graph: Graph, path: "str | Path") -> None:
    """Write ``graph`` to ``path`` (.npz)."""
    np.savez_compressed(Path(path), **_graph_arrays(graph))


def load_graph(path: "str | Path") -> Graph:
    """Read a graph written by :func:`save_graph` (or an engine snapshot)."""
    path = Path(path)
    with _NpzReader(path, "graph") as data:
        try:
            return _graph_from_arrays(data, path)
        except json.JSONDecodeError as exc:
            raise GraphError(f"{path}: graph metadata is not valid JSON") from exc


def _dataset_fingerprint(dataset) -> dict:
    """Cheap, metric-agnostic dataset identity probe.

    The snapshot stores cached bounds *about specific objects*; loading
    it against different data of the same cardinality would silently
    serve wrong answers.  Distances between a fixed seeded sample of
    index pairs pin the identity without persisting the data itself.
    """
    gen = np.random.default_rng(0xD15C0)
    n = dataset.n
    a = gen.integers(0, n, size=32)
    b = gen.integers(0, n, size=32)
    probes = dataset.view().pair_dist(a, b)
    return {
        "n": n,
        "metric": dataset.metric.name,
        "probes": [float(d) for d in probes],
    }


def _check_fingerprint(stored: "dict | None", dataset, path: Path) -> None:
    """Raise GraphError unless ``dataset`` matches the stored fingerprint."""
    if stored is None:
        return
    if stored.get("metric") != dataset.metric.name:
        raise GraphError(
            f"{path}: snapshot was built on metric "
            f"{stored.get('metric')!r} but the supplied dataset uses "
            f"{dataset.metric.name!r}"
        )
    fresh = _dataset_fingerprint(dataset)
    probes = stored.get("probes", [])
    if len(probes) != len(fresh["probes"]) or not np.allclose(
        probes, fresh["probes"], rtol=1e-9, atol=1e-12
    ):
        raise GraphError(
            f"{path}: dataset fingerprint mismatch — the supplied "
            f"objects are not the data this snapshot was built from"
        )


def _cache_arrays_from(data, n: int, path: Path) -> dict:
    """Extract and sanity-check evidence-cache arrays from a snapshot."""
    cache_arrays = {
        key: data[key]
        for key in ("cache_lb_radii", "cache_lb", "cache_ub_radii", "cache_ub")
    }
    for key in ("cache_lb", "cache_ub"):
        if cache_arrays[key].ndim != 2 or (
            cache_arrays[key].shape[0] > 0
            and cache_arrays[key].shape[1] != n
        ):
            raise GraphError(
                f"{path}: evidence cache array {key!r} does not match n={n}"
            )
        n_radii = cache_arrays[f"{key}_radii"].size
        if cache_arrays[key].shape[0] != n_radii:
            raise GraphError(
                f"{path}: {key!r} holds {cache_arrays[key].shape[0]} bound "
                f"rows but {key}_radii lists {n_radii} radii"
            )
    return cache_arrays


def _restore_stats(engine, stats: dict) -> None:
    """Restore a saved ``stats`` mapping onto ``engine.stats``.

    Scalar counters round-trip as ints; nested per-phase mappings
    (``phase_seconds`` / ``phase_pairs``) restore key-wise against the
    engine's own schema, so snapshots written before a counter existed
    load with that counter at its fresh default.
    """
    for key, default in engine.stats.items():
        saved = stats.get(key)
        if isinstance(default, dict):
            if isinstance(saved, dict):
                for sub in default:
                    default[sub] = type(default[sub])(saved.get(sub, 0))
            continue
        engine.stats[key] = int(0 if saved is None else saved)


def save_engine(engine, path: "str | Path") -> None:
    """Snapshot a :class:`~repro.engine.DetectionEngine` to one ``.npz``.

    Persists the graph plus the evidence-cache bound arrays and serving
    statistics — everything needed for a restarted process to keep
    serving warm.  The dataset itself is *not* stored; the caller
    re-supplies it to :func:`load_engine`, which verifies it against a
    stored fingerprint.
    """
    payload = _graph_arrays(engine.graph)
    payload.update(engine.cache.state_arrays())
    payload["engine_format_version"] = np.asarray(_ENGINE_FORMAT_VERSION)
    payload["engine_meta"] = np.asarray(
        json.dumps(
            {
                "stats": engine.stats,
                "n": engine.n,
                "knn_radii": sorted(engine._knn_radii),
                "fingerprint": _dataset_fingerprint(engine.dataset),
            }
        )
    )
    np.savez_compressed(Path(path), **payload)


def load_engine(
    path: "str | Path",
    dataset,
    verifier=None,
    n_jobs: int = 1,
    rng: "int | np.random.Generator | None" = 0,
    max_visits: int | None = None,
    mode: str = "auto",
    batch_size: int | None = None,
    cache_radii: int | None = None,
    memo_outliers: bool = True,
    memo_budget: int | None = None,
    backend: "str | None" = None,
):
    """Rebuild a saved engine against its (re-supplied) dataset.

    Raises :class:`GraphError` when the snapshot is unreadable, was not
    written by :func:`save_engine`, or does not match ``dataset``.
    """
    from .core.traversal import DEFAULT_BLOCK
    from .engine import DetectionEngine
    from .engine.evidence import EvidenceCache

    if batch_size is None:
        batch_size = DEFAULT_BLOCK
    path = Path(path)
    with _NpzReader(path, "engine snapshot") as data:
        if "engine_format_version" not in data:
            raise GraphError(
                f"{path}: not an engine snapshot (a bare graph .npz? "
                f"use load_graph instead)"
            )
        engine_version = int(data["engine_format_version"])
        if engine_version != _ENGINE_FORMAT_VERSION:
            raise GraphError(
                f"{path}: unsupported engine snapshot version {engine_version} "
                f"(this build reads version {_ENGINE_FORMAT_VERSION})"
            )
        try:
            graph = _graph_from_arrays(data, path)
            meta = json.loads(str(data["engine_meta"]))
        except json.JSONDecodeError as exc:
            raise GraphError(f"{path}: engine metadata is not valid JSON") from exc
        if graph.n != dataset.n:
            raise GraphError(
                f"{path}: snapshot indexes {graph.n} objects but the supplied "
                f"dataset has {dataset.n} — wrong dataset for this snapshot"
            )
        _check_fingerprint(meta.get("fingerprint"), dataset, path)
        cache_arrays = _cache_arrays_from(data, graph.n, path)
    engine = DetectionEngine(
        dataset,
        graph,
        verifier=verifier,
        n_jobs=n_jobs,
        rng=rng,
        max_visits=max_visits,
        mode=mode,
        batch_size=batch_size,
        cache_radii=cache_radii,
        memo_outliers=memo_outliers,
        memo_budget=memo_budget,
        backend=backend,
    )
    engine.cache = EvidenceCache.from_state_arrays(graph.n, cache_arrays)
    engine.cache.max_radii = cache_radii
    if cache_radii is not None:
        engine.cache.evict(cache_radii)
    engine._knn_radii = set(float(r) for r in meta.get("knn_radii", ()))
    _restore_stats(engine, meta.get("stats", {}))
    return engine


# -- mutable-engine snapshots -------------------------------------------------

_MUTABLE_FORMAT_VERSION = 1


def save_mutable_engine(engine, path: "str | Path") -> None:
    """Snapshot a :class:`~repro.engine.MutableDetectionEngine` (.npz).

    Persists the full-id-space state a mutable engine accumulates: the
    incrementally maintained graph (tombstones included), the alive
    mask, the *repaired* evidence-cache bound arrays, the pinned radii
    and serving statistics.  The objects themselves are not stored; the
    caller re-supplies the full insertion log (dead positions included)
    to :func:`load_mutable_engine`, which verifies it against a stored
    fingerprint.
    """
    from .engine.evidence import EvidenceCache
    from .exceptions import ParameterError

    if engine._graph is None or engine._dataset is None:
        raise ParameterError("cannot snapshot a mutable engine before any insert")
    engine._fold_back()  # the snapshot must carry everything proven so far
    cache = (
        engine.cache
        if engine.cache is not None
        else EvidenceCache(engine.n_total)
    )
    payload = _graph_arrays(engine._graph)
    payload.update(cache.state_arrays())
    payload["mutable_format_version"] = np.asarray(_MUTABLE_FORMAT_VERSION)
    payload["alive"] = np.asarray(engine._alive, dtype=bool)
    payload["mutable_meta"] = np.asarray(
        json.dumps(
            {
                "stats": engine.stats,
                "n_total": engine.n_total,
                "pairs": engine.pairs,
                "metric": engine.metric.name,
                "K": engine.K,
                "search_attempts": engine.search_attempts,
                "rebuild_graph": engine.rebuild_graph,
                "build_workers": engine.build_workers,
                "mutations_since_rebuild": engine._mutations_since_rebuild,
                "pinned": sorted(engine._pinned),
                "fingerprint": _dataset_fingerprint(engine._dataset),
            }
        )
    )
    np.savez_compressed(Path(path), **payload)


def load_mutable_engine(path: "str | Path", objects, **kwargs):
    """Rebuild a saved mutable engine against its full object log.

    ``objects`` must be the complete insertion-ordered log the engine
    had accumulated (tombstoned positions included) — verified against
    the stored fingerprint.  Remaining keyword arguments are forwarded
    to the :class:`~repro.engine.MutableDetectionEngine` constructor
    (execution knobs such as ``n_jobs``, ``mode``, ``rebuild_every``).

    Raises :class:`GraphError` when the snapshot is unreadable, was not
    written by :func:`save_mutable_engine`, is version-mismatched, or
    does not match ``objects``.
    """
    from .engine.evidence import EvidenceCache
    from .engine.mutable import MutableDetectionEngine

    path = Path(path)
    with _NpzReader(path, "mutable engine snapshot") as data:
        if "mutable_format_version" not in data:
            raise GraphError(
                f"{path}: not a mutable-engine snapshot (a graph or "
                f"static-engine .npz? use load_graph/load_engine instead)"
            )
        version = int(data["mutable_format_version"])
        if version != _MUTABLE_FORMAT_VERSION:
            raise GraphError(
                f"{path}: unsupported mutable snapshot version {version} "
                f"(this build reads version {_MUTABLE_FORMAT_VERSION})"
            )
        try:
            graph = _graph_from_arrays(data, path)
            meta = json.loads(str(data["mutable_meta"]))
        except json.JSONDecodeError as exc:
            raise GraphError(f"{path}: mutable metadata is not valid JSON") from exc
        alive = data["alive"]
        if alive.shape != (graph.n,):
            raise GraphError(
                f"{path}: alive mask covers {alive.size} objects but the "
                f"graph spans {graph.n}"
            )
        cache_arrays = _cache_arrays_from(data, graph.n, path)
    object_log = list(objects)
    if len(object_log) != graph.n:
        raise GraphError(
            f"{path}: snapshot spans {graph.n} objects but the supplied log "
            f"has {len(object_log)} — wrong object log for this snapshot"
        )
    # Loaded engines keep rebuilding with the snapshot's parallelism
    # unless the caller overrides it explicitly.
    kwargs.setdefault("build_workers", meta.get("build_workers"))
    engine = MutableDetectionEngine(
        metric=str(meta.get("metric", "l2")),
        K=int(meta.get("K", 16)),
        search_attempts=int(meta.get("search_attempts", 2)),
        rebuild_graph=str(meta.get("rebuild_graph", "mrpg")),
        pinned=[float(r) for r in meta.get("pinned", ())],
        **kwargs,
    )
    engine._objects = object_log
    engine._alive = [bool(a) for a in alive]
    engine._refresh_dataset()
    _check_fingerprint(meta.get("fingerprint"), engine._dataset, path)
    engine._graph = graph
    engine.cache = EvidenceCache.from_state_arrays(graph.n, cache_arrays)
    engine.cache.max_radii = engine.cache_radii
    if engine.cache_radii is not None:
        engine.cache.evict(engine.cache_radii)
    engine.pairs = int(meta.get("pairs", 0))
    engine._mutations_since_rebuild = int(meta.get("mutations_since_rebuild", 0))
    _restore_stats(engine, meta.get("stats", {}))
    return engine


# -- sharded-engine manifests -------------------------------------------------

_SHARDED_FORMAT_VERSION = 1
_MANIFEST_NAME = "manifest.npz"


def _save_shard_archive(shard_path: Path, graph, cache, meta: dict) -> None:
    """One shard archive: graph arrays + cache bound arrays + JSON meta.

    The per-shard format shared by the static and the mutable sharded
    snapshots — a standard graph archive extended with that shard's
    evidence-cache bound arrays, exactly like a single-engine snapshot.
    """
    payload = _graph_arrays(graph)
    payload.update(cache.state_arrays())
    payload["shard_meta"] = np.asarray(json.dumps(meta))
    np.savez_compressed(shard_path, **payload)


def _load_shard_archive(shard_path: Path, cache_span: int):
    """Read one shard archive back: ``(graph, cache, meta)``.

    ``cache_span`` is the id-space width the shard cache must cover
    (global ``n`` for both sharded formats).  Every malformed payload
    raises :class:`GraphError` naming the file.
    """
    from .engine.evidence import EvidenceCache

    if not shard_path.exists():
        raise GraphError(
            f"{shard_path}: shard file named by the manifest is missing"
        )
    with _NpzReader(shard_path, "shard snapshot") as data:
        try:
            graph = _graph_from_arrays(data, shard_path)
            shard_meta = json.loads(str(data["shard_meta"]))
        except json.JSONDecodeError as exc:
            raise GraphError(
                f"{shard_path}: shard metadata is not valid JSON"
            ) from exc
        cache_arrays = _cache_arrays_from(data, cache_span, shard_path)
    return graph, EvidenceCache.from_state_arrays(cache_span, cache_arrays), shard_meta


def save_sharded_engine(engine, path: "str | Path") -> None:
    """Snapshot a :class:`~repro.engine.ShardedDetectionEngine` directory.

    ``path`` becomes a directory holding one ``manifest.npz`` (the shard
    plan: partition ids, dataset fingerprint, serving statistics, and
    the shard file names) plus one ``shard_NNNN.npz`` per shard.  The
    dataset itself is *not* stored; :func:`load_sharded_engine` verifies
    the re-supplied one against the fingerprint.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    states = engine.shard_states()
    shard_files = [f"shard_{s:04d}.npz" for s in range(engine.n_shards)]
    for s, (state, fname) in enumerate(zip(states, shard_files)):
        _save_shard_archive(
            path / fname, state["graph"], state["cache"],
            {
                "shard_index": s,
                "n": engine.n,
                "knn_radii": [float(r) for r in state["knn_radii"]],
            },
        )
    manifest = {
        "sharded_format_version": np.asarray(_SHARDED_FORMAT_VERSION),
        "n": np.asarray(engine.n),
        "n_shards": np.asarray(engine.n_shards),
        "shard_sizes": np.asarray(
            [ids.size for ids in engine.shard_ids], dtype=np.int64
        ),
        "shard_ids": np.concatenate(engine.shard_ids).astype(np.int64),
        "manifest_meta": np.asarray(
            json.dumps(
                {
                    "stats": engine.stats,
                    "strategy": engine.strategy,
                    "graph": engine.graph_name,
                    "K": engine.K,
                    "build_workers": engine.build_workers,
                    "shard_files": shard_files,
                    "fingerprint": _dataset_fingerprint(engine.dataset),
                }
            )
        ),
    }
    np.savez_compressed(path / _MANIFEST_NAME, **manifest)


def load_sharded_engine(
    path: "str | Path",
    dataset,
    workers: "int | None" = None,
    rng: "int | np.random.Generator | None" = 0,
    mode: str = "auto",
    batch_size: int | None = None,
    start_method: "str | None" = None,
    backend=None,
    build_workers: "int | None" = None,
):
    """Rebuild a saved sharded engine against its (re-supplied) dataset.

    Raises :class:`GraphError` when the manifest is missing, unreadable
    or version-mismatched, when any shard file is missing, truncated or
    inconsistent, when the recorded shard ids do not partition the
    dataset, or when ``dataset`` is not the data the snapshot was built
    from.
    """
    from .core.traversal import DEFAULT_BLOCK
    from .engine.evidence import EvidenceCache
    from .engine.sharded import ShardedDetectionEngine

    if batch_size is None:
        batch_size = DEFAULT_BLOCK
    path = Path(path)
    manifest_path = path / _MANIFEST_NAME
    if not path.is_dir() or not manifest_path.exists():
        raise GraphError(
            f"{path}: no sharded-engine snapshot here (expected a directory "
            f"containing {_MANIFEST_NAME})"
        )
    with _NpzReader(manifest_path, "sharded-engine manifest") as data:
        version = int(data["sharded_format_version"])
        if version != _SHARDED_FORMAT_VERSION:
            raise GraphError(
                f"{manifest_path}: unsupported sharded snapshot version "
                f"{version} (this build reads version {_SHARDED_FORMAT_VERSION})"
            )
        n = int(data["n"])
        n_shards = int(data["n_shards"])
        sizes = data["shard_sizes"]
        flat_ids = data["shard_ids"]
        try:
            meta = json.loads(str(data["manifest_meta"]))
        except json.JSONDecodeError as exc:
            raise GraphError(
                f"{manifest_path}: manifest metadata is not valid JSON"
            ) from exc
    if n != dataset.n:
        raise GraphError(
            f"{manifest_path}: snapshot indexes {n} objects but the supplied "
            f"dataset has {dataset.n} — wrong dataset for this snapshot"
        )
    if sizes.size != n_shards or n_shards < 1:
        raise GraphError(
            f"{manifest_path}: manifest lists {sizes.size} shard sizes for "
            f"{n_shards} shards"
        )
    if int(sizes.sum()) != n or flat_ids.size != n or np.any(sizes < 1):
        raise GraphError(
            f"{manifest_path}: shard sizes are inconsistent with n={n}"
        )
    if not np.array_equal(np.sort(flat_ids), np.arange(n)):
        raise GraphError(
            f"{manifest_path}: shard ids do not partition 0..{n - 1}"
        )
    _check_fingerprint(meta.get("fingerprint"), dataset, manifest_path)
    shard_files = meta.get("shard_files", [])
    if len(shard_files) != n_shards:
        raise GraphError(
            f"{manifest_path}: manifest names {len(shard_files)} shard files "
            f"for {n_shards} shards"
        )
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    shard_ids = [
        np.sort(flat_ids[offsets[s]:offsets[s + 1]]).astype(np.int64)
        for s in range(n_shards)
    ]
    shard_state = []
    for s, fname in enumerate(shard_files):
        shard_path = path / str(fname)
        graph, cache, shard_meta = _load_shard_archive(shard_path, n)
        if graph.n != shard_ids[s].size:
            raise GraphError(
                f"{shard_path}: shard graph spans {graph.n} vertices but "
                f"the manifest assigns this shard {shard_ids[s].size} objects"
            )
        shard_state.append(
            {
                "graph": graph,
                "cache": cache,
                "knn_radii": [float(r) for r in shard_meta.get("knn_radii", ())],
            }
        )
    engine = ShardedDetectionEngine(
        dataset,
        n_shards=n_shards,
        workers=workers,
        strategy=str(meta.get("strategy", "permuted")),
        graph=str(meta.get("graph", "mrpg")),
        K=int(meta.get("K", 16)),
        rng=rng,
        mode=mode,
        batch_size=batch_size,
        start_method=start_method,
        shard_ids=shard_ids,
        shard_state=shard_state,
        backend=backend,
        build_workers=(
            build_workers if build_workers is not None
            else meta.get("build_workers")
        ),
    )
    _restore_stats(engine, meta.get("stats", {}))
    return engine


# -- mutable-sharded engine snapshots -----------------------------------------

_MUTABLE_SHARDED_FORMAT_VERSION = 1


def save_mutable_sharded_engine(engine, path: "str | Path") -> None:
    """Snapshot a mutable sharded engine as a versioned directory.

    ``path`` holds one ``manifest.npz`` (the full-id-space bookkeeping:
    alive mask, id -> shard routing, per-shard membership logs, serving
    statistics, pinned radii, a fingerprint of the full object log) and
    one ``shard_NNNN.npz`` per shard (the shard-local incremental graph
    — tombstones included — plus the repaired within-shard evidence
    cache).  The objects themselves are not stored; the caller
    re-supplies the full insertion log to
    :func:`load_mutable_sharded_engine`.
    """
    from .engine.evidence import EvidenceCache
    from .exceptions import ParameterError
    from .graphs.adjacency import Graph

    if engine.n_total == 0:
        raise ParameterError(
            "cannot snapshot a mutable sharded engine before any insert"
        )
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    states = engine.shard_states()
    n_total = engine.n_total
    shard_files = [f"shard_{s:04d}.npz" for s in range(engine.n_shards)]
    member_sizes = []
    member_gids = []
    for s, (state, fname) in enumerate(zip(states, shard_files)):
        members = [int(g) for g in state["member_gids"]]
        member_sizes.append(len(members))
        member_gids.extend(members)
        graph = state["graph"]
        cache = state["cache"]
        _save_shard_archive(
            path / fname,
            graph if graph is not None else Graph(1).finalize(),
            cache if cache is not None else EvidenceCache(n_total),
            {
                "shard_index": s,
                "n_total": n_total,
                "has_graph": graph is not None,
                "knn_radii": [float(r) for r in state["knn_radii"]],
            },
        )
    # The fingerprint covers the *full log* (dead entries included):
    # that is what the caller must re-supply at load time.  The engine
    # builds it store-aware — a shared-store log is already prepared
    # and must not be prepared twice (angular rows would re-normalise).
    full_ds = engine.log_dataset()
    manifest = {
        "mutable_sharded_format_version": np.asarray(
            _MUTABLE_SHARDED_FORMAT_VERSION
        ),
        "n_total": np.asarray(n_total),
        "n_shards": np.asarray(engine.n_shards),
        "alive": np.asarray(engine._alive, dtype=bool),
        "shard_of": np.asarray(engine._shard_of_list, dtype=np.int64),
        "member_sizes": np.asarray(member_sizes, dtype=np.int64),
        "member_gids": np.asarray(member_gids, dtype=np.int64),
        "manifest_meta": np.asarray(
            json.dumps(
                {
                    "stats": engine.stats,
                    "metric": engine.metric.name,
                    "graph": engine.graph_name,
                    "K": engine.K,
                    "build_workers": engine.build_workers,
                    "pairs": engine.pairs,
                    "epoch": engine.epoch,
                    "pinned": sorted(engine._pinned),
                    "shard_files": shard_files,
                    "fingerprint": _dataset_fingerprint(full_ds),
                }
            )
        ),
    }
    np.savez_compressed(path / _MANIFEST_NAME, **manifest)


def load_mutable_sharded_engine(path: "str | Path", objects, **kwargs):
    """Rebuild a saved mutable sharded engine against its full object log.

    ``objects`` must be the complete insertion-ordered log (tombstoned
    positions included), verified against the stored fingerprint.
    Remaining keyword arguments are execution knobs forwarded to the
    :class:`~repro.engine.mutable_sharded.MutableShardedDetectionEngine`
    constructor (``workers``, ``mode``, ``batch_size``, ...).

    Raises :class:`GraphError` on every malformed input: missing or
    unreadable manifest, version mismatch, inconsistent membership or
    alive arrays, missing shard files, or an object log that is not the
    data the snapshot was built from.
    """
    from .data import Dataset
    from .engine.mutable_sharded import MutableShardedDetectionEngine

    path = Path(path)
    manifest_path = path / _MANIFEST_NAME
    if not path.is_dir() or not manifest_path.exists():
        raise GraphError(
            f"{path}: no mutable-sharded snapshot here (expected a directory "
            f"containing {_MANIFEST_NAME})"
        )
    with _NpzReader(manifest_path, "mutable-sharded manifest") as data:
        if "mutable_sharded_format_version" not in data:
            raise GraphError(
                f"{manifest_path}: not a mutable-sharded manifest (a static "
                f"sharded snapshot? use load_sharded_engine instead)"
            )
        version = int(data["mutable_sharded_format_version"])
        if version != _MUTABLE_SHARDED_FORMAT_VERSION:
            raise GraphError(
                f"{manifest_path}: unsupported mutable-sharded snapshot "
                f"version {version} (this build reads version "
                f"{_MUTABLE_SHARDED_FORMAT_VERSION})"
            )
        n_total = int(data["n_total"])
        n_shards = int(data["n_shards"])
        alive = data["alive"]
        shard_of = data["shard_of"]
        member_sizes = data["member_sizes"]
        member_gids = data["member_gids"]
        try:
            meta = json.loads(str(data["manifest_meta"]))
        except json.JSONDecodeError as exc:
            raise GraphError(
                f"{manifest_path}: manifest metadata is not valid JSON"
            ) from exc
    object_log = list(objects)
    if len(object_log) != n_total:
        raise GraphError(
            f"{manifest_path}: snapshot spans {n_total} objects but the "
            f"supplied log has {len(object_log)} — wrong object log"
        )
    if alive.shape != (n_total,) or shard_of.shape != (n_total,):
        raise GraphError(
            f"{manifest_path}: alive/shard_of arrays do not match "
            f"n_total={n_total}"
        )
    if n_shards < 1 or member_sizes.shape != (n_shards,):
        raise GraphError(
            f"{manifest_path}: manifest lists {member_sizes.size} member "
            f"counts for {n_shards} shards"
        )
    if int(member_sizes.sum()) != member_gids.size:
        raise GraphError(
            f"{manifest_path}: membership logs are inconsistent"
        )
    if member_gids.size and (
        member_gids.min() < 0 or member_gids.max() >= n_total
    ):
        raise GraphError(
            f"{manifest_path}: member ids out of range for n_total={n_total}"
        )
    if shard_of.size and (shard_of.min() < 0 or shard_of.max() >= n_shards):
        raise GraphError(
            f"{manifest_path}: shard routing targets out of range for "
            f"{n_shards} shards"
        )
    shard_files = meta.get("shard_files", [])
    if len(shard_files) != n_shards:
        raise GraphError(
            f"{manifest_path}: manifest names {len(shard_files)} shard files "
            f"for {n_shards} shards"
        )
    metric = str(meta.get("metric", "l2"))
    kwargs.setdefault("build_workers", meta.get("build_workers"))
    engine = MutableShardedDetectionEngine(
        metric=metric,
        n_shards=n_shards,
        graph=str(meta.get("graph", "mrpg")),
        K=int(meta.get("K", 16)),
        pinned=[float(r) for r in meta.get("pinned", ())],
        **kwargs,
    )
    full_ds = Dataset(
        np.asarray(object_log, dtype=np.float64)
        if engine.metric.is_vector
        else object_log,
        engine.metric,
    )
    _check_fingerprint(meta.get("fingerprint"), full_ds, manifest_path)
    offsets = np.concatenate(([0], np.cumsum(member_sizes)))
    states = []
    for s, fname in enumerate(shard_files):
        members = member_gids[offsets[s]:offsets[s + 1]]
        graph, cache, shard_meta = _load_shard_archive(path / str(fname), n_total)
        has_graph = bool(shard_meta.get("has_graph", True))
        if has_graph and graph.n != max(1, members.size):
            raise GraphError(
                f"{path / str(fname)}: shard graph spans {graph.n} local "
                f"vertices but the manifest logs {members.size} members"
            )
        states.append(
            {
                "member_gids": members.tolist(),
                "graph": graph if has_graph else None,
                "cache": cache,
                "knn_radii": [float(r) for r in shard_meta.get("knn_radii", ())],
            }
        )
    engine._adopt_log(object_log)
    engine._alive = [bool(a) for a in alive]
    engine._shard_of_list = [int(s) for s in shard_of]
    engine._spawn_pool(states)
    engine.pairs = int(meta.get("pairs", 0))
    engine.epoch = int(meta.get("epoch", engine.epoch))
    _restore_stats(engine, meta.get("stats", {}))
    return engine


# -- format-sniffing loader ---------------------------------------------------


def load_any_engine(
    path: "str | Path",
    dataset=None,
    objects=None,
    *,
    workers: "int | None" = None,
    n_jobs: int = 1,
    rng: "int | np.random.Generator | None" = 0,
    mode: str = "auto",
    batch_size: "int | None" = None,
    start_method: "str | None" = None,
    **extra,
):
    """Load *any* engine snapshot, dispatching on the stored format.

    The :class:`~repro.engine.protocol.EngineCore` counterpart of the
    per-class loaders: directory snapshots resolve to the sharded
    engines (static needs ``dataset``, mutable needs the ``objects``
    log), single ``.npz`` snapshots to the single-process engines.
    Callers — the CLI in particular — no longer pick a loader by engine
    class.  The common execution knobs are routed to whichever subset
    the resolved engine takes (``workers`` for sharded engines,
    ``n_jobs`` for single-process ones); ``extra`` keywords — e.g.
    ``backend`` — are forwarded to the resolved loader.

    Raises :class:`GraphError` for unreadable paths, unknown formats,
    or when the required ``dataset``/``objects`` was not supplied.
    """
    path = Path(path)
    batch_kw = {} if batch_size is None else {"batch_size": batch_size}
    if path.is_dir():
        manifest_path = path / _MANIFEST_NAME
        if not manifest_path.exists():
            raise GraphError(
                f"{path}: directory holds no {_MANIFEST_NAME} — not an "
                f"engine snapshot"
            )
        with _NpzReader(manifest_path, "engine manifest") as data:
            mutable = "mutable_sharded_format_version" in data
        if mutable:
            if objects is None:
                raise GraphError(
                    f"{path}: a mutable-sharded snapshot needs the full "
                    f"object log re-supplied (objects=...)"
                )
            return load_mutable_sharded_engine(
                path, objects, workers=workers, mode=mode,
                start_method=start_method, **batch_kw, **extra,
            )
        if dataset is None:
            raise GraphError(
                f"{path}: a sharded snapshot needs the dataset re-supplied "
                f"(dataset=...)"
            )
        return load_sharded_engine(
            path, dataset, workers=workers, rng=rng, mode=mode,
            batch_size=batch_size, start_method=start_method, **extra,
        )
    with _NpzReader(path, "engine snapshot") as data:
        mutable = "mutable_format_version" in data
        static = "engine_format_version" in data
    if mutable:
        if objects is None:
            raise GraphError(
                f"{path}: a mutable snapshot needs the full object log "
                f"re-supplied (objects=...)"
            )
        return load_mutable_engine(
            path, objects, n_jobs=n_jobs, mode=mode, **batch_kw, **extra,
        )
    if static:
        if dataset is None:
            raise GraphError(
                f"{path}: an engine snapshot needs the dataset re-supplied "
                f"(dataset=...)"
            )
        return load_engine(
            path, dataset, n_jobs=n_jobs, rng=rng, mode=mode,
            batch_size=batch_size, **extra,
        )
    raise GraphError(
        f"{path}: not an engine snapshot of any known format (a bare graph "
        f".npz? use load_graph instead)"
    )
