"""The :class:`Dataset` container.

Every algorithm in the library sees data exclusively through a
:class:`Dataset`: a prepared metric store plus a distance-evaluation
counter.  The counter gives a machine-independent cost measure — the
number of distance computations — which is what the paper's pruning
arguments (Theorem 1, Table 7) are fundamentally about, and is far less
noisy than wall-clock time in a Python reproduction.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .exceptions import ParameterError
from .metrics import Metric, resolve_metric


class DistanceCounter:
    """Tallies distance evaluations.

    ``calls`` counts kernel invocations; ``pairs`` counts object pairs
    evaluated (the quantity reported in experiments).
    """

    __slots__ = ("calls", "pairs")

    def __init__(self) -> None:
        self.calls = 0
        self.pairs = 0

    def add(self, pairs: int) -> None:
        self.calls += 1
        self.pairs += int(pairs)

    def reset(self) -> None:
        self.calls = 0
        self.pairs = 0

    def snapshot(self) -> tuple[int, int]:
        return self.calls, self.pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceCounter(calls={self.calls}, pairs={self.pairs})"


class Dataset:
    """A set of objects in a metric space, addressed by index ``0..n-1``.

    Parameters
    ----------
    objects:
        A 2-D array-like of vectors, or a sequence of strings for the
        edit metric.
    metric:
        A :class:`~repro.metrics.base.Metric` instance or registry name
        such as ``"l2"``, ``"angular"``, ``"edit"``.
    """

    def __init__(self, objects: Any, metric: "str | Metric" = "l2"):
        self.metric = resolve_metric(metric)
        self.store = self.metric.prepare(objects)
        self.n = self.metric.n_objects(self.store)
        self.counter = DistanceCounter()

    # -- distance queries ---------------------------------------------------

    def dist(self, i: int, j: int) -> float:
        """Distance between objects ``i`` and ``j``."""
        self.counter.add(1)
        return self.metric.dist(self.store, i, j)

    def dist_many(
        self, i: int, idx: np.ndarray, bound: float | None = None
    ) -> np.ndarray:
        """Distances from object ``i`` to every index in ``idx``.

        ``bound`` enables early abandon for metrics that support it (edit
        distance): entries above ``bound`` may come back as ``bound + 1``.
        """
        idx = np.asarray(idx, dtype=np.int64)
        self.counter.add(idx.size)
        return self.metric.dist_many(self.store, i, idx, bound=bound)

    def pair_dist(
        self,
        a: np.ndarray,
        b: np.ndarray,
        bound: float | None = None,
        consistent: bool = False,
    ) -> np.ndarray:
        """Element-wise distances ``dist(a[t], b[t])``.

        The two keyword knobs form the kernel contract every batched
        detection path relies on:

        * ``bound`` enables early abandoning: any entry whose true
          distance exceeds ``bound`` may come back as a different value,
          but **never** one at or below ``bound`` — the
          within-``bound`` verdict is always faithful, and entries truly
          within ``bound`` are returned bit-exact.
        * ``consistent=True`` demands values bitwise row-consistent with
          :meth:`dist_many` (the batched detection paths need this to
          stay bit-identical to the scalar ones); metrics whose pair
          kernel cannot guarantee it (different reduction order) then
          evaluate via one ``dist_many`` call per distinct source
          instead — see :attr:`Metric.pair_rowwise_consistent`.

        Example
        -------
        >>> import numpy as np
        >>> ds = Dataset(np.array([[0.0, 0.0], [3.0, 4.0], [9.0, 12.0]]), "l2")
        >>> ds.pair_dist(np.array([0, 1]), np.array([1, 2])).tolist()
        [5.0, 10.0]
        >>> d = ds.pair_dist(np.array([0]), np.array([2]), bound=6.0,
        ...                  consistent=True)
        >>> bool(d[0] > 6.0)   # true distance 15: only the verdict is promised
        True
        """
        a = np.asarray(a, dtype=np.int64)
        self.counter.add(a.size)
        if consistent and not self.metric.pair_rowwise_consistent:
            return self.metric.pair_dist_grouped(self.store, a, b, bound=bound)
        return self.metric.pair_dist(self.store, a, b, bound=bound)

    # -- object access --------------------------------------------------------

    def get(self, i: int) -> Any:
        """Return the original object ``i`` (vector row or string)."""
        getter = getattr(self.metric, "get", None)
        if getter is not None:
            return getter(self.store, i)
        return self.store[int(i)]

    def subset(self, idx: np.ndarray) -> "Dataset":
        """A new dataset holding only the objects in ``idx`` (re-numbered).

        Used by the sampling-rate experiments (Figures 6-7): the paper
        varies ``n`` by random sampling of each dataset.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            raise ParameterError("subset: empty index set")
        sub = object.__new__(Dataset)
        sub.metric = self.metric
        taker = getattr(self.metric, "take", None)
        if taker is not None:
            sub.store = taker(self.store, idx)
        else:
            sub.store = np.ascontiguousarray(self.store[idx])
        sub.n = self.metric.n_objects(sub.store)
        sub.counter = DistanceCounter()
        return sub

    def view(self) -> "Dataset":
        """A shallow copy sharing the store but owning a fresh counter.

        Parallel workers each get a view so distance accounting needs no
        locking; the per-worker counters are merged by the caller.
        """
        v = object.__new__(Dataset)
        v.metric = self.metric
        v.store = self.store
        v.n = self.n
        v.counter = DistanceCounter()
        return v

    def sample(self, rate: float, rng: "int | np.random.Generator | None" = None) -> "Dataset":
        """Random subsample keeping ``rate`` of the objects."""
        from .rng import ensure_rng

        if not 0.0 < rate <= 1.0:
            raise ParameterError(f"sample: rate must be in (0, 1], got {rate}")
        if rate == 1.0:
            return self
        gen = ensure_rng(rng)
        m = max(1, int(round(self.n * rate)))
        idx = gen.choice(self.n, size=m, replace=False)
        idx.sort()
        return self.subset(idx)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Approximate memory held by the prepared store."""
        return self.metric.nbytes(self.store)

    def reset_counter(self) -> None:
        self.counter.reset()

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(n={self.n}, metric={self.metric.name})"
