"""The :class:`Dataset` container.

Every algorithm in the library sees data exclusively through a
:class:`Dataset`: a prepared metric store plus a distance-evaluation
counter.  The counter gives a machine-independent cost measure — the
number of distance computations — which is what the paper's pruning
arguments (Theorem 1, Table 7) are fundamentally about, and is far less
noisy than wall-clock time in a Python reproduction.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .backends import NumericBackend, resolve_backend
from .exceptions import GraphError, ParameterError
from .metrics import Metric, resolve_metric


def _checked_vector_input(objects: Any, metric_name: str) -> Any:
    """Reject stores the float kernels cannot take, before they crash.

    Array-likes destined for a vector metric must be numeric and at
    least float32-wide: ``object`` arrays (ragged rows, mixed types)
    and ``float16`` (whose rounding is wider than every screening error
    band, so the exactness contract cannot be restated in it) fail here
    with a :class:`GraphError` instead of a downstream kernel crash.
    Plain sequences are converted once so ragged inputs are caught too;
    the metric's ``prepare`` then normalizes the dtype (float64 for Lp
    and angular stores).
    """
    if not isinstance(objects, np.ndarray):
        try:
            objects = np.asarray(objects)
        except (ValueError, TypeError) as exc:
            raise GraphError(
                f"{metric_name}: input is not a rectangular numeric "
                f"array ({exc})"
            ) from None
    if objects.dtype == np.object_:
        raise GraphError(
            f"{metric_name}: object-dtype store (ragged rows or mixed "
            f"types); supply a rectangular numeric array"
        )
    if objects.dtype == np.float16:
        raise GraphError(
            f"{metric_name}: float16 store is below the library's "
            f"precision contract; convert to float32 or float64"
        )
    if not (
        np.issubdtype(objects.dtype, np.number)
        or np.issubdtype(objects.dtype, np.bool_)
    ):
        raise GraphError(
            f"{metric_name}: non-numeric store dtype {objects.dtype!r}"
        )
    return objects


class DistanceCounter:
    """Tallies distance evaluations.

    ``calls`` counts kernel invocations; ``pairs`` counts object pairs
    evaluated (the quantity reported in experiments).
    """

    __slots__ = ("calls", "pairs")

    def __init__(self) -> None:
        self.calls = 0
        self.pairs = 0

    def add(self, pairs: int) -> None:
        self.calls += 1
        self.pairs += int(pairs)

    def reset(self) -> None:
        self.calls = 0
        self.pairs = 0

    def snapshot(self) -> tuple[int, int]:
        return self.calls, self.pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceCounter(calls={self.calls}, pairs={self.pairs})"


class Dataset:
    """A set of objects in a metric space, addressed by index ``0..n-1``.

    Parameters
    ----------
    objects:
        A 2-D array-like of vectors, or a sequence of strings for the
        edit metric.
    metric:
        A :class:`~repro.metrics.base.Metric` instance or registry name
        such as ``"l2"``, ``"angular"``, ``"edit"``.
    backend:
        A :class:`~repro.backends.NumericBackend` instance or registry
        name (``"numpy64"``, ``"float32"``); ``None`` is the exact
        float64 default.  Screening backends accelerate only the
        bounded :meth:`pair_dist` calls — :meth:`dist` and
        :meth:`dist_many` always run the exact kernels, so scalar
        oracle paths are backend-independent.
    """

    #: class-level defaults so clone paths that bypass ``__init__``
    #: (transport materialisation, pickling) stay on the exact kernels.
    backend: "NumericBackend | None" = None
    _screen: Any = None

    def __init__(
        self,
        objects: Any,
        metric: "str | Metric" = "l2",
        backend: "str | NumericBackend | None" = None,
    ):
        self.metric = resolve_metric(metric)
        if self.metric.is_vector:
            objects = _checked_vector_input(objects, self.metric.name)
        self.store = self.metric.prepare(objects)
        self.n = self.metric.n_objects(self.store)
        self.counter = DistanceCounter()
        if backend is not None:
            self.set_backend(backend)

    # -- distance queries ---------------------------------------------------

    def dist(self, i: int, j: int) -> float:
        """Distance between objects ``i`` and ``j``."""
        self.counter.add(1)
        return self.metric.dist(self.store, i, j)

    def dist_many(
        self, i: int, idx: np.ndarray, bound: float | None = None
    ) -> np.ndarray:
        """Distances from object ``i`` to every index in ``idx``.

        ``bound`` enables early abandon for metrics that support it (edit
        distance): entries above ``bound`` may come back as ``bound + 1``.
        """
        idx = np.asarray(idx, dtype=np.int64)
        self.counter.add(idx.size)
        return self.metric.dist_many(self.store, i, idx, bound=bound)

    def pair_dist(
        self,
        a: np.ndarray,
        b: np.ndarray,
        bound: "float | tuple | None" = None,
        consistent: bool = False,
    ) -> np.ndarray:
        """Element-wise distances ``dist(a[t], b[t])``.

        The keyword knobs form the kernel contract every batched
        detection path relies on:

        * ``bound`` enables early abandoning — and, when a screening
          backend is attached, the float32 screen.  It is a single
          threshold or a sequence of thresholds; every returned value
          is **verdict-faithful at each threshold**: ``value <= r``
          exactly when the exact float64 kernel's value is ``<= r``.
          Entries whose true distance exceeds every threshold may come
          back as any value above the largest one.  Under the default
          backend, entries truly within the largest threshold are
          additionally bit-exact; a screening backend guarantees
          bit-exactness only inside the metric's error band of a
          threshold (band pairs are re-evaluated in float64), which is
          precisely what keeps count-by-comparison callers
          bit-identical.  Callers that consume the returned *values*
          beyond comparing them against the listed thresholds must pass
          ``bound=None``.
        * ``consistent=True`` demands values bitwise row-consistent with
          :meth:`dist_many` (the batched detection paths need this to
          stay bit-identical to the scalar ones); metrics whose pair
          kernel cannot guarantee it (different reduction order) then
          evaluate via one ``dist_many`` call per distinct source
          instead — see :attr:`Metric.pair_rowwise_consistent`.
          Screening backends honor it on the rescreened band.

        Example
        -------
        >>> import numpy as np
        >>> pts = np.array([[0.0, 0.0], [3.0, 4.0], [9.0, 12.0]])
        >>> ds = Dataset(pts, "l2")
        >>> ds.pair_dist(np.array([0, 1]), np.array([1, 2])).tolist()
        [5.0, 10.0]
        >>> d = ds.pair_dist(np.array([0]), np.array([2]), bound=6.0,
        ...                  consistent=True)
        >>> bool(d[0] > 6.0)   # true distance 15: only the verdict is promised
        True
        >>> ds32 = Dataset(pts, "l2", backend="float32")
        >>> d32 = ds32.pair_dist(np.array([0, 1]), np.array([1, 2]), bound=6.0)
        >>> [bool(v <= 6.0) for v in d32]   # same verdicts as float64
        [True, False]
        """
        a = np.asarray(a, dtype=np.int64)
        self.counter.add(a.size)
        if bound is None:
            radii = None
        elif isinstance(bound, (int, float, np.floating, np.integer)):
            radii = (float(bound),)
        else:
            radii = tuple(sorted(float(r) for r in bound)) or None
        bound_max = radii[-1] if radii is not None else None
        if radii is not None and self._screen is not None:
            out = self.backend.screened_pair_dist(
                self.metric, self.store, self._screen, a, b, radii, consistent
            )
            if out is not None:
                return out
        if consistent and not self.metric.pair_rowwise_consistent:
            return self.metric.pair_dist_grouped(self.store, a, b, bound=bound_max)
        return self.metric.pair_dist(self.store, a, b, bound=bound_max)

    # -- object access --------------------------------------------------------

    def get(self, i: int) -> Any:
        """Return the original object ``i`` (vector row or string)."""
        getter = getattr(self.metric, "get", None)
        if getter is not None:
            return getter(self.store, i)
        return self.store[int(i)]

    def subset(self, idx: np.ndarray) -> "Dataset":
        """A new dataset holding only the objects in ``idx`` (re-numbered).

        Used by the sampling-rate experiments (Figures 6-7): the paper
        varies ``n`` by random sampling of each dataset.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            raise ParameterError("subset: empty index set")
        sub = object.__new__(Dataset)
        sub.metric = self.metric
        taker = getattr(self.metric, "take", None)
        if taker is not None:
            sub.store = taker(self.store, idx)
        else:
            sub.store = np.ascontiguousarray(self.store[idx])
        sub.n = self.metric.n_objects(sub.store)
        sub.counter = DistanceCounter()
        sub.backend = self.backend
        sub._screen = (
            None if self.backend is None
            else self.backend.screen_state(self.metric, sub.store)
        )
        return sub

    def view(self) -> "Dataset":
        """A shallow copy sharing the store but owning a fresh counter.

        Parallel workers each get a view so distance accounting needs no
        locking; the per-worker counters are merged by the caller.
        """
        v = object.__new__(Dataset)
        v.metric = self.metric
        v.store = self.store
        v.n = self.n
        v.counter = DistanceCounter()
        v.backend = self.backend
        v._screen = self._screen
        return v

    def sample(self, rate: float, rng: "int | np.random.Generator | None" = None) -> "Dataset":
        """Random subsample keeping ``rate`` of the objects."""
        from .rng import ensure_rng

        if not 0.0 < rate <= 1.0:
            raise ParameterError(f"sample: rate must be in (0, 1], got {rate}")
        if rate == 1.0:
            return self
        gen = ensure_rng(rng)
        m = max(1, int(round(self.n * rate)))
        idx = gen.choice(self.n, size=m, replace=False)
        idx.sort()
        return self.subset(idx)

    # -- numeric backend -----------------------------------------------------

    def set_backend(
        self, backend: "str | NumericBackend | None"
    ) -> "Dataset":
        """Attach a numeric backend (in place); returns ``self``.

        Accepts a registry name, a shared
        :class:`~repro.backends.NumericBackend` instance (so one
        engine's datasets can aggregate screen stats), or ``None`` to
        restore the exact default.  Screening state is (re)built for
        the current store.
        """
        self.backend = None if backend is None else resolve_backend(backend)
        self._screen = (
            None if self.backend is None
            else self.backend.screen_state(self.metric, self.store)
        )
        return self

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend (``"numpy64"`` default)."""
        return "numpy64" if self.backend is None else self.backend.name

    def backend_stats(self) -> dict:
        """``{"backend": name, **screen/rescreen counters}``."""
        if self.backend is None:
            return {
                "backend": "numpy64", "screen_calls": 0,
                "screened_pairs": 0, "rescreened_pairs": 0,
            }
        return self.backend.stats_dict()

    @property
    def kernel_budget_scale(self) -> float:
        """Pair-budget multiplier for block sweeps.

        Screening backends touch half the bytes per pair, so the linear
        index can afford proportionally wider kernel blocks for the
        same cache footprint; 1.0 whenever screening is inactive.
        """
        return 1.0 if self._screen is None else self.backend.kernel_budget_scale

    # -- bookkeeping ---------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Approximate memory held by the prepared store."""
        return self.metric.nbytes(self.store)

    def reset_counter(self) -> None:
        self.counter.reset()

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = "" if self.backend is None else f", backend={self.backend.name}"
        return f"Dataset(n={self.n}, metric={self.metric.name}{extra})"
