"""The :class:`Dataset` container.

Every algorithm in the library sees data exclusively through a
:class:`Dataset`: a prepared metric store plus a distance-evaluation
counter.  The counter gives a machine-independent cost measure — the
number of distance computations — which is what the paper's pruning
arguments (Theorem 1, Table 7) are fundamentally about, and is far less
noisy than wall-clock time in a Python reproduction.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .backends import NumericBackend, resolve_backend
from .exceptions import GraphError, ParameterError
from .metrics import Metric, resolve_metric

#: element budget (rows x dimensionality) per gathered block on
#: **out-of-core** (memmap) stores.  Every batched distance query
#: gathers its rows into private RAM before the kernel runs; chunking
#: the gather at this budget — here and in the linear sweeps — is what
#: bounds the resident working set to the budget instead of the store
#: size.  Row-wise kernels make the chunked evaluation bit-identical
#: to the unchunked one.
MEMMAP_ELEM_BUDGET = 1 << 19


def _checked_vector_input(objects: Any, metric_name: str) -> Any:
    """Reject stores the float kernels cannot take, before they crash.

    Array-likes destined for a vector metric must be numeric and at
    least float32-wide: ``object`` arrays (ragged rows, mixed types)
    and ``float16`` (whose rounding is wider than every screening error
    band, so the exactness contract cannot be restated in it) fail here
    with a :class:`GraphError` instead of a downstream kernel crash.
    Plain sequences are converted once so ragged inputs are caught too;
    the metric's ``prepare`` then normalizes the dtype (float64 for Lp
    and angular stores).
    """
    if not isinstance(objects, np.ndarray):
        try:
            objects = np.asarray(objects)
        except (ValueError, TypeError) as exc:
            raise GraphError(
                f"{metric_name}: input is not a rectangular numeric "
                f"array ({exc})"
            ) from None
    if objects.dtype == np.object_:
        raise GraphError(
            f"{metric_name}: object-dtype store (ragged rows or mixed "
            f"types); supply a rectangular numeric array"
        )
    if objects.dtype == np.float16:
        raise GraphError(
            f"{metric_name}: float16 store is below the library's "
            f"precision contract; convert to float32 or float64"
        )
    if not (
        np.issubdtype(objects.dtype, np.number)
        or np.issubdtype(objects.dtype, np.bool_)
    ):
        raise GraphError(
            f"{metric_name}: non-numeric store dtype {objects.dtype!r}"
        )
    return objects


class DistanceCounter:
    """Tallies distance evaluations.

    ``calls`` counts kernel invocations; ``pairs`` counts object pairs
    evaluated (the quantity reported in experiments).
    """

    __slots__ = ("calls", "pairs")

    def __init__(self) -> None:
        self.calls = 0
        self.pairs = 0

    def add(self, pairs: int) -> None:
        self.calls += 1
        self.pairs += int(pairs)

    def reset(self) -> None:
        self.calls = 0
        self.pairs = 0

    def snapshot(self) -> tuple[int, int]:
        return self.calls, self.pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceCounter(calls={self.calls}, pairs={self.pairs})"


class Dataset:
    """A set of objects in a metric space, addressed by index ``0..n-1``.

    Parameters
    ----------
    objects:
        A 2-D array-like of vectors, or a sequence of strings for the
        edit metric.
    metric:
        A :class:`~repro.metrics.base.Metric` instance or registry name
        such as ``"l2"``, ``"angular"``, ``"edit"``.
    backend:
        A :class:`~repro.backends.NumericBackend` instance or registry
        name (``"numpy64"``, ``"float32"``); ``None`` is the exact
        float64 default.  Screening backends accelerate only the
        bounded :meth:`pair_dist` calls — :meth:`dist` and
        :meth:`dist_many` always run the exact kernels, so scalar
        oracle paths are backend-independent.
    """

    #: class-level defaults so clone paths that bypass ``__init__``
    #: (transport materialisation, pickling) stay on the exact kernels.
    backend: "NumericBackend | None" = None
    _screen: Any = None
    #: where the prepared store lives: ``"ram"`` (a private ndarray),
    #: ``"shm"`` (a zero-copy view onto a shared segment), or
    #: ``"memmap"`` (an out-of-core ``.npy`` mapping).  Sweeps consult
    #: this to bound their resident working set.
    store_kind: str = "ram"

    def __init__(
        self,
        objects: Any,
        metric: "str | Metric" = "l2",
        backend: "str | NumericBackend | None" = None,
    ):
        self.metric = resolve_metric(metric)
        if self.metric.is_vector:
            objects = _checked_vector_input(objects, self.metric.name)
        self.store = self.metric.prepare(objects)
        self.n = self.metric.n_objects(self.store)
        self.counter = DistanceCounter()
        if backend is not None:
            self.set_backend(backend)

    @classmethod
    def from_prepared(
        cls,
        store: np.ndarray,
        metric: "str | Metric" = "l2",
        backend: "str | NumericBackend | None" = None,
        kind: "str | None" = None,
    ) -> "Dataset":
        """Wrap an **already-prepared** store without copying it.

        The zero-copy constructor behind the shared object store
        (:class:`~repro.core.store.SharedObjectStore` row views) and
        memmap datasets (:func:`repro.io.open_memmap_dataset`): the
        caller vouches that ``store`` is bitwise what
        ``metric.prepare`` would produce — a C-contiguous 2-D float64
        array, rows unit-normalised for the angular metric — so no
        copy, cast or re-normalisation happens here.  Structural
        violations (wrong dtype/layout/metric family) raise
        :class:`GraphError`; content guarantees (finiteness,
        normalisation) remain the caller's, because checking them would
        re-read an out-of-core store.

        ``kind`` overrides the :attr:`store_kind` tag (``"shm"`` for
        shared-segment views); memmap stores are tagged automatically.
        """
        resolved = resolve_metric(metric)
        if not resolved.is_vector:
            raise GraphError(
                f"{resolved.name}: from_prepared takes vector stores only"
            )
        if not isinstance(store, np.ndarray):
            raise GraphError(
                f"{resolved.name}: from_prepared needs an ndarray, got "
                f"{type(store).__name__}"
            )
        if store.ndim != 2 or store.shape[0] == 0:
            raise GraphError(
                f"{resolved.name}: from_prepared needs a non-empty 2-D "
                f"store, got shape {store.shape}"
            )
        if store.dtype != np.float64:
            raise GraphError(
                f"{resolved.name}: prepared stores are float64, got "
                f"{store.dtype} (did you mean Dataset(...)?)"
            )
        if not store.flags["C_CONTIGUOUS"]:
            raise GraphError(
                f"{resolved.name}: prepared stores are C-contiguous; this "
                f"one is not"
            )
        ds = object.__new__(cls)
        ds.metric = resolved
        ds.store = store
        ds.n = resolved.n_objects(store)
        ds.counter = DistanceCounter()
        if kind is not None:
            ds.store_kind = str(kind)
        elif isinstance(store, np.memmap):
            ds.store_kind = "memmap"
        if backend is not None:
            ds.set_backend(backend)
        return ds

    # -- distance queries ---------------------------------------------------

    def dist(self, i: int, j: int) -> float:
        """Distance between objects ``i`` and ``j``."""
        self.counter.add(1)
        return self.metric.dist(self.store, i, j)

    def dist_many(
        self, i: int, idx: np.ndarray, bound: float | None = None
    ) -> np.ndarray:
        """Distances from object ``i`` to every index in ``idx``.

        ``bound`` enables early abandon for metrics that support it (edit
        distance): entries above ``bound`` may come back as ``bound + 1``.
        """
        idx = np.asarray(idx, dtype=np.int64)
        self.counter.add(idx.size)
        chunk = self._gather_chunk(idx.size)
        if chunk is None:
            return self.metric.dist_many(self.store, i, idx, bound=bound)
        # Out-of-core store: evaluate in row chunks so the gathered
        # block, not the store, bounds resident memory.  The kernels
        # reduce row-wise, so the concatenation is bit-identical.
        return np.concatenate([
            self.metric.dist_many(self.store, i, idx[lo:lo + chunk],
                                  bound=bound)
            for lo in range(0, idx.size, chunk)
        ])

    def pair_dist(
        self,
        a: np.ndarray,
        b: np.ndarray,
        bound: "float | tuple | None" = None,
        consistent: bool = False,
    ) -> np.ndarray:
        """Element-wise distances ``dist(a[t], b[t])``.

        The keyword knobs form the kernel contract every batched
        detection path relies on:

        * ``bound`` enables early abandoning — and, when a screening
          backend is attached, the float32 screen.  It is a single
          threshold or a sequence of thresholds; every returned value
          is **verdict-faithful at each threshold**: ``value <= r``
          exactly when the exact float64 kernel's value is ``<= r``.
          Entries whose true distance exceeds every threshold may come
          back as any value above the largest one.  Under the default
          backend, entries truly within the largest threshold are
          additionally bit-exact; a screening backend guarantees
          bit-exactness only inside the metric's error band of a
          threshold (band pairs are re-evaluated in float64), which is
          precisely what keeps count-by-comparison callers
          bit-identical.  Callers that consume the returned *values*
          beyond comparing them against the listed thresholds must pass
          ``bound=None``.
        * ``consistent=True`` demands values bitwise row-consistent with
          :meth:`dist_many` (the batched detection paths need this to
          stay bit-identical to the scalar ones); metrics whose pair
          kernel cannot guarantee it (different reduction order) then
          evaluate via one ``dist_many`` call per distinct source
          instead — see :attr:`Metric.pair_rowwise_consistent`.
          Screening backends honor it on the rescreened band.

        Example
        -------
        >>> import numpy as np
        >>> pts = np.array([[0.0, 0.0], [3.0, 4.0], [9.0, 12.0]])
        >>> ds = Dataset(pts, "l2")
        >>> ds.pair_dist(np.array([0, 1]), np.array([1, 2])).tolist()
        [5.0, 10.0]
        >>> d = ds.pair_dist(np.array([0]), np.array([2]), bound=6.0,
        ...                  consistent=True)
        >>> bool(d[0] > 6.0)   # true distance 15: only the verdict is promised
        True
        >>> ds32 = Dataset(pts, "l2", backend="float32")
        >>> d32 = ds32.pair_dist(np.array([0, 1]), np.array([1, 2]), bound=6.0)
        >>> [bool(v <= 6.0) for v in d32]   # same verdicts as float64
        [True, False]
        """
        a = np.asarray(a, dtype=np.int64)
        self.counter.add(a.size)
        if bound is None:
            radii = None
        elif isinstance(bound, (int, float, np.floating, np.integer)):
            radii = (float(bound),)
        else:
            radii = tuple(sorted(float(r) for r in bound)) or None
        chunk = self._gather_chunk(a.size)
        if chunk is None:
            return self._pair_dist_block(a, b, radii, consistent)
        # Out-of-core store: element-wise evaluation is chunked so each
        # gathered block fits the memmap budget.  Per-element values
        # (and screening verdicts) do not depend on the batch split.
        b = np.asarray(b, dtype=np.int64)
        return np.concatenate([
            self._pair_dist_block(a[lo:lo + chunk], b[lo:lo + chunk],
                                  radii, consistent)
            for lo in range(0, a.size, chunk)
        ])

    def _pair_dist_block(self, a, b, radii, consistent) -> np.ndarray:
        """One kernel-sized :meth:`pair_dist` block (already counted)."""
        bound_max = radii[-1] if radii is not None else None
        if radii is not None and self._screen is not None:
            out = self.backend.screened_pair_dist(
                self.metric, self.store, self._screen, a, b, radii, consistent
            )
            if out is not None:
                return out
        if consistent and not self.metric.pair_rowwise_consistent:
            return self.metric.pair_dist_grouped(self.store, a, b, bound=bound_max)
        return self.metric.pair_dist(self.store, a, b, bound=bound_max)

    def _gather_chunk(self, n_rows: int) -> "int | None":
        """Rows per gathered block, or ``None`` when no chunking applies.

        Only memmap-backed stores chunk — in-RAM and shared-segment
        stores index views without materialising copies, so splitting
        their kernels would cost calls without saving memory.  And only
        metrics with partition-stable kernels
        (:attr:`~repro.metrics.base.Metric.chunkable_gather`) chunk:
        angular's BLAS matvec picks batch-size-dependent reduction
        orders, so splitting it would break bit-identity with in-RAM
        runs.
        """
        if self.store_kind != "memmap" or not self.metric.chunkable_gather:
            return None
        shape = getattr(self.store, "shape", None)
        if shape is None or len(shape) != 2:
            return None
        chunk = max(1, MEMMAP_ELEM_BUDGET // max(1, int(shape[1])))
        return chunk if n_rows > chunk else None

    # -- object access --------------------------------------------------------

    def get(self, i: int) -> Any:
        """Return the original object ``i`` (vector row or string)."""
        getter = getattr(self.metric, "get", None)
        if getter is not None:
            return getter(self.store, i)
        return self.store[int(i)]

    def subset(self, idx: np.ndarray) -> "Dataset":
        """A new dataset holding only the objects in ``idx`` (re-numbered).

        Used by the sampling-rate experiments (Figures 6-7): the paper
        varies ``n`` by random sampling of each dataset.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            raise ParameterError("subset: empty index set")
        sub = object.__new__(Dataset)
        sub.metric = self.metric
        taker = getattr(self.metric, "take", None)
        if taker is not None:
            sub.store = taker(self.store, idx)
        else:
            sub.store = np.ascontiguousarray(self.store[idx])
        sub.n = self.metric.n_objects(sub.store)
        sub.counter = DistanceCounter()
        sub.backend = self.backend
        sub._screen = (
            None if self.backend is None
            else self.backend.screen_state(self.metric, sub.store)
        )
        return sub

    def view(self) -> "Dataset":
        """A shallow copy sharing the store but owning a fresh counter.

        Parallel workers each get a view so distance accounting needs no
        locking; the per-worker counters are merged by the caller.
        """
        v = object.__new__(Dataset)
        v.metric = self.metric
        v.store = self.store
        v.n = self.n
        v.counter = DistanceCounter()
        v.backend = self.backend
        v._screen = self._screen
        v.store_kind = self.store_kind
        return v

    def sample(self, rate: float, rng: "int | np.random.Generator | None" = None) -> "Dataset":
        """Random subsample keeping ``rate`` of the objects."""
        from .rng import ensure_rng

        if not 0.0 < rate <= 1.0:
            raise ParameterError(f"sample: rate must be in (0, 1], got {rate}")
        if rate == 1.0:
            return self
        gen = ensure_rng(rng)
        m = max(1, int(round(self.n * rate)))
        idx = gen.choice(self.n, size=m, replace=False)
        idx.sort()
        return self.subset(idx)

    # -- numeric backend -----------------------------------------------------

    def set_backend(
        self, backend: "str | NumericBackend | None"
    ) -> "Dataset":
        """Attach a numeric backend (in place); returns ``self``.

        Accepts a registry name, a shared
        :class:`~repro.backends.NumericBackend` instance (so one
        engine's datasets can aggregate screen stats), or ``None`` to
        restore the exact default.  Screening state is (re)built for
        the current store.
        """
        self.backend = None if backend is None else resolve_backend(backend)
        self._screen = (
            None if self.backend is None
            else self.backend.screen_state(self.metric, self.store)
        )
        return self

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend (``"numpy64"`` default)."""
        return "numpy64" if self.backend is None else self.backend.name

    def backend_stats(self) -> dict:
        """``{"backend": name, **screen/rescreen counters}``."""
        if self.backend is None:
            return {
                "backend": "numpy64", "screen_calls": 0,
                "screened_pairs": 0, "rescreened_pairs": 0,
            }
        return self.backend.stats_dict()

    @property
    def kernel_budget_scale(self) -> float:
        """Pair-budget multiplier for block sweeps.

        Screening backends touch half the bytes per pair, so the linear
        index can afford proportionally wider kernel blocks for the
        same cache footprint; 1.0 whenever screening is inactive.
        """
        return 1.0 if self._screen is None else self.backend.kernel_budget_scale

    # -- bookkeeping ---------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Approximate memory held by the prepared store."""
        return self.metric.nbytes(self.store)

    @property
    def resident_nbytes(self) -> int:
        """Bytes the store pins in *this process's private* memory.

        Zero for memmap stores (file-backed pages, evictable) and for
        shared-segment views (counted once by the owning store); the
        full store size for ordinary in-RAM datasets.
        """
        return 0 if self.store_kind in ("memmap", "shm") else self.nbytes

    def store_stats(self) -> dict:
        """``{"kind", "nbytes", "resident_nbytes"}`` for ``/stats``."""
        return {
            "kind": self.store_kind,
            "nbytes": int(self.nbytes),
            "resident_nbytes": int(self.resident_nbytes),
        }

    def reset_counter(self) -> None:
        self.counter.reset()

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = "" if self.backend is None else f", backend={self.backend.name}"
        return f"Dataset(n={self.n}, metric={self.metric.name}{extra})"
