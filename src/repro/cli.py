"""Command-line interface.

Installed as ``repro-dod``::

    repro-dod suites                         # list the dataset suites
    repro-dod detect --suite glove           # detect outliers on a suite
    repro-dod detect --input pts.npy --r 0.5 --k 20
    repro-dod sweep --suite glove --k-grid 15,20,25   # engine-served grid
    repro-dod serve --suite glove --port 8734         # HTTP serving tier
    repro-dod experiment table5 --save-dir results
    repro-dod calibrate --suite sift --k 20 --target 0.01
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from . import __version__
from .core.traversal import DEFAULT_BLOCK
from .datasets import SUITES, calibrate_r, get_spec, load_suite, make_objects


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dod",
        description=(
            "Proximity graph-based exact distance-based outlier detection "
            "(SIGMOD 2021 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_suites = sub.add_parser("suites", help="list the built-in dataset suites")
    p_suites.set_defaults(func=_cmd_suites)

    p_detect = sub.add_parser("detect", help="run outlier detection")
    src = p_detect.add_mutually_exclusive_group(required=True)
    src.add_argument("--suite", choices=sorted(SUITES), help="built-in suite")
    src.add_argument("--input", help=".npy file of row vectors, or a text file "
                                     "with one string per line (with --metric edit)")
    p_detect.add_argument("--metric", default="l2", help="metric for --input data")
    p_detect.add_argument("--n", type=int, default=None, help="suite cardinality")
    p_detect.add_argument("--r", type=float, default=None, help="distance threshold")
    p_detect.add_argument("--k", type=int, default=None, help="count threshold")
    p_detect.add_argument("--graph", default="mrpg",
                          choices=["mrpg", "mrpg-basic", "kgraph", "nsw"])
    p_detect.add_argument("--K", type=int, default=16, help="graph degree")
    p_detect.add_argument("--seed", type=int, default=0)
    p_detect.add_argument("--n-jobs", type=int, default=1)
    p_detect.add_argument("--mode", default="auto",
                          choices=["auto", "scalar", "batched"],
                          help="filter/verify execution: batched multi-source "
                               "kernels or the scalar oracle path (same answer)")
    p_detect.add_argument("--batch-size", type=int, default=DEFAULT_BLOCK,
                          help="query objects per batched traversal block")
    p_detect.add_argument("--shards", type=int, default=1,
                          help="partition the dataset into this many shards, "
                               "each owning a shard-local graph (exact merge)")
    p_detect.add_argument("--workers", type=int, default=None,
                          help="worker processes hosting the shards "
                               "(default: min(shards, cpu count); 1 = in-process)")
    p_detect.add_argument("--backend", default=None,
                          help="numeric backend: numpy64 (exact default) or "
                               "float32 (screened prefilter, identical answers)")
    p_detect.add_argument("--store", default="ram", choices=["ram", "memmap"],
                          help="object storage: ram (in-memory copy) or memmap "
                               "(map an --input .npy written by "
                               "repro.io.create_memmap_store; out-of-core, "
                               "identical answers)")
    p_detect.add_argument("--build-workers", type=int, default=None,
                          help="processes for graph construction (worker-count-"
                               "invariant: same seed, same graph at any count; "
                               "default: legacy sequential build)")
    p_detect.add_argument("--verbose", action="store_true",
                          help="print per-phase graph-build statistics")
    p_detect.add_argument("--output", help="write outlier ids to this file")
    p_detect.set_defaults(func=_cmd_detect)

    p_sweep = sub.add_parser(
        "sweep", help="serve an (r, k) grid from one DetectionEngine"
    )
    src = p_sweep.add_mutually_exclusive_group(required=True)
    src.add_argument("--suite", choices=sorted(SUITES), help="built-in suite")
    src.add_argument("--input", help=".npy file of row vectors, or a text file "
                                     "with one string per line (with --metric edit)")
    p_sweep.add_argument("--metric", default="l2", help="metric for --input data")
    p_sweep.add_argument("--n", type=int, default=None, help="suite cardinality")
    p_sweep.add_argument("--r", type=float, default=None,
                         help="base distance threshold (default: suite default)")
    p_sweep.add_argument("--k", type=int, default=None,
                         help="base count threshold (default: suite default)")
    p_sweep.add_argument("--r-grid", default=None,
                         help="comma-separated radii (default: 0.9..1.1 x base r)")
    p_sweep.add_argument("--k-grid", default=None,
                         help="comma-separated k values (default: base k)")
    p_sweep.add_argument("--graph", default="mrpg",
                         choices=["mrpg", "mrpg-basic", "kgraph", "nsw"])
    p_sweep.add_argument("--K", type=int, default=16, help="graph degree")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--n-jobs", type=int, default=1)
    p_sweep.add_argument("--mode", default="auto",
                         choices=["auto", "scalar", "batched"],
                         help="filter/verify execution: batched multi-source "
                              "kernels or the scalar oracle path (same answer)")
    p_sweep.add_argument("--batch-size", type=int, default=DEFAULT_BLOCK,
                         help="query objects per batched traversal block")
    p_sweep.add_argument("--shards", type=int, default=1,
                         help="partition the dataset into this many shards, "
                              "each owning a shard-local graph (exact merge)")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="worker processes hosting the shards "
                              "(default: min(shards, cpu count); 1 = in-process)")
    p_sweep.add_argument("--backend", default=None,
                         help="numeric backend: numpy64 (exact default) or "
                              "float32 (screened prefilter, identical answers)")
    p_sweep.add_argument("--store", default="ram", choices=["ram", "memmap"],
                         help="object storage: ram (in-memory copy) or memmap "
                              "(map an --input .npy written by "
                              "repro.io.create_memmap_store; out-of-core, "
                              "identical answers)")
    p_sweep.add_argument("--build-workers", type=int, default=None,
                         help="processes for graph construction (worker-count-"
                              "invariant; default: legacy sequential build)")
    p_sweep.add_argument("--check", action="store_true",
                         help="verify every grid point against a fresh graph_dod "
                              "run and report the reuse speedup")
    p_sweep.add_argument("--snapshot", default=None,
                         help="engine snapshot path (a directory with --shards): "
                              "loaded warm when it exists, written after the sweep")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", help="experiment id (table1..table8, fig6..fig10, "
                                    "ablation) or 'all'")
    p_exp.add_argument("--save-dir", default=None, help="directory for .txt tables")
    p_exp.add_argument("--scale", type=float, default=None,
                       help="override REPRO_BENCH_SCALE")
    p_exp.set_defaults(func=_cmd_experiment)

    p_topn = sub.add_parser("topn", help="rank the top-n outliers by k-NN distance")
    p_topn.add_argument("--suite", required=True, choices=sorted(SUITES))
    p_topn.add_argument("--n-top", type=int, default=10)
    p_topn.add_argument("--k", type=int, default=None)
    p_topn.add_argument("--n", type=int, default=None)
    p_topn.add_argument("--K", type=int, default=16, help="graph degree for seeding")
    p_topn.add_argument("--no-graph", action="store_true",
                        help="plain ORCA without graph seeding")
    p_topn.add_argument("--seed", type=int, default=0)
    p_topn.set_defaults(func=_cmd_topn)

    p_update = sub.add_parser(
        "update",
        help="churn a mutable engine: batched inserts/removes answered "
             "from repaired evidence",
    )
    p_update.add_argument("--suite", required=True, choices=sorted(SUITES))
    p_update.add_argument("--n", type=int, default=None, help="suite cardinality")
    p_update.add_argument("--r", type=float, default=None)
    p_update.add_argument("--k", type=int, default=None)
    p_update.add_argument("--batches", type=int, default=5,
                          help="insert the suite in this many batches")
    p_update.add_argument("--churn", type=float, default=0.1,
                          help="fraction of live objects removed between batches")
    p_update.add_argument("--K", type=int, default=16,
                          help="incremental graph degree")
    p_update.add_argument("--rebuild-every", type=int, default=None,
                          help="auto-rebuild the graph after this many mutations")
    p_update.add_argument("--shards", type=int, default=1,
                          help="route mutations across this many mutable "
                               "shards (batched per-shard evidence repair)")
    p_update.add_argument("--workers", type=int, default=None,
                          help="worker processes hosting the shards "
                               "(default: min(shards, cpu count); 1 = in-process)")
    p_update.add_argument("--backend", default=None,
                          help="numeric backend: numpy64 (exact default) or "
                               "float32 (screened prefilter, identical answers)")
    p_update.add_argument("--store", default="ram", choices=["ram", "shm"],
                          help="object storage: ram (per-worker copies) or shm "
                               "(one growable shared segment every shard "
                               "worker maps zero-copy; identical answers)")
    p_update.add_argument("--build-workers", type=int, default=None,
                          help="processes for graph rebuilds (worker-count-"
                               "invariant; default: legacy sequential build)")
    p_update.add_argument("--rebalance", action="store_true",
                          help="run the automatic shard split/merge policy "
                               "after every batch (needs --shards > 1)")
    p_update.add_argument("--seed", type=int, default=0)
    p_update.add_argument("--check", action="store_true",
                          help="verify every detection against brute force "
                               "over the live objects")
    p_update.add_argument("--snapshot", default=None,
                          help="mutable-engine snapshot path: loaded warm when "
                               "it exists (skipping the churn trace), written "
                               "after a cold run")
    p_update.set_defaults(func=_cmd_update)

    p_stream = sub.add_parser("stream", help="sliding-window outlier monitoring")
    p_stream.add_argument("--suite", required=True, choices=sorted(SUITES))
    p_stream.add_argument("--n", type=int, default=None)
    p_stream.add_argument("--r", type=float, default=None)
    p_stream.add_argument("--k", type=int, default=None)
    p_stream.add_argument("--window", type=int, default=None,
                          help="window size (default n/4)")
    p_stream.add_argument("--shards", type=int, default=1,
                          help="drive the window over a mutable sharded "
                               "engine with this many shards")
    p_stream.add_argument("--workers", type=int, default=None,
                          help="worker processes hosting the shards")
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument("--check", action="store_true",
                          help="verify every report against quadratic window "
                               "recomputation")
    p_stream.set_defaults(func=_cmd_stream)

    p_serve = sub.add_parser(
        "serve",
        help="serve (r, k) queries over HTTP with coalesced concurrent "
             "batching (async front-end on one engine)",
    )
    src = p_serve.add_mutually_exclusive_group(required=True)
    src.add_argument("--suite", choices=sorted(SUITES), help="built-in suite")
    src.add_argument("--input", help=".npy file of row vectors, or a text file "
                                     "with one string per line (with --metric edit)")
    p_serve.add_argument("--metric", default="l2", help="metric for --input data")
    p_serve.add_argument("--n", type=int, default=None, help="suite cardinality")
    p_serve.add_argument("--graph", default="mrpg",
                         choices=["mrpg", "mrpg-basic", "kgraph", "nsw"])
    p_serve.add_argument("--K", type=int, default=16, help="graph degree")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--n-jobs", type=int, default=1)
    p_serve.add_argument("--mode", default="auto",
                         choices=["auto", "scalar", "batched"])
    p_serve.add_argument("--batch-size", type=int, default=DEFAULT_BLOCK,
                         help="query objects per batched traversal block")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="serve from a sharded engine with this many shards")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker processes hosting the shards")
    p_serve.add_argument("--backend", default=None,
                         help="numeric backend: numpy64 (exact default) or "
                              "float32 (screened prefilter, identical answers)")
    p_serve.add_argument("--mutable", action="store_true",
                         help="serve a mutable engine (enables POST "
                              "/insert and /remove)")
    p_serve.add_argument("--store", default="ram",
                         choices=["ram", "shm", "memmap"],
                         help="object storage: ram (in-memory), shm (growable "
                              "shared segment, needs --mutable), or memmap "
                              "(map an --input .npy written by "
                              "repro.io.create_memmap_store)")
    p_serve.add_argument("--build-workers", type=int, default=None,
                         help="processes for graph construction (worker-count-"
                              "invariant; default: legacy sequential build)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8734,
                         help="listening port (0 picks a free port)")
    p_serve.add_argument("--window-ms", type=float, default=2.0,
                         help="coalescing window: concurrent requests arriving "
                              "within it share one engine batch")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="most requests drained into one engine call")
    p_serve.add_argument("--max-queue", type=int, default=1024,
                         help="queue depth past which requests get 503")
    p_serve.add_argument("--max-cold", type=int, default=4,
                         help="cold (never-served) radii admitted per batch")
    p_serve.add_argument("--deadline", type=float, default=30.0,
                         help="default per-request deadline in seconds "
                              "(expiry returns 504)")
    p_serve.add_argument("--serve-seconds", type=float, default=None,
                         help="stop after this many seconds (smoke tests; "
                              "default: serve until interrupted)")
    p_serve.set_defaults(func=_cmd_serve)

    p_cal = sub.add_parser("calibrate", help="calibrate r for a target outlier ratio")
    p_cal.add_argument("--suite", required=True, choices=sorted(SUITES))
    p_cal.add_argument("--k", type=int, required=True)
    p_cal.add_argument("--target", type=float, required=True,
                       help="target outlier ratio in (0, 1)")
    p_cal.add_argument("--n", type=int, default=None)
    p_cal.add_argument("--seed", type=int, default=0)
    p_cal.set_defaults(func=_cmd_calibrate)
    return parser


def _cmd_suites(args: argparse.Namespace) -> int:
    print(f"{'suite':9s} {'n':>6s} {'dim':>6s} {'metric':8s} "
          f"{'r':>10s} {'k':>4s} {'ratio':>7s}  description")
    for spec in SUITES.values():
        print(
            f"{spec.name:9s} {spec.default_n:6d} {spec.dim:>6s} "
            f"{spec.metric:8s} {spec.default_r:10g} {spec.default_k:4d} "
            f"{100 * spec.calibrated_ratio:6.2f}%  {spec.description}"
        )
    return 0


def _load_input(path: str, metric: str):
    if path.endswith(".npy"):
        return np.load(path)
    with open(path, "r", encoding="utf-8") as handle:
        return [line.rstrip("\n") for line in handle if line.strip()]


def _memmap_dataset(args: argparse.Namespace, metric: str):
    """Map ``--input`` as an out-of-core dataset (``--store memmap``)."""
    from .exceptions import ParameterError
    from .io import open_memmap_dataset

    if not args.input or not args.input.endswith(".npy"):
        raise ParameterError(
            "--store memmap maps an --input .npy store (write one with "
            "repro.io.create_memmap_store)"
        )
    return open_memmap_dataset(args.input, metric, backend=args.backend)


def _print_build_stats(engine) -> None:
    """Per-phase graph-build statistics (``detect --verbose``)."""
    getter = getattr(engine, "build_stats", None)
    stats = getter() if callable(getter) else {}
    if not stats:
        print("build stats: unavailable for this engine")
        return
    print("build stats:")
    per_shard = stats.pop("per_shard", None)
    for key in sorted(stats):
        value = stats[key]
        if isinstance(value, float):
            print(f"  {key}: {value:.3f}")
        else:
            print(f"  {key}: {value}")
    if per_shard:
        for s, entry in enumerate(per_shard):
            secs = entry.get("build_seconds")
            secs = "?" if secs is None else f"{float(secs):.3f}s"
            print(f"  shard {s}: build {secs}, "
                  f"workers {entry.get('build_workers', 'legacy')}")


def _cmd_detect(args: argparse.Namespace) -> int:
    if args.suite:
        objects = make_objects(args.suite, n=args.n, seed=args.seed)
        spec = get_spec(args.suite)
        metric = spec.metric
        r = args.r if args.r is not None else spec.default_r
        k = args.k if args.k is not None else spec.default_k
    else:
        metric = args.metric
        if args.r is None or args.k is None:
            print("detect: --r and --k are required with --input", file=sys.stderr)
            return 2
        r, k = args.r, args.k
        objects = (None if args.store == "memmap"
                   else _load_input(args.input, args.metric))
    if args.store == "memmap":
        if args.suite:
            print("detect: --store memmap needs --input (a prepared .npy "
                  "store)", file=sys.stderr)
            return 2
        objects = _memmap_dataset(args, metric)
    from .engine import create_engine

    with create_engine(
        objects, metric=metric, graph=args.graph, K=args.K, seed=args.seed,
        shards=args.shards, workers=args.workers, n_jobs=args.n_jobs,
        mode=args.mode, batch_size=args.batch_size, backend=args.backend,
        build_workers=args.build_workers,
    ) as engine:
        result = engine.query(r, k)
        print(result.summary())
        print(f"index size: {engine.index_nbytes / 1024:.1f} KiB "
              f"({engine.describe()})")
        if args.verbose:
            _print_build_stats(engine)
    if args.output:
        np.savetxt(args.output, result.outliers, fmt="%d")
        print(f"outlier ids written to {args.output}")
    else:
        preview = ", ".join(str(int(p)) for p in result.outliers[:20])
        more = "" if result.n_outliers <= 20 else f", ... (+{result.n_outliers - 20})"
        print(f"outliers: [{preview}{more}]")
    return 0


def _parse_grid(raw: "str | None", cast):
    if raw is None:
        return None
    from .exceptions import ParameterError

    values = []
    for tok in raw.split(","):
        tok = tok.strip()
        if not tok:
            continue
        try:
            values.append(cast(tok))
        except ValueError:
            raise ParameterError(
                f"invalid grid value {tok!r} (expected comma-separated "
                f"{cast.__name__}s)"
            ) from None
    return values


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from .core.dod import graph_dod
    from .exceptions import GraphError

    if args.suite:
        objects = make_objects(args.suite, n=args.n, seed=args.seed)
        spec = get_spec(args.suite)
        metric = spec.metric
        base_r = args.r if args.r is not None else spec.default_r
        base_k = args.k if args.k is not None else spec.default_k
    else:
        metric = args.metric
        if (args.r is None and args.r_grid is None) or (
            args.k is None and args.k_grid is None
        ):
            print("sweep: --r/--r-grid and --k/--k-grid are required with --input",
                  file=sys.stderr)
            return 2
        base_r, base_k = args.r, args.k
        objects = (None if args.store == "memmap"
                   else _load_input(args.input, args.metric))

    r_grid = _parse_grid(args.r_grid, float)
    if r_grid is None:
        r_grid = [base_r * f for f in (0.9, 0.95, 1.0, 1.05, 1.1)]
    k_grid = _parse_grid(args.k_grid, int)
    if k_grid is None:
        k_grid = [base_k]
    if not r_grid or not k_grid:
        print("sweep: --r-grid/--k-grid must name at least one value",
              file=sys.stderr)
        return 2

    from .data import Dataset
    from .engine import create_engine

    if args.store == "memmap":
        if args.suite:
            print("sweep: --store memmap needs --input (a prepared .npy "
                  "store)", file=sys.stderr)
            return 2
        dataset = _memmap_dataset(args, metric)
    else:
        dataset = Dataset(objects, metric, backend=args.backend)
    engine = None
    if args.snapshot is not None and os.path.exists(args.snapshot):
        from .io import load_any_engine

        try:
            engine = load_any_engine(
                args.snapshot, dataset=dataset, workers=args.workers,
                n_jobs=args.n_jobs, rng=args.seed, mode=args.mode,
                batch_size=args.batch_size, backend=args.backend,
            )
            print(f"loaded warm engine snapshot from {args.snapshot} "
                  f"({engine.stats['queries']} queries served before restart)")
            if engine.graph_name != args.graph or engine.graph_degree != args.K:
                print(
                    f"sweep: note: snapshot was built with "
                    f"graph={engine.graph_name} K={engine.graph_degree}; the "
                    f"--graph/--K arguments are ignored on a warm load",
                    file=sys.stderr,
                )
        except GraphError as exc:
            print(f"sweep: cannot load snapshot: {exc}", file=sys.stderr)
            return 2
    if engine is None:
        engine = create_engine(
            dataset, graph=args.graph, K=args.K, seed=args.seed,
            shards=args.shards, workers=args.workers, n_jobs=args.n_jobs,
            mode=args.mode, batch_size=args.batch_size, backend=args.backend,
            build_workers=args.build_workers,
        )

    try:
        t0 = time.perf_counter()
        sweep = engine.sweep(r_grid, k_grid=k_grid)
        engine_s = time.perf_counter() - t0

        print(f"{'r':>10s} {'k':>5s} {'outliers':>9s} {'seconds':>9s} "
              f"{'cache_decided':>14s}")
        for r, k in sweep.queries:
            res = sweep.result(r, k)
            print(f"{r:10.4g} {k:5d} {res.n_outliers:9d} {res.seconds:9.4f} "
                  f"{res.counts['cache_decided']:14d}")
        print(f"{len(sweep.queries)} queries in {engine_s:.3f}s, "
              f"{sweep.pairs:,} distance computations")

        if args.check:
            # The check runs the scalar oracle path over one full
            # (unsharded) fresh graph, so it also cross-checks the
            # batched kernels and any shard merge against the
            # one-object-at-a-time walk.
            from .graphs.base import build_graph
            from .rng import ensure_rng

            check_graph = build_graph(
                args.graph, dataset, K=args.K, rng=ensure_rng(args.seed)
            )
            t0 = time.perf_counter()
            for r, k in sweep.queries:
                fresh = graph_dod(
                    dataset.view(), check_graph, r, k,
                    rng=args.seed, n_jobs=args.n_jobs,
                    mode="scalar",
                )
                if not fresh.same_outliers(sweep.result(r, k)):
                    print(f"sweep: MISMATCH vs graph_dod at r={r} k={k}",
                          file=sys.stderr)
                    return 1
            naive_s = time.perf_counter() - t0
            print(f"check passed: all {len(sweep.queries)} grid points "
                  f"identical to fresh graph_dod runs ({naive_s:.3f}s naive, "
                  f"{naive_s / engine_s:.2f}x speedup from reuse)")

        if args.snapshot is not None:
            engine.save(args.snapshot)
            print(f"engine snapshot written to {args.snapshot}")
        return 0
    finally:
        # Worker processes (and any spawn-mode shared memory) must be
        # released on every exit path, including --check mismatches.
        engine.close()


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .harness import EXPERIMENTS, run_experiment

    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    names = sorted(EXPERIMENTS) if args.name.lower() == "all" else [args.name]
    for name in names:
        for table in run_experiment(name, save_dir=args.save_dir):
            print(table.format())
            print()
    return 0


def _cmd_topn(args: argparse.Namespace) -> int:
    from .extensions import top_n_outliers
    from .graphs import build_graph

    dataset, spec = load_suite(args.suite, n=args.n, seed=args.seed)
    k = args.k if args.k is not None else spec.default_k
    graph = None
    if not args.no_graph:
        graph = build_graph("mrpg", dataset, K=args.K, rng=args.seed)
    result = top_n_outliers(dataset, args.n_top, k, graph=graph, rng=args.seed)
    print(f"suite={args.suite} n={dataset.n} k={k} "
          f"seeding={'mrpg' if graph is not None else 'none'}")
    print(f"{result.seconds:.3f}s, {result.pairs:,} distance computations, "
          f"{result.pruned_objects} objects pruned")
    print(f"{'rank':>4s} {'id':>7s} {'kNN distance':>13s}")
    for rank, (obj, score) in enumerate(zip(result.ids, result.scores), start=1):
        print(f"{rank:4d} {int(obj):7d} {score:13.4f}")
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from .engine import create_engine
    from .exceptions import GraphError
    from .index import brute_force_outliers

    objects = make_objects(args.suite, n=args.n, seed=args.seed)
    spec = get_spec(args.suite)
    r = args.r if args.r is not None else spec.default_r
    k = args.k if args.k is not None else spec.default_k
    if args.batches < 1 or not 0.0 <= args.churn < 1.0:
        print("update: need --batches >= 1 and 0 <= --churn < 1", file=sys.stderr)
        return 2
    if args.rebalance and args.shards < 2:
        print("update: --rebalance needs --shards > 1", file=sys.stderr)
        return 2
    if (
        args.snapshot is not None
        and not os.path.exists(args.snapshot)
        and not args.snapshot.endswith(".npz")
    ):
        # Single-process snapshots are .npz files (np.savez appends the
        # suffix on write); sharded ones are directories.  Probe the
        # suffixed name first so a warm load finds whichever format a
        # previous run actually wrote, regardless of today's --shards.
        if os.path.exists(args.snapshot + ".npz") or args.shards == 1:
            args.snapshot += ".npz"

    def checked_detect(engine, tag: str) -> "int | None":
        result = engine.detect(r, k)
        cache_hits = result.counts.get("cache_decided", 0)
        print(f"{tag:>18s}: live={engine.n_active:5d} "
              f"outliers={result.n_outliers:4d} pairs={result.pairs:9,d} "
              f"cache_decided={cache_hits}")
        if args.check:
            ref = engine.active_ids()[
                brute_force_outliers(engine.live_dataset(), r, k)
            ]
            if not np.array_equal(result.outliers, ref):
                print(f"update: MISMATCH vs brute force at {tag}", file=sys.stderr)
                return 1
        return None

    print(f"suite={args.suite} metric={spec.metric} r={r:g} k={k} "
          f"batches={args.batches} churn={int(100 * args.churn)}% "
          f"shards={args.shards}")
    if args.snapshot is not None and os.path.exists(args.snapshot):
        from .io import load_any_engine

        warm_kwargs = {}
        if args.build_workers is not None:
            # Explicit flag overrides the parallelism recorded in the
            # snapshot; omitted, the snapshot's setting is restored.
            warm_kwargs["build_workers"] = args.build_workers
        try:
            engine = load_any_engine(
                args.snapshot, objects=objects, workers=args.workers,
                rebuild_every=args.rebuild_every, backend=args.backend,
                **warm_kwargs,
            )
        except GraphError as exc:
            print(f"update: cannot load snapshot: {exc}", file=sys.stderr)
            return 2
        print(f"loaded warm mutable snapshot from {args.snapshot} "
              f"({engine.stats['inserts']} inserts, "
              f"{engine.stats['removes']} removes served before restart)")
        code = checked_detect(engine, "warm detect")
        engine.close()
        if code is not None:
            return code
        if args.check:
            print("check passed: warm answers identical to brute force")
        return 0

    engine = create_engine(
        None, metric=spec.metric, K=args.K, seed=args.seed, mutable=True,
        shards=args.shards, workers=args.workers,
        rebuild_every=args.rebuild_every, backend=args.backend,
        store=args.store, build_workers=args.build_workers,
    )
    gen = np.random.default_rng(args.seed + 1)
    n = len(objects)
    chunk = max(1, n // args.batches)
    for lo in range(0, n, chunk):
        batch = objects[lo : lo + chunk]
        engine.insert(list(batch) if spec.metric == "edit" else batch)
        live = engine.active_ids()
        if args.churn > 0 and live.size > 2 * chunk:
            victims = gen.choice(
                live, size=max(1, int(args.churn * live.size)), replace=False
            )
            engine.remove(victims.tolist())
        if args.rebalance and engine.rebalance():
            print(f"{'rebalanced':>18s}: shard sizes "
                  f"{engine.shard_sizes().tolist()}")
        code = checked_detect(engine, f"batch {lo // chunk + 1}")
        if code is not None:
            engine.close()
            return code
    if args.check:
        print("check passed: all detections identical to brute force")
    if args.snapshot is not None:
        engine.save(args.snapshot)
        print(f"mutable-engine snapshot written to {args.snapshot}")
    engine.close()
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .streaming import SlidingWindowDOD, window_outliers_bruteforce

    dataset, spec = load_suite(args.suite, n=args.n, seed=args.seed)
    r = args.r if args.r is not None else spec.default_r
    k = args.k if args.k is not None else spec.default_k
    window = args.window if args.window is not None else max(8, dataset.n // 4)
    stream = np.random.default_rng(args.seed).permutation(dataset.n)
    print(f"suite={args.suite} n={dataset.n} r={r:g} k={k} window={window}"
          + (f" shards={args.shards}" if args.shards > 1 else ""))
    with SlidingWindowDOD(
        dataset, r, k, window, shards=args.shards, workers=args.workers
    ) as monitor:
        reports = monitor.run(stream, report_every=max(1, window // 2))
    for rep in reports:
        print(f"t={rep.time:6d}  window outliers: {rep.n_outliers}")
    print(f"{len(reports)} reports; {dataset.counter.pairs:,} distance computations")
    if args.check:
        for rep in reports:
            ref = window_outliers_bruteforce(
                dataset.view(), rep.window_ids, r, k
            )
            if not np.array_equal(np.unique(rep.outliers), np.unique(ref)):
                print(f"stream: MISMATCH vs recomputation at t={rep.time}",
                      file=sys.stderr)
                return 1
        print(f"check passed: all {len(reports)} reports identical to "
              f"quadratic recomputation")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .engine import create_engine
    from .serving import EngineServer, ServingConfig

    if args.suite:
        objects = make_objects(args.suite, n=args.n, seed=args.seed)
        metric = get_spec(args.suite).metric
    else:
        metric = args.metric
        objects = (None if args.store == "memmap"
                   else _load_input(args.input, args.metric))
    if args.store == "memmap":
        if args.suite:
            print("serve: --store memmap needs --input (a prepared .npy "
                  "store)", file=sys.stderr)
            return 2
        if args.mutable:
            print("serve: --store memmap serves static engines; use "
                  "--store shm for mutable serving", file=sys.stderr)
            return 2
        objects = _memmap_dataset(args, metric)
    elif args.store == "shm" and not args.mutable:
        print("serve: --store shm needs --mutable", file=sys.stderr)
        return 2
    config = ServingConfig(
        window=args.window_ms / 1e3,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        max_cold=args.max_cold,
        default_deadline=args.deadline,
    )
    engine = create_engine(
        objects, metric=metric, graph=args.graph, K=args.K, seed=args.seed,
        shards=args.shards, workers=args.workers, mutable=args.mutable,
        n_jobs=args.n_jobs, mode=args.mode, batch_size=args.batch_size,
        backend=args.backend,
        store="shm" if args.store == "shm" else "ram",
        build_workers=args.build_workers,
    )

    async def _run() -> None:
        async with EngineServer(
            engine, host=args.host, port=args.port, config=config,
            close_engine=True,
        ) as server:
            host, port = server.address
            print(f"serving {engine.describe()}")
            print(f"listening on http://{host}:{port} "
                  f"(POST /query, GET /healthz, GET /stats"
                  + (", POST /insert, POST /remove" if args.mutable else "")
                  + ")")
            if args.serve_seconds is not None:
                await asyncio.sleep(args.serve_seconds)
            else:  # pragma: no cover - interactive serving loop
                await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - operator interrupt
        print("interrupted; serving stopped")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    dataset, _ = load_suite(args.suite, n=args.n, seed=args.seed)
    r, ratio = calibrate_r(dataset, args.k, args.target)
    print(f"suite={args.suite} n={dataset.n} k={args.k}")
    print(f"calibrated r={r:.6g} achieving outlier ratio {100 * ratio:.2f}% "
          f"(target {100 * args.target:.2f}%)")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    from .exceptions import ReproError

    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Library validation errors (bad parameters, malformed files)
        # surface as clean CLI errors, not tracebacks.
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
