"""Command-line interface.

Installed as ``repro-dod``::

    repro-dod suites                         # list the dataset suites
    repro-dod detect --suite glove           # detect outliers on a suite
    repro-dod detect --input pts.npy --r 0.5 --k 20
    repro-dod experiment table5 --save-dir results
    repro-dod calibrate --suite sift --k 20 --target 0.01
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from . import __version__
from .core.dod import DODetector
from .datasets import SUITES, calibrate_r, get_spec, load_suite, make_objects


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dod",
        description=(
            "Proximity graph-based exact distance-based outlier detection "
            "(SIGMOD 2021 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_suites = sub.add_parser("suites", help="list the built-in dataset suites")
    p_suites.set_defaults(func=_cmd_suites)

    p_detect = sub.add_parser("detect", help="run outlier detection")
    src = p_detect.add_mutually_exclusive_group(required=True)
    src.add_argument("--suite", choices=sorted(SUITES), help="built-in suite")
    src.add_argument("--input", help=".npy file of row vectors, or a text file "
                                     "with one string per line (with --metric edit)")
    p_detect.add_argument("--metric", default="l2", help="metric for --input data")
    p_detect.add_argument("--n", type=int, default=None, help="suite cardinality")
    p_detect.add_argument("--r", type=float, default=None, help="distance threshold")
    p_detect.add_argument("--k", type=int, default=None, help="count threshold")
    p_detect.add_argument("--graph", default="mrpg",
                          choices=["mrpg", "mrpg-basic", "kgraph", "nsw"])
    p_detect.add_argument("--K", type=int, default=16, help="graph degree")
    p_detect.add_argument("--seed", type=int, default=0)
    p_detect.add_argument("--n-jobs", type=int, default=1)
    p_detect.add_argument("--output", help="write outlier ids to this file")
    p_detect.set_defaults(func=_cmd_detect)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", help="experiment id (table1..table8, fig6..fig10, "
                                    "ablation) or 'all'")
    p_exp.add_argument("--save-dir", default=None, help="directory for .txt tables")
    p_exp.add_argument("--scale", type=float, default=None,
                       help="override REPRO_BENCH_SCALE")
    p_exp.set_defaults(func=_cmd_experiment)

    p_topn = sub.add_parser("topn", help="rank the top-n outliers by k-NN distance")
    p_topn.add_argument("--suite", required=True, choices=sorted(SUITES))
    p_topn.add_argument("--n-top", type=int, default=10)
    p_topn.add_argument("--k", type=int, default=None)
    p_topn.add_argument("--n", type=int, default=None)
    p_topn.add_argument("--K", type=int, default=16, help="graph degree for seeding")
    p_topn.add_argument("--no-graph", action="store_true",
                        help="plain ORCA without graph seeding")
    p_topn.add_argument("--seed", type=int, default=0)
    p_topn.set_defaults(func=_cmd_topn)

    p_stream = sub.add_parser("stream", help="sliding-window outlier monitoring")
    p_stream.add_argument("--suite", required=True, choices=sorted(SUITES))
    p_stream.add_argument("--n", type=int, default=None)
    p_stream.add_argument("--r", type=float, default=None)
    p_stream.add_argument("--k", type=int, default=None)
    p_stream.add_argument("--window", type=int, default=None,
                          help="window size (default n/4)")
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.set_defaults(func=_cmd_stream)

    p_cal = sub.add_parser("calibrate", help="calibrate r for a target outlier ratio")
    p_cal.add_argument("--suite", required=True, choices=sorted(SUITES))
    p_cal.add_argument("--k", type=int, required=True)
    p_cal.add_argument("--target", type=float, required=True,
                       help="target outlier ratio in (0, 1)")
    p_cal.add_argument("--n", type=int, default=None)
    p_cal.add_argument("--seed", type=int, default=0)
    p_cal.set_defaults(func=_cmd_calibrate)
    return parser


def _cmd_suites(args: argparse.Namespace) -> int:
    print(f"{'suite':9s} {'n':>6s} {'dim':>6s} {'metric':8s} "
          f"{'r':>10s} {'k':>4s} {'ratio':>7s}  description")
    for spec in SUITES.values():
        print(
            f"{spec.name:9s} {spec.default_n:6d} {spec.dim:>6s} "
            f"{spec.metric:8s} {spec.default_r:10g} {spec.default_k:4d} "
            f"{100 * spec.calibrated_ratio:6.2f}%  {spec.description}"
        )
    return 0


def _load_input(path: str, metric: str):
    if path.endswith(".npy"):
        return np.load(path)
    with open(path, "r", encoding="utf-8") as handle:
        return [line.rstrip("\n") for line in handle if line.strip()]


def _cmd_detect(args: argparse.Namespace) -> int:
    if args.suite:
        objects = make_objects(args.suite, n=args.n, seed=args.seed)
        spec = get_spec(args.suite)
        metric = spec.metric
        r = args.r if args.r is not None else spec.default_r
        k = args.k if args.k is not None else spec.default_k
    else:
        objects = _load_input(args.input, args.metric)
        metric = args.metric
        if args.r is None or args.k is None:
            print("detect: --r and --k are required with --input", file=sys.stderr)
            return 2
        r, k = args.r, args.k
    detector = DODetector(metric=metric, graph=args.graph, K=args.K, seed=args.seed)
    detector.fit(objects)
    result = detector.detect(r, k, n_jobs=args.n_jobs)
    print(result.summary())
    print(f"index size: {detector.index_nbytes / 1024:.1f} KiB")
    if args.output:
        np.savetxt(args.output, result.outliers, fmt="%d")
        print(f"outlier ids written to {args.output}")
    else:
        preview = ", ".join(str(int(p)) for p in result.outliers[:20])
        more = "" if result.n_outliers <= 20 else f", ... (+{result.n_outliers - 20})"
        print(f"outliers: [{preview}{more}]")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .harness import EXPERIMENTS, run_experiment

    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    names = sorted(EXPERIMENTS) if args.name.lower() == "all" else [args.name]
    for name in names:
        for table in run_experiment(name, save_dir=args.save_dir):
            print(table.format())
            print()
    return 0


def _cmd_topn(args: argparse.Namespace) -> int:
    from .extensions import top_n_outliers
    from .graphs import build_graph

    dataset, spec = load_suite(args.suite, n=args.n, seed=args.seed)
    k = args.k if args.k is not None else spec.default_k
    graph = None
    if not args.no_graph:
        graph = build_graph("mrpg", dataset, K=args.K, rng=args.seed)
    result = top_n_outliers(dataset, args.n_top, k, graph=graph, rng=args.seed)
    print(f"suite={args.suite} n={dataset.n} k={k} "
          f"seeding={'mrpg' if graph is not None else 'none'}")
    print(f"{result.seconds:.3f}s, {result.pairs:,} distance computations, "
          f"{result.pruned_objects} objects pruned")
    print(f"{'rank':>4s} {'id':>7s} {'kNN distance':>13s}")
    for rank, (obj, score) in enumerate(zip(result.ids, result.scores), start=1):
        print(f"{rank:4d} {int(obj):7d} {score:13.4f}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .streaming import SlidingWindowDOD

    dataset, spec = load_suite(args.suite, n=args.n, seed=args.seed)
    r = args.r if args.r is not None else spec.default_r
    k = args.k if args.k is not None else spec.default_k
    window = args.window if args.window is not None else max(8, dataset.n // 4)
    stream = np.random.default_rng(args.seed).permutation(dataset.n)
    monitor = SlidingWindowDOD(dataset, r, k, window)
    print(f"suite={args.suite} n={dataset.n} r={r:g} k={k} window={window}")
    reports = monitor.run(stream, report_every=max(1, window // 2))
    for rep in reports:
        print(f"t={rep.time:6d}  window outliers: {rep.n_outliers}")
    print(f"{len(reports)} reports; {dataset.counter.pairs:,} distance computations")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    dataset, _ = load_suite(args.suite, n=args.n, seed=args.seed)
    r, ratio = calibrate_r(dataset, args.k, args.target)
    print(f"suite={args.suite} n={dataset.n} k={args.k}")
    print(f"calibrated r={r:.6g} achieving outlier ratio {100 * ratio:.2f}% "
          f"(target {100 * args.target:.2f}%)")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
