"""Multi-worker execution: thread pools (§4) and shard-actor processes (§6).

The paper parallelises Algorithm 1 by handing each thread a *random*
partition of the objects: outliers cost far more than inliers (no early
termination), and random assignment spreads them evenly without knowing
where they are.

Workers run in a thread pool.  Every distance kernel is a numpy call
that releases the GIL, so the heavy part does scale; each worker gets a
:meth:`Dataset.view` so distance accounting stays race-free, and the
per-worker counters are merged afterwards.

Past a few cores thread scaling plateaus on interpreter dispatch, so the
shard-per-worker engine (:mod:`repro.engine.sharded`) moves to
*processes*: :class:`ShardPool` hosts ``S`` long-lived shard actors on
``W`` worker processes and runs the same method on every actor per
query phase.  Dataset transport is zero-copy where the platform allows
it — the default ``fork`` start method shares the parent's numpy pages
copy-on-write, and :class:`SharedMemoryStore` /
:class:`DatasetTransport` carry vector stores through POSIX shared
memory for ``spawn`` contexts that must pickle their arguments.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from ..data import Dataset, DistanceCounter
from ..exceptions import ParameterError
from ..rng import ensure_rng

T = TypeVar("T")


def partition_indices(
    n: int,
    n_parts: int,
    rng: "int | np.random.Generator | None" = None,
) -> list[np.ndarray]:
    """Split ``0..n-1`` into ``n_parts`` random, near-equal chunks."""
    if n_parts < 1:
        raise ParameterError(f"n_parts must be >= 1, got {n_parts}")
    gen = ensure_rng(rng)
    perm = gen.permutation(n)
    return [chunk for chunk in np.array_split(perm, n_parts) if chunk.size]


class WorkerPool:
    """Persistent thread pool + per-worker dataset views, shared across queries.

    :func:`map_over_objects` allocates a fresh executor and fresh views
    on every call — fine for one-shot detection, wasteful for a serving
    process answering a stream of ``(r, k)`` queries.  A ``WorkerPool``
    allocates both once; workers additionally receive their *slot* index
    so callers can pin per-slot scratch state (e.g. one
    :class:`~repro.core.counting.VisitTracker` per worker) for the pool's
    lifetime.
    """

    def __init__(
        self,
        dataset: Dataset,
        n_jobs: int = 1,
        rng: "int | np.random.Generator | None" = None,
    ):
        if n_jobs < 1:
            raise ParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.dataset = dataset
        self.n_jobs = int(n_jobs)
        self._rng = ensure_rng(rng)
        self._views = [dataset.view() for _ in range(self.n_jobs)]
        self._executor = (
            ThreadPoolExecutor(max_workers=self.n_jobs) if self.n_jobs > 1 else None
        )
        self._closed = False

    def map(
        self,
        items: "Sequence[int] | np.ndarray",
        worker: Callable[[Dataset, np.ndarray, int], T],
    ) -> tuple[list[T], int]:
        """Apply ``worker(view, chunk, slot)`` over random chunks of ``items``.

        Returns the per-chunk results plus the number of distance
        computations the call performed (a delta — the views persist).
        """
        if self._closed:
            raise ParameterError("WorkerPool.map called after close")
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return [], 0
        before = sum(v.counter.pairs for v in self._views)
        if self._executor is None:
            results = [worker(self._views[0], items, 0)]
        else:
            perm = self._rng.permutation(items.size)
            chunks = [c for c in np.array_split(items[perm], self.n_jobs) if c.size]
            futures = [
                self._executor.submit(worker, self._views[slot], chunk, slot)
                for slot, chunk in enumerate(chunks)
            ]
            results = [f.result() for f in futures]
        pairs = sum(v.counter.pairs for v in self._views) - before
        return results, pairs

    def close(self) -> None:
        """Shut the pool down; any further :meth:`map` raises."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def map_over_objects(
    dataset: Dataset,
    items: Sequence[int] | np.ndarray,
    worker: Callable[[Dataset, np.ndarray], T],
    n_jobs: int = 1,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[list[T], int]:
    """Apply ``worker(view, chunk)`` over random chunks of ``items``.

    Returns the per-chunk results plus the merged number of distance
    computations performed by the workers.
    """
    if n_jobs < 1:
        raise ParameterError(f"n_jobs must be >= 1, got {n_jobs}")
    items = np.asarray(items, dtype=np.int64)
    if items.size == 0:
        return [], 0
    if n_jobs == 1:
        view = dataset.view()
        result = worker(view, items)
        return [result], view.counter.pairs

    gen = ensure_rng(rng)
    perm = gen.permutation(items.size)
    chunks = [c for c in np.array_split(items[perm], n_jobs) if c.size]
    views = [dataset.view() for _ in chunks]
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        futures = [
            pool.submit(worker, view, chunk) for view, chunk in zip(views, chunks)
        ]
        results = [f.result() for f in futures]
    pairs = sum(v.counter.pairs for v in views)
    return results, pairs


# -- shard-actor processes (the §6 scale-out path) ---------------------------


def default_start_method() -> str:
    """The preferred multiprocessing start method on this platform.

    ``fork`` when available: shard actors then inherit the parent's
    dataset pages copy-on-write — shared-memory transport with zero
    serialisation.  Otherwise ``spawn``, where factory arguments are
    pickled and large vector stores should ride a
    :class:`DatasetTransport`.
    """
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _shard_actor_main(conn, factories) -> None:  # pragma: no cover - child
    """Child-process main loop: build the actors, then serve method calls.

    Runs in the worker process; coverage tooling does not see it.  The
    protocol is tiny: ``("call", method, [(slot, args), ...])`` executes
    ``actors[slot].method(*args)`` per entry and answers
    ``("ok", [results...])``; ``("busy",)`` answers the per-slot
    cumulative actor-invocation seconds (the load signal stats-driven
    rebalancing reads); any exception answers ``("error", trace)``;
    ``("stop",)`` exits the loop.
    """
    try:
        actors = [factory() for factory in factories]
        conn.send(("ready", len(actors)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    busy = [0.0] * len(actors)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message[0] == "stop":
            break
        if message[0] == "ping":
            conn.send(("ok", None))
            continue
        if message[0] == "busy":
            conn.send(("ok", list(busy)))
            continue
        _, method, calls = message
        try:
            results = []
            for slot, args in calls:
                t0 = time.perf_counter()
                results.append(getattr(actors[slot], method)(*args))
                busy[slot] += time.perf_counter() - t0
            conn.send(("ok", results))
        except BaseException:
            conn.send(("error", traceback.format_exc()))
    conn.close()


class ShardPool:
    """``S`` long-lived shard actors hosted on ``W`` worker processes.

    Each *actor* is an arbitrary object built once from its factory and
    kept alive for the pool's lifetime (the sharded engine uses one
    sub-engine per shard).  With ``workers <= 1`` the actors live in the
    calling process — same semantics, no IPC — which is both the
    debugging backend and the reference the process backend is tested
    against.  With ``workers > 1`` the actors are distributed over
    dedicated daemon processes (shard ``i`` always lives on worker
    ``i % W``'s group) and every call is one pipe round-trip per worker.

    Results are always returned in shard order, regardless of how the
    actors are grouped onto processes.
    """

    def __init__(
        self,
        factories: "Sequence[Callable[[], Any]]",
        workers: int = 1,
        start_method: "str | None" = None,
    ):
        if not factories:
            raise ParameterError("ShardPool needs at least one actor factory")
        self.n_shards = len(factories)
        self.workers = max(1, min(int(workers), self.n_shards))
        self._closed = False
        #: completed :meth:`barrier` drains — the shard *epoch*.  A
        #: reader that recorded the epoch before a mutation broadcast
        #: can tell whether the post-mutation barrier it needs has
        #: already happened (the async serving tier keys on this).
        self.epoch = 0
        self._actors: "list[Any] | None" = None
        self._procs: list = []
        self._conns: list = []
        self._groups: list[np.ndarray] = []
        #: in-process per-shard cumulative actor seconds (process pools
        #: keep this in the children; see :meth:`busy_seconds`).
        self._busy = np.zeros(self.n_shards, dtype=np.float64)
        if self.workers == 1:
            self._actors = [factory() for factory in factories]
            return
        ctx = mp.get_context(start_method or default_start_method())
        self._groups = [
            g for g in np.array_split(np.arange(self.n_shards), self.workers)
            if g.size
        ]
        try:
            for group in self._groups:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_actor_main,
                    args=(child_conn, [factories[int(i)] for i in group]),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for conn in self._conns:
                self._expect_ok(conn.recv())
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _expect_ok(message):
        kind, payload = message
        if kind == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def call(
        self,
        method: str,
        shard_args: "Sequence[tuple] | None" = None,
        common: tuple = (),
    ) -> list:
        """Run ``actor.method(*args)`` on every shard; results in shard order.

        ``shard_args`` supplies one argument tuple per shard;
        without it every shard receives ``common``.
        """
        if self._closed:
            raise ParameterError("ShardPool.call after close")
        if shard_args is not None and len(shard_args) != self.n_shards:
            raise ParameterError(
                f"shard_args supplies {len(shard_args)} tuples for "
                f"{self.n_shards} shards"
            )
        args_of = (
            (lambda i: tuple(shard_args[i]))
            if shard_args is not None
            else (lambda i: common)
        )
        if self._actors is not None:
            results = []
            for i, actor in enumerate(self._actors):
                t0 = time.perf_counter()
                results.append(getattr(actor, method)(*args_of(i)))
                self._busy[i] += time.perf_counter() - t0
            return results
        for conn, group in zip(self._conns, self._groups):
            calls = [(slot, args_of(int(shard))) for slot, shard in enumerate(group)]
            conn.send(("call", method, calls))
        # Drain EVERY worker before surfacing an error: leaving queued
        # replies on the other pipes would desynchronize the protocol
        # and hand a retrying caller this round's stale payloads as the
        # answer to its next call.
        results: list = [None] * self.n_shards
        errors: list[str] = []
        for conn, group in zip(self._conns, self._groups):
            kind, payload = conn.recv()
            if kind == "error":
                errors.append(payload)
                continue
            for shard, result in zip(group, payload):
                results[int(shard)] = result
        if errors:
            raise RuntimeError(
                "shard worker failed:\n" + "\n".join(errors)
            )
        return results

    def call_where(
        self,
        method: str,
        shard_args: "Sequence[tuple]",
        mask: "Sequence[bool] | np.ndarray",
    ) -> list:
        """Run ``actor.method(*args)`` only on shards where ``mask`` holds.

        The selective sibling of :meth:`call` for broadcasts whose
        per-shard payload is often empty (the foreign-descent phase
        skips each candidate's home shard and empty shards): skipped
        shards get ``None`` in the shard-ordered result list, and a
        worker process none of whose shards are selected sees **no
        pipe round-trip at all**.
        """
        if self._closed:
            raise ParameterError("ShardPool.call_where after close")
        if len(shard_args) != self.n_shards or len(mask) != self.n_shards:
            raise ParameterError(
                f"call_where needs one args tuple and one mask entry per "
                f"shard ({self.n_shards}), got {len(shard_args)} / {len(mask)}"
            )
        results: list = [None] * self.n_shards
        if self._actors is not None:
            for i, actor in enumerate(self._actors):
                if not mask[i]:
                    continue
                t0 = time.perf_counter()
                results[i] = getattr(actor, method)(*tuple(shard_args[i]))
                self._busy[i] += time.perf_counter() - t0
            return results
        sent: list[tuple] = []
        for conn, group in zip(self._conns, self._groups):
            calls = [
                (slot, tuple(shard_args[int(shard)]))
                for slot, shard in enumerate(group)
                if mask[int(shard)]
            ]
            if not calls:
                continue
            conn.send(("call", method, calls))
            sent.append((conn, [int(group[slot]) for slot, _ in calls]))
        errors: list[str] = []
        for conn, shards in sent:
            kind, payload = conn.recv()
            if kind == "error":
                errors.append(payload)
                continue
            for shard, result in zip(shards, payload):
                results[shard] = result
        if errors:
            raise RuntimeError(
                "shard worker failed:\n" + "\n".join(errors)
            )
        return results

    def busy_seconds(self) -> np.ndarray:
        """Cumulative actor-invocation seconds per shard.

        The serve-time load signal for stats-driven rebalancing: unlike
        pair counts, it also reflects per-shard graph quality and cache
        hit rates.  Process pools fetch the children's counters (one
        ``("busy",)`` round-trip per worker); in-process pools read the
        local accumulator.  Monotone over the pool's lifetime.
        """
        if self._closed:
            raise ParameterError("ShardPool.busy_seconds after close")
        if self._actors is not None:
            return self._busy.copy()
        out = np.zeros(self.n_shards, dtype=np.float64)
        for conn in self._conns:
            conn.send(("busy",))
        for conn, group in zip(self._conns, self._groups):
            payload = self._expect_ok(conn.recv())
            for slot, shard in enumerate(group):
                out[int(shard)] = float(payload[slot])
        return out

    def barrier(self) -> int:
        """Drain every worker: returns once all prior calls completed.

        The shard **epoch barrier**: mutation broadcasts and queries on
        this pool are synchronous pipe round-trips already, so after a
        ``barrier()`` no worker holds in-flight work — the point at
        which a rebalancing epoch may retire or rebuild actors without
        racing a query, and at which the serving tier may release reads
        queued behind a mutation.  In-process pools (``workers == 1``)
        are trivially drained.  Returns the new :attr:`epoch`.
        """
        if self._closed:
            raise ParameterError("ShardPool.barrier after close")
        if self._actors is None:
            for conn in self._conns:
                conn.send(("ping",))
            for conn in self._conns:
                self._expect_ok(conn.recv())
        self.epoch += 1
        return self.epoch

    def close(self) -> None:
        """Stop the worker processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
        self._actors = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = "serial" if self.workers == 1 else f"{self.workers} procs"
        return f"ShardPool(shards={self.n_shards}, {backend})"


class SharedMemoryStore:
    """Copy-once ndarray transport through POSIX shared memory.

    Pickling carries only ``(name, shape, dtype)``; the receiving
    process reattaches the same pages by name, so a ``spawn``-started
    worker maps the parent's store instead of deserialising a copy.
    The creating side owns the segment and must eventually call
    :meth:`unlink`.  (Under ``fork`` none of this is needed — children
    inherit the parent's pages copy-on-write.)

    The ownership story is explicit: only the creating *process* may
    unlink (a forked child inheriting the owner object is pid-guarded
    out), and :meth:`close`/:meth:`unlink` are idempotent in any order —
    ``close()`` then ``unlink()`` still destroys the segment instead of
    silently leaking it.  Segments are named under the ``repro_``
    prefix so leak checks can sweep ``/dev/shm``.
    """

    def __init__(self, array: np.ndarray):
        import secrets
        from multiprocessing import shared_memory

        arr = np.ascontiguousarray(array)
        self.shape = arr.shape
        self.dtype = arr.dtype.str
        while True:
            name = "repro_shm_" + secrets.token_hex(8)
            try:
                self._shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, arr.nbytes)
                )
                break
            except FileExistsError:  # pragma: no cover - 64-bit collision
                continue
        self.name = self._shm.name.lstrip("/")
        self._owner = True
        self._owner_pid = os.getpid()
        self._unlinked = False
        view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=self._shm.buf)
        np.copyto(view, arr)

    def array(self) -> np.ndarray:
        """A view onto the shared pages (attaching by name if unpickled)."""
        if self._unlinked:
            raise ParameterError(
                f"SharedMemoryStore {self.name}: array() after unlink"
            )
        if self._shm is None:
            from .store import _attach_segment

            self._shm = _attach_segment(self.name)
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=self._shm.buf)

    def __getstate__(self) -> dict:
        return {"name": self.name, "shape": self.shape, "dtype": self.dtype}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.shape = tuple(state["shape"])
        self.dtype = state["dtype"]
        self._shm = None
        self._owner = False
        self._owner_pid = -1
        self._unlinked = False

    def close(self) -> None:
        """Detach this process's mapping (idempotent; segment stays alive)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner process only; idempotent; works
        after :meth:`close` too — a detached owner can still clean up)."""
        if not self._owner or os.getpid() != self._owner_pid or self._unlinked:
            return
        self._unlinked = True
        self.close()
        from multiprocessing import shared_memory

        try:
            shared_memory.SharedMemory(name=self.name).unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if self._owner:
                self.unlink()
            else:
                self.close()
        except Exception:
            pass


class DatasetTransport:
    """Picklable dataset handle for process pools that cannot fork.

    Vector stores (2-D ndarrays) ride a :class:`SharedMemoryStore`;
    memmap-backed stores (out-of-core ``.npy`` datasets) carry only
    their file path and are re-mapped on the receiving side — copying
    an out-of-core store into shared memory would defeat it; non-array
    stores (e.g. the edit metric's string payload) fall back to
    ordinary pickling.  :meth:`materialize` rebuilds an equivalent
    :class:`~repro.data.Dataset` (fresh distance counter) on the
    receiving side without re-running ``metric.prepare``.
    """

    def __init__(self, dataset: Dataset):
        self.metric_name = dataset.metric.name
        store = dataset.store
        if isinstance(store, np.memmap) and getattr(store, "filename", None):
            self.kind = "memmap"
            self.payload: Any = str(store.filename)
        elif isinstance(store, np.ndarray):
            self.kind = "shm"
            self.payload = SharedMemoryStore(store)
        else:
            self.kind = "raw"
            self.payload = store

    def materialize(self) -> Dataset:
        """Rebuild the dataset around the transported store."""
        from ..metrics import resolve_metric

        if self.kind == "memmap":
            from ..io import open_memmap_dataset

            return open_memmap_dataset(
                self.payload, self.metric_name, validate=False
            )
        store = self.payload.array() if self.kind == "shm" else self.payload
        dataset = object.__new__(Dataset)
        dataset.metric = resolve_metric(self.metric_name)
        dataset.store = store
        dataset.n = dataset.metric.n_objects(store)
        dataset.counter = DistanceCounter()
        return dataset

    def release(self) -> None:
        """Owner-side cleanup of any shared segment."""
        if self.kind == "shm":
            self.payload.unlink()
