"""Multi-worker execution with random load balancing (§4).

The paper parallelises Algorithm 1 by handing each thread a *random*
partition of the objects: outliers cost far more than inliers (no early
termination), and random assignment spreads them evenly without knowing
where they are.

Workers run in a thread pool.  Every distance kernel is a numpy call
that releases the GIL, so the heavy part does scale; each worker gets a
:meth:`Dataset.view` so distance accounting stays race-free, and the
per-worker counters are merged afterwards.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng

T = TypeVar("T")


def partition_indices(
    n: int,
    n_parts: int,
    rng: "int | np.random.Generator | None" = None,
) -> list[np.ndarray]:
    """Split ``0..n-1`` into ``n_parts`` random, near-equal chunks."""
    if n_parts < 1:
        raise ParameterError(f"n_parts must be >= 1, got {n_parts}")
    gen = ensure_rng(rng)
    perm = gen.permutation(n)
    return [chunk for chunk in np.array_split(perm, n_parts) if chunk.size]


class WorkerPool:
    """Persistent thread pool + per-worker dataset views, shared across queries.

    :func:`map_over_objects` allocates a fresh executor and fresh views
    on every call — fine for one-shot detection, wasteful for a serving
    process answering a stream of ``(r, k)`` queries.  A ``WorkerPool``
    allocates both once; workers additionally receive their *slot* index
    so callers can pin per-slot scratch state (e.g. one
    :class:`~repro.core.counting.VisitTracker` per worker) for the pool's
    lifetime.
    """

    def __init__(
        self,
        dataset: Dataset,
        n_jobs: int = 1,
        rng: "int | np.random.Generator | None" = None,
    ):
        if n_jobs < 1:
            raise ParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        self.dataset = dataset
        self.n_jobs = int(n_jobs)
        self._rng = ensure_rng(rng)
        self._views = [dataset.view() for _ in range(self.n_jobs)]
        self._executor = (
            ThreadPoolExecutor(max_workers=self.n_jobs) if self.n_jobs > 1 else None
        )
        self._closed = False

    def map(
        self,
        items: "Sequence[int] | np.ndarray",
        worker: Callable[[Dataset, np.ndarray, int], T],
    ) -> tuple[list[T], int]:
        """Apply ``worker(view, chunk, slot)`` over random chunks of ``items``.

        Returns the per-chunk results plus the number of distance
        computations the call performed (a delta — the views persist).
        """
        if self._closed:
            raise ParameterError("WorkerPool.map called after close")
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            return [], 0
        before = sum(v.counter.pairs for v in self._views)
        if self._executor is None:
            results = [worker(self._views[0], items, 0)]
        else:
            perm = self._rng.permutation(items.size)
            chunks = [c for c in np.array_split(items[perm], self.n_jobs) if c.size]
            futures = [
                self._executor.submit(worker, self._views[slot], chunk, slot)
                for slot, chunk in enumerate(chunks)
            ]
            results = [f.result() for f in futures]
        pairs = sum(v.counter.pairs for v in self._views) - before
        return results, pairs

    def close(self) -> None:
        """Shut the pool down; any further :meth:`map` raises."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def map_over_objects(
    dataset: Dataset,
    items: Sequence[int] | np.ndarray,
    worker: Callable[[Dataset, np.ndarray], T],
    n_jobs: int = 1,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[list[T], int]:
    """Apply ``worker(view, chunk)`` over random chunks of ``items``.

    Returns the per-chunk results plus the merged number of distance
    computations performed by the workers.
    """
    if n_jobs < 1:
        raise ParameterError(f"n_jobs must be >= 1, got {n_jobs}")
    items = np.asarray(items, dtype=np.int64)
    if items.size == 0:
        return [], 0
    if n_jobs == 1:
        view = dataset.view()
        result = worker(view, items)
        return [result], view.counter.pairs

    gen = ensure_rng(rng)
    perm = gen.permutation(items.size)
    chunks = [c for c in np.array_split(items[perm], n_jobs) if c.size]
    views = [dataset.view() for _ in chunks]
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        futures = [
            pool.submit(worker, view, chunk) for view, chunk in zip(views, chunks)
        ]
        results = [f.result() for f in futures]
    pairs = sum(v.counter.pairs for v in views)
    return results, pairs
