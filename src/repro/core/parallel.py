"""Multi-worker execution with random load balancing (§4).

The paper parallelises Algorithm 1 by handing each thread a *random*
partition of the objects: outliers cost far more than inliers (no early
termination), and random assignment spreads them evenly without knowing
where they are.

Workers run in a thread pool.  Every distance kernel is a numpy call
that releases the GIL, so the heavy part does scale; each worker gets a
:meth:`Dataset.view` so distance accounting stays race-free, and the
per-worker counters are merged afterwards.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng

T = TypeVar("T")


def partition_indices(
    n: int,
    n_parts: int,
    rng: "int | np.random.Generator | None" = None,
) -> list[np.ndarray]:
    """Split ``0..n-1`` into ``n_parts`` random, near-equal chunks."""
    if n_parts < 1:
        raise ParameterError(f"n_parts must be >= 1, got {n_parts}")
    gen = ensure_rng(rng)
    perm = gen.permutation(n)
    return [chunk for chunk in np.array_split(perm, n_parts) if chunk.size]


def map_over_objects(
    dataset: Dataset,
    items: Sequence[int] | np.ndarray,
    worker: Callable[[Dataset, np.ndarray], T],
    n_jobs: int = 1,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[list[T], int]:
    """Apply ``worker(view, chunk)`` over random chunks of ``items``.

    Returns the per-chunk results plus the merged number of distance
    computations performed by the workers.
    """
    if n_jobs < 1:
        raise ParameterError(f"n_jobs must be >= 1, got {n_jobs}")
    items = np.asarray(items, dtype=np.int64)
    if items.size == 0:
        return [], 0
    if n_jobs == 1:
        view = dataset.view()
        result = worker(view, items)
        return [result], view.counter.pairs

    gen = ensure_rng(rng)
    perm = gen.permutation(items.size)
    chunks = [c for c in np.array_split(items[perm], n_jobs) if c.size]
    views = [dataset.view() for _ in chunks]
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        futures = [
            pool.submit(worker, view, chunk) for view, chunk in zip(views, chunks)
        ]
        results = [f.result() for f in futures]
    pairs = sum(v.counter.pairs for v in views)
    return results, pairs
