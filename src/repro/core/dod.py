"""Proximity graph-based DOD (Algorithm 1) and the high-level API.

:func:`graph_dod` is the paper's Algorithm 1: a filtering pass running
``Greedy-Counting`` (plus the §5.5 exact-K'NN shortcut) over every
object, followed by exact verification of the surviving candidates.
Correctness: the filter never produces false negatives (Lemma 1) and the
verifier is exact, so the returned set is exactly the outlier set.

:class:`DODetector` wraps dataset preparation, offline graph building
and verifier construction behind a scikit-learn-style ``fit`` /
``detect`` interface — the form in which downstream users consume the
library (see ``examples/``).
"""

from __future__ import annotations

import time

import numpy as np

from ..data import Dataset
from ..exceptions import GraphError, ParameterError
from ..graphs.adjacency import Graph
from ..graphs.base import build_graph
from ..metrics import Metric
from ..rng import ensure_rng
from .counting import CANDIDATE_CODE, OUTLIER_CODE, classify_chunk_arrays
from .parallel import map_over_objects
from .traversal import DEFAULT_BLOCK
from .result import DODResult, ObjectEvidence
from .verify import Verifier


def graph_dod(
    dataset: Dataset,
    graph: Graph,
    r: float,
    k: int,
    verifier: Verifier | None = None,
    n_jobs: int = 1,
    rng: "int | np.random.Generator | None" = 0,
    max_visits: int | None = None,
    follow_pivots: bool | None = None,
    collect_evidence: bool = False,
    mode: str = "auto",
    batch_size: int = DEFAULT_BLOCK,
) -> DODResult:
    """Run Algorithm 1 and return the exact outlier set.

    Parameters mirror the paper: ``r`` is the distance threshold, ``k``
    the neighbor-count threshold, ``graph`` any metric proximity graph
    built offline.  ``n_jobs`` partitions objects randomly over threads
    (§4 "Multi-threading").  With ``collect_evidence`` the result also
    carries per-object count bounds (:class:`ObjectEvidence`) that a
    :class:`~repro.engine.DetectionEngine` can ingest to warm its cache.

    ``mode`` selects the execution strategy for both phases:
    ``"batched"`` runs the multi-source level-synchronous filter kernel
    (``batch_size`` query objects per block) and the store-sweep
    verifier; ``"scalar"`` runs the one-object-at-a-time oracle path;
    ``"auto"`` (default) picks batched unless ``max_visits`` requires
    the scalar walk.  The outlier set is identical in every mode.

    Example
    -------
    >>> import numpy as np
    >>> from repro import Dataset, build_graph
    >>> ds = Dataset(np.random.default_rng(0).normal(size=(120, 4)), "l2")
    >>> graph = build_graph("kgraph", ds, K=6, rng=0)
    >>> res = graph_dod(ds, graph, r=1.4, k=6)
    >>> res.same_outliers(graph_dod(ds.view(), graph, 1.4, 6, mode="scalar"))
    True
    """
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if graph.n != dataset.n:
        raise GraphError(
            f"graph has {graph.n} vertices but dataset has {dataset.n} objects"
        )
    if not graph.finalized:
        graph.finalize()
    if verifier is None:
        verifier = Verifier(dataset)
    gen = ensure_rng(rng)
    everything = np.arange(dataset.n, dtype=np.int64)

    # -- filtering phase ---------------------------------------------------
    t0 = time.perf_counter()

    def filter_worker(view: Dataset, chunk: np.ndarray):
        return classify_chunk_arrays(
            view, graph, chunk, r, k,
            follow_pivots=follow_pivots, max_visits=max_visits,
            mode=mode, batch_size=batch_size,
        )

    chunk_results, filter_pairs = map_over_objects(
        dataset, everything, filter_worker, n_jobs=n_jobs, rng=gen
    )
    f_ids = np.concatenate([res[0] for res in chunk_results])
    f_counts = np.concatenate([res[1] for res in chunk_results])
    f_codes = np.concatenate([res[2] for res in chunk_results])
    f_exact = np.concatenate([res[3] for res in chunk_results])
    candidates = np.sort(f_ids[f_codes == CANDIDATE_CODE])
    direct = np.sort(f_ids[f_codes == OUTLIER_CODE])
    filter_seconds = time.perf_counter() - t0

    # -- verification phase ---------------------------------------------------
    t0 = time.perf_counter()

    def verify_worker(view: Dataset, chunk: np.ndarray):
        return verifier.verify_chunk(chunk, r, k, dataset=view, mode=mode)

    verify_results, verify_pairs = map_over_objects(
        dataset, candidates, verify_worker, n_jobs=n_jobs, rng=gen
    )
    verify_counts = [pce for chunk in verify_results for pce in chunk]
    verified = [p for p, _, exact in verify_counts if exact]
    verify_seconds = time.perf_counter() - t0

    evidence = None
    if collect_evidence:
        lower_bounds = np.zeros(dataset.n, dtype=np.int64)
        exact_mask = np.zeros(dataset.n, dtype=bool)
        lower_bounds[f_ids] = f_counts
        exact_mask[f_ids] = f_exact
        for p, count, exact in verify_counts:
            lower_bounds[p] = count
            exact_mask[p] = exact
        evidence = ObjectEvidence(r=r, lower_bounds=lower_bounds, exact_mask=exact_mask)

    outliers = np.sort(np.concatenate((direct, np.asarray(verified, dtype=np.int64))))
    method = str(graph.meta.get("builder", "graph"))
    return DODResult(
        outliers=outliers,
        r=r,
        k=k,
        n=dataset.n,
        method=method,
        seconds=filter_seconds + verify_seconds,
        pairs=filter_pairs + verify_pairs,
        phases={"filter": filter_seconds, "verify": verify_seconds},
        phase_pairs={"filter": filter_pairs, "verify": verify_pairs},
        counts={
            "candidates": int(candidates.size),
            "direct_outliers": int(direct.size),
            "false_positives": int(candidates.size) - len(verified),
        },
        evidence=evidence,
    )


class DODetector:
    """High-level detector: offline index building + online detection.

    Example
    -------
    >>> import numpy as np
    >>> points = np.random.default_rng(0).normal(size=(150, 4))
    >>> det = DODetector(metric="l2", graph="kgraph", K=6, seed=0).fit(points)
    >>> result = det.detect(r=1.5, k=8)      # online: exact DOD
    >>> result.outliers.dtype                # sorted int64 object ids
    dtype('int64')
    >>> engine = det.engine()                # upgrade to the serving path
    >>> bool(np.array_equal(engine.query(1.5, 8).outliers, result.outliers))
    True
    >>> engine.close()
    """

    def __init__(
        self,
        metric: "str | Metric" = "l2",
        graph: str = "mrpg",
        K: int = 16,
        seed: "int | None" = 0,
        verify: str = "auto",
        max_visits: int | None = None,
        mode: str = "auto",
        batch_size: int = DEFAULT_BLOCK,
        **graph_params,
    ):
        self.metric = metric
        self.graph_name = graph
        self.K = K
        self.seed = seed
        self.verify = verify
        self.max_visits = max_visits
        self.mode = mode
        self.batch_size = batch_size
        self.graph_params = graph_params
        self.dataset_: Dataset | None = None
        self.graph_: Graph | None = None
        self.verifier_: Verifier | None = None

    def fit(self, objects) -> "DODetector":
        """Prepare the dataset and build the proximity graph and verifier."""
        gen = ensure_rng(self.seed)
        self.dataset_ = Dataset(objects, self.metric)
        self.graph_ = build_graph(
            self.graph_name, self.dataset_, K=self.K, rng=gen, **self.graph_params
        )
        self.verifier_ = Verifier(self.dataset_, strategy=self.verify, rng=gen)
        return self

    @property
    def is_fitted(self) -> bool:
        return self.graph_ is not None

    def detect(self, r: float, k: int, n_jobs: int = 1) -> DODResult:
        """Find all (r, k)-outliers; requires :meth:`fit` first."""
        if not self.is_fitted:
            raise ParameterError("DODetector.detect called before fit")
        assert self.dataset_ is not None and self.graph_ is not None
        return graph_dod(
            self.dataset_,
            self.graph_,
            r,
            k,
            verifier=self.verifier_,
            n_jobs=n_jobs,
            rng=ensure_rng(self.seed),
            max_visits=self.max_visits,
            mode=self.mode,
            batch_size=self.batch_size,
        )

    def fit_detect(self, objects, r: float, k: int, n_jobs: int = 1) -> DODResult:
        """Convenience: :meth:`fit` then :meth:`detect`."""
        return self.fit(objects).detect(r, k, n_jobs=n_jobs)

    def engine(self, n_jobs: int = 1):
        """A :class:`~repro.engine.DetectionEngine` over the fitted index.

        The serving-path upgrade of :meth:`detect`: answers streams of
        ``(r, k)`` queries with cross-query evidence reuse instead of a
        from-scratch run per call.
        """
        if not self.is_fitted:
            raise ParameterError("DODetector.engine called before fit")
        from ..engine import DetectionEngine

        return DetectionEngine(
            self.dataset_,
            self.graph_,
            verifier=self.verifier_,
            n_jobs=n_jobs,
            rng=ensure_rng(self.seed),
            max_visits=self.max_visits,
            mode=self.mode,
            batch_size=self.batch_size,
        )

    @property
    def index_nbytes(self) -> int:
        """Memory of the offline index (graph + verification structures)."""
        if self.graph_ is None:
            return 0
        total = self.graph_.nbytes
        if self.verifier_ is not None:
            total += self.verifier_.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DODetector(metric={self.metric!r}, graph={self.graph_name!r}, "
            f"K={self.K}, fitted={self.is_fitted})"
        )


def detect_outliers(
    objects,
    r: float,
    k: int,
    metric: "str | Metric" = "l2",
    graph: str = "mrpg",
    K: int = 16,
    seed: "int | None" = 0,
    n_jobs: int = 1,
    **graph_params,
) -> DODResult:
    """One-call convenience wrapper around :class:`DODetector`."""
    det = DODetector(
        metric=metric, graph=graph, K=K, seed=seed, **graph_params
    )
    return det.fit_detect(objects, r, k, n_jobs=n_jobs)
