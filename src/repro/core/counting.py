"""Greedy-Counting (Algorithm 2) and the filtering decision.

``greedy_count`` walks the proximity graph from the query object,
counting confirmed neighbors (distance <= r) and enqueueing them; MRPG
pivots are enqueued even when they fall outside the radius (lines 13-14
of Algorithm 2 — required after Remove-Links, which re-routes pruned
triangles through pivots).  The walk stops the moment the count reaches
``k``: the object is then provably an inlier.

The count can only *under*-state the true neighbor count (Lemma 1), so
objects whose count stays below ``k`` are false-positive *candidates*,
never false negatives — exactness is preserved by verifying only them.

``classify`` adds the §5.5 shortcut: an object holding an exact K'-NN
list with ``k <= K'`` is decided in O(k) from the stored distances —
including a *definitive outlier* verdict that skips verification
entirely (the main reason MRPG beats MRPG-basic in Table 5).

Frontier expansion is batched: one vectorised distance kernel per popped
vertex, over all its unvisited neighbors.  This scalar walk is the
exactness oracle; the production path is the multi-source
level-synchronous kernel in :mod:`repro.core.traversal`, reached through
``classify_chunk(_arrays)``'s ``mode`` knob and bit-identical on every
verdict and sub-``k`` count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..graphs.adjacency import Graph


class VisitTracker:
    """Reusable visited-set with O(1) reset via epoch stamping."""

    def __init__(self, n: int):
        self.stamp = np.zeros(n, dtype=np.int64)
        self.epoch = 0

    def new_epoch(self) -> None:
        self.epoch += 1

    def fresh_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean mask of ids not yet visited this epoch."""
        return self.stamp[ids] != self.epoch

    def visit(self, ids: np.ndarray) -> None:
        self.stamp[ids] = self.epoch

    def visit_one(self, v: int) -> None:
        self.stamp[v] = self.epoch


class FilterOutcome(Enum):
    """Verdict of the filtering phase for one object."""

    INLIER = "inlier"
    CANDIDATE = "candidate"
    OUTLIER = "outlier"  # definitive, via the exact-K'NN shortcut (§5.5)


@dataclass(frozen=True)
class FilterEvidence:
    """Everything the filtering phase learned about one object.

    ``count`` is a *lower bound* on the object's true neighbor count at
    the query radius (Lemma 1); when ``exact`` is set it is the true
    count (the exact-K'NN shortcut saw every neighbor).  Because
    neighbor counts are monotone in ``r``, a lower bound stays valid at
    any larger radius and an exact count caps the count at any smaller
    radius — the facts the multi-query :class:`~repro.engine.DetectionEngine`
    caches to decide later queries without re-traversal.
    """

    outcome: FilterOutcome
    count: int
    exact: bool


def greedy_count(
    dataset: Dataset,
    graph: Graph,
    p: int,
    r: float,
    k: int,
    tracker: VisitTracker | None = None,
    follow_pivots: bool | None = None,
    max_visits: int | None = None,
) -> int:
    """Count neighbors of ``p`` by greedy graph traversal, stopping at ``k``.

    Returns a value ``>= k`` iff at least ``k`` neighbors were confirmed;
    otherwise the (possibly understated) number of confirmed neighbors.

    ``max_visits`` optionally caps the number of traversed vertices; a
    cap can only inflate false positives, never break exactness.
    """
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if tracker is None:
        tracker = VisitTracker(graph.n)
    if follow_pivots is None:
        follow_pivots = bool(graph.pivots.any())
    tracker.new_epoch()
    tracker.visit_one(p)

    count = 0
    visits = 0
    queue: deque[int] = deque([p])
    pivots = graph.pivots
    while queue:
        v = queue.popleft()
        nbrs = graph.neighbors(v)
        if nbrs.size == 0:
            continue
        fresh = nbrs[tracker.fresh_mask(nbrs)]
        if fresh.size == 0:
            continue
        tracker.visit(fresh)
        visits += fresh.size
        d = dataset.dist_many(p, fresh, bound=r)
        within = d <= r
        count += int(np.count_nonzero(within))
        if count >= k:
            return count
        queue.extend(fresh[within].tolist())
        if follow_pivots:
            queue.extend(fresh[~within & pivots[fresh]].tolist())
        if max_visits is not None and visits >= max_visits:
            break
    return count


def exact_knn_shortcut(
    graph: Graph, p: int, r: float, k: int
) -> FilterEvidence | None:
    """The §5.5 exact-K'NN replacement for the traversal, when it applies.

    Returns ``None`` when ``p`` holds no exact list or ``k`` exceeds its
    length (the caller then falls through to the generic traversal).
    Shared by the scalar and batched filtering paths so the shortcut
    semantics cannot drift between them.
    """
    exact = graph.exact_knn.get(p)
    if exact is None:
        return None
    ids, dists = exact
    if k > ids.size:
        # k > K': fall through to the generic traversal (generality, §5.5).
        return None
    # The K' nearest neighbors are exact, so when fewer than k of
    # them fall within r, *no* unseen object can: the verdict is
    # final in O(k) with zero distance computations.  The count
    # is exact unless all K' fall inside r (then it is the lower
    # bound K').
    within = int(np.count_nonzero(dists <= r))
    outcome = FilterOutcome.INLIER if within >= k else FilterOutcome.OUTLIER
    return FilterEvidence(outcome, within, exact=within < ids.size)


def classify_evidence(
    dataset: Dataset,
    graph: Graph,
    p: int,
    r: float,
    k: int,
    tracker: VisitTracker | None = None,
    follow_pivots: bool | None = None,
    max_visits: int | None = None,
) -> FilterEvidence:
    """Filtering-phase verdict for object ``p`` plus the count evidence
    backing it (Algorithm 1, lines 3-5, with the §5.5 replacement for
    exact-K'NN holders)."""
    shortcut = exact_knn_shortcut(graph, p, r, k)
    if shortcut is not None:
        return shortcut
    count = greedy_count(
        dataset,
        graph,
        p,
        r,
        k,
        tracker=tracker,
        follow_pivots=follow_pivots,
        max_visits=max_visits,
    )
    outcome = FilterOutcome.INLIER if count >= k else FilterOutcome.CANDIDATE
    return FilterEvidence(outcome, count, exact=False)


def classify(
    dataset: Dataset,
    graph: Graph,
    p: int,
    r: float,
    k: int,
    tracker: VisitTracker | None = None,
    follow_pivots: bool | None = None,
    max_visits: int | None = None,
) -> FilterOutcome:
    """Filtering-phase verdict for object ``p`` (evidence discarded)."""
    return classify_evidence(
        dataset,
        graph,
        p,
        r,
        k,
        tracker=tracker,
        follow_pivots=follow_pivots,
        max_visits=max_visits,
    ).outcome


#: recognised filtering execution modes.
FILTER_MODES = ("auto", "scalar", "batched")


def resolve_filter_mode(mode: str, max_visits: int | None) -> str:
    """Pick the concrete filtering mode for a request.

    ``auto`` prefers the batched level-synchronous kernel and falls back
    to the scalar walk when ``max_visits`` is set (the visit cap is
    visit-order-dependent, which a level-synchronous walk cannot
    reproduce).  Asking for ``batched`` *with* a cap is a contradiction
    and raises.
    """
    if mode not in FILTER_MODES:
        raise ParameterError(f"unknown filter mode {mode!r}; known: {FILTER_MODES}")
    if mode == "auto":
        return "scalar" if max_visits is not None else "batched"
    if mode == "batched" and max_visits is not None:
        raise ParameterError(
            "batched filtering cannot honor max_visits (order-dependent); "
            "use mode='scalar' or mode='auto'"
        )
    return mode


#: integer outcome codes used by the array-returning filter API.
INLIER_CODE, CANDIDATE_CODE, OUTLIER_CODE = 0, 1, 2
_CODE_TO_OUTCOME = (FilterOutcome.INLIER, FilterOutcome.CANDIDATE, FilterOutcome.OUTLIER)


def classify_chunk_arrays(
    dataset: Dataset,
    graph: Graph,
    chunk: np.ndarray,
    r: float,
    k: int,
    tracker: VisitTracker | None = None,
    follow_pivots: bool | None = None,
    max_visits: int | None = None,
    mode: str = "auto",
    batch_size: int = 64,
    block_tracker: "BlockTracker | None" = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Array-form filtering verdicts: ``(ids, counts, codes, exact)``.

    The flat-array counterpart of :func:`classify_chunk` (same order as
    ``chunk``; ``codes`` holds :data:`INLIER_CODE` /
    :data:`CANDIDATE_CODE` / :data:`OUTLIER_CODE`).  This is the form
    the hot paths (``graph_dod``, the engine) consume — no per-object
    Python objects.

    ``mode`` selects the execution strategy — ``"scalar"`` walks one
    object at a time (the exactness oracle), ``"batched"`` runs the
    level-synchronous multi-source kernel over ``batch_size`` objects
    per block with the §5.5 exact-K'NN shortcut applied vectorised,
    ``"auto"`` picks batched unless ``max_visits`` forces the scalar
    walk.  Verdicts and sub-``k`` counts are identical in every mode.
    """
    if batch_size < 1:
        raise ParameterError(f"batch_size must be >= 1, got {batch_size}")
    concrete = resolve_filter_mode(mode, max_visits)
    chunk = np.asarray(chunk, dtype=np.int64)
    counts = np.zeros(chunk.size, dtype=np.int64)
    codes = np.empty(chunk.size, dtype=np.int8)
    exact = np.zeros(chunk.size, dtype=bool)

    if concrete == "scalar":
        if tracker is None:
            tracker = VisitTracker(graph.n)
        for t, p in enumerate(chunk):
            ev = classify_evidence(
                dataset, graph, int(p), r, k,
                tracker=tracker, follow_pivots=follow_pivots,
                max_visits=max_visits,
            )
            counts[t] = ev.count
            codes[t] = _CODE_TO_OUTCOME.index(ev.outcome)
            exact[t] = ev.exact
        return chunk, counts, codes, exact

    from .traversal import BlockTracker, greedy_count_block

    # -- §5.5 exact-K'NN shortcut, vectorised over every holder ------------
    # A holder with k <= K' is decided straight from its stored sorted
    # distances: gather exactly the eligible holders' payload segments
    # and sum "how many lie within r" per segment in one reduceat.
    walk_mask = np.ones(chunk.size, dtype=bool)
    owners, sizes, ptr, knn_dists = graph.exact_knn_arrays()
    if owners.size and chunk.size:
        pos = np.searchsorted(owners, chunk)
        pos_safe = np.minimum(pos, owners.size - 1)
        eligible = (owners[pos_safe] == chunk) & (sizes[pos_safe] >= k)
        if eligible.any():
            h = pos_safe[eligible]
            seg_sizes = sizes[h]
            offsets = np.cumsum(seg_sizes) - seg_sizes
            flat = np.arange(int(seg_sizes.sum()), dtype=np.int64) - np.repeat(
                offsets, seg_sizes
            )
            vals = knn_dists[np.repeat(ptr[h], seg_sizes) + flat]
            # no zero-length segments: eligibility requires sizes >= k >= 1
            within = np.add.reduceat((vals <= r).astype(np.int64), offsets)
            counts[eligible] = within
            codes[eligible] = np.where(within >= k, INLIER_CODE, OUTLIER_CODE)
            exact[eligible] = within < seg_sizes
            walk_mask = ~eligible

    # -- everyone else: multi-source level-synchronous traversal -----------
    walk_pos = np.flatnonzero(walk_mask)
    if walk_pos.size:
        if block_tracker is None:
            block_tracker = BlockTracker(graph.n, min(batch_size, walk_pos.size))
        for lo in range(0, walk_pos.size, batch_size):
            pos_blk = walk_pos[lo:lo + batch_size]
            counts[pos_blk] = greedy_count_block(
                dataset, graph, chunk[pos_blk], r, k,
                tracker=block_tracker, follow_pivots=follow_pivots,
            )
        codes[walk_pos] = np.where(
            counts[walk_pos] >= k, INLIER_CODE, CANDIDATE_CODE
        )
    return chunk, counts, codes, exact


def classify_block(
    dataset: Dataset,
    graph: Graph,
    block: np.ndarray,
    r: float,
    k: int,
    tracker: "BlockTracker | None" = None,
    follow_pivots: bool | None = None,
) -> list[tuple[int, FilterEvidence]]:
    """Batched filtering verdicts for one block of objects.

    Exact-K'NN holders are decided by the shared §5.5 shortcut (O(k),
    no distances); the rest traverse together through one
    :func:`~repro.core.traversal.greedy_count_block` call.  Verdicts and
    sub-``k`` counts are identical to :func:`classify_evidence`'s.
    """
    block = np.asarray(block, dtype=np.int64)
    ids, counts, codes, exact = classify_chunk_arrays(
        dataset, graph, block, r, k,
        follow_pivots=follow_pivots, mode="batched",
        batch_size=max(1, block.size), block_tracker=tracker,
    )
    return [
        (int(p), FilterEvidence(_CODE_TO_OUTCOME[c], int(cnt), bool(e)))
        for p, cnt, c, e in zip(ids, counts, codes, exact)
    ]


def classify_chunk(
    dataset: Dataset,
    graph: Graph,
    chunk: np.ndarray,
    r: float,
    k: int,
    tracker: VisitTracker | None = None,
    follow_pivots: bool | None = None,
    max_visits: int | None = None,
    mode: str = "auto",
    batch_size: int = 64,
    block_tracker: "BlockTracker | None" = None,
) -> list[tuple[int, FilterEvidence]]:
    """The shared per-chunk body of Algorithm 1's filtering loop.

    Both :func:`~repro.core.dod.graph_dod` and the multi-query engine
    run exactly this (via the array form,
    :func:`classify_chunk_arrays`) over their worker chunks, so the
    filter semantics cannot drift between the one-shot and the serving
    path.  See :func:`classify_chunk_arrays` for the ``mode`` /
    ``batch_size`` knobs; verdicts and sub-``k`` counts are identical
    in every mode.
    """
    ids, counts, codes, exact = classify_chunk_arrays(
        dataset, graph, chunk, r, k,
        tracker=tracker, follow_pivots=follow_pivots, max_visits=max_visits,
        mode=mode, batch_size=batch_size, block_tracker=block_tracker,
    )
    return [
        (int(p), FilterEvidence(_CODE_TO_OUTCOME[c], int(cnt), bool(e)))
        for p, cnt, c, e in zip(ids, counts, codes, exact)
    ]


def split_outcomes(
    results: "list[tuple[int, FilterEvidence]]",
) -> tuple[list[int], list[int]]:
    """Partition :func:`classify_chunk` output into Algorithm 1's two
    follow-up sets: verification candidates and direct outliers.

    Part of the list-based compatibility API around
    :func:`classify_chunk`; the production paths (``graph_dod``, the
    engine) split the code arrays of :func:`classify_chunk_arrays`
    directly instead."""
    candidates = [p for p, ev in results if ev.outcome is FilterOutcome.CANDIDATE]
    direct = [p for p, ev in results if ev.outcome is FilterOutcome.OUTLIER]
    return candidates, direct
