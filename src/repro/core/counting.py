"""Greedy-Counting (Algorithm 2) and the filtering decision.

``greedy_count`` walks the proximity graph from the query object,
counting confirmed neighbors (distance <= r) and enqueueing them; MRPG
pivots are enqueued even when they fall outside the radius (lines 13-14
of Algorithm 2 — required after Remove-Links, which re-routes pruned
triangles through pivots).  The walk stops the moment the count reaches
``k``: the object is then provably an inlier.

The count can only *under*-state the true neighbor count (Lemma 1), so
objects whose count stays below ``k`` are false-positive *candidates*,
never false negatives — exactness is preserved by verifying only them.

``classify`` adds the §5.5 shortcut: an object holding an exact K'-NN
list with ``k <= K'`` is decided in O(k) from the stored distances —
including a *definitive outlier* verdict that skips verification
entirely (the main reason MRPG beats MRPG-basic in Table 5).

Frontier expansion is batched: one vectorised distance kernel per popped
vertex, over all its unvisited neighbors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..graphs.adjacency import Graph


class VisitTracker:
    """Reusable visited-set with O(1) reset via epoch stamping."""

    def __init__(self, n: int):
        self.stamp = np.zeros(n, dtype=np.int64)
        self.epoch = 0

    def new_epoch(self) -> None:
        self.epoch += 1

    def fresh_mask(self, ids: np.ndarray) -> np.ndarray:
        """Boolean mask of ids not yet visited this epoch."""
        return self.stamp[ids] != self.epoch

    def visit(self, ids: np.ndarray) -> None:
        self.stamp[ids] = self.epoch

    def visit_one(self, v: int) -> None:
        self.stamp[v] = self.epoch


class FilterOutcome(Enum):
    """Verdict of the filtering phase for one object."""

    INLIER = "inlier"
    CANDIDATE = "candidate"
    OUTLIER = "outlier"  # definitive, via the exact-K'NN shortcut (§5.5)


@dataclass(frozen=True)
class FilterEvidence:
    """Everything the filtering phase learned about one object.

    ``count`` is a *lower bound* on the object's true neighbor count at
    the query radius (Lemma 1); when ``exact`` is set it is the true
    count (the exact-K'NN shortcut saw every neighbor).  Because
    neighbor counts are monotone in ``r``, a lower bound stays valid at
    any larger radius and an exact count caps the count at any smaller
    radius — the facts the multi-query :class:`~repro.engine.DetectionEngine`
    caches to decide later queries without re-traversal.
    """

    outcome: FilterOutcome
    count: int
    exact: bool


def greedy_count(
    dataset: Dataset,
    graph: Graph,
    p: int,
    r: float,
    k: int,
    tracker: VisitTracker | None = None,
    follow_pivots: bool | None = None,
    max_visits: int | None = None,
) -> int:
    """Count neighbors of ``p`` by greedy graph traversal, stopping at ``k``.

    Returns a value ``>= k`` iff at least ``k`` neighbors were confirmed;
    otherwise the (possibly understated) number of confirmed neighbors.

    ``max_visits`` optionally caps the number of traversed vertices; a
    cap can only inflate false positives, never break exactness.
    """
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if tracker is None:
        tracker = VisitTracker(graph.n)
    if follow_pivots is None:
        follow_pivots = bool(graph.pivots.any())
    tracker.new_epoch()
    tracker.visit_one(p)

    count = 0
    visits = 0
    queue: deque[int] = deque([p])
    pivots = graph.pivots
    while queue:
        v = queue.popleft()
        nbrs = graph.neighbors(v)
        if nbrs.size == 0:
            continue
        fresh = nbrs[tracker.fresh_mask(nbrs)]
        if fresh.size == 0:
            continue
        tracker.visit(fresh)
        visits += fresh.size
        d = dataset.dist_many(p, fresh, bound=r)
        within = d <= r
        count += int(np.count_nonzero(within))
        if count >= k:
            return count
        queue.extend(int(w) for w in fresh[within])
        if follow_pivots:
            out_of_range_pivots = fresh[~within & pivots[fresh]]
            queue.extend(int(w) for w in out_of_range_pivots)
        if max_visits is not None and visits >= max_visits:
            break
    return count


def classify_evidence(
    dataset: Dataset,
    graph: Graph,
    p: int,
    r: float,
    k: int,
    tracker: VisitTracker | None = None,
    follow_pivots: bool | None = None,
    max_visits: int | None = None,
) -> FilterEvidence:
    """Filtering-phase verdict for object ``p`` plus the count evidence
    backing it (Algorithm 1, lines 3-5, with the §5.5 replacement for
    exact-K'NN holders)."""
    exact = graph.exact_knn.get(p)
    if exact is not None:
        ids, dists = exact
        if k <= ids.size:
            # The K' nearest neighbors are exact, so when fewer than k of
            # them fall within r, *no* unseen object can: the verdict is
            # final in O(k) with zero distance computations.  The count
            # is exact unless all K' fall inside r (then it is the lower
            # bound K').
            within = int(np.count_nonzero(dists <= r))
            outcome = FilterOutcome.INLIER if within >= k else FilterOutcome.OUTLIER
            return FilterEvidence(outcome, within, exact=within < ids.size)
        # k > K': fall through to the generic traversal (generality, §5.5).
    count = greedy_count(
        dataset,
        graph,
        p,
        r,
        k,
        tracker=tracker,
        follow_pivots=follow_pivots,
        max_visits=max_visits,
    )
    outcome = FilterOutcome.INLIER if count >= k else FilterOutcome.CANDIDATE
    return FilterEvidence(outcome, count, exact=False)


def classify(
    dataset: Dataset,
    graph: Graph,
    p: int,
    r: float,
    k: int,
    tracker: VisitTracker | None = None,
    follow_pivots: bool | None = None,
    max_visits: int | None = None,
) -> FilterOutcome:
    """Filtering-phase verdict for object ``p`` (evidence discarded)."""
    return classify_evidence(
        dataset,
        graph,
        p,
        r,
        k,
        tracker=tracker,
        follow_pivots=follow_pivots,
        max_visits=max_visits,
    ).outcome


def classify_chunk(
    dataset: Dataset,
    graph: Graph,
    chunk: np.ndarray,
    r: float,
    k: int,
    tracker: VisitTracker | None = None,
    follow_pivots: bool | None = None,
    max_visits: int | None = None,
) -> list[tuple[int, FilterEvidence]]:
    """The shared per-chunk body of Algorithm 1's filtering loop.

    Both :func:`~repro.core.dod.graph_dod` and the multi-query engine
    run exactly this over their worker chunks, so the filter semantics
    cannot drift between the one-shot and the serving path.
    """
    if tracker is None:
        tracker = VisitTracker(graph.n)
    return [
        (
            int(p),
            classify_evidence(
                dataset,
                graph,
                int(p),
                r,
                k,
                tracker=tracker,
                follow_pivots=follow_pivots,
                max_visits=max_visits,
            ),
        )
        for p in chunk
    ]


def split_outcomes(
    results: "list[tuple[int, FilterEvidence]]",
) -> tuple[list[int], list[int]]:
    """Partition :func:`classify_chunk` output into Algorithm 1's two
    follow-up sets: verification candidates and direct outliers."""
    candidates = [p for p, ev in results if ev.outcome is FilterOutcome.CANDIDATE]
    direct = [p for p, ev in results if ev.outcome is FilterOutcome.OUTLIER]
    return candidates, direct
