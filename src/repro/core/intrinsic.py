"""Intrinsic dimensionality estimation.

The paper's ``Exact-Counting`` picks its strategy by intrinsic (not
ambient) dimensionality: a VP-tree range count for low-ID data, a linear
scan otherwise (§4, footnote 2: "when this is less than 5, it can be
considered as low").

We use the classical distance-distribution estimator of Chávez et al.
(2001): ``rho = mu^2 / (2 sigma^2)`` over sampled pairwise distances.
Concentrated distance distributions (small relative spread) mean high
intrinsic dimensionality and useless metric pruning.
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng


def estimate_intrinsic_dim(
    dataset: Dataset,
    n_pairs: int = 2000,
    rng: "int | np.random.Generator | None" = 0,
) -> float:
    """Estimate intrinsic dimensionality from sampled pairwise distances.

    Returns ``inf`` for degenerate (zero-variance) distance samples —
    metric pruning is hopeless there, which steers the auto verifier to
    the linear scan.
    """
    if n_pairs < 2:
        raise ParameterError(f"n_pairs must be >= 2, got {n_pairs}")
    gen = ensure_rng(rng)
    n = dataset.n
    if n < 2:
        return 0.0
    a = gen.integers(0, n, size=n_pairs)
    b = gen.integers(0, n, size=n_pairs)
    keep = a != b
    a, b = a[keep], b[keep]
    if a.size == 0:
        return 0.0
    d = dataset.pair_dist(a, b)
    mu = float(d.mean())
    var = float(d.var())
    if var <= 0.0 or mu == 0.0:
        return np.inf if mu > 0 else 0.0
    return mu * mu / (2.0 * var)
