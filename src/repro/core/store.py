"""The growable, generation-versioned shared object store.

The zero-copy data plane of the mutable sharded engine
(:mod:`repro.engine.mutable_sharded`).  One process — the engine parent
— *owns* a POSIX shared-memory segment holding the prepared vector log;
every shard worker *attaches* the same pages by name and serves queries
over a zero-copy :meth:`~repro.data.Dataset.from_prepared` view.
Mutations then broadcast **metadata only** (segment name, length,
generation) instead of shipping raw vectors to every worker.

Segment layout (one mapping)::

    [ header: 5 x int64, padded to 64 bytes ][ row data: capacity x dim ]
      magic  generation  length  capacity  dim

POSIX shared memory cannot grow in place, so growth and compaction
*relocate*: the owner allocates a fresh segment (fresh name), copies the
surviving rows, bumps the **generation**, stamps the old segment's
header as moved, and unlinks it.  Existing worker mappings of the old
segment stay valid until the workers re-attach — the generation
protocol makes the hand-off explicit:

* every mutation broadcast carries :meth:`SharedObjectStore.meta`;
* a worker calls :meth:`SharedObjectStore.sync` with that metadata —
  same name means the mapping is current (only the length moved),
  a new name triggers a re-attach;
* a broadcast older than what the worker already mapped, or an attach
  to a stamped/vanished segment, raises
  :class:`~repro.exceptions.GraphError` — stale reads are rejected,
  never silently served.

Deletes never touch the data plane: the engine tombstones offsets
(:meth:`SharedObjectStore.tombstone` is pure bookkeeping) and reclaims
them in a compaction epoch behind
:meth:`~repro.core.parallel.ShardPool.barrier`
(:meth:`SharedObjectStore.compact`).

Ownership is pid-guarded: a forked child inherits the owner object but
must never unlink the parent's segment, so :meth:`unlink` (and the
best-effort ``__del__``) act only in the creating process.  All
lifecycle methods are idempotent.  Segment names carry the
:data:`STORE_NAME_PREFIX` so tests can assert ``/dev/shm`` holds no
leaked ``repro_*`` entries.
"""

from __future__ import annotations

import os
import secrets
import threading

import numpy as np

from ..exceptions import GraphError, ParameterError

#: ``/dev/shm`` name prefix of every segment this module creates (the
#: leak-check fixtures key on ``repro_``).
STORE_NAME_PREFIX = "repro_store_"

#: header magic of a live segment ("REPROSOS" packed big-endian).
_MAGIC = 0x524550524F534F53
#: header magic stamped into a segment that has been relocated away
#: from (grow/compact) — attaching to it is a stale read.
_MOVED = 0x5245504D4F564544

#: header field count / reserved bytes before the row data.
_HEADER_FIELDS = 5  # magic, generation, length, capacity, dim
_HEADER_BYTES = 64

_H_MAGIC, _H_GEN, _H_LEN, _H_CAP, _H_DIM = range(_HEADER_FIELDS)


_attach_lock = threading.Lock()


def _attach_segment(name: str):
    """Map an existing segment by name, outside the resource tracker.

    ``multiprocessing.shared_memory`` registers *every* mapping with the
    process's resource tracker, which would tear segments down when an
    attaching worker exits; only the owner may unlink.  Registration is
    *suppressed* for the attach (rather than undone afterwards): with
    forked workers the tracker daemon is shared, and a register +
    unregister pair per attaching worker races other workers' pairs
    into double-removes — a KeyError traceback inside the tracker at
    exit.  (Python 3.13's ``track=False`` is this, portably.)
    """
    from multiprocessing import shared_memory

    try:  # pragma: no cover - tracker internals differ across versions
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        with _attach_lock:
            resource_tracker.register = _skip_shm
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
    except FileNotFoundError:
        raise
    except Exception:  # pragma: no cover - tracker internals vary
        return shared_memory.SharedMemory(name=name)


class SharedObjectStore:
    """A growable shared-memory vector log with generation-versioned maps.

    Constructing the class creates an **owner** (empty, with room for
    ``capacity`` rows); :meth:`attach` creates a worker-side handle onto
    an owner's segment from a :meth:`meta` broadcast.  The owner appends,
    tombstones, compacts and eventually :meth:`unlink`\\ s; handles
    :meth:`sync` and read :meth:`rows`.
    """

    def __init__(self, dim: int, dtype=np.float64, capacity: int = 64):
        dim = int(dim)
        if dim < 1:
            raise ParameterError(f"store dim must be >= 1, got {dim}")
        self.dim = dim
        self.dtype = np.dtype(dtype)
        if not np.issubdtype(self.dtype, np.floating):
            raise ParameterError(
                f"store dtype must be a float type, got {self.dtype}"
            )
        self._owner = True
        self._owner_pid = os.getpid()
        self._unlinked = False
        self._generation = 1
        self._length = 0
        self._tombstoned: set[int] = set()
        self._shm = None
        self.name = ""
        self._allocate(max(1, int(capacity)))

    # -- construction ------------------------------------------------------

    @classmethod
    def attach(cls, meta: dict) -> "SharedObjectStore":
        """A non-owner handle mapped from a :meth:`meta` broadcast.

        Raises :class:`GraphError` when the named segment is gone or has
        been relocated away from (its header is stamped moved), or when
        the broadcast disagrees with the mapped header — a stale handle
        must never serve reads.
        """
        handle = object.__new__(cls)
        handle.dim = int(meta["dim"])
        handle.dtype = np.dtype(meta["dtype"])
        handle._owner = False
        handle._owner_pid = -1
        handle._unlinked = False
        handle._tombstoned = set()
        handle._shm = None
        handle.name = ""
        handle._generation = 0
        handle._length = 0
        handle._map(str(meta["name"]), int(meta["generation"]))
        handle._length = int(meta["length"])
        if handle._length > handle._capacity:
            raise GraphError(
                f"shared store {handle.name}: broadcast length "
                f"{handle._length} exceeds segment capacity "
                f"{handle._capacity}"
            )
        return handle

    def _segment_nbytes(self, capacity: int) -> int:
        return _HEADER_BYTES + capacity * self.dim * self.dtype.itemsize

    def _views(self):
        header = np.ndarray(
            (_HEADER_FIELDS,), dtype=np.int64, buffer=self._shm.buf
        )
        data = np.ndarray(
            (self._capacity, self.dim),
            dtype=self.dtype,
            buffer=self._shm.buf,
            offset=_HEADER_BYTES,
        )
        return header, data

    def _allocate(self, capacity: int) -> None:
        """Owner: create a fresh named segment and write its header."""
        from multiprocessing import shared_memory

        size = self._segment_nbytes(capacity)
        while True:
            name = STORE_NAME_PREFIX + secrets.token_hex(8)
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
                break
            except FileExistsError:  # pragma: no cover - 64-bit collision
                continue
        self._shm = shm
        self.name = shm.name.lstrip("/")
        self._capacity = int(capacity)
        header, _ = self._views()
        header[_H_MAGIC] = _MAGIC
        header[_H_GEN] = self._generation
        header[_H_LEN] = self._length
        header[_H_CAP] = self._capacity
        header[_H_DIM] = self.dim

    def _map(self, name: str, generation: int) -> None:
        """Handle: map ``name`` and validate its header against ``meta``."""
        try:
            shm = _attach_segment(name)
        except FileNotFoundError:
            raise GraphError(
                f"shared store {name}: segment is gone (stale handle? the "
                f"owner relocated or unlinked it)"
            ) from None
        header = np.ndarray((_HEADER_FIELDS,), dtype=np.int64, buffer=shm.buf)
        # Copy every field out *before* any close(): closing unmaps the
        # pages, and a dangling header view dereferences freed memory.
        magic, mapped_gen, capacity, seg_dim = (
            int(header[_H_MAGIC]), int(header[_H_GEN]),
            int(header[_H_CAP]), int(header[_H_DIM]),
        )
        del header
        if magic == _MOVED:
            shm.close()
            raise GraphError(
                f"shared store {name}: segment was relocated (generation "
                f"moved on to {mapped_gen}); re-sync from a fresh broadcast"
            )
        if magic != _MAGIC:
            shm.close()
            raise GraphError(
                f"shared store {name}: not a repro object store "
                f"(bad magic {magic:#x})"
            )
        if seg_dim != self.dim:
            shm.close()
            raise GraphError(
                f"shared store {name}: segment holds dim "
                f"{seg_dim} rows, broadcast says {self.dim}"
            )
        if mapped_gen != generation:
            shm.close()
            raise GraphError(
                f"shared store {name}: mapped generation "
                f"{mapped_gen} does not match broadcast "
                f"generation {generation}"
            )
        if self._shm is not None:
            self._shm.close()
        self._shm = shm
        self.name = name.lstrip("/")
        self._capacity = capacity
        self._generation = generation

    # -- introspection -----------------------------------------------------

    @property
    def length(self) -> int:
        """Rows appended so far (tombstoned rows included)."""
        return self._length

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def n_tombstoned(self) -> int:
        return len(self._tombstoned)

    @property
    def nbytes(self) -> int:
        """Bytes held by the shared segment (header + full capacity)."""
        return self._segment_nbytes(self._capacity)

    def meta(self) -> dict:
        """The metadata-only broadcast payload (what workers ``sync`` on)."""
        return {
            "name": self.name,
            "dim": self.dim,
            "dtype": self.dtype.str,
            "length": self._length,
            "generation": self._generation,
            "capacity": self._capacity,
        }

    def stats(self) -> dict:
        """Counters for ``/stats`` and the benchmarks."""
        return {
            "kind": "shm",
            "name": self.name,
            "length": self._length,
            "capacity": self._capacity,
            "generation": self._generation,
            "tombstones": len(self._tombstoned),
            "nbytes": self.nbytes,
        }

    def rows(self, length: "int | None" = None) -> np.ndarray:
        """A zero-copy ``(length, dim)`` view of the mapped segment.

        ``length`` defaults to everything this side knows about; a
        handle passes the length from the broadcast it last synced.
        """
        if self._shm is None:
            raise ParameterError(f"shared store {self.name}: used after close")
        n = self._length if length is None else int(length)
        if not 0 <= n <= self._capacity:
            raise ParameterError(
                f"shared store {self.name}: rows({n}) outside capacity "
                f"{self._capacity}"
            )
        _, data = self._views()
        return data[:n]

    # -- owner mutations ---------------------------------------------------

    def _require_owner(self, verb: str) -> None:
        if not self._owner:
            raise ParameterError(
                f"shared store {self.name}: only the owner may {verb}"
            )
        if self._shm is None:
            raise ParameterError(f"shared store {self.name}: {verb} after close")

    def append(self, rows: np.ndarray) -> int:
        """Copy prepared rows into the log; returns the first offset.

        Grows (relocates, generation bump) when the batch exceeds the
        remaining capacity.  ``rows`` must already be prepared data —
        a 2-D array of matching dim and dtype.
        """
        self._require_owner("append")
        arr = np.ascontiguousarray(rows, dtype=self.dtype)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise GraphError(
                f"shared store {self.name}: append of shape {arr.shape} "
                f"onto dim-{self.dim} rows"
            )
        first = self._length
        needed = first + arr.shape[0]
        if needed > self._capacity:
            self._relocate(max(needed, 2 * self._capacity))
        header, data = self._views()
        data[first:needed] = arr
        self._length = needed
        header[_H_LEN] = needed
        return first

    def tombstone(self, offsets) -> None:
        """Mark offsets dead (bookkeeping only; data stays until compact)."""
        self._require_owner("tombstone")
        for off in np.asarray(offsets, dtype=np.int64).ravel():
            off = int(off)
            if not 0 <= off < self._length:
                raise ParameterError(
                    f"shared store {self.name}: tombstone offset {off} "
                    f"outside log length {self._length}"
                )
            self._tombstoned.add(off)

    def compact(self, keep) -> None:
        """Relocate to a segment holding exactly the ``keep`` rows, in order.

        The compaction epoch: the engine drains in-flight work on the
        shard-pool barrier, compacts, and broadcasts the new generation;
        workers re-attach on :meth:`sync`.  Offsets are renumbered to
        ``0..len(keep)-1`` and the tombstone set is cleared.
        """
        self._require_owner("compact")
        keep = np.asarray(keep, dtype=np.int64).ravel()
        if keep.size and (keep.min() < 0 or keep.max() >= self._length):
            raise ParameterError(
                f"shared store {self.name}: compact keeps offsets outside "
                f"the log (length {self._length})"
            )
        _, data = self._views()
        # Always pass the gathered rows — an empty keep must compact to
        # an empty log, not fall into _relocate's carry-everything
        # growth path (rows=None).
        kept = np.ascontiguousarray(data[keep])
        self._relocate(max(1, keep.size), rows=kept)
        self._tombstoned.clear()

    def _relocate(self, new_capacity: int, rows: "np.ndarray | None" = None) -> None:
        """Move the log to a fresh segment; bump generation; stamp the old.

        ``rows=None`` carries the current log across (growth);
        otherwise ``rows`` *becomes* the log (compaction).
        """
        old_shm, old_name = self._shm, self.name
        header, data = self._views()
        if rows is None:
            rows = np.ascontiguousarray(data[: self._length])
        new_generation = self._generation + 1
        self._generation = new_generation
        self._length = int(rows.shape[0]) if rows is not None else 0
        self._allocate(int(new_capacity))
        new_header, new_data = self._views()
        if rows is not None and rows.shape[0]:
            new_data[: rows.shape[0]] = rows
        new_header[_H_LEN] = self._length
        # Stamp the old header so a handle that missed the broadcast and
        # re-attaches (or reads its mapped header) sees the relocation
        # instead of silently serving superseded pages.
        header[_H_MAGIC] = _MOVED
        header[_H_GEN] = new_generation
        old_shm.close()
        from multiprocessing import shared_memory

        try:
            shared_memory.SharedMemory(name=old_name).unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # -- handle synchronisation --------------------------------------------

    def sync(self, meta: dict) -> None:
        """Bring a handle up to date with a metadata broadcast.

        Same segment name: only the length advances (zero work).  New
        name: the owner relocated — re-attach and validate the new
        header.  A broadcast whose generation is *behind* what this
        handle already mapped raises :class:`GraphError`: applying it
        would rewind the log and serve stale reads.
        """
        generation = int(meta["generation"])
        if generation < self._generation:
            raise GraphError(
                f"shared store {self.name}: stale broadcast (generation "
                f"{generation} < mapped generation {self._generation})"
            )
        if int(meta["dim"]) != self.dim:
            raise GraphError(
                f"shared store {self.name}: broadcast dim {meta['dim']} "
                f"does not match mapped dim {self.dim}"
            )
        name = str(meta["name"])
        if name != self.name or self._shm is None:
            self._map(name, generation)
        elif generation != self._generation:
            # Same name but a newer generation cannot happen: every
            # generation bump relocates to a fresh name.
            raise GraphError(
                f"shared store {self.name}: broadcast generation "
                f"{generation} on an unmoved segment (mapped "
                f"{self._generation})"
            )
        length = int(meta["length"])
        if not 0 <= length <= self._capacity:
            raise GraphError(
                f"shared store {self.name}: broadcast length {length} "
                f"outside segment capacity {self._capacity}"
            )
        self._length = length

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach this process's mapping (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only, idempotent, safe after close).

        A forked child inherits the owner object but not ownership: the
        pid guard keeps it from tearing down the parent's segment.
        """
        if not self._owner or os.getpid() != self._owner_pid or self._unlinked:
            return
        self._unlinked = True
        self.close()
        from multiprocessing import shared_memory

        try:
            shared_memory.SharedMemory(name=self.name).unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if self._owner:
                self.unlink()
            else:
                self.close()
        except Exception:
            pass

    def __enter__(self) -> "SharedObjectStore":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        side = "owner" if self._owner else "handle"
        return (
            f"SharedObjectStore({side} {self.name!r}, n={self._length}/"
            f"{self._capacity}, dim={self.dim}, gen={self._generation})"
        )
