"""Exact-Counting — the verification phase of Algorithm 1 (§4).

Objects the filter could not prove to be inliers get an exact neighbor
count with early termination at ``k``:

* **VP-tree range counting** for data of low intrinsic dimensionality
  (the paper uses it on HEPMASS, PAMAP2 and Words), or
* **chunked linear scan** otherwise, "more efficient than any indexing
  method for high-dimensional data".

``strategy="auto"`` decides via the Chávez intrinsic-dimensionality
estimate; the threshold default (8) is deliberately more permissive than
the paper's "less than 5" footnote because the estimator is biased low
on clustered data.

The linear strategy additionally offers a *batched* sweep
(:meth:`Verifier.verify_block`, via
:func:`~repro.index.linear.linear_count_block`): one chunked pass over
the store decides every pending candidate per kernel with early
retirement, instead of one early-terminated scan per candidate.
Verdicts and sub-``k`` counts are identical to the scalar loop's.
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..index.linear import linear_count, linear_count_block
from ..index.vptree import VPTree
from .counting import FILTER_MODES
from .intrinsic import estimate_intrinsic_dim

_STRATEGIES = ("auto", "vptree", "linear")


class Verifier:
    """Exact neighbor counting with early termination.

    A Verifier is built once per dataset (the VP-tree is part of offline
    pre-processing, like the paper's) and reused across ``(r, k)``
    settings.
    """

    def __init__(
        self,
        dataset: Dataset,
        strategy: str = "auto",
        vptree: VPTree | None = None,
        capacity: int = 16,
        rng: "int | np.random.Generator | None" = 0,
        intrinsic_threshold: float = 8.0,
    ):
        if strategy not in _STRATEGIES:
            raise ParameterError(
                f"unknown verify strategy {strategy!r}; known: {_STRATEGIES}"
            )
        self.dataset = dataset
        self.intrinsic_dim: float | None = None
        if strategy == "auto":
            self.intrinsic_dim = estimate_intrinsic_dim(dataset, rng=rng)
            strategy = "vptree" if self.intrinsic_dim <= intrinsic_threshold else "linear"
        self.strategy = strategy
        if strategy == "vptree":
            self.vptree = vptree if vptree is not None else VPTree(
                dataset, capacity=capacity, rng=rng
            )
        else:
            self.vptree = None

    def count(
        self,
        p: int,
        r: float,
        stop_at: int | None = None,
        dataset: Dataset | None = None,
    ) -> int:
        """Neighbor count of ``p`` (exact unless ``stop_at`` terminates it).

        ``dataset`` lets parallel workers substitute their counter view.
        """
        ds = dataset if dataset is not None else self.dataset
        if self.vptree is not None:
            return self.vptree.count_within(p, r, stop_at=stop_at, dataset=ds)
        return linear_count(ds, p, r, stop_at=stop_at)

    def is_outlier(self, p: int, r: float, k: int, dataset: Dataset | None = None) -> bool:
        """Exact verdict: does ``p`` have fewer than ``k`` neighbors?"""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        return self.count(p, r, stop_at=k, dataset=dataset) < k

    def count_evidence(
        self, p: int, r: float, k: int, dataset: Dataset | None = None
    ) -> tuple[int, bool]:
        """Early-terminated count plus its exactness flag.

        The soundness rule both ``graph_dod`` and the engine rely on
        lives here, once: termination fires only at ``>= k`` confirmed
        neighbors, so a returned count *below* ``k`` means the scan ran
        to completion and is the true neighbor count.
        """
        count = self.count(p, r, stop_at=k, dataset=dataset)
        return count, count < k

    def verify_block(
        self, chunk, r: float, k: int, dataset: Dataset | None = None
    ) -> list[tuple[int, int, bool]]:
        """Batched Exact-Counting: one store sweep for *all* candidates.

        Uses :func:`~repro.index.linear.linear_count_block` — every
        chunk of the store is evaluated against all still-pending
        candidates in one ``pair_dist`` kernel, with candidates retiring
        the moment they reach ``k``.  Only the linear strategy has a
        batched sweep; a VP-tree verifier falls back to the per-object
        loop (its traversal is inherently per-query).  Sub-``k`` counts
        and exactness flags are identical to :meth:`verify_chunk`'s.
        """
        ds = dataset if dataset is not None else self.dataset
        if self.vptree is not None:
            return self.verify_chunk(chunk, r, k, dataset=ds)
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        counts = linear_count_block(ds, chunk, r, stop_at=k)
        return [(int(p), int(c), bool(c < k)) for p, c in zip(chunk, counts)]

    def verify_chunk(
        self,
        chunk,
        r: float,
        k: int,
        dataset: Dataset | None = None,
        mode: str = "scalar",
    ) -> list[tuple[int, int, bool]]:
        """The shared per-chunk body of Algorithm 1's verification loop:
        ``(object, count, exact)`` triples for every candidate in
        ``chunk``.  Used identically by ``graph_dod`` and the engine.

        ``mode="batched"``/``"auto"`` routes through :meth:`verify_block`
        (identical verdicts, one kernel per store chunk instead of one
        scan per candidate); ``"scalar"`` keeps the per-object loop.
        """
        if mode not in FILTER_MODES:
            raise ParameterError(
                f"unknown verify mode {mode!r}; known: {FILTER_MODES}"
            )
        if mode in ("auto", "batched") and len(chunk) > 1:
            return self.verify_block(chunk, r, k, dataset=dataset)
        return [
            (int(p), *self.count_evidence(int(p), r, k, dataset=dataset))
            for p in chunk
        ]

    @property
    def nbytes(self) -> int:
        """Memory held by verification structures (0 for linear scan)."""
        return self.vptree.nbytes if self.vptree is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Verifier(strategy={self.strategy!r})"
