"""Result object shared by every DOD algorithm in the library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ObjectEvidence:
    """Per-object count evidence gathered by one ``(r, k)`` detection run.

    ``lower_bounds[p]`` is a proven lower bound on object ``p``'s true
    neighbor count at radius ``r`` (Lemma 1 for filter counts, early
    termination for verifier counts); where ``exact_mask[p]`` is set the
    bound is the true count.  Neighbor counts are monotone in ``r``, so a
    lower bound at ``r`` holds at any larger radius and an exact count
    upper-bounds the count at any smaller radius — this is the raw
    material the :class:`~repro.engine.DetectionEngine` evidence cache
    consumes to answer later queries without touching the graph.
    """

    r: float
    lower_bounds: np.ndarray  # int64[n]
    exact_mask: np.ndarray  # bool[n]

    @property
    def n(self) -> int:
        return int(self.lower_bounds.size)


@dataclass
class DODResult:
    """Outcome of one distance-based outlier detection run.

    ``phases``/``phase_pairs`` decompose wall-clock seconds and distance
    computations by phase (``"filter"``/``"verify"`` for the graph
    algorithm, ``"scan"`` for baselines, ...) — the decomposition behind
    the paper's Table 8.  ``counts`` carries algorithm-specific tallies
    such as ``"candidates"`` (the `f + t` of Theorem 1) and
    ``"direct_outliers"`` (§5.5 shortcut verdicts).
    """

    outliers: np.ndarray
    r: float
    k: int
    n: int
    method: str
    seconds: float = 0.0
    pairs: int = 0
    phases: dict[str, float] = field(default_factory=dict)
    phase_pairs: dict[str, int] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    #: per-object count evidence, populated on request (``collect_evidence``).
    evidence: "ObjectEvidence | None" = None

    @property
    def n_outliers(self) -> int:
        return int(self.outliers.size)

    @property
    def outlier_ratio(self) -> float:
        return self.n_outliers / self.n if self.n else 0.0

    def same_outliers(self, other: "DODResult | np.ndarray") -> bool:
        """True when both runs found the identical outlier set."""
        mine = np.sort(np.asarray(self.outliers))
        theirs = other.outliers if isinstance(other, DODResult) else other
        theirs = np.sort(np.asarray(theirs))
        return mine.shape == theirs.shape and bool(np.all(mine == theirs))

    def summary(self) -> str:
        """One-line human-readable report."""
        parts = [
            f"{self.method}: {self.n_outliers} outliers "
            f"({100 * self.outlier_ratio:.2f}%) in {self.seconds:.3f}s, "
            f"{self.pairs:,} distance computations"
        ]
        if self.phases:
            detail = ", ".join(f"{k}={v:.3f}s" for k, v in self.phases.items())
            parts.append(f" [{detail}]")
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DODResult(method={self.method!r}, n={self.n}, r={self.r}, "
            f"k={self.k}, outliers={self.n_outliers})"
        )
