"""Multi-source, level-synchronous Greedy-Counting (batched Algorithm 2).

:func:`greedy_count` answers one query object per call and pays one tiny
distance kernel per popped vertex — on CPython that wall-clock is almost
all interpreter and numpy-dispatch overhead, not distance math.  This
module runs Algorithm 2 for a *block* of query objects simultaneously,
the way level-synchronous BFS systems (GraphBLAS-style frontiers, and
NN-Descent itself) amortize traversal:

* per-source state lives in flat arrays: a confirmed-neighbor count, an
  alive mask, and per-source visited stamps (:class:`BlockTracker`);
* each *wave* pops a small window of frontier vertices per alive source
  from a shared worklist, gathers all their neighbors straight from the
  CSR adjacency (``Graph.csr()``) with ``np.repeat``, dedups the
  ``(source, neighbor)`` pairs with one sort, and evaluates them in a
  handful of large ``pair_dist`` kernels;
* a source retires the moment its count reaches ``k`` (it is a proven
  inlier) and contributes nothing to later kernels or waves;
* MRPG pivots are enqueued even when outside the radius, exactly as the
  scalar walk does (Algorithm 2 lines 13-14).

Two throttles keep the evaluated-pair count near the scalar walk's
while still batching hundreds of sources per kernel.  The *pop window*
bounds how many frontier vertices a source expands per wave (widening
as sources retire), so a dense frontier is not gathered wholesale when
``k`` needs only a few more confirmations.  Within a wave, pairs are
evaluated in *rank rounds*: every alive source's first ``~2k``
candidate pairs go into the first kernel, counts and the alive mask
are updated, and only still-alive sources' later ranks reach the next
(exponentially larger) round.

Exactness: with no early termination the walk explores the closure of
the source under "expand neighbors within ``r``, plus pivots", and the
count is the number of distinct visited vertices within ``r`` — a set
that does not depend on visit order.  A source is only ever skipped
(mid-level or across levels) after its count reached ``k``, so
sub-``k`` counts are *identical* to the scalar walk's, and a count that
reaches ``k`` does so in both orders (the two may disagree on how far
``>= k`` overshoots, which no caller relies on).  ``max_visits`` is the
one knob that is inherently order-dependent, so batched callers fall
back to the scalar walk when it is set.

Distances are evaluated through ``Dataset.pair_dist(..., consistent=True)``
so every comparison against ``r`` uses the exact float the scalar path's
``dist_many`` would produce.  That call is also the numeric-backend seam
(:mod:`repro.backends`): under a screening backend the bulk of each
kernel runs in float32 and only pairs inside the metric's error band of
``r`` are recomputed in float64, so the ``<= r`` verdicts — the only
thing the counts consume — still match the scalar oracle bit for bit.
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..graphs.adjacency import Graph

#: default number of simultaneous sources per block.
DEFAULT_BLOCK = 64


class BlockTracker:
    """Per-source visited stamps for a block of simultaneous traversals.

    The scalar :class:`~repro.core.counting.VisitTracker` generalised to
    ``block_size`` independent visited sets: ``stamp[s, v]`` equals the
    current epoch iff source-slot ``s`` has visited vertex ``v``.  One
    epoch bump resets all slots in O(1); the stamp matrix (int32,
    ``4 * block_size * n`` bytes) is allocated once and reused across
    blocks — pin one per worker, like the scalar trackers.
    """

    def __init__(self, n: int, block_size: int = DEFAULT_BLOCK):
        if block_size < 1:
            raise ParameterError(f"block_size must be >= 1, got {block_size}")
        self.n = int(n)
        self.block_size = int(block_size)
        self.stamp = np.zeros((self.block_size, self.n), dtype=np.int32)
        self.epoch = 0

    def new_epoch(self) -> None:
        if self.epoch >= np.iinfo(np.int32).max - 1:
            self.stamp.fill(0)
            self.epoch = 0
        self.epoch += 1

    def fresh_mask(self, slots: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Mask of ``(slot, vertex)`` pairs not yet visited this epoch."""
        return self.stamp[slots, ids] != self.epoch

    def visit(self, slots: np.ndarray, ids: np.ndarray) -> None:
        self.stamp[slots, ids] = self.epoch

    @property
    def nbytes(self) -> int:
        return int(self.stamp.nbytes)


def _segment_ranks(sorted_slots: np.ndarray) -> tuple[np.ndarray, int]:
    """Within-segment ranks of a slot-sorted array.

    Returns ``(rank, n_segments)`` where ``rank[i]`` is element ``i``'s
    position inside its run of equal slot values.
    """
    seg_start = np.concatenate(([True], sorted_slots[1:] != sorted_slots[:-1]))
    seg_idx = np.flatnonzero(seg_start)
    seg_len = np.diff(np.append(seg_idx, sorted_slots.size))
    rank = np.arange(sorted_slots.size, dtype=np.int64) - np.repeat(seg_idx, seg_len)
    return rank, seg_idx.size


def greedy_count_block(
    dataset: Dataset,
    graph: Graph,
    sources: np.ndarray,
    r: float,
    k: int,
    tracker: BlockTracker | None = None,
    follow_pivots: bool | None = None,
) -> np.ndarray:
    """Greedy-Counting for every object in ``sources`` at once.

    Returns one count per source, ``>= k`` iff the scalar
    :func:`~repro.core.counting.greedy_count` would certify the source
    an inlier, and *equal* to the scalar count whenever it stays below
    ``k``.
    """
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    sources = np.asarray(sources, dtype=np.int64)
    nsrc = sources.size
    if nsrc == 0:
        return np.empty(0, dtype=np.int64)
    if tracker is None:
        tracker = BlockTracker(graph.n, nsrc)
    elif tracker.n != graph.n or tracker.block_size < nsrc:
        raise ParameterError(
            f"BlockTracker(n={tracker.n}, block_size={tracker.block_size}) "
            f"cannot serve {nsrc} sources over a {graph.n}-vertex graph"
        )
    if follow_pivots is None:
        follow_pivots = bool(graph.pivots.any())
    indptr, indices = graph.csr()
    pivots = graph.pivots
    n = graph.n

    tracker.new_epoch()
    slots = np.arange(nsrc, dtype=np.int64)
    tracker.visit(slots, sources)

    counts = np.zeros(nsrc, dtype=np.int64)
    alive = np.ones(nsrc, dtype=bool)
    avg_deg = max(1.0, indices.size / n)
    first_round = max(32, 2 * k)

    # The worklist holds every discovered-but-not-yet-expanded frontier
    # vertex as (slot, vertex) keys; entries are unique by construction
    # (a vertex is appended only when first stamped).  The very first
    # wave — every source expanding itself — needs neither the pop
    # window nor dedup/fresh filtering (no self-loops, per-slot lists
    # are duplicate-free, nothing but the source is stamped yet).
    first_wave = True
    work_key = np.empty(0, dtype=np.int64)

    while True:
        if first_wave:
            frontier_slot, frontier_vtx = slots, sources
        else:
            if work_key.size == 0:
                break
            work_key = np.sort(work_key)
            work_slot = work_key // n
            # -- pop window: each alive source expands a few vertices ------
            # Expanding whole frontiers at once would gather/sort far
            # more pairs than retirement lets us skip, so the window
            # approximates the scalar walk's pop granularity while
            # batching all sources into one wave; it widens as sources
            # retire so late waves (the few true outliers draining their
            # small closures) stay batched.
            live = alive[work_slot]
            work_key = work_key[live]
            work_slot = work_slot[live]
            if work_key.size == 0:
                break
            rank, n_segments = _segment_ranks(work_slot)
            window = max(1, int(8192 / (n_segments * avg_deg)))
            take = rank < window
            frontier_slot = work_slot[take]
            frontier_vtx = work_key[take] - frontier_slot * n
            work_key = work_key[~take]

        # -- gather the popped vertices' out-neighbors from CSR ------------
        starts = indptr[frontier_vtx]
        degs = indptr[frontier_vtx + 1] - starts
        total = int(degs.sum())
        if total == 0:
            if first_wave:
                break
            first_wave = False
            continue
        cum = np.cumsum(degs) - degs
        flat = np.arange(total, dtype=np.int64) - np.repeat(cum, degs)
        cand_vtx = indices[np.repeat(starts, degs) + flat]
        cand_slot = np.repeat(frontier_slot, degs)

        if not first_wave:
            # -- dedup within the wave (one sort), drop visited ------------
            key = np.sort(cand_slot * n + cand_vtx)
            if key.size > 1:
                key = key[np.concatenate(([True], key[1:] != key[:-1]))]
            cand_slot, cand_vtx = np.divmod(key, n)
            fresh = tracker.fresh_mask(cand_slot, cand_vtx)
            cand_slot = cand_slot[fresh]
            cand_vtx = cand_vtx[fresh]
            if cand_vtx.size == 0:
                continue
        first_wave = False
        tracker.visit(cand_slot, cand_vtx)

        # -- rank rounds: evaluate each source's next ranks, retire at k ---
        # cand_* are slot-sorted, so within-source rank is position minus
        # the source's segment start.
        rank, _ = _segment_ranks(cand_slot)
        max_rank = int(rank.max()) + 1
        grown: list[np.ndarray] = [work_key]
        base, width = 0, first_round
        while base < max_rank:
            sel = (rank >= base) & (rank < base + width)
            if base > 0:
                # Later ranks only matter for sources still short of k.
                sel &= alive[cand_slot]
            s_slot = cand_slot[sel]
            s_vtx = cand_vtx[sel]
            base += width
            width *= 2
            if s_vtx.size == 0:
                continue
            d = dataset.pair_dist(
                sources[s_slot], s_vtx, bound=r, consistent=True
            )
            within = d <= r
            counts += np.bincount(s_slot[within], minlength=nsrc)
            alive &= counts < k
            # enqueue confirmed neighbors plus out-of-range pivots
            expand = within
            if follow_pivots:
                expand = expand | (pivots[s_vtx] & ~within)
            keep = expand & alive[s_slot]
            if keep.any():
                grown.append(s_slot[keep] * n + s_vtx[keep])
        work_key = np.concatenate(grown) if len(grown) > 1 else grown[0]

    return counts


def foreign_count_block(
    dataset: Dataset,
    graph: Graph,
    vertex_ids: np.ndarray,
    sources: np.ndarray,
    r: float,
    stop_at: "int | np.ndarray",
    tracker: BlockTracker | None = None,
    follow_pivots: bool | None = None,
    n_seeds: int = 4,
) -> np.ndarray:
    """Within-subset count lower bounds for *foreign* query objects.

    The sharded merge's Phase C needs, for each surviving candidate,
    its neighbor count inside every **other** shard — objects that are
    not vertices of that shard's graph, so :func:`greedy_count_block`
    cannot start from them.  This kernel runs the same multi-source
    wave over the target shard's graph, seeded from a fixed spread of
    member vertices, with one extra rule: a source whose frontier dies
    before reaching the radius ball *chases* the closest member it has
    evaluated so far (classic greedy graph descent), so the wave first
    navigates toward the query and then drains its within-``r``
    closure exactly as Algorithm 2 does.

    ``vertex_ids[v]`` maps graph vertex ``v`` to its id in ``dataset``
    (the full collection), and ``sources`` are dataset ids; distances
    are always evaluated between a source and a member.  The returned
    count is the number of *distinct* members found within ``r`` of
    each source (the source itself excluded if it is a member) — by
    Lemma 1 a valid **lower bound** on the source's within-subset
    count, never a verdict on its own.  A source retires once its
    count reaches its ``stop_at`` threshold (the residual the global
    merge still needs); a count below the threshold means the descent
    *stalled* and the caller must fall back to an exact subset sweep.

    Determinism: seeds are a fixed spread of member positions, waves
    are slot-sorted, and the chase step breaks distance ties by the
    smaller vertex id — so counts (and evaluated-pair totals) are
    identical across process layouts, which the CI equivalence gates
    assert.
    """
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    sources = np.asarray(sources, dtype=np.int64)
    nsrc = sources.size
    if nsrc == 0:
        return np.empty(0, dtype=np.int64)
    vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
    n = graph.n
    if vertex_ids.size != n:
        raise ParameterError(
            f"vertex_ids maps {vertex_ids.size} vertices for a "
            f"{n}-vertex graph"
        )
    stops = np.broadcast_to(np.asarray(stop_at, dtype=np.int64), sources.shape)
    if np.any(stops < 1):
        raise ParameterError("stop_at thresholds must be >= 1")
    if tracker is None:
        tracker = BlockTracker(n, nsrc)
    elif tracker.n != n or tracker.block_size < nsrc:
        raise ParameterError(
            f"BlockTracker(n={tracker.n}, block_size={tracker.block_size}) "
            f"cannot serve {nsrc} sources over a {n}-vertex graph"
        )
    if follow_pivots is None:
        follow_pivots = bool(graph.pivots.any())
    indptr, indices = graph.csr()
    pivots = graph.pivots
    avg_deg = max(1.0, indices.size / n)

    tracker.new_epoch()
    counts = np.zeros(nsrc, dtype=np.int64)
    alive = np.ones(nsrc, dtype=bool)
    #: closest member distance each source has seen (the chase monotone).
    best = np.full(nsrc, np.inf)
    first_round = max(32, 2 * int(stops.max()))

    # Every source starts from the same deterministic spread of member
    # positions; the chase rule then walks each source toward its own
    # region of the shard.
    seeds = np.unique(
        np.linspace(0, n - 1, num=min(int(n_seeds), n)).astype(np.int64)
    )
    slots = np.arange(nsrc, dtype=np.int64)
    cand_slot = np.repeat(slots, seeds.size)
    cand_vtx = np.tile(seeds, nsrc)
    work_key = np.empty(0, dtype=np.int64)
    first_wave = True

    while True:
        if not first_wave:
            if work_key.size == 0:
                break
            work_key = np.sort(work_key)
            work_slot = work_key // n
            live = alive[work_slot]
            work_key = work_key[live]
            work_slot = work_slot[live]
            if work_key.size == 0:
                break
            rank, n_segments = _segment_ranks(work_slot)
            window = max(1, int(8192 / (n_segments * avg_deg)))
            take = rank < window
            frontier_slot = work_slot[take]
            frontier_vtx = work_key[take] - frontier_slot * n
            work_key = work_key[~take]

            starts = indptr[frontier_vtx]
            degs = indptr[frontier_vtx + 1] - starts
            total = int(degs.sum())
            if total == 0:
                continue
            cum = np.cumsum(degs) - degs
            flat = np.arange(total, dtype=np.int64) - np.repeat(cum, degs)
            cand_vtx = indices[np.repeat(starts, degs) + flat]
            cand_slot = np.repeat(frontier_slot, degs)
            key = np.sort(cand_slot * n + cand_vtx)
            if key.size > 1:
                key = key[np.concatenate(([True], key[1:] != key[:-1]))]
            cand_slot, cand_vtx = np.divmod(key, n)
            fresh = tracker.fresh_mask(cand_slot, cand_vtx)
            cand_slot = cand_slot[fresh]
            cand_vtx = cand_vtx[fresh]
            if cand_vtx.size == 0:
                continue
        tracker.visit(cand_slot, cand_vtx)
        first_wave = False

        # -- rank rounds, as in greedy_count_block, plus per-slot wave
        # minima for the chase rule --------------------------------------
        rank, _ = _segment_ranks(cand_slot)
        max_rank = int(rank.max()) + 1
        grown: list[np.ndarray] = [work_key]
        wave_min = np.full(nsrc, np.inf)
        wave_arg = np.full(nsrc, -1, dtype=np.int64)
        base, width = 0, first_round
        while base < max_rank:
            sel = (rank >= base) & (rank < base + width)
            if base > 0:
                sel &= alive[cand_slot]
            s_slot = cand_slot[sel]
            s_vtx = cand_vtx[sel]
            base += width
            width *= 2
            if s_vtx.size == 0:
                continue
            targets = vertex_ids[s_vtx]
            d = dataset.pair_dist(
                sources[s_slot], targets, bound=r, consistent=True
            )
            within = (d <= r) & (targets != sources[s_slot])
            counts += np.bincount(s_slot[within], minlength=nsrc)
            alive &= counts < stops
            expand = within
            if follow_pivots:
                expand = expand | (pivots[s_vtx] & ~within)
            keep = expand & alive[s_slot]
            if keep.any():
                grown.append(s_slot[keep] * n + s_vtx[keep])
            # Track each slot's closest evaluated member (ties: smaller
            # vertex id; earlier rounds win) for the chase below.
            order = np.lexsort((s_vtx, d, s_slot))
            ss = s_slot[order]
            head = np.concatenate(([True], ss[1:] != ss[:-1]))
            m_slot = ss[head]
            m_d = d[order][head]
            m_vtx = s_vtx[order][head]
            better = m_d < wave_min[m_slot]
            wave_min[m_slot[better]] = m_d[better]
            wave_arg[m_slot[better]] = m_vtx[better]
        work_key = np.concatenate(grown) if len(grown) > 1 else grown[0]

        # -- chase: a source with no frontier left pursues its closest
        # member, but only on strict improvement (each vertex is visited
        # once, so the descent is bounded) -------------------------------
        has_work = np.zeros(nsrc, dtype=bool)
        if work_key.size:
            has_work[work_key // n] = True
        chase = np.flatnonzero(
            alive & ~has_work & (wave_arg >= 0) & (wave_min < best)
        )
        np.minimum(best, wave_min, out=best)
        if chase.size:
            work_key = np.concatenate(
                [work_key, chase * n + wave_arg[chase]]
            )

    return counts
