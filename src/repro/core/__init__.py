"""The paper's primary contribution: proximity graph-based exact DOD."""

from .counting import (
    FilterEvidence,
    FilterOutcome,
    VisitTracker,
    classify,
    classify_chunk,
    classify_evidence,
    greedy_count,
    split_outcomes,
)
from .dod import DODetector, detect_outliers, graph_dod
from .parallel import WorkerPool, map_over_objects, partition_indices
from .result import DODResult, ObjectEvidence
from .verify import Verifier

__all__ = [
    "greedy_count",
    "classify",
    "classify_chunk",
    "classify_evidence",
    "split_outcomes",
    "FilterEvidence",
    "FilterOutcome",
    "VisitTracker",
    "graph_dod",
    "DODetector",
    "detect_outliers",
    "DODResult",
    "ObjectEvidence",
    "Verifier",
    "WorkerPool",
    "map_over_objects",
    "partition_indices",
]
