"""The paper's primary contribution: proximity graph-based exact DOD."""

from .counting import (
    CANDIDATE_CODE,
    INLIER_CODE,
    OUTLIER_CODE,
    FilterEvidence,
    FilterOutcome,
    VisitTracker,
    classify,
    classify_block,
    classify_chunk,
    classify_chunk_arrays,
    classify_evidence,
    greedy_count,
    resolve_filter_mode,
    split_outcomes,
)
from .dod import DODetector, detect_outliers, graph_dod
from .parallel import (
    DatasetTransport,
    ShardPool,
    SharedMemoryStore,
    WorkerPool,
    default_start_method,
    map_over_objects,
    partition_indices,
)
from .result import DODResult, ObjectEvidence
from .store import STORE_NAME_PREFIX, SharedObjectStore
from .traversal import (
    DEFAULT_BLOCK,
    BlockTracker,
    foreign_count_block,
    greedy_count_block,
)
from .verify import Verifier

__all__ = [
    "greedy_count",
    "foreign_count_block",
    "greedy_count_block",
    "BlockTracker",
    "DEFAULT_BLOCK",
    "classify",
    "classify_block",
    "classify_chunk",
    "classify_chunk_arrays",
    "resolve_filter_mode",
    "INLIER_CODE",
    "CANDIDATE_CODE",
    "OUTLIER_CODE",
    "classify_evidence",
    "split_outcomes",
    "FilterEvidence",
    "FilterOutcome",
    "VisitTracker",
    "graph_dod",
    "DODetector",
    "detect_outliers",
    "DODResult",
    "ObjectEvidence",
    "Verifier",
    "WorkerPool",
    "ShardPool",
    "SharedMemoryStore",
    "SharedObjectStore",
    "STORE_NAME_PREFIX",
    "DatasetTransport",
    "default_start_method",
    "map_over_objects",
    "partition_indices",
]
