"""The paper's primary contribution: proximity graph-based exact DOD."""

from .counting import FilterOutcome, VisitTracker, classify, greedy_count
from .dod import DODetector, detect_outliers, graph_dod
from .parallel import map_over_objects, partition_indices
from .result import DODResult
from .verify import Verifier

__all__ = [
    "greedy_count",
    "classify",
    "FilterOutcome",
    "VisitTracker",
    "graph_dod",
    "DODetector",
    "detect_outliers",
    "DODResult",
    "Verifier",
    "map_over_objects",
    "partition_indices",
]
