"""VP-tree (vantage-point tree) for exact metric search.

The paper uses the VP-tree [Yianilos, SODA'93] in three roles:

* as the strongest range-search baseline for metric DOD (§3, §6),
* as the verifier (``Exact-Counting``) for low intrinsic-dimensional
  data (§4), and
* as the ball-partitioning engine seeding NNDescent+ (§5.1) — that use
  lives in :mod:`repro.index.partition`.

Construction follows the paper's description: a random vantage object,
the *mean* distance ``mu`` as the split value (``d <= mu`` goes left),
recursing until a node holds at most ``capacity`` objects.  Every
internal node stores, for each child subtree, the min/max distance from
the vantage to the subtree's objects; a query ball ``[d-r, d+r]`` that
misses that annulus prunes the subtree (triangle inequality).

The tree is stored in flat numpy arrays (structure-of-arrays) with an
explicit work stack — no recursion, no per-node Python objects.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng

#: child-slot value meaning "no child".
_NO_CHILD = np.iinfo(np.int64).min


class VPTree:
    """Exact metric index over (a subset of) a :class:`Dataset`.

    Parameters
    ----------
    dataset:
        The dataset to index.
    capacity:
        Maximum number of objects in a leaf.
    rng:
        Seed or generator driving vantage selection.
    indices:
        Optional subset of object ids to index (defaults to all).
    """

    def __init__(
        self,
        dataset: Dataset,
        capacity: int = 16,
        rng: "int | np.random.Generator | None" = None,
        indices: np.ndarray | None = None,
    ):
        if capacity < 1:
            raise ParameterError(f"VPTree capacity must be >= 1, got {capacity}")
        self.dataset = dataset
        self.capacity = int(capacity)
        gen = ensure_rng(rng)
        if indices is None:
            indices = np.arange(dataset.n, dtype=np.int64)
        else:
            indices = np.asarray(indices, dtype=np.int64)
        self.size = int(indices.size)

        vantage: list[int] = []
        l_min: list[float] = []
        l_max: list[float] = []
        r_min: list[float] = []
        r_max: list[float] = []
        left: list[int] = []
        right: list[int] = []
        leaves: list[np.ndarray] = []

        def new_leaf(items: np.ndarray) -> int:
            leaves.append(np.ascontiguousarray(items, dtype=np.int64))
            return -len(leaves)  # leaf ref: -1 => leaves[0]

        # Build iteratively.  Work items carry the subset plus the slot
        # (node id, side) the resulting child reference must be stored in;
        # the root's reference is kept separately.
        self.root = _NO_CHILD
        stack: list[tuple[np.ndarray, int, int]] = [(indices, -1, 0)]
        while stack:
            subset, parent, side = stack.pop()
            if subset.size <= self.capacity:
                ref = new_leaf(subset)
            else:
                pos = int(gen.integers(subset.size))
                v = int(subset[pos])
                rest = np.delete(subset, pos)
                d = dataset.dist_many(v, rest)
                mu = float(d.mean())
                lmask = d <= mu
                l_items = rest[lmask]
                r_items = rest[~lmask]
                nid = len(vantage)
                vantage.append(v)
                dl = d[lmask]
                dr = d[~lmask]
                l_min.append(float(dl.min()) if dl.size else np.inf)
                l_max.append(float(dl.max()) if dl.size else -np.inf)
                r_min.append(float(dr.min()) if dr.size else np.inf)
                r_max.append(float(dr.max()) if dr.size else -np.inf)
                left.append(_NO_CHILD)
                right.append(_NO_CHILD)
                ref = nid
                if l_items.size:
                    stack.append((l_items, nid, 0))
                if r_items.size:
                    stack.append((r_items, nid, 1))
            if parent < 0:
                self.root = ref
            elif side == 0:
                left[parent] = ref
            else:
                right[parent] = ref

        self._vantage = np.asarray(vantage, dtype=np.int64)
        self._l_min = np.asarray(l_min, dtype=np.float64)
        self._l_max = np.asarray(l_max, dtype=np.float64)
        self._r_min = np.asarray(r_min, dtype=np.float64)
        self._r_max = np.asarray(r_max, dtype=np.float64)
        self._left = np.asarray(left, dtype=np.int64)
        self._right = np.asarray(right, dtype=np.int64)
        self._leaves = leaves

    # -- introspection -------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of internal nodes."""
        return int(self._vantage.size)

    @property
    def nbytes(self) -> int:
        """Approximate index memory (excludes the dataset itself)."""
        total = (
            self._vantage.nbytes
            + self._l_min.nbytes
            + self._l_max.nbytes
            + self._r_min.nbytes
            + self._r_max.nbytes
            + self._left.nbytes
            + self._right.nbytes
        )
        total += sum(leaf.nbytes for leaf in self._leaves)
        return int(total)

    # -- queries ---------------------------------------------------------------

    def count_within(
        self,
        q: int,
        r: float,
        stop_at: int | None = None,
        exclude_self: bool = True,
        dataset: Dataset | None = None,
    ) -> int:
        """Number of indexed objects within distance ``r`` of object ``q``.

        ``q`` itself is not counted when ``exclude_self`` is set (the
        neighbor definition of the paper, Def. 1).  With ``stop_at``, the
        scan terminates as soon as that many neighbors are confirmed and
        the returned count may understate the true total — this is the
        early termination that makes ``Exact-Counting`` cheap for inliers.
        """
        if r < 0:
            raise ParameterError(f"radius must be non-negative, got {r}")
        ds = dataset if dataset is not None else self.dataset
        target = None if stop_at is None else int(stop_at)
        count = 0
        stack = [self.root]
        while stack:
            ref = stack.pop()
            if ref == _NO_CHILD:
                continue
            if ref < 0:
                items = self._leaves[-ref - 1]
                if items.size == 0:
                    continue
                d = ds.dist_many(q, items, bound=r)
                within = int(np.count_nonzero(d <= r))
                if exclude_self and within and np.any(items == q):
                    within -= 1
                count += within
            else:
                v = int(self._vantage[ref])
                d = ds.dist(q, v)
                if d <= r and not (exclude_self and v == q):
                    count += 1
                lo, hi = d - r, d + r
                if lo <= self._l_max[ref] and hi >= self._l_min[ref]:
                    stack.append(int(self._left[ref]))
                if lo <= self._r_max[ref] and hi >= self._r_min[ref]:
                    stack.append(int(self._right[ref]))
            if target is not None and count >= target:
                return count
        return count

    def range_search(self, q: int, r: float, exclude_self: bool = True) -> np.ndarray:
        """Ids of all indexed objects within distance ``r`` of object ``q``."""
        if r < 0:
            raise ParameterError(f"radius must be non-negative, got {r}")
        ds = self.dataset
        hits: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            ref = stack.pop()
            if ref == _NO_CHILD:
                continue
            if ref < 0:
                items = self._leaves[-ref - 1]
                if items.size == 0:
                    continue
                d = ds.dist_many(q, items, bound=r)
                hits.append(items[d <= r])
            else:
                v = int(self._vantage[ref])
                d = ds.dist(q, v)
                if d <= r:
                    hits.append(np.asarray([v], dtype=np.int64))
                lo, hi = d - r, d + r
                if lo <= self._l_max[ref] and hi >= self._l_min[ref]:
                    stack.append(int(self._left[ref]))
                if lo <= self._r_max[ref] and hi >= self._r_min[ref]:
                    stack.append(int(self._right[ref]))
        if not hits:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate(hits)
        if exclude_self:
            out = out[out != q]
        out.sort()
        return out

    def knn(self, q: int, K: int, exclude_self: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Exact ``K`` nearest neighbors of object ``q`` (ids, distances).

        Best-first search: subtrees are visited in lower-bound order and
        pruned against the current K-th best distance.  Used for the
        exact K'-NN retrieval step of NNDescent+ (§5.1).
        """
        if K < 1:
            raise ParameterError(f"K must be >= 1, got {K}")
        ds = self.dataset
        # Max-heap of the best K candidates as (-dist, id).
        best: list[tuple[float, int]] = []

        def tau() -> float:
            return -best[0][0] if len(best) >= K else np.inf

        def offer(ids: np.ndarray, dists: np.ndarray) -> None:
            for t in range(ids.size):
                i = int(ids[t])
                if exclude_self and i == q:
                    continue
                dist_i = float(dists[t])
                if len(best) < K:
                    heapq.heappush(best, (-dist_i, i))
                elif dist_i < -best[0][0]:
                    heapq.heapreplace(best, (-dist_i, i))

        pq: list[tuple[float, int]] = [(0.0, self.root)]
        while pq:
            lb, ref = heapq.heappop(pq)
            if lb > tau() or ref == _NO_CHILD:
                continue
            if ref < 0:
                items = self._leaves[-ref - 1]
                if items.size == 0:
                    continue
                offer(items, ds.dist_many(q, items))
            else:
                v = int(self._vantage[ref])
                d = ds.dist(q, v)
                offer(np.asarray([v]), np.asarray([d]))
                for child, mn, mx in (
                    (int(self._left[ref]), self._l_min[ref], self._l_max[ref]),
                    (int(self._right[ref]), self._r_min[ref], self._r_max[ref]),
                ):
                    if child == _NO_CHILD or mn > mx:
                        continue
                    child_lb = max(0.0, d - mx, mn - d)
                    if child_lb <= tau():
                        heapq.heappush(pq, (child_lb, child))
        order = sorted(((-nd, i) for nd, i in best))
        ids = np.asarray([i for _, i in order], dtype=np.int64)
        dists = np.asarray([dd for dd, _ in order], dtype=np.float64)
        return ids, dists

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VPTree(size={self.size}, nodes={self.node_count}, "
            f"capacity={self.capacity})"
        )
