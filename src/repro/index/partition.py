"""VP-tree ball partitioning (Algorithm 3 of the paper).

This is the initialisation engine of NNDescent+ (§5.1).  The dataset is
recursively split by random vantage objects and mean-distance radii.
Whenever the recursion produces a *left-child leaf* — a ball of at most
``capacity`` mutually-close objects — each member's K nearest neighbors
*within the leaf* become its initial approximate K-NN.  The vantage whose
left child became a leaf is recorded as a **pivot**; ball partitioning
spreads pivots across every subspace of the data, which is exactly the
property Connect-SubGraphs and Remove-Detours later rely on (§5).

Objects that never land in a left leaf after ``repeats`` passes keep an
empty initialisation and are topped up with random neighbors by the
caller (NNDescent+).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng


@dataclass
class PartitionResult:
    """Output of the repeated ball partitioning.

    ``init_ids``/``init_dists`` hold up to ``K`` seeded neighbors per
    object (−1 / +inf padding); ``covered`` flags objects seeded by at
    least one left leaf; ``pivots`` flags pivot objects.
    """

    init_ids: np.ndarray
    init_dists: np.ndarray
    covered: np.ndarray
    pivots: np.ndarray

    @property
    def n_pivots(self) -> int:
        return int(np.count_nonzero(self.pivots))


def _seed_leaf(
    dataset: Dataset,
    leaf: np.ndarray,
    K: int,
    init_ids: np.ndarray,
    init_dists: np.ndarray,
    covered: np.ndarray,
) -> None:
    """Set each leaf member's within-leaf K-NN as its initial AKNN."""
    for pos in range(leaf.size):
        p = int(leaf[pos])
        others = np.delete(leaf, pos)
        if others.size == 0:
            continue
        d = dataset.dist_many(p, others)
        take = min(K, others.size)
        if take < others.size:
            part = np.argpartition(d, take)[:take]
            order = part[np.argsort(d[part], kind="stable")]
        else:
            order = np.argsort(d, kind="stable")
        init_ids[p, :take] = others[order[:take]]
        init_dists[p, :take] = d[order[:take]]
        covered[p] = True


def vp_partition(
    dataset: Dataset,
    K: int,
    capacity: int | None = None,
    repeats: int = 2,
    rng: "int | np.random.Generator | None" = None,
) -> PartitionResult:
    """Run Algorithm 3 ``repeats`` times and collect seeds and pivots.

    ``capacity`` defaults to ``2K`` (the paper sets ``c = O(K)``).
    """
    if K < 1:
        raise ParameterError(f"K must be >= 1, got {K}")
    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1, got {repeats}")
    if capacity is None:
        capacity = max(2 * K, 4)
    if capacity < 2:
        raise ParameterError(f"capacity must be >= 2, got {capacity}")
    gen = ensure_rng(rng)
    n = dataset.n

    init_ids = np.full((n, K), -1, dtype=np.int64)
    init_dists = np.full((n, K), np.inf, dtype=np.float64)
    covered = np.zeros(n, dtype=bool)
    pivots = np.zeros(n, dtype=bool)

    targets = np.arange(n, dtype=np.int64)
    for _ in range(repeats):
        if targets.size == 0:
            break
        # Work stack of (subset, is_left_child).  The top-level set is
        # treated as a left child so a tiny dataset still gets seeded.
        stack: list[tuple[np.ndarray, bool]] = [(targets, True)]
        while stack:
            subset, is_left = stack.pop()
            if subset.size <= capacity:
                if is_left and subset.size > 1:
                    _seed_leaf(dataset, subset, K, init_ids, init_dists, covered)
                continue
            pos = int(gen.integers(subset.size))
            v = int(subset[pos])
            rest = np.delete(subset, pos)
            d = dataset.dist_many(v, rest)
            mu = float(d.mean())
            lmask = d <= mu
            l_items = np.concatenate(([v], rest[lmask]))
            r_items = rest[~lmask]
            if l_items.size <= capacity:
                pivots[v] = True
            if r_items.size == 0:
                # Degenerate split (all distances equal): fall back to a
                # halving split so the recursion terminates.
                half = subset.size // 2
                l_items, r_items = subset[:half], subset[half:]
                pivots[v] = l_items.size <= capacity
            stack.append((l_items, True))
            stack.append((r_items, False))
        # Later passes only re-partition objects still lacking seeds.
        targets = np.flatnonzero(~covered)

    return PartitionResult(init_ids, init_dists, covered, pivots)
