"""Chunked linear scans with early termination.

For high intrinsic-dimensional data the paper's ``Exact-Counting`` falls
back to a sequential scan "because this is more efficient than any
indexing methods for high-dimensional data" (§4).  The scan is chunked so
each step is one vectorised distance kernel, and it stops as soon as the
count reaches ``stop_at``.

:func:`brute_force_knn` and :func:`brute_force_range` are also the
reference oracles used throughout the test suite.
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError

#: default number of objects per distance kernel call.
DEFAULT_CHUNK = 2048


def linear_count(
    dataset: Dataset,
    q: int,
    r: float,
    stop_at: int | None = None,
    chunk: int = DEFAULT_CHUNK,
    exclude_self: bool = True,
) -> int:
    """Count objects within ``r`` of ``q`` by scanning the whole dataset.

    Stops as soon as ``stop_at`` neighbors are confirmed (the count
    returned may then understate the true total).
    """
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if chunk < 1:
        raise ParameterError(f"chunk must be >= 1, got {chunk}")
    n = dataset.n
    count = 0
    for lo in range(0, n, chunk):
        idx = np.arange(lo, min(lo + chunk, n), dtype=np.int64)
        d = dataset.dist_many(q, idx, bound=r)
        within = int(np.count_nonzero(d <= r))
        if exclude_self and lo <= q < lo + chunk:
            within -= 1
        count += within
        if stop_at is not None and count >= stop_at:
            return count
    return count


def brute_force_range(
    dataset: Dataset, q: int, r: float, exclude_self: bool = True
) -> np.ndarray:
    """All ids within distance ``r`` of object ``q`` (sorted)."""
    idx = np.arange(dataset.n, dtype=np.int64)
    d = dataset.dist_many(q, idx, bound=r)
    hits = idx[d <= r]
    if exclude_self:
        hits = hits[hits != q]
    return hits


def brute_force_knn(
    dataset: Dataset, q: int, K: int, exclude_self: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``K`` nearest neighbors of ``q`` by full scan (ids, dists)."""
    if K < 1:
        raise ParameterError(f"K must be >= 1, got {K}")
    idx = np.arange(dataset.n, dtype=np.int64)
    d = dataset.dist_many(q, idx)
    if exclude_self:
        keep = idx != q
        idx, d = idx[keep], d[keep]
    if K >= idx.size:
        order = np.argsort(d, kind="stable")
    else:
        part = np.argpartition(d, K)[:K]
        order = part[np.argsort(d[part], kind="stable")]
    return idx[order[:K]], d[order[:K]]


def brute_force_outliers(dataset: Dataset, r: float, k: int) -> np.ndarray:
    """Reference DOD answer: ids of all objects with < ``k`` neighbors.

    Quadratic; only suitable for tests and small calibration runs.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    out = []
    for q in range(dataset.n):
        if linear_count(dataset, q, r, stop_at=k) < k:
            out.append(q)
    return np.asarray(out, dtype=np.int64)
